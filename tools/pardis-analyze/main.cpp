// pardis-analyze CLI: whole-program concurrency analysis.
//
//   pardis-analyze [options] <file-or-dir>...
//       --ranks PATH     lock_ranks.def location (default:
//                        src/pardis/common/lock_ranks.def under the first
//                        scanned root, then the path itself)
//       --docs PATH      markdown file whose rank table is cross-checked
//                        against lock_ranks.def (repeatable)
//       --max-hops N     transitive walk depth (default 3)
//       --no-unused      skip the declared-but-unused rank drift check
//       --json FILE      also write a JSON report (findings, suppressions,
//                        counters) for CI artifacts
//       --rules          list the rule names
//       --list-suppressions <paths>   inventory allow() directives
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"
#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::vector<fs::path> collect(const std::vector<std::string>& args) {
  std::vector<fs::path> files;
  for (const std::string& arg : args) {
    const fs::path p(arg);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && is_cpp_source(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else {
      std::cerr << "pardis-analyze: no such file or directory: " << arg
                << "\n";
      std::exit(2);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  if (!in) {
    std::cerr << "pardis-analyze: cannot read " << p << "\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int usage() {
  std::cerr << "usage: pardis-analyze [--ranks PATH] [--docs PATH]... "
               "[--max-hops N] [--no-unused] [--json FILE] <file-or-dir>...\n"
               "       pardis-analyze --rules\n"
               "       pardis-analyze --list-suppressions <file-or-dir>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  if (args.size() == 1 && args[0] == "--rules") {
    for (const std::string& rule : pardis::analyze::rule_names()) {
      std::cout << rule << "\n";
    }
    return 0;
  }

  pardis::analyze::Options options;
  std::string ranks_arg;
  std::string json_path;
  std::vector<std::string> doc_args;
  std::vector<std::string> paths;
  bool list_suppressions = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::exit(usage());
      }
      return args[++i];
    };
    if (a == "--ranks") {
      ranks_arg = value();
    } else if (a == "--docs") {
      doc_args.push_back(value());
    } else if (a == "--max-hops") {
      try {
        options.max_hops = std::stoi(value());
      } catch (...) {
        return usage();
      }
      if (options.max_hops < 1) return usage();
    } else if (a == "--no-unused") {
      options.check_unused_ranks = false;
    } else if (a == "--json") {
      json_path = value();
    } else if (a == "--list-suppressions") {
      list_suppressions = true;
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) return usage();

  std::vector<pardis::analyze::Source> sources;
  for (const fs::path& file : collect(paths)) {
    sources.emplace_back(file.generic_string(), slurp(file));
  }

  if (list_suppressions) {
    std::size_t count = 0;
    for (const auto& [path, text] : sources) {
      for (const auto& s : pardis::lint::list_suppressions(path, text)) {
        std::cout << s.file << ":" << s.line << ": allow(" << s.rule
                  << "): "
                  << (s.reason.empty() ? "<missing reason>" : s.reason)
                  << "\n";
        ++count;
      }
    }
    std::cerr << "pardis-analyze: " << sources.size() << " files, " << count
              << " suppression(s)\n";
    return 0;
  }

  // Locate lock_ranks.def: explicit --ranks wins, else look under each
  // scanned root, else next to the binary's source tree layout.
  fs::path ranks_path;
  if (!ranks_arg.empty()) {
    ranks_path = ranks_arg;
  } else {
    for (const std::string& p : paths) {
      for (const fs::path& cand :
           {fs::path(p) / "pardis/common/lock_ranks.def",
            fs::path(p) / "src/pardis/common/lock_ranks.def"}) {
        if (fs::is_regular_file(cand)) {
          ranks_path = cand;
          break;
        }
      }
      if (!ranks_path.empty()) break;
    }
    if (ranks_path.empty() &&
        fs::is_regular_file("src/pardis/common/lock_ranks.def")) {
      ranks_path = "src/pardis/common/lock_ranks.def";
    }
  }
  if (ranks_path.empty() || !fs::is_regular_file(ranks_path)) {
    std::cerr << "pardis-analyze: cannot find lock_ranks.def (use --ranks)\n";
    return 2;
  }

  std::vector<pardis::analyze::Source> docs;
  for (const std::string& d : doc_args) {
    docs.emplace_back(fs::path(d).generic_string(), slurp(d));
  }

  const pardis::analyze::Result result = pardis::analyze::analyze(
      sources, ranks_path.generic_string(), slurp(ranks_path), docs,
      options);

  for (const auto& d : result.findings) {
    std::cout << pardis::lint::format(d) << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "pardis-analyze: cannot write " << json_path << "\n";
      return 2;
    }
    out << pardis::analyze::to_json(result);
  }
  std::cerr << "pardis-analyze: " << result.files_scanned << " files, "
            << result.functions_indexed << " functions, "
            << result.call_edges << " call edges, "
            << result.findings.size() << " finding(s), "
            << result.suppressions.size() << " suppression(s)\n";
  return result.findings.empty() ? 0 : 1;
}
