#include "analyze.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <optional>
#include <sstream>

namespace pardis::analyze {
namespace {

using lint::LexOutput;
using lint::Token;

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

// ---- token utilities -------------------------------------------------------

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const std::string& o, const std::string& c) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].text == o) ++depth;
    if (toks[j].text == c && --depth == 0) return j;
  }
  return kNpos;
}

/// Matching `>` for the `<` at `open`, bounded by `;` (not a template).
std::size_t match_angle(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].text == "<") ++depth;
    if (toks[j].text == ">" && --depth == 0) return j;
    if (toks[j].text == ";" || toks[j].text == "{") break;
  }
  return kNpos;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

std::string strip_underscores(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c != '_') out.push_back(c);
  }
  return out;
}

/// Does the receiver expression hint at the class?  `reply_future_` hints
/// at `Future`, `stream_` at `TcpStream`, `conn` at `Connection`.
bool hint_matches(const std::string& recv, const std::string& cls) {
  const std::string r = strip_underscores(lower(recv));
  const std::string c = strip_underscores(lower(cls));
  if (r.size() < 3 || c.size() < 3) return false;
  return r.find(c) != std::string::npos || c.find(r) != std::string::npos;
}

const std::set<std::string>& non_call_keywords() {
  static const std::set<std::string> kWords{
      "if",     "while",    "for",       "switch",        "catch",
      "return", "sizeof",   "alignof",   "static_assert", "decltype",
      "throw",  "noexcept", "operator",  "new",           "delete",
      "assert", "defined",  "alignas",   "co_await",      "co_return",
  };
  return kWords;
}

bool is_guard_type(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock";
}

bool is_wait_name(const std::string& s) {
  return s == "wait" || s == "wait_for" || s == "wait_until";
}

bool is_mutex_type(const std::string& s) {
  return s == "RankedMutex" || s == "CheckedRankedMutex" ||
         s == "PlainRankedMutex";
}

/// Syscall-shaped primitives only count with a global-scope `::` receiver
/// (`::write`, `::poll`); bare `write(`/`read(` are too common as method
/// names to treat as blocking.
bool needs_global_scope(const std::string& s) {
  return s == "write" || s == "read" || s == "poll" || s == "select" ||
         s == "epoll_wait" || s == "accept4";
}

// ---- per-function model ----------------------------------------------------

struct CallSite {
  std::string callee;
  std::string recv;      // receiver ident for member calls ("" = free call)
  std::string cls_hint;  // `Class::fn(...)` qualifier
  int line = 0;
  std::vector<std::string> held_vars;  // mutex vars of held guards at site
  bool under_param = false;            // the unique_lock& param is held here
  bool passes_held_guard = false;      // an arg names a held guard object
  bool passes_param = false;           // an arg names the lock param
  std::vector<std::string> passed_mutex_vars;  // mutexes of passed guards
};

struct AcquireSite {
  std::vector<std::string> vars;       // mutexes this guard acquires
  std::vector<std::string> held_vars;  // mutexes already held
  int line = 0;
};

struct BlockSite {
  std::string what;
  int line = 0;
  std::vector<std::string> held_vars;
  bool under_param = false;
};

struct Function {
  std::string cls;   // "" for free functions
  std::string name;  // "~X" for destructors
  std::string file;
  int line = 0;
  bool is_noexcept = false;
  bool has_catch_all = false;  // catch (...) at depth <= 2 in the body
  bool has_lock_param = false;
  std::string lock_param;
  std::string delegate;  // body is a single `f(...)` call
  std::map<std::string, std::string> local_mutex;  // var -> rank
  std::vector<CallSite> calls;
  std::vector<AcquireSite> acquires;
  std::vector<BlockSite> blocks;
  // computed by the relaxation passes
  int depth_general = -1;     // hops to a blocking op (0 = in this body)
  int depth_param_held = -1;  // same, counting only ops under the lock param
  std::string witness_general;
  std::string witness_param;
};

struct WaitSite {
  std::string file;
  std::string method;
  std::string recv;
  int argc = 0;
  int line = 0;
};

struct EntrySite {
  std::string file;
  std::string enclosing_cls;
  int line = 0;
  std::string desc;  // "lambda" or the target name, for messages
  bool is_lambda = false;
  bool lam_noexcept = false;
  bool lam_catch_all = false;
  bool lam_trivial = false;  // lambda body contains no calls at all
  std::string lam_delegate;  // single-call lambda body target
  std::string target;        // named entry (&Class::f, free fn)
  std::string target_cls;
  bool skip = false;  // std::move-style forwarding, not a new entry
};

struct Program {
  std::vector<Function> fns;
  std::multimap<std::string, std::size_t> by_name;
  std::map<std::pair<std::string, std::string>, std::string> member_rank;
  std::multimap<std::string, std::string> var_rank;  // var -> every rank
  std::set<std::string> cv_vars;
  std::set<std::string> thread_vec_vars;
  std::vector<EntrySite> entries;
  struct PendingPush {
    std::string recv;
    EntrySite entry;
  };
  std::vector<PendingPush> pending_pushes;
  std::vector<WaitSite> waits;
  // rank-name usages: name -> first (file, line) seen
  std::map<std::string, std::pair<std::string, int>> used_ranks;
  std::map<std::string, LexOutput> lexed;  // tokens cleared after parse
};

// ---- lambda / entry parsing ------------------------------------------------

bool scan_catch_all(const std::vector<Token>& toks, std::size_t open,
                    std::size_t close, int max_rel_depth) {
  int depth = 0;
  for (std::size_t i = open; i < close; ++i) {
    const std::string& s = toks[i].text;
    if (s == "{") ++depth;
    if (s == "}") --depth;
    if (s == "catch" && depth <= max_rel_depth && i + 5 < close &&
        toks[i + 1].text == "(" && toks[i + 2].text == "." &&
        toks[i + 3].text == "." && toks[i + 4].text == "." &&
        toks[i + 5].text == ")") {
      return true;
    }
  }
  return false;
}

bool has_any_call(const std::vector<Token>& toks, std::size_t open,
                  std::size_t close) {
  for (std::size_t i = open; i + 1 < close; ++i) {
    if (toks[i].is_ident && toks[i + 1].text == "(" &&
        non_call_keywords().count(toks[i].text) == 0) {
      return true;
    }
  }
  return false;
}

/// Body tokens strictly inside the braces match `[return] f(...);` — the
/// one-call delegation shape.  Returns the called name.
std::optional<std::string> single_call_target(const std::vector<Token>& toks,
                                              std::size_t s, std::size_t e) {
  std::size_t j = s;
  if (j < e && toks[j].text == "return") ++j;
  std::size_t last_ident = kNpos;
  while (j < e && (toks[j].is_ident || toks[j].text == "::" ||
                   toks[j].text == "." ||
                   (toks[j].text == "-" && j + 1 < e &&
                    toks[j + 1].text == ">"))) {
    if (toks[j].is_ident) last_ident = j;
    if (toks[j].text == "-") ++j;  // consume the `>` of `->` too
    ++j;
  }
  if (j >= e || toks[j].text != "(" || last_ident == kNpos) return std::nullopt;
  const std::size_t close = match_forward(toks, j, "(", ")");
  if (close == kNpos || close + 2 != e || toks[close + 1].text != ";") {
    return std::nullopt;
  }
  return toks[last_ident].text;
}

/// Parses the first constructor argument of a std::thread / thread-vector
/// push as a thread entry point.
EntrySite parse_entry(const std::vector<Token>& toks, std::size_t s,
                      std::size_t e, const std::string& file, int line,
                      const std::string& enclosing_cls) {
  EntrySite entry;
  entry.file = file;
  entry.line = line;
  entry.enclosing_cls = enclosing_cls;
  if (s >= e) {
    entry.skip = true;
    return entry;
  }
  if (toks[s].text == "[") {
    entry.is_lambda = true;
    entry.desc = "lambda";
    std::size_t j = match_forward(toks, s, "[", "]");
    if (j == kNpos || j >= e) {
      entry.skip = true;
      return entry;
    }
    ++j;
    if (j < e && toks[j].text == "(") {
      j = match_forward(toks, j, "(", ")");
      if (j == kNpos) {
        entry.skip = true;
        return entry;
      }
      ++j;
    }
    while (j < e && toks[j].text != "{") {
      if (toks[j].text == "noexcept") entry.lam_noexcept = true;
      ++j;
    }
    if (j >= e) {
      entry.skip = true;
      return entry;
    }
    const std::size_t body_close = match_forward(toks, j, "{", "}");
    if (body_close == kNpos || body_close > e) {
      entry.skip = true;
      return entry;
    }
    entry.lam_catch_all = scan_catch_all(toks, j, body_close, 2);
    entry.lam_trivial = !has_any_call(toks, j + 1, body_close);
    if (const auto target = single_call_target(toks, j + 1, body_close)) {
      entry.lam_delegate = *target;
    }
    return entry;
  }
  // `&Class::method`, plain function name, or a forwarded object.
  std::size_t j = s;
  if (toks[j].text == "&") ++j;
  std::string last_ident;
  std::string prev_ident;
  while (j < e && (toks[j].is_ident || toks[j].text == "::")) {
    if (toks[j].is_ident) {
      prev_ident = last_ident;
      last_ident = toks[j].text;
    }
    ++j;
  }
  if (last_ident.empty()) {
    entry.skip = true;
    return entry;
  }
  // std::move(t) / std::ref(x): thread hand-off, not a new entry body.
  if (prev_ident == "std" || last_ident == "move" || last_ident == "ref" ||
      last_ident == "exchange") {
    entry.skip = true;
    return entry;
  }
  entry.target = last_ident;
  entry.target_cls = prev_ident;
  entry.desc = last_ident;
  return entry;
}

// ---- function header recognition -------------------------------------------

struct Header {
  std::string cls;
  std::string name;
  int line = 0;
  bool is_noexcept = false;
  bool has_lock_param = false;
  std::string lock_param;
  std::size_t body_open = 0;
  std::size_t body_close = 0;
};

std::optional<Header> try_function(const std::vector<Token>& toks,
                                   std::size_t i,
                                   const std::string& cur_cls) {
  Header h;
  h.name = toks[i].text;
  h.line = toks[i].line;
  if (non_call_keywords().count(h.name) != 0 || is_guard_type(h.name)) {
    return std::nullopt;
  }
  // Walk back over the `Ns::Class::` qualifier chain (and `~` for dtors).
  std::vector<std::string> quals;
  std::size_t k = i;
  if (k > 0 && toks[k - 1].text == "~") {
    h.name = "~" + h.name;
    --k;
  }
  while (k >= 2 && toks[k - 1].text == "::" && toks[k - 2].is_ident) {
    quals.insert(quals.begin(), toks[k - 2].text);
    k -= 2;
  }
  h.cls = quals.empty() ? cur_cls : quals.back();
  if (k > 0) {
    const std::string& before = toks[k - 1].text;
    if (before == "." || before == "::" ||
        (before == ">" && k > 1 && toks[k - 2].text == "-")) {
      return std::nullopt;  // member-call context, not a definition
    }
  }
  const std::size_t open = i + 1;
  const std::size_t close = match_forward(toks, open, "(", ")");
  if (close == kNpos) return std::nullopt;
  // `std::unique_lock<...>& name` parameter: the callee manages the
  // caller's lock (ReplyRouter::pump's reader-duty handoff shape).
  for (std::size_t j = open + 1; j < close; ++j) {
    if (toks[j].text != "unique_lock") continue;
    std::size_t p = j + 1;
    if (p < close && toks[p].text == "<") {
      p = match_angle(toks, p);
      if (p == kNpos || p >= close) break;
      ++p;
    }
    if (p < close && toks[p].text == "&") ++p;
    if (p < close && toks[p].is_ident) {
      h.has_lock_param = true;
      h.lock_param = toks[p].text;
    }
    break;
  }
  // Skim from `)` to the body `{`; anything declaration-like rejects.
  std::size_t j = close + 1;
  bool in_init = false;
  int steps = 0;
  while (j < toks.size() && ++steps < 4096) {
    const std::string& s = toks[j].text;
    if (s == ";") return std::nullopt;
    if ((s == "=" || s == ",") && !in_init) return std::nullopt;
    if (s == "noexcept") {
      h.is_noexcept = true;
      if (j + 1 < toks.size() && toks[j + 1].text == "(") {
        j = match_forward(toks, j + 1, "(", ")");
        if (j == kNpos) return std::nullopt;
      }
      ++j;
      continue;
    }
    if (s == ":") {
      in_init = true;
      ++j;
      continue;
    }
    if (s == "(") {
      j = match_forward(toks, j, "(", ")");
      if (j == kNpos) return std::nullopt;
      ++j;
      continue;
    }
    if (s == "[") {
      j = match_forward(toks, j, "[", "]");
      if (j == kNpos) return std::nullopt;
      ++j;
      continue;
    }
    if (s == "{") {
      if (in_init && j > 0 &&
          (toks[j - 1].is_ident || toks[j - 1].text == ">")) {
        j = match_forward(toks, j, "{", "}");  // member brace-init
        if (j == kNpos) return std::nullopt;
        ++j;
        continue;
      }
      h.body_open = j;
      break;
    }
    ++j;
  }
  if (h.body_open == 0) return std::nullopt;
  h.body_close = match_forward(toks, h.body_open, "{", "}");
  if (h.body_close == kNpos) return std::nullopt;
  return h;
}

// ---- body scan -------------------------------------------------------------

struct GuardInfo {
  int depth = 0;
  std::string guard_var;
  std::vector<std::string> mutex_vars;
  bool held = true;
  bool is_param = false;
};

/// Last identifier of one guard-constructor argument — `state_->mu` names
/// mutex `mu`, `mu_` names `mu_`.  std lock tags are not mutexes.
void collect_arg_mutexes(const std::vector<Token>& toks, std::size_t s,
                         std::size_t e, std::vector<std::string>* vars,
                         bool* defer) {
  std::string last;
  for (std::size_t j = s; j <= e + 1; ++j) {
    const bool at_end = j == e + 1;
    if (!at_end && toks[j].is_ident) last = toks[j].text;
    if (at_end || toks[j].text == ",") {
      if (last == "defer_lock") {
        *defer = true;
      } else if (!last.empty() && last != "adopt_lock" &&
                 last != "try_to_lock") {
        vars->push_back(last);
      }
      last.clear();
    }
  }
}

void scan_body(Program& prog, const Options& opts, Function& fn,
               const std::vector<Token>& toks, std::size_t body_open,
               std::size_t body_close, const std::string& file) {
  std::vector<GuardInfo> guards;
  if (fn.has_lock_param) {
    guards.push_back({0, fn.lock_param, {}, true, true});
  }
  int depth = 1;

  auto held_mutexes = [&](const std::string& skip_guard) {
    std::vector<std::string> out;
    for (const GuardInfo& g : guards) {
      if (g.held && !g.is_param && g.guard_var != skip_guard) {
        out.insert(out.end(), g.mutex_vars.begin(), g.mutex_vars.end());
      }
    }
    return out;
  };
  auto param_held = [&](const std::string& skip_guard) {
    for (const GuardInfo& g : guards) {
      if (g.is_param && g.held && g.guard_var != skip_guard) return true;
    }
    return false;
  };

  for (std::size_t i = body_open + 1; i < body_close; ++i) {
    const Token& t = toks[i];
    auto nxt = [&](std::size_t k) -> const std::string& {
      static const std::string kEmpty;
      return i + k < body_close ? toks[i + k].text : kEmpty;
    };
    auto prv = [&](std::size_t k) -> const std::string& {
      static const std::string kEmpty;
      return i >= k ? toks[i - k].text : kEmpty;
    };

    if (t.text == "{") {
      ++depth;
      continue;
    }
    if (t.text == "}") {
      --depth;
      guards.erase(std::remove_if(guards.begin(), guards.end(),
                                  [&](const GuardInfo& g) {
                                    return !g.is_param && g.depth > depth;
                                  }),
                   guards.end());
      continue;
    }

    // catch (...) close enough to the top protects the whole body (one
    // enclosing loop allowed: worker loops wrap per-job try/catch).
    if (t.text == "catch" && depth <= 2 && nxt(1) == "(" && nxt(2) == "." &&
        nxt(3) == "." && nxt(4) == "." && nxt(5) == ")") {
      fn.has_catch_all = true;
    }

    // Function-local RankedMutex (log.cpp's static sink lock).
    if (t.is_ident && is_mutex_type(t.text) && i + 1 < body_close &&
        toks[i + 1].is_ident) {
      const std::string var = toks[i + 1].text;
      for (std::size_t j = i + 2; j < body_close && toks[j].text != ";"; ++j) {
        if (toks[j].text == "LockRank" && j + 2 < body_close &&
            toks[j + 1].text == "::" && toks[j + 2].is_ident) {
          fn.local_mutex[var] = toks[j + 2].text;
          break;
        }
      }
    }

    // Guard declaration: lock_guard<...> g(mu); / scoped_lock g(a, b);
    if (t.is_ident && is_guard_type(t.text)) {
      std::size_t v = kNpos;  // index of the guard variable
      if (nxt(1) == "<") {
        const std::size_t gt = match_angle(toks, i + 1);
        if (gt != kNpos && gt + 1 < body_close && toks[gt + 1].is_ident) {
          v = gt + 1;
        }
      } else if (i + 1 < body_close && toks[i + 1].is_ident) {
        v = i + 1;
      }
      if (v != kNpos && v + 1 < body_close &&
          (toks[v + 1].text == "(" || toks[v + 1].text == "{")) {
        const std::string closer = toks[v + 1].text == "(" ? ")" : "}";
        const std::size_t close =
            match_forward(toks, v + 1, toks[v + 1].text, closer);
        if (close != kNpos && close < body_close) {
          std::vector<std::string> vars;
          bool defer = false;
          collect_arg_mutexes(toks, v + 2, close - 1, &vars, &defer);
          if (!vars.empty()) {
            fn.acquires.push_back({vars, held_mutexes(""), t.line});
            guards.push_back({depth, toks[v].text, vars, !defer, false});
          }
          i = close;
          continue;
        }
      }
    }

    // guard.unlock() / guard.lock() toggles held state (incl. the param).
    if (t.is_ident && nxt(1) == "." &&
        (nxt(2) == "unlock" || nxt(2) == "lock") && nxt(3) == "(") {
      for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
        if (it->guard_var == t.text) {
          it->held = nxt(2) == "lock";
          break;
        }
      }
      i += 3;
      continue;
    }

    const bool member_recv =
        prv(1) == "." || (prv(1) == ">" && prv(2) == "-");
    std::string recv;
    if (prv(1) == "." && i >= 2 && toks[i - 2].is_ident) {
      recv = toks[i - 2].text;
    } else if (prv(1) == ">" && prv(2) == "-" && i >= 3 &&
               toks[i - 3].is_ident) {
      recv = toks[i - 3].text;
    }

    // Condition-variable wait: record for the predicate rule, and model
    // the suspension (the wait releases only its own lock argument; any
    // other lock stays held while this thread sleeps).
    if (t.is_ident && is_wait_name(t.text) && nxt(1) == "(" && member_recv) {
      const std::size_t close = match_forward(toks, i + 1, "(", ")");
      if (close != kNpos && close < body_close) {
        int argc = 0;
        int pdepth = 0;
        for (std::size_t j = i + 1; j <= close; ++j) {
          if (toks[j].text == "(" || toks[j].text == "[" ||
              toks[j].text == "{") {
            ++pdepth;
          }
          if (toks[j].text == ")" || toks[j].text == "]" ||
              toks[j].text == "}") {
            --pdepth;
          }
          if (toks[j].text == "," && pdepth == 1) ++argc;
        }
        if (close > i + 2) ++argc;  // non-empty arg list: commas + 1
        prog.waits.push_back({file, t.text, recv, argc, t.line});
        const std::string released =
            i + 2 < close && toks[i + 2].is_ident ? toks[i + 2].text : "";
        fn.blocks.push_back({"cv " + t.text, t.line, held_mutexes(released),
                             param_held(released)});
        i = close;
        continue;
      }
    }

    // Thread entry points: std::thread construction ...
    if (t.is_ident && (t.text == "thread" || t.text == "jthread") &&
        prv(1) == "::" && prv(2) == "std" &&
        (nxt(1) == "(" || nxt(1) == "{")) {
      const std::string closer = nxt(1) == "(" ? ")" : "}";
      const std::size_t close =
          match_forward(toks, i + 1, nxt(1), closer);
      if (close != kNpos && close > i + 2 && close < body_close) {
        EntrySite e =
            parse_entry(toks, i + 2, close, file, t.line, fn.cls);
        if (!e.skip) prog.entries.push_back(e);
      }
    }
    // ... and pushes onto a std::vector<std::thread> member.
    if (t.is_ident &&
        (t.text == "emplace_back" || t.text == "push_back") &&
        nxt(1) == "(" && member_recv && !recv.empty()) {
      const std::size_t close = match_forward(toks, i + 1, "(", ")");
      if (close != kNpos && close > i + 2 && close < body_close) {
        EntrySite e =
            parse_entry(toks, i + 2, close, file, t.line, fn.cls);
        if (!e.skip) prog.pending_pushes.push_back({recv, e});
      }
    }

    // Blocking primitive use.
    if (t.is_ident && opts.blocking_primitives.count(t.text) != 0 &&
        nxt(1) == "(") {
      bool recv_ok;
      if (needs_global_scope(t.text)) {
        recv_ok = prv(1) == "::" && (i < 2 || !toks[i - 2].is_ident);
      } else {
        recv_ok = member_recv || prv(1) == "::" || prv(1) == ";" ||
                  prv(1) == "{" || prv(1) == "}" || prv(1) == "=" ||
                  prv(1) == "(" || prv(1) == "," || prv(1) == "!" ||
                  prv(1) == "return";
      }
      if (recv_ok) {
        fn.blocks.push_back(
            {t.text, t.line, held_mutexes(""), param_held("")});
      }
    }

    // Call site (kept even for primitive names: a like-named project
    // function may acquire locks the caller must inherit edges for).
    if (t.is_ident && nxt(1) == "(" &&
        non_call_keywords().count(t.text) == 0 && !is_guard_type(t.text) &&
        !is_wait_name(t.text) && t.text != "thread" && t.text != "jthread") {
      // Skip the std:: namespace wholesale — never in the index.
      const bool is_std_qualified =
          prv(1) == "::" && i >= 2 && toks[i - 2].text == "std";
      if (!is_std_qualified) {
        CallSite cs;
        cs.callee = t.text;
        cs.recv = recv;
        if (prv(1) == "::" && i >= 2 && toks[i - 2].is_ident) {
          cs.cls_hint = toks[i - 2].text;
        }
        cs.line = t.line;
        cs.held_vars = held_mutexes("");
        cs.under_param = param_held("");
        const std::size_t close = match_forward(toks, i + 1, "(", ")");
        if (close != kNpos && close < body_close) {
          for (std::size_t j = i + 2; j < close; ++j) {
            if (!toks[j].is_ident) continue;
            for (const GuardInfo& g : guards) {
              if (!g.held || g.guard_var != toks[j].text) continue;
              if (g.is_param) {
                cs.passes_param = true;
              } else {
                cs.passes_held_guard = true;
                cs.passed_mutex_vars.insert(cs.passed_mutex_vars.end(),
                                            g.mutex_vars.begin(),
                                            g.mutex_vars.end());
              }
            }
          }
        }
        fn.calls.push_back(std::move(cs));
      }
    }
  }

  if (const auto target =
          single_call_target(toks, body_open + 1, body_close)) {
    fn.delegate = *target;
  }
}

// ---- file-level structural walk --------------------------------------------

void parse_file(Program& prog, const Options& opts, const std::string& path,
                const std::string& text) {
  LexOutput lexed = lint::lex(text);
  const std::vector<Token>& toks = lexed.tokens;

  // Rank-name usages, for declared-but-unused / used-but-undeclared drift.
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text == "LockRank" && toks[i + 1].text == "::" &&
        toks[i + 2].is_ident) {
      prog.used_ranks.emplace(toks[i + 2].text,
                              std::make_pair(path, toks[i + 2].line));
    }
  }

  struct ClassScope {
    std::string name;
    int open_depth;  // depth value inside the class braces
  };
  std::vector<ClassScope> classes;
  int depth = 0;

  auto cur_cls = [&]() -> std::string {
    return classes.empty() ? "" : classes.back().name;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    auto nxt = [&](std::size_t k) -> const std::string& {
      static const std::string kEmpty;
      return i + k < toks.size() ? toks[i + k].text : kEmpty;
    };

    if (t.text == "{") {
      ++depth;
      continue;
    }
    if (t.text == "}") {
      --depth;
      while (!classes.empty() && classes.back().open_depth > depth) {
        classes.pop_back();
      }
      continue;
    }

    // Skip enum bodies entirely (enumerator names are not code).
    if (t.text == "enum") {
      std::size_t j = i + 1;
      while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") {
        ++j;
      }
      if (j < toks.size() && toks[j].text == "{") {
        const std::size_t close = match_forward(toks, j, "{", "}");
        if (close != kNpos) {
          i = close;
          continue;
        }
      }
      i = j;
      continue;
    }

    // class/struct definition opens a member-attribution scope.
    if ((t.text == "class" || t.text == "struct") && i + 1 < toks.size() &&
        toks[i + 1].is_ident) {
      std::size_t j = i + 2;
      while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";" &&
             toks[j].text != "=" && toks[j].text != "(") {
        ++j;
      }
      if (j < toks.size() && toks[j].text == "{") {
        classes.push_back({toks[i + 1].text, depth + 1});
        depth += 1;
        i = j;
      } else {
        i = j == toks.size() ? j - 1 : j;  // forward declaration etc.
      }
      continue;
    }

    // Member / global mutex declarations: RankedMutex mu_{LockRank::kX};
    if (t.is_ident && is_mutex_type(t.text) && i + 1 < toks.size() &&
        toks[i + 1].is_ident) {
      const std::string var = toks[i + 1].text;
      std::string rank;
      for (std::size_t j = i + 2; j < toks.size() && toks[j].text != ";";
           ++j) {
        if (toks[j].text == "LockRank" && j + 2 < toks.size() &&
            toks[j + 1].text == "::" && toks[j + 2].is_ident) {
          rank = toks[j + 2].text;
          break;
        }
      }
      if (!rank.empty()) {
        prog.member_rank[{cur_cls(), var}] = rank;
        prog.var_rank.emplace(var, rank);
      }
    }

    // Condition-variable members, for the wait-predicate receiver check.
    if (t.is_ident &&
        (t.text == "condition_variable" ||
         t.text == "condition_variable_any") &&
        i + 1 < toks.size() && toks[i + 1].is_ident) {
      prog.cv_vars.insert(toks[i + 1].text);
    }

    // std::vector<std::thread> members, for worker-pool entry detection.
    if (t.text == "vector" && nxt(1) == "<" && nxt(2) == "std" &&
        nxt(3) == "::" && nxt(4) == "thread" && nxt(5) == ">" &&
        i + 6 < toks.size() && toks[i + 6].is_ident) {
      prog.thread_vec_vars.insert(toks[i + 6].text);
    }

    // Function definition: consume the body with the dedicated scanner.
    if (t.is_ident && nxt(1) == "(") {
      if (auto h = try_function(toks, i, cur_cls())) {
        Function fn;
        fn.cls = h->cls;
        fn.name = h->name;
        fn.file = path;
        fn.line = h->line;
        fn.is_noexcept = h->is_noexcept;
        fn.has_lock_param = h->has_lock_param;
        fn.lock_param = h->lock_param;
        scan_body(prog, opts, fn, toks, h->body_open, h->body_close, path);
        prog.fns.push_back(std::move(fn));
        i = h->body_close;
        continue;
      }
    }
  }

  lexed.tokens.clear();  // only the allow() directives are needed later
  prog.lexed.emplace(path, std::move(lexed));
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kRules{
      "lock-order-inversion",    "lock-order-cycle",
      "rank-table-drift",        "blocking-under-lock-transitive",
      "callback-exception-escape", "wait-without-predicate",
      "missing-reason"};
  return kRules;
}

RankTable parse_rank_table(const std::string& path, const std::string& text,
                           std::vector<Diagnostic>& diags) {
  RankTable table;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first =
        line.find_first_not_of(" \t");
    if (first == std::string::npos || line.compare(first, 2, "//") == 0) {
      continue;
    }
    const std::size_t at = line.find("PARDIS_LOCK_RANK(");
    if (at == std::string::npos) continue;
    const std::size_t open = line.find('(', at);
    const std::size_t c1 = line.find(',', open);
    const std::size_t c2 = c1 == std::string::npos
                               ? std::string::npos
                               : line.find(',', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      diags.push_back({path, lineno, "rank-table-drift",
                       "malformed PARDIS_LOCK_RANK entry"});
      continue;
    }
    auto trim = [](std::string s) {
      const std::size_t b = s.find_first_not_of(" \t");
      const std::size_t e = s.find_last_not_of(" \t");
      return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
    };
    RankEntry entry;
    entry.name = trim(line.substr(open + 1, c1 - open - 1));
    entry.line = lineno;
    try {
      entry.value = std::stoi(trim(line.substr(c1 + 1, c2 - c1 - 1)));
    } catch (...) {
      diags.push_back({path, lineno, "rank-table-drift",
                       "PARDIS_LOCK_RANK value for " + entry.name +
                           " is not an integer"});
      continue;
    }
    if (entry.name.empty() || entry.name[0] != 'k') {
      diags.push_back({path, lineno, "rank-table-drift",
                       "rank name '" + entry.name +
                           "' does not follow the kName convention"});
      continue;
    }
    if (table.values.count(entry.name) != 0) {
      diags.push_back({path, lineno, "rank-table-drift",
                       "rank " + entry.name + " declared twice"});
      continue;
    }
    table.values[entry.name] = entry.value;
    table.entries.push_back(entry);
  }
  // Duplicate values break strict ordering: two same-valued mutexes can
  // never legally nest, silently.
  std::map<int, std::string> by_value;
  for (const RankEntry& e : table.entries) {
    const auto [it, fresh] = by_value.emplace(e.value, e.name);
    if (!fresh) {
      diags.push_back({path, e.line, "rank-table-drift",
                       "rank " + e.name + " reuses value " +
                           std::to_string(e.value) + " already held by " +
                           it->second});
    }
  }
  return table;
}

Result analyze(const std::vector<Source>& sources,
               const std::string& ranks_path, const std::string& ranks_text,
               const std::vector<Source>& docs, const Options& options) {
  Result result;
  std::vector<Diagnostic> raw;  // pre-suppression findings

  const RankTable table = parse_rank_table(ranks_path, ranks_text, raw);

  Program prog;
  for (const Source& src : sources) {
    parse_file(prog, options, src.first, src.second);
    ++result.files_scanned;
  }
  for (const Program::PendingPush& p : prog.pending_pushes) {
    if (prog.thread_vec_vars.count(p.recv) != 0) {
      prog.entries.push_back(p.entry);
    }
  }
  for (std::size_t i = 0; i < prog.fns.size(); ++i) {
    prog.by_name.emplace(prog.fns[i].name, i);
    result.call_edges += static_cast<int>(prog.fns[i].calls.size());
  }
  result.functions_indexed = static_cast<int>(prog.fns.size());

  auto qual = [](const Function& f) {
    return f.cls.empty() ? f.name : f.cls + "::" + f.name;
  };

  // mutex variable -> rank name, in the context of one function.
  auto resolve_rank = [&](const Function& fn,
                          const std::string& var) -> std::string {
    const auto local = fn.local_mutex.find(var);
    if (local != fn.local_mutex.end()) return local->second;
    auto member = prog.member_rank.find({fn.cls, var});
    if (member != prog.member_rank.end()) return member->second;
    member = prog.member_rank.find({"", var});
    if (member != prog.member_rank.end()) return member->second;
    // Unique-across-the-tree fallback: `state_->mu` resolves when only one
    // class declares a RankedMutex named `mu`.
    std::set<std::string> ranks;
    const auto [b, e] = prog.var_rank.equal_range(var);
    for (auto it = b; it != e; ++it) ranks.insert(it->second);
    return ranks.size() == 1 ? *ranks.begin() : std::string();
  };

  auto rank_label = [&](const std::string& rank) {
    const auto it = table.values.find(rank);
    if (it == table.values.end()) return rank;
    return rank + "(" + std::to_string(it->second) + ")";
  };
  auto held_label = [&](const Function& fn,
                        const std::vector<std::string>& vars) {
    std::string out;
    for (const std::string& v : vars) {
      if (!out.empty()) out += ", ";
      const std::string r = resolve_rank(fn, v);
      out += r.empty() ? "'" + v + "'" : rank_label(r);
    }
    return out;
  };

  // Call-site -> candidate function indices.
  auto resolve_call = [&](const Function& caller,
                          const CallSite& cs) -> std::vector<std::size_t> {
    const auto [b, e] = prog.by_name.equal_range(cs.callee);
    if (b == e) return {};
    std::vector<std::size_t> all;
    for (auto it = b; it != e; ++it) all.push_back(it->second);
    auto with_cls = [&](const std::string& cls) {
      std::vector<std::size_t> out;
      for (std::size_t idx : all) {
        if (prog.fns[idx].cls == cls) out.push_back(idx);
      }
      return out;
    };
    if (!cs.cls_hint.empty() && cs.cls_hint != "std") {
      auto filtered = with_cls(cs.cls_hint);
      if (!filtered.empty()) return filtered;
    }
    const bool generic = options.generic_names.count(cs.callee) != 0;
    if (!cs.recv.empty()) {
      // Member call: a receiver hint narrows; generic names *require* it.
      std::vector<std::size_t> hinted;
      for (std::size_t idx : all) {
        if (hint_matches(cs.recv, prog.fns[idx].cls)) hinted.push_back(idx);
      }
      if (!hinted.empty()) return hinted;
      if (generic) return {};
      // No hint matched: only resolve when the name is unambiguous (all
      // candidates live in one class).  `it->second->set_fault_rate(r)` on a
      // governor must not resolve into Fabric::set_fault_rate just because
      // the names collide — that fabricates self-cycles.
      std::vector<std::size_t> members;
      std::set<std::string> classes;
      for (std::size_t idx : all) {
        if (!prog.fns[idx].cls.empty()) {
          members.push_back(idx);
          classes.insert(prog.fns[idx].cls);
        }
      }
      if (classes.size() == 1) return members;
      return {};
    }
    // Free call: same class (implicit this) or a free function.
    std::vector<std::size_t> local;
    for (std::size_t idx : all) {
      if (prog.fns[idx].cls == caller.cls || prog.fns[idx].cls.empty()) {
        local.push_back(idx);
      }
    }
    if (generic) {
      auto same = with_cls(caller.cls);
      return same;
    }
    return local;
  };

  // Pre-resolve every call site once.
  std::vector<std::vector<std::vector<std::size_t>>> cands(prog.fns.size());
  for (std::size_t i = 0; i < prog.fns.size(); ++i) {
    cands[i].reserve(prog.fns[i].calls.size());
    for (const CallSite& cs : prog.fns[i].calls) {
      cands[i].push_back(resolve_call(prog.fns[i], cs));
    }
  }

  // ---- blocking-depth relaxation -------------------------------------------
  for (Function& f : prog.fns) {
    for (const BlockSite& b : f.blocks) {
      if (f.depth_general < 0) {
        f.depth_general = 0;
        f.witness_general =
            "'" + b.what + "' (" + f.file + ":" + std::to_string(b.line) +
            ")";
      }
      if (f.has_lock_param && b.under_param && f.depth_param_held < 0) {
        f.depth_param_held = 0;
        f.witness_param = "'" + b.what + "' (" + f.file + ":" +
                          std::to_string(b.line) + ")";
      }
    }
  }
  for (int iter = 0; iter < options.max_hops; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < prog.fns.size(); ++i) {
      Function& f = prog.fns[i];
      for (std::size_t c = 0; c < f.calls.size(); ++c) {
        const CallSite& cs = f.calls[c];
        for (std::size_t idx : cands[i][c]) {
          const Function& callee = prog.fns[idx];
          if (callee.depth_general >= 0) {
            const int d = callee.depth_general + 1;
            if (f.depth_general < 0 || d < f.depth_general) {
              f.depth_general = d;
              f.witness_general =
                  qual(callee) + " -> " + callee.witness_general;
              changed = true;
            }
          }
          if (f.has_lock_param && cs.under_param) {
            const bool via_param =
                cs.passes_param && callee.has_lock_param;
            const int cd = via_param ? callee.depth_param_held
                                     : callee.depth_general;
            if (cd >= 0) {
              const int d = cd + 1;
              if (f.depth_param_held < 0 || d < f.depth_param_held) {
                f.depth_param_held = d;
                f.witness_param =
                    qual(callee) + " -> " +
                    (via_param ? callee.witness_param
                               : callee.witness_general);
                changed = true;
              }
            }
          }
        }
      }
    }
    if (!changed) break;
  }

  // ---- transitive acquires (for cross-function lock-order edges) -----------
  // fn index -> rank -> (hops below the call site, witness chain)
  std::vector<std::map<std::string, std::pair<int, std::string>>> acq(
      prog.fns.size());
  for (std::size_t i = 0; i < prog.fns.size(); ++i) {
    const Function& f = prog.fns[i];
    for (const AcquireSite& a : f.acquires) {
      for (const std::string& v : a.vars) {
        const std::string r = resolve_rank(f, v);
        if (r.empty()) continue;
        acq[i].emplace(r, std::make_pair(0, qual(f) + " (" + f.file + ":" +
                                                std::to_string(a.line) +
                                                ")"));
      }
    }
  }
  for (int iter = 0; iter + 1 < options.max_hops; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < prog.fns.size(); ++i) {
      for (std::size_t c = 0; c < prog.fns[i].calls.size(); ++c) {
        const CallSite& cs = prog.fns[i].calls[c];
        for (std::size_t idx : cands[i][c]) {
          // Pump-style handoff: passing our held unique_lock into a
          // `unique_lock&` parameter delegates the unlock window to the
          // callee — its acquires are made with our lock released, so they
          // must not propagate as held-while-acquired nestings.
          if (cs.passes_held_guard && prog.fns[idx].has_lock_param) continue;
          for (const auto& [rank, hw] : acq[idx]) {
            const int hops = hw.first + 1;
            if (hops + 1 > options.max_hops) continue;
            const auto it = acq[i].find(rank);
            if (it == acq[i].end() || it->second.first > hops) {
              // The hop-0 witness already names the acquiring function.
              acq[i][rank] = {hops, hw.first == 0
                                        ? hw.second
                                        : qual(prog.fns[idx]) + " -> " +
                                              hw.second};
              changed = true;
            }
          }
        }
      }
    }
    if (!changed) break;
  }

  // ---- acquired-before edges -----------------------------------------------
  struct Edge {
    std::string from, to, file, witness;
    int line = 0;
  };
  std::vector<Edge> edges;
  std::set<std::string> edge_seen;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const std::string& file, int line,
                      const std::string& witness) {
    if (from.empty() || to.empty()) return;
    if (edge_seen.insert(from + "->" + to + "@" + file + ":" +
                         std::to_string(line))
            .second) {
      edges.push_back({from, to, file, witness, line});
    }
  };
  for (std::size_t i = 0; i < prog.fns.size(); ++i) {
    const Function& f = prog.fns[i];
    for (const AcquireSite& a : f.acquires) {
      for (const std::string& hv : a.held_vars) {
        for (const std::string& av : a.vars) {
          add_edge(resolve_rank(f, hv), resolve_rank(f, av), f.file, a.line,
                   "nested guards in " + qual(f));
        }
      }
    }
    for (std::size_t c = 0; c < f.calls.size(); ++c) {
      const CallSite& cs = f.calls[c];
      if (cs.held_vars.empty()) continue;
      for (std::size_t idx : cands[i][c]) {
        if (cs.passes_held_guard && prog.fns[idx].has_lock_param) continue;
        for (const auto& [rank, hw] : acq[idx]) {
          for (const std::string& hv : cs.held_vars) {
            add_edge(resolve_rank(f, hv), rank, f.file, cs.line,
                     "call chain " + qual(f) + " -> " + hw.second);
          }
        }
      }
    }
  }

  // ---- rule: lock-order-inversion ------------------------------------------
  for (const Edge& e : edges) {
    const auto fit = table.values.find(e.from);
    const auto tit = table.values.find(e.to);
    if (fit == table.values.end() || tit == table.values.end()) continue;
    if (fit->second >= tit->second) {
      raw.push_back(
          {e.file, e.line, "lock-order-inversion",
           "acquires " + rank_label(e.to) + " while holding " +
               rank_label(e.from) +
               "; declared order requires strictly increasing ranks "
               "(lock_ranks.def) [" +
               e.witness + "]"});
    }
  }

  // ---- rule: lock-order-cycle ----------------------------------------------
  {
    std::map<std::string, std::set<std::string>> adj;
    std::map<std::string, std::pair<std::string, int>> edge_loc;
    for (const Edge& e : edges) {
      adj[e.from].insert(e.to);
      edge_loc.emplace(e.from + "->" + e.to,
                       std::make_pair(e.file, e.line));
    }
    std::set<std::string> reported;
    std::vector<std::string> stack;
    std::set<std::string> on_stack;
    std::set<std::string> done;
    std::function<void(const std::string&)> dfs =
        [&](const std::string& node) {
          stack.push_back(node);
          on_stack.insert(node);
          for (const std::string& next : adj[node]) {
            if (on_stack.count(next) != 0) {
              // Extract the cycle next -> ... -> node -> next.
              std::vector<std::string> cycle;
              for (auto it = std::find(stack.begin(), stack.end(), next);
                   it != stack.end(); ++it) {
                cycle.push_back(*it);
              }
              // Canonical rotation so each cycle reports once.
              const auto min_it =
                  std::min_element(cycle.begin(), cycle.end());
              std::rotate(cycle.begin(), min_it, cycle.end());
              std::string desc;
              for (const std::string& n : cycle) desc += n + " -> ";
              desc += cycle.front();
              if (reported.insert(desc).second) {
                // Anchor at the back edge (node -> next): that is the
                // acquisition that closes the cycle.
                const auto loc = edge_loc.find(node + "->" + next);
                const std::string file =
                    loc != edge_loc.end() ? loc->second.first : ranks_path;
                const int line =
                    loc != edge_loc.end() ? loc->second.second : 1;
                raw.push_back({file, line, "lock-order-cycle",
                               "cycle in the observed acquired-before "
                               "graph: " +
                                   desc});
              }
            } else if (done.count(next) == 0) {
              dfs(next);
            }
          }
          on_stack.erase(node);
          stack.pop_back();
          done.insert(node);
        };
    for (const auto& [node, targets] : adj) {
      (void)targets;
      if (done.count(node) == 0) dfs(node);
    }
  }

  // ---- rule: rank-table-drift (code + docs cross-check) --------------------
  for (const auto& [name, loc] : prog.used_ranks) {
    if (!table.known(name)) {
      raw.push_back({loc.first, loc.second, "rank-table-drift",
                     "LockRank::" + name +
                         " is used here but not declared in lock_ranks.def"});
    }
  }
  if (options.check_unused_ranks) {
    for (const RankEntry& e : table.entries) {
      if (prog.used_ranks.count(e.name) == 0) {
        raw.push_back({ranks_path, e.line, "rank-table-drift",
                       "rank " + e.name +
                           " is declared but no RankedMutex in the scanned "
                           "tree uses it"});
      }
    }
  }
  for (const Source& doc : docs) {
    std::map<std::string, std::pair<int, int>> rows;  // name -> (value, line)
    std::istringstream in(doc.second);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] != '|') continue;
      const std::size_t tick = line.find('`');
      if (tick == std::string::npos || tick + 1 >= line.size() ||
          line[tick + 1] != 'k') {
        continue;
      }
      const std::size_t tick2 = line.find('`', tick + 1);
      if (tick2 == std::string::npos) continue;
      const std::string name = line.substr(tick + 1, tick2 - tick - 1);
      const std::size_t bar = line.find('|', tick2);
      if (bar == std::string::npos) continue;
      try {
        const int value = std::stoi(line.substr(bar + 1));
        rows.emplace(name, std::make_pair(value, lineno));
      } catch (...) {
        continue;
      }
    }
    if (rows.empty()) continue;  // no rank table in this document
    for (const auto& [name, vl] : rows) {
      const auto it = table.values.find(name);
      if (it == table.values.end()) {
        raw.push_back({doc.first, vl.second, "rank-table-drift",
                       "documented rank " + name +
                           " does not exist in lock_ranks.def"});
      } else if (it->second != vl.first) {
        raw.push_back({doc.first, vl.second, "rank-table-drift",
                       "documented value " + std::to_string(vl.first) +
                           " for " + name + " disagrees with lock_ranks.def "
                           "(" +
                           std::to_string(it->second) + ")"});
      }
    }
    for (const RankEntry& e : table.entries) {
      if (rows.count(e.name) == 0) {
        raw.push_back({doc.first, 1, "rank-table-drift",
                       "rank " + e.name +
                           " (lock_ranks.def) is missing from the rank "
                           "table in " +
                           doc.first});
      }
    }
  }

  // ---- rule: blocking-under-lock-transitive --------------------------------
  for (std::size_t i = 0; i < prog.fns.size(); ++i) {
    const Function& f = prog.fns[i];
    for (const BlockSite& b : f.blocks) {
      if (b.held_vars.empty()) continue;
      raw.push_back({f.file, b.line, "blocking-under-lock-transitive",
                     "blocking '" + b.what + "' while holding " +
                         held_label(f, b.held_vars) +
                         "; release the lock first"});
    }
    for (std::size_t c = 0; c < f.calls.size(); ++c) {
      const CallSite& cs = f.calls[c];
      if (cs.held_vars.empty()) continue;
      for (std::size_t idx : cands[i][c]) {
        const Function& callee = prog.fns[idx];
        if (callee.has_lock_param && cs.passes_held_guard) {
          // The callee manages the caller's lock (pump-style handoff): it
          // only counts when it blocks with that lock still held, or when
          // the caller holds *other* locks over a generally-blocking call.
          if (callee.depth_param_held >= 0 &&
              callee.depth_param_held + 1 <= options.max_hops) {
            raw.push_back(
                {f.file, cs.line, "blocking-under-lock-transitive",
                 "call to '" + cs.callee + "' blocks " +
                     std::to_string(callee.depth_param_held + 1) +
                     " hop(s) down without releasing the passed lock (" +
                     held_label(f, cs.held_vars) + "): " + cs.callee +
                     " -> " + callee.witness_param});
          }
          std::vector<std::string> other;
          for (const std::string& v : cs.held_vars) {
            if (std::find(cs.passed_mutex_vars.begin(),
                          cs.passed_mutex_vars.end(),
                          v) == cs.passed_mutex_vars.end()) {
              other.push_back(v);
            }
          }
          if (!other.empty() && callee.depth_general >= 0 &&
              callee.depth_general + 1 <= options.max_hops) {
            raw.push_back(
                {f.file, cs.line, "blocking-under-lock-transitive",
                 "call to '" + cs.callee + "' reaches blocking " +
                     std::to_string(callee.depth_general + 1) +
                     " hop(s) down while holding " + held_label(f, other) +
                     ": " + cs.callee + " -> " + callee.witness_general});
          }
        } else if (callee.depth_general >= 0 &&
                   callee.depth_general + 1 <= options.max_hops) {
          raw.push_back(
              {f.file, cs.line, "blocking-under-lock-transitive",
               "call to '" + cs.callee + "' reaches blocking " +
                   std::to_string(callee.depth_general + 1) +
                   " hop(s) down while holding " +
                   held_label(f, cs.held_vars) + ": " + cs.callee + " -> " +
                   callee.witness_general});
        }
      }
    }
  }

  // ---- rule: callback-exception-escape -------------------------------------
  {
    std::function<bool(const std::string&, const std::string&, int)>
        fn_passes_name = [&](const std::string& name,
                             const std::string& cls_pref, int d) -> bool {
      const auto [b, e] = prog.by_name.equal_range(name);
      if (b == e) return false;  // unresolved entry: conservatively flag
      std::vector<std::size_t> all;
      for (auto it = b; it != e; ++it) all.push_back(it->second);
      std::vector<std::size_t> preferred;
      for (std::size_t idx : all) {
        if (prog.fns[idx].cls == cls_pref) preferred.push_back(idx);
      }
      const std::vector<std::size_t>& picked =
          preferred.empty() ? all : preferred;
      for (std::size_t idx : picked) {
        const Function& f = prog.fns[idx];
        if (f.is_noexcept || f.has_catch_all) continue;
        if (d < 3 && !f.delegate.empty() &&
            fn_passes_name(f.delegate, f.cls, d + 1)) {
          continue;
        }
        return false;
      }
      return true;
    };
    for (const EntrySite& e : prog.entries) {
      bool ok;
      if (e.is_lambda) {
        ok = e.lam_noexcept || e.lam_catch_all || e.lam_trivial;
        if (!ok && !e.lam_delegate.empty()) {
          ok = fn_passes_name(e.lam_delegate, e.enclosing_cls, 0);
        }
      } else {
        ok = fn_passes_name(e.target,
                            e.target_cls.empty() ? e.enclosing_cls
                                                 : e.target_cls,
                            0);
      }
      if (!ok) {
        raw.push_back(
            {e.file, e.line, "callback-exception-escape",
             "thread entry '" + e.desc +
                 "' can leak an exception across the thread boundary "
                 "(std::terminate tears down the rank); make it noexcept "
                 "or wrap the body in try { ... } catch (...)"});
      }
    }
  }

  // ---- rule: wait-without-predicate ----------------------------------------
  for (const WaitSite& w : prog.waits) {
    const bool cv_like = lower(w.recv).find("cv") != std::string::npos ||
                         prog.cv_vars.count(w.recv) != 0;
    if (!cv_like) continue;
    const int required = w.method == "wait" ? 2 : 3;
    if (w.argc < required) {
      raw.push_back({w.file, w.line, "wait-without-predicate",
                     "'" + w.recv + "." + w.method +
                         "' has no predicate: spurious wakeups and missed "
                         "notifies go unnoticed; pass the condition as a "
                         "lambda"});
    }
  }

  // ---- suppression filtering + missing-reason ------------------------------
  for (const auto& [path, lexed] : prog.lexed) {
    for (Diagnostic& d : lint::missing_reason_diags(path, lexed)) {
      raw.push_back(std::move(d));
    }
    for (lint::Suppression& s : lint::collect_suppressions(path, lexed)) {
      result.suppressions.push_back(std::move(s));
    }
  }
  std::set<std::string> seen;
  for (Diagnostic& d : raw) {
    const auto lx = prog.lexed.find(d.file);
    if (lx != prog.lexed.end() && d.rule != "missing-reason" &&
        lint::allow_covers(lx->second, d.line, d.rule)) {
      continue;
    }
    if (seen.insert(d.file + ":" + std::to_string(d.line) + ":" + d.rule)
            .second) {
      result.findings.push_back(std::move(d));
    }
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  std::sort(result.suppressions.begin(), result.suppressions.end(),
            [](const Suppression& a, const Suppression& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return result;
}

std::string to_json(const Result& result) {
  auto esc = [](const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::string json = "{\n  \"files_scanned\": " +
                     std::to_string(result.files_scanned) +
                     ",\n  \"functions_indexed\": " +
                     std::to_string(result.functions_indexed) +
                     ",\n  \"call_edges\": " +
                     std::to_string(result.call_edges) +
                     ",\n  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Diagnostic& d = result.findings[i];
    json += (i == 0 ? "\n" : ",\n");
    json += "    {\"file\": \"" + esc(d.file) + "\", \"line\": " +
            std::to_string(d.line) + ", \"rule\": \"" + esc(d.rule) +
            "\", \"message\": \"" + esc(d.message) + "\"}";
  }
  json += result.findings.empty() ? "],\n" : "\n  ],\n";
  json += "  \"suppressions\": [";
  for (std::size_t i = 0; i < result.suppressions.size(); ++i) {
    const Suppression& s = result.suppressions[i];
    json += (i == 0 ? "\n" : ",\n");
    json += "    {\"file\": \"" + esc(s.file) + "\", \"line\": " +
            std::to_string(s.line) + ", \"rule\": \"" + esc(s.rule) +
            "\", \"reason\": \"" + esc(s.reason) + "\"}";
  }
  json += result.suppressions.empty() ? "]\n" : "\n  ]\n";
  json += "}\n";
  return json;
}

}  // namespace pardis::analyze
