// pardis-analyze: whole-program call-graph analysis for lock order,
// blocking regions and thread-boundary exception safety.
//
// Where pardis-lint is a line-local scanner, pardis-analyze tokenizes the
// whole tree (same shared lexer), builds a per-TU function index plus a
// cross-TU call graph, and models lock regions: every RankedMutex guard
// scope becomes a node in an acquired-before graph.  Four rules ride on
// that model:
//
//   lock-order-inversion   an observed nesting (rank A held while rank B is
//                          acquired, possibly through a call chain) whose
//                          declared values are not strictly increasing.
//   lock-order-cycle       a cycle in the observed acquired-before graph.
//   rank-table-drift       the declared LockRank table (lock_ranks.def)
//                          disagrees with itself (duplicate values), with
//                          the code (rank declared but never used / used
//                          but never declared), or with the documented
//                          table in docs/concurrency.md.
//   blocking-under-lock-transitive
//                          a blocking operation (socket ops, Future::get,
//                          condvar waits, admin_fetch...) reachable from a
//                          guard scope within --max-hops call-graph hops.
//   callback-exception-escape
//                          a thread entry point (reactor loop, worker-pool
//                          job, detached thread body) that is neither
//                          noexcept nor wrapped in a catch-all: an escaping
//                          exception calls std::terminate and tears down
//                          the rank.
//   wait-without-predicate a condition-variable wait with no predicate
//                          argument (spurious-wakeup hazard).
//
// Suppressions use the shared `// pardis-lint: allow(rule: reason)` syntax;
// bare allows are missing-reason findings, exactly as in pardis-lint.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace pardis::analyze {

using lint::Diagnostic;
using lint::Suppression;

struct Options {
  /// Maximum call-graph depth for the transitive walks.  1 = only calls
  /// textually under the guard; N lets the blocking primitive (or nested
  /// acquire) sit N-1 frames below the called function.
  int max_hops = 3;

  /// Report ranks declared in lock_ranks.def but never used by any scanned
  /// RankedMutex.  On for whole-tree runs; fixture tests (which scan a few
  /// files) turn it off.
  bool check_unused_ranks = true;

  /// Leaf operations that suspend the calling thread.
  std::set<std::string> blocking_primitives{
      "send",       "recv",        "recv_or_throw",
      "accept",     "accept4",     "connect",
      "transmit",   "sleep_for",   "sleep_until",
      "precise_sleep_until",       "admin_fetch",
      "write",      "read",        "poll",
      "epoll_wait", "select",      "join",
  };

  /// Method names too common to resolve by name alone: a member call only
  /// resolves to a class's method when the receiver expression hints at the
  /// class (e.g. `reply_future_.get()` -> Future::get).  Free calls to
  /// these names never resolve.
  std::set<std::string> generic_names{
      "get",  "put",   "run",   "close",  "open",  "start",   "stop",
      "size", "reset", "clear", "post",   "flush", "next",    "begin",
      "end",  "count", "value", "insert", "erase", "push",    "pop",
      "add",  "set",   "wait",  "record", "find",  "reserve", "resize",
  };
};

/// One rank parsed from lock_ranks.def.
struct RankEntry {
  std::string name;
  int value = 0;
  int line = 0;  // line in the .def file
};

struct RankTable {
  std::vector<RankEntry> entries;
  std::map<std::string, int> values;  // name -> value

  bool known(const std::string& name) const {
    return values.count(name) != 0;
  }
};

/// Parses PARDIS_LOCK_RANK(name, value, "desc") entries.  Malformed lines
/// become rank-table-drift diagnostics.
RankTable parse_rank_table(const std::string& path, const std::string& text,
                           std::vector<Diagnostic>& diags);

/// One source file: (path, contents).
using Source = std::pair<std::string, std::string>;

struct Result {
  std::vector<Diagnostic> findings;       // after suppression filtering
  std::vector<Suppression> suppressions;  // every allow() in the inputs
  int files_scanned = 0;
  int functions_indexed = 0;
  int call_edges = 0;
};

/// Whole-program analysis over the given sources.  `ranks_path`/`ranks_text`
/// is the lock_ranks.def table; `docs` are optional markdown files whose
/// `| \`kRank\` | value |` tables are cross-checked against it.
Result analyze(const std::vector<Source>& sources,
               const std::string& ranks_path, const std::string& ranks_text,
               const std::vector<Source>& docs, const Options& options = {});

/// All rule names, for --rules.
const std::vector<std::string>& rule_names();

/// JSON findings report (findings + suppressions + counters) for CI.
std::string to_json(const Result& result);

}  // namespace pardis::analyze
