// pardis-lint: repository-specific concurrency lints.
//
// A lightweight token-stream scanner (same style as the IDL lexer: strip
// comments/strings, keep (text, line) tokens) that enforces the repo's
// concurrency conventions over C++ sources:
//
//   relaxed-order        std::memory_order_relaxed outside the whitelisted
//                        counter files (docs/concurrency.md lists them).
//   raw-mutex            a std::mutex (or cousin) outside common/ — code
//                        must use pardis::common::RankedMutex so the lock
//                        rank checker sees every lock.
//   blocking-under-lock  a blocking net/runtime call (send, recv, accept,
//                        connect, transmit, sleep_*) made while a
//                        lock_guard/unique_lock/scoped_lock is live.
//   raw-new-delete       new/delete outside an immediate shared_ptr /
//                        unique_ptr wrapper (RAII discipline).
//   unframed-send        a direct Stream::send/sendv call in the transfer
//                        layer outside the framing helpers — every
//                        transfer-layer frame must go through
//                        send_frame/send_mux_frame/send_framed (framing.hpp)
//                        so the request-ID mux prologue cannot be bypassed.
//   staging-copy-in-tx   a memcpy/memmove in the transport or io layer —
//                        the tx path is zero-copy: payloads ride to writev
//                        as io::GatherList segments, never through an
//                        ad-hoc staging buffer.  The GatherList builder
//                        itself is whitelisted; the short-message fallback
//                        carries a reasoned suppression.
//   missing-reason       a suppression written as bare `allow(rule)` — every
//                        suppression must carry a reason.
//
// A diagnostic can be suppressed with `// pardis-lint: allow(<rule>:
// <reason>)` on the same line or the line above.  The reason is mandatory.

#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"

namespace pardis::lint {

struct Options {
  /// Path suffixes where memory_order_relaxed is allowed (monotonic
  /// counters and flags whose readers tolerate staleness).
  std::vector<std::string> relaxed_whitelist{
      "pardis/obs/metrics.hpp",    "pardis/obs/trace.hpp",
      "pardis/net/link.hpp",       "pardis/net/link.cpp",
      "pardis/net/connection.hpp", "pardis/net/connection.cpp",
      "pardis/common/log.cpp",
  };
  /// Path fragments identifying files allowed to use raw std::mutex (the
  /// RankedMutex implementation itself lives here).
  std::vector<std::string> mutex_whitelist{"pardis/common/"};
  /// Path fragments the unframed-send rule polices.
  std::vector<std::string> framed_paths{"pardis/transfer/"};
  /// Path suffixes allowed to call Stream::send directly (the framing
  /// layer itself).
  std::vector<std::string> framing_whitelist{"pardis/transfer/framing.hpp"};
  /// Path fragments the staging-copy-in-tx rule polices: send paths that
  /// must hand payloads to writev as gather segments, not copies.
  std::vector<std::string> tx_paths{"pardis/transport/", "pardis/io/"};
  /// Path suffixes exempt from staging-copy-in-tx (the GatherList builder
  /// itself: flatten() and padding are the sanctioned copy sites).
  std::vector<std::string> gather_whitelist{"pardis/io/gather.hpp",
                                            "pardis/io/gather.cpp"};
};

/// All rule names, for --rules and suppression validation.
const std::vector<std::string>& rule_names();

/// Scans one translation unit.  `path` is used for diagnostics and for
/// whitelist matching (suffix/fragment match), `text` is the source.
std::vector<Diagnostic> scan_source(const std::string& path,
                                    const std::string& text,
                                    const Options& options = {});

/// All suppression directives in one source, for --list-suppressions.
std::vector<Suppression> list_suppressions(const std::string& path,
                                           const std::string& text);

}  // namespace pardis::lint
