// Shared token-stream front end for pardis-lint and pardis-analyze.
//
// Mirrors the IDL lexer's shape: a flat vector of (text, line) tokens with
// comments, string/char literals and preprocessor lines stripped.  C++ is
// richer than IDL, but the analysis rules only need identifiers and
// structural punctuation; `::` is fused into one token so qualified names
// are three tokens (`std`, `::`, `mutex`).
//
// Suppression directives survive lexing: `// pardis-lint: allow(rule:
// reason)` attaches an Allow to its line.  The reason is mandatory — both
// tools turn a bare `allow(rule)` into a `missing-reason` finding, so every
// suppression in the tree documents why the pattern is safe.

#pragma once

#include <map>
#include <string>
#include <vector>

namespace pardis::lint {

struct Token {
  std::string text;
  int line = 0;
  bool is_ident = false;
};

/// One `allow(rule: reason)` directive.  `reason` is empty for the
/// (erroneous) bare `allow(rule)` form.
struct Allow {
  std::string rule;
  std::string reason;
};

struct LexOutput {
  std::vector<Token> tokens;
  // line -> suppression directives written in a comment on that line.
  std::map<int, std::vector<Allow>> allows;
};

LexOutput lex(const std::string& src);

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// "file:line: [rule] message" — the clickable diagnostic format.
std::string format(const Diagnostic& d);

/// True when a reasoned `allow(rule: ...)` on `line` or the line above
/// covers the diagnostic.  Bare (reason-less) allows never suppress.
bool allow_covers(const LexOutput& lexed, int line, const std::string& rule);

/// One `missing-reason` diagnostic per bare `allow(rule)` in the file.
std::vector<Diagnostic> missing_reason_diags(const std::string& path,
                                             const LexOutput& lexed);

/// A suppression with its location, for the --list-suppressions inventory.
struct Suppression {
  std::string file;
  int line = 0;
  std::string rule;
  std::string reason;  // empty = bare allow (itself a finding)
};

std::vector<Suppression> collect_suppressions(const std::string& path,
                                              const LexOutput& lexed);

// ---- shared path helpers ---------------------------------------------------

bool path_matches_suffix(const std::string& path,
                         const std::vector<std::string>& suffixes);

bool path_contains(const std::string& path,
                   const std::vector<std::string>& fragments);

/// Index of the matching `<` for the `>` at `i`, or npos.
std::size_t match_template_open(const std::vector<Token>& toks, std::size_t i);

}  // namespace pardis::lint
