// pardis-lint CLI: scans C++ sources for the repo's concurrency hazards.
//
//   pardis-lint <file-or-dir>...   scan, print file:line diagnostics,
//                                  exit 1 when anything fires
//   pardis-lint --rules            list the rule names
//   pardis-lint --list-suppressions <file-or-dir>...
//                                  inventory every allow(rule: reason)
//                                  directive (suppression debt audit)

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::vector<fs::path> collect(const std::vector<std::string>& args) {
  std::vector<fs::path> files;
  for (const std::string& arg : args) {
    const fs::path p(arg);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && is_cpp_source(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else {
      std::cerr << "pardis-lint: no such file or directory: " << arg << "\n";
      std::exit(2);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr << "usage: pardis-lint <file-or-dir>... | --rules\n";
    return 2;
  }
  if (args.size() == 1 && args[0] == "--rules") {
    for (const std::string& rule : pardis::lint::rule_names()) {
      std::cout << rule << "\n";
    }
    return 0;
  }
  bool list_suppressions = false;
  if (!args.empty() && args[0] == "--list-suppressions") {
    list_suppressions = true;
    args.erase(args.begin());
    if (args.empty()) {
      std::cerr << "usage: pardis-lint --list-suppressions <file-or-dir>...\n";
      return 2;
    }
  }

  const pardis::lint::Options options;
  std::size_t count = 0;
  std::size_t files = 0;
  for (const fs::path& file : collect(args)) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "pardis-lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    ++files;
    if (list_suppressions) {
      for (const auto& s : pardis::lint::list_suppressions(
               file.generic_string(), buf.str())) {
        std::cout << s.file << ":" << s.line << ": allow(" << s.rule << "): "
                  << (s.reason.empty() ? "<missing reason>" : s.reason)
                  << "\n";
        ++count;
      }
      continue;
    }
    for (const auto& d : pardis::lint::scan_source(file.generic_string(),
                                                   buf.str(), options)) {
      std::cout << pardis::lint::format(d) << "\n";
      ++count;
    }
  }
  if (list_suppressions) {
    std::cerr << "pardis-lint: " << files << " files, " << count
              << " suppression(s)\n";
    return 0;
  }
  std::cerr << "pardis-lint: " << files << " files, " << count
            << " finding(s)\n";
  return count == 0 ? 0 : 1;
}
