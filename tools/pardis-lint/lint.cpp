#include "lint.hpp"

#include <algorithm>
#include <set>

#include "lexer.hpp"

namespace pardis::lint {
namespace {

const std::set<std::string>& blocking_calls() {
  // Calls that block on the simulated wire or wall clock: making one while
  // holding a lock serializes unrelated traffic and risks deadlock against
  // the link arbitration.  cv waits are excluded (they release the lock).
  static const std::set<std::string> kCalls{
      "send",        "recv",        "recv_or_throw",
      "accept",      "connect",     "transmit",
      "sleep_for",   "sleep_until", "precise_sleep_until",
  };
  return kCalls;
}

const std::set<std::string>& guard_types() {
  static const std::set<std::string> kGuards{"lock_guard", "unique_lock",
                                             "scoped_lock"};
  return kGuards;
}

const std::set<std::string>& mutex_types() {
  static const std::set<std::string> kMutexes{
      "mutex",       "recursive_mutex",       "timed_mutex",
      "shared_mutex", "recursive_timed_mutex", "shared_timed_mutex"};
  return kMutexes;
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kRules{
      "relaxed-order",      "raw-mutex",     "blocking-under-lock",
      "raw-new-delete",     "unframed-send", "staging-copy-in-tx",
      "missing-reason"};
  return kRules;
}

std::vector<Suppression> list_suppressions(const std::string& path,
                                           const std::string& text) {
  return collect_suppressions(path, lex(text));
}

std::vector<Diagnostic> scan_source(const std::string& path,
                                    const std::string& text,
                                    const Options& options) {
  const LexOutput lexed = lex(text);
  const std::vector<Token>& toks = lexed.tokens;

  // A suppression only counts when it carries a reason; bare allows are
  // themselves findings (missing-reason) and suppress nothing.
  std::vector<Diagnostic> diags = missing_reason_diags(path, lexed);
  auto report = [&](int line, const std::string& rule,
                    const std::string& message) {
    if (allow_covers(lexed, line, rule)) return;
    diags.push_back({path, line, rule, message});
  };

  const bool relaxed_ok =
      path_matches_suffix(path, options.relaxed_whitelist);
  const bool raw_mutex_ok = path_contains(path, options.mutex_whitelist);
  const bool framed_send_checked =
      path_contains(path, options.framed_paths) &&
      !path_matches_suffix(path, options.framing_whitelist);
  const bool tx_copy_checked =
      path_contains(path, options.tx_paths) &&
      !path_matches_suffix(path, options.gather_whitelist);

  // Live lock-guard scopes for blocking-under-lock.
  struct Guard {
    int brace_depth;
    std::string var;
    bool held;
  };
  std::vector<Guard> guards;
  int brace_depth = 0;

  // Parenthesis contexts for raw-new-delete: true when the call being
  // entered is a shared_ptr/unique_ptr construction.
  std::vector<bool> paren_raii;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    auto next_text = [&](std::size_t k) -> const std::string& {
      static const std::string kEmpty;
      return i + k < toks.size() ? toks[i + k].text : kEmpty;
    };

    if (t.text == "{") ++brace_depth;
    if (t.text == "}") {
      --brace_depth;
      guards.erase(std::remove_if(guards.begin(), guards.end(),
                                  [&](const Guard& g) {
                                    return g.brace_depth > brace_depth;
                                  }),
                   guards.end());
    }

    // relaxed-order -----------------------------------------------------
    if (t.is_ident && t.text == "memory_order_relaxed" && !relaxed_ok) {
      report(t.line, "relaxed-order",
             "memory_order_relaxed outside the whitelisted counter files; "
             "use the default ordering or whitelist the file in "
             "docs/concurrency.md");
    }

    // raw-mutex ---------------------------------------------------------
    if (t.text == "std" && next_text(1) == "::" &&
        mutex_types().count(next_text(2)) != 0 && !raw_mutex_ok) {
      report(t.line, "raw-mutex",
             "raw std::" + next_text(2) +
                 " outside common/; use pardis::common::RankedMutex so the "
                 "lock-rank checker covers it");
    }

    // blocking-under-lock: guard tracking -------------------------------
    if (t.is_ident && guard_types().count(t.text) != 0) {
      if (next_text(1) == "<") {
        // Find the matching `>` then the declared variable name.
        int depth = 0;
        std::size_t j = i + 1;
        for (; j < toks.size(); ++j) {
          if (toks[j].text == "<") ++depth;
          if (toks[j].text == ">") {
            --depth;
            if (depth == 0) break;
          }
          if (toks[j].text == ";") break;
        }
        if (j < toks.size() && toks[j].text == ">" && j + 1 < toks.size() &&
            toks[j + 1].is_ident) {
          guards.push_back({brace_depth, toks[j + 1].text, true});
        }
      } else if (i + 2 < toks.size() && toks[i + 1].is_ident &&
                 toks[i + 2].text == "(") {
        // CTAD form: std::scoped_lock lock(mu);
        guards.push_back({brace_depth, toks[i + 1].text, true});
      }
    }
    // `var.unlock()` / `var.lock()` toggles the guard's held state.
    if (t.is_ident && next_text(1) == "." &&
        (next_text(2) == "unlock" || next_text(2) == "lock") &&
        next_text(3) == "(") {
      for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
        if (it->var == t.text) {
          it->held = next_text(2) == "lock";
          break;
        }
      }
    }
    // A blocking call while any guard is held.
    if (t.is_ident && blocking_calls().count(t.text) != 0 &&
        next_text(1) == "(" && i > 0 &&
        (toks[i - 1].text == "." ||
         (toks[i - 1].text == ">" && i > 1 && toks[i - 2].text == "-") ||
         toks[i - 1].text == "::" || toks[i - 1].text == ";" ||
         toks[i - 1].text == "{" || toks[i - 1].text == "}")) {
      const auto held = std::find_if(guards.begin(), guards.end(),
                                     [](const Guard& g) { return g.held; });
      if (held != guards.end()) {
        report(t.line, "blocking-under-lock",
               "blocking call '" + t.text + "' while lock guard '" +
                   held->var + "' is held; release the lock first "
                   "(see Pipe::send for the pattern)");
      }
    }

    // unframed-send ------------------------------------------------------
    // A member call `x.send(` / `x->send(` in the transfer layer bypasses
    // the request-ID framing helpers.  (The helpers in framing.hpp are the
    // whitelisted home of the real sends.)
    if (framed_send_checked && t.is_ident &&
        (t.text == "send" || t.text == "sendv") && next_text(1) == "(" &&
        i > 0 &&
        (toks[i - 1].text == "." ||
         (toks[i - 1].text == ">" && i > 1 && toks[i - 2].text == "-"))) {
      report(t.line, "unframed-send",
             "direct Stream::" + t.text +
                 " in the transfer layer; route the frame "
                 "through send_frame/send_mux_frame/send_framed "
                 "(pardis/transfer/framing.hpp) so the mux prologue and "
                 "credit accounting cannot be bypassed");
    }

    // staging-copy-in-tx -------------------------------------------------
    // A memcpy/memmove in the transport or io layer: the send path must
    // hand payload bytes to writev as io::GatherList segments.  Copies
    // belong only in the GatherList builder (whitelisted) or behind a
    // reasoned suppression (the short-message fallback).
    if (tx_copy_checked && t.is_ident &&
        (t.text == "memcpy" || t.text == "memmove") && next_text(1) == "(") {
      report(t.line, "staging-copy-in-tx",
             t.text +
                 " in a tx path; build the frame as io::GatherList "
                 "segments and let writev gather them (pardis/io/gather.hpp)"
                 " instead of copying into a staging buffer");
    }

    // raw-new-delete: paren context tracking ----------------------------
    if (t.text == "(") {
      bool raii = false;
      if (i > 0) {
        std::size_t k = i - 1;  // token before the `(`
        if (toks[k].text == ">") {
          const std::size_t open = match_template_open(toks, k);
          if (open != std::string::npos && open > 0) k = open - 1;
        }
        raii = toks[k].is_ident && (toks[k].text == "shared_ptr" ||
                                    toks[k].text == "unique_ptr");
      }
      paren_raii.push_back(raii);
    }
    if (t.text == ")" && !paren_raii.empty()) paren_raii.pop_back();

    if (t.text == "new" && t.is_ident) {
      const bool inside_raii =
          std::any_of(paren_raii.begin(), paren_raii.end(),
                      [](bool b) { return b; });
      if (!inside_raii) {
        report(t.line, "raw-new-delete",
               "raw 'new' outside an immediate shared_ptr/unique_ptr "
               "wrapper; use std::make_unique/make_shared or wrap the "
               "allocation");
      }
    }
    if (t.text == "delete" && t.is_ident) {
      const bool deleted_fn = i > 0 && toks[i - 1].text == "=";
      const bool operator_decl = i > 0 && toks[i - 1].text == "operator";
      if (!deleted_fn && !operator_decl) {
        report(t.line, "raw-new-delete",
               "raw 'delete'; ownership must live in a RAII wrapper");
      }
    }
  }
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  return diags;
}

}  // namespace pardis::lint
