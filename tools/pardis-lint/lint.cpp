#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace pardis::lint {
namespace {

// ---- token stream ----------------------------------------------------------
//
// Mirrors the IDL lexer's shape: a flat vector of (text, line) tokens with
// comments, string/char literals and preprocessor lines stripped.  C++ is
// richer than IDL, but the lint rules only need identifiers and structural
// punctuation; `::` is fused into one token so qualified names are three
// tokens (`std`, `::`, `mutex`).

struct Token {
  std::string text;
  int line = 0;
  bool is_ident = false;
};

struct LexOutput {
  std::vector<Token> tokens;
  // line -> rules suppressed by a `pardis-lint: allow(rule)` comment there.
  std::map<int, std::set<std::string>> allows;
};

void record_allow(LexOutput& out, const std::string& comment, int line) {
  const std::string marker = "pardis-lint: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(marker, pos)) != std::string::npos) {
    pos += marker.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string::npos) break;
    out.allows[line].insert(comment.substr(pos, close - pos));
    pos = close;
  }
}

LexOutput lex(const std::string& src) {
  LexOutput out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;  // only whitespace seen since the newline

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line (honoring backslash
    // continuations) so macro bodies and #includes don't trip rules.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Comments (keeping allow-directives).
    if (c == '/' && peek(1) == '/') {
      const std::size_t end = src.find('\n', i);
      const std::string body =
          src.substr(i, end == std::string::npos ? std::string::npos : end - i);
      record_allow(out, body, line);
      i = end == std::string::npos ? n : end;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j < n && !(src[j] == '*' && j + 1 < n && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      record_allow(out, src.substr(i, j - i), start_line);
      i = j < n ? j + 2 : n;
      continue;
    }
    // String / char literals (with escapes; raw strings unsupported — the
    // tree has none and the IDL-style lexer keeps to the same subset).
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;  // closing quote
      continue;
    }
    // Identifiers / keywords / numbers.
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) != 0 ||
                       src[j] == '_')) {
        ++j;
      }
      out.tokens.push_back({src.substr(i, j - i), line,
                            std::isdigit(static_cast<unsigned char>(c)) == 0});
      i = j;
      continue;
    }
    // `::` as one token; everything else char-by-char.
    if (c == ':' && peek(1) == ':') {
      out.tokens.push_back({"::", line, false});
      i += 2;
      continue;
    }
    out.tokens.push_back({std::string(1, c), line, false});
    ++i;
  }
  return out;
}

// ---- helpers ---------------------------------------------------------------

bool path_matches_suffix(const std::string& path,
                         const std::vector<std::string>& suffixes) {
  return std::any_of(suffixes.begin(), suffixes.end(),
                     [&](const std::string& s) {
                       return path.size() >= s.size() &&
                              path.compare(path.size() - s.size(), s.size(),
                                           s) == 0;
                     });
}

bool path_contains(const std::string& path,
                   const std::vector<std::string>& fragments) {
  return std::any_of(fragments.begin(), fragments.end(),
                     [&](const std::string& f) {
                       return path.find(f) != std::string::npos;
                     });
}

/// Index of the matching `<` for the `>` at `i`, or npos.
std::size_t match_template_open(const std::vector<Token>& toks,
                                std::size_t i) {
  int depth = 0;
  for (std::size_t j = i + 1; j-- > 0;) {
    if (toks[j].text == ">") ++depth;
    if (toks[j].text == "<") {
      --depth;
      if (depth == 0) return j;
    }
    if (toks[j].text == ";" || toks[j].text == "{") break;
  }
  return std::string::npos;
}

const std::set<std::string>& blocking_calls() {
  // Calls that block on the simulated wire or wall clock: making one while
  // holding a lock serializes unrelated traffic and risks deadlock against
  // the link arbitration.  cv waits are excluded (they release the lock).
  static const std::set<std::string> kCalls{
      "send",        "recv",        "recv_or_throw",
      "accept",      "connect",     "transmit",
      "sleep_for",   "sleep_until", "precise_sleep_until",
  };
  return kCalls;
}

const std::set<std::string>& guard_types() {
  static const std::set<std::string> kGuards{"lock_guard", "unique_lock",
                                             "scoped_lock"};
  return kGuards;
}

const std::set<std::string>& mutex_types() {
  static const std::set<std::string> kMutexes{
      "mutex",       "recursive_mutex",       "timed_mutex",
      "shared_mutex", "recursive_timed_mutex", "shared_timed_mutex"};
  return kMutexes;
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kRules{
      "relaxed-order", "raw-mutex", "blocking-under-lock", "raw-new-delete",
      "unframed-send"};
  return kRules;
}

std::string format(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

std::vector<Diagnostic> scan_source(const std::string& path,
                                    const std::string& text,
                                    const Options& options) {
  const LexOutput lexed = lex(text);
  const std::vector<Token>& toks = lexed.tokens;

  std::vector<Diagnostic> diags;
  auto report = [&](int line, const std::string& rule,
                    const std::string& message) {
    for (int l : {line, line - 1}) {
      const auto it = lexed.allows.find(l);
      if (it != lexed.allows.end() && it->second.count(rule) != 0) return;
    }
    diags.push_back({path, line, rule, message});
  };

  const bool relaxed_ok =
      path_matches_suffix(path, options.relaxed_whitelist);
  const bool raw_mutex_ok = path_contains(path, options.mutex_whitelist);
  const bool framed_send_checked =
      path_contains(path, options.framed_paths) &&
      !path_matches_suffix(path, options.framing_whitelist);

  // Live lock-guard scopes for blocking-under-lock.
  struct Guard {
    int brace_depth;
    std::string var;
    bool held;
  };
  std::vector<Guard> guards;
  int brace_depth = 0;

  // Parenthesis contexts for raw-new-delete: true when the call being
  // entered is a shared_ptr/unique_ptr construction.
  std::vector<bool> paren_raii;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    auto next_text = [&](std::size_t k) -> const std::string& {
      static const std::string kEmpty;
      return i + k < toks.size() ? toks[i + k].text : kEmpty;
    };

    if (t.text == "{") ++brace_depth;
    if (t.text == "}") {
      --brace_depth;
      guards.erase(std::remove_if(guards.begin(), guards.end(),
                                  [&](const Guard& g) {
                                    return g.brace_depth > brace_depth;
                                  }),
                   guards.end());
    }

    // relaxed-order -----------------------------------------------------
    if (t.is_ident && t.text == "memory_order_relaxed" && !relaxed_ok) {
      report(t.line, "relaxed-order",
             "memory_order_relaxed outside the whitelisted counter files; "
             "use the default ordering or whitelist the file in "
             "docs/concurrency.md");
    }

    // raw-mutex ---------------------------------------------------------
    if (t.text == "std" && next_text(1) == "::" &&
        mutex_types().count(next_text(2)) != 0 && !raw_mutex_ok) {
      report(t.line, "raw-mutex",
             "raw std::" + next_text(2) +
                 " outside common/; use pardis::common::RankedMutex so the "
                 "lock-rank checker covers it");
    }

    // blocking-under-lock: guard tracking -------------------------------
    if (t.is_ident && guard_types().count(t.text) != 0) {
      if (next_text(1) == "<") {
        // Find the matching `>` then the declared variable name.
        int depth = 0;
        std::size_t j = i + 1;
        for (; j < toks.size(); ++j) {
          if (toks[j].text == "<") ++depth;
          if (toks[j].text == ">") {
            --depth;
            if (depth == 0) break;
          }
          if (toks[j].text == ";") break;
        }
        if (j < toks.size() && toks[j].text == ">" && j + 1 < toks.size() &&
            toks[j + 1].is_ident) {
          guards.push_back({brace_depth, toks[j + 1].text, true});
        }
      } else if (i + 2 < toks.size() && toks[i + 1].is_ident &&
                 toks[i + 2].text == "(") {
        // CTAD form: std::scoped_lock lock(mu);
        guards.push_back({brace_depth, toks[i + 1].text, true});
      }
    }
    // `var.unlock()` / `var.lock()` toggles the guard's held state.
    if (t.is_ident && next_text(1) == "." &&
        (next_text(2) == "unlock" || next_text(2) == "lock") &&
        next_text(3) == "(") {
      for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
        if (it->var == t.text) {
          it->held = next_text(2) == "lock";
          break;
        }
      }
    }
    // A blocking call while any guard is held.
    if (t.is_ident && blocking_calls().count(t.text) != 0 &&
        next_text(1) == "(" && i > 0 &&
        (toks[i - 1].text == "." ||
         (toks[i - 1].text == ">" && i > 1 && toks[i - 2].text == "-") ||
         toks[i - 1].text == "::" || toks[i - 1].text == ";" ||
         toks[i - 1].text == "{" || toks[i - 1].text == "}")) {
      const auto held = std::find_if(guards.begin(), guards.end(),
                                     [](const Guard& g) { return g.held; });
      if (held != guards.end()) {
        report(t.line, "blocking-under-lock",
               "blocking call '" + t.text + "' while lock guard '" +
                   held->var + "' is held; release the lock first "
                   "(see Pipe::send for the pattern)");
      }
    }

    // unframed-send ------------------------------------------------------
    // A member call `x.send(` / `x->send(` in the transfer layer bypasses
    // the request-ID framing helpers.  (The helpers in framing.hpp are the
    // whitelisted home of the real sends.)
    if (framed_send_checked && t.is_ident && t.text == "send" &&
        next_text(1) == "(" && i > 0 &&
        (toks[i - 1].text == "." ||
         (toks[i - 1].text == ">" && i > 1 && toks[i - 2].text == "-"))) {
      report(t.line, "unframed-send",
             "direct Stream::send in the transfer layer; route the frame "
             "through send_frame/send_mux_frame/send_framed "
             "(pardis/transfer/framing.hpp) so the mux prologue and credit "
             "accounting cannot be bypassed");
    }

    // raw-new-delete: paren context tracking ----------------------------
    if (t.text == "(") {
      bool raii = false;
      if (i > 0) {
        std::size_t k = i - 1;  // token before the `(`
        if (toks[k].text == ">") {
          const std::size_t open = match_template_open(toks, k);
          if (open != std::string::npos && open > 0) k = open - 1;
        }
        raii = toks[k].is_ident && (toks[k].text == "shared_ptr" ||
                                    toks[k].text == "unique_ptr");
      }
      paren_raii.push_back(raii);
    }
    if (t.text == ")" && !paren_raii.empty()) paren_raii.pop_back();

    if (t.text == "new" && t.is_ident) {
      const bool inside_raii =
          std::any_of(paren_raii.begin(), paren_raii.end(),
                      [](bool b) { return b; });
      if (!inside_raii) {
        report(t.line, "raw-new-delete",
               "raw 'new' outside an immediate shared_ptr/unique_ptr "
               "wrapper; use std::make_unique/make_shared or wrap the "
               "allocation");
      }
    }
    if (t.text == "delete" && t.is_ident) {
      const bool deleted_fn = i > 0 && toks[i - 1].text == "=";
      const bool operator_decl = i > 0 && toks[i - 1].text == "operator";
      if (!deleted_fn && !operator_decl) {
        report(t.line, "raw-new-delete",
               "raw 'delete'; ownership must live in a RAII wrapper");
      }
    }
  }
  return diags;
}

}  // namespace pardis::lint
