#include "lexer.hpp"

#include <algorithm>
#include <cctype>

namespace pardis::lint {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

void record_allow(LexOutput& out, const std::string& comment, int line) {
  const std::string marker = "pardis-lint: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(marker, pos)) != std::string::npos) {
    pos += marker.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string::npos) break;
    const std::string body = comment.substr(pos, close - pos);
    const std::size_t colon = body.find(':');
    Allow a;
    if (colon == std::string::npos) {
      a.rule = trim(body);
    } else {
      a.rule = trim(body.substr(0, colon));
      a.reason = trim(body.substr(colon + 1));
    }
    if (!a.rule.empty()) out.allows[line].push_back(a);
    pos = close;
  }
}

}  // namespace

LexOutput lex(const std::string& src) {
  LexOutput out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;  // only whitespace seen since the newline

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line (honoring backslash
    // continuations) so macro bodies and #includes don't trip rules.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Comments (keeping allow-directives).
    if (c == '/' && peek(1) == '/') {
      const std::size_t end = src.find('\n', i);
      const std::string body =
          src.substr(i, end == std::string::npos ? std::string::npos : end - i);
      record_allow(out, body, line);
      i = end == std::string::npos ? n : end;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j < n && !(src[j] == '*' && j + 1 < n && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      record_allow(out, src.substr(i, j - i), start_line);
      i = j < n ? j + 2 : n;
      continue;
    }
    // String / char literals (with escapes; raw strings unsupported — the
    // tree has none and the IDL-style lexer keeps to the same subset).
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;  // closing quote
      continue;
    }
    // Identifiers / keywords / numbers.
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) != 0 ||
                       src[j] == '_')) {
        ++j;
      }
      out.tokens.push_back({src.substr(i, j - i), line,
                            std::isdigit(static_cast<unsigned char>(c)) == 0});
      i = j;
      continue;
    }
    // `::` as one token; everything else char-by-char.
    if (c == ':' && peek(1) == ':') {
      out.tokens.push_back({"::", line, false});
      i += 2;
      continue;
    }
    out.tokens.push_back({std::string(1, c), line, false});
    ++i;
  }
  return out;
}

std::string format(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

bool allow_covers(const LexOutput& lexed, int line, const std::string& rule) {
  for (int l : {line, line - 1}) {
    const auto it = lexed.allows.find(l);
    if (it == lexed.allows.end()) continue;
    for (const Allow& a : it->second) {
      if (a.rule == rule && !a.reason.empty()) return true;
    }
  }
  return false;
}

std::vector<Diagnostic> missing_reason_diags(const std::string& path,
                                             const LexOutput& lexed) {
  std::vector<Diagnostic> diags;
  for (const auto& [line, allows] : lexed.allows) {
    for (const Allow& a : allows) {
      if (a.reason.empty()) {
        diags.push_back({path, line, "missing-reason",
                         "suppression 'allow(" + a.rule +
                             ")' has no reason; write // pardis-lint: "
                             "allow(" +
                             a.rule + ": why this pattern is safe)"});
      }
    }
  }
  return diags;
}

std::vector<Suppression> collect_suppressions(const std::string& path,
                                              const LexOutput& lexed) {
  std::vector<Suppression> out;
  for (const auto& [line, allows] : lexed.allows) {
    for (const Allow& a : allows) {
      out.push_back({path, line, a.rule, a.reason});
    }
  }
  return out;
}

bool path_matches_suffix(const std::string& path,
                         const std::vector<std::string>& suffixes) {
  return std::any_of(suffixes.begin(), suffixes.end(),
                     [&](const std::string& s) {
                       return path.size() >= s.size() &&
                              path.compare(path.size() - s.size(), s.size(),
                                           s) == 0;
                     });
}

bool path_contains(const std::string& path,
                   const std::vector<std::string>& fragments) {
  return std::any_of(fragments.begin(), fragments.end(),
                     [&](const std::string& f) {
                       return path.find(f) != std::string::npos;
                     });
}

std::size_t match_template_open(const std::vector<Token>& toks,
                                std::size_t i) {
  int depth = 0;
  for (std::size_t j = i + 1; j-- > 0;) {
    if (toks[j].text == ">") ++depth;
    if (toks[j].text == "<") {
      --depth;
      if (depth == 0) return j;
    }
    if (toks[j].text == ";" || toks[j].text == "{") break;
  }
  return std::string::npos;
}

}  // namespace pardis::lint
