#!/usr/bin/env python3
"""Checks every relative markdown link (and #anchor) in the repo.

Stdlib-only, so CI can run it without installing anything:

    python3 tools/check_docs_links.py [repo-root]

Walks every tracked-looking ``*.md`` (skipping build trees and
third-party dirs), extracts inline links, and fails with a non-zero
exit code listing each link whose target file — or ``#anchor`` within
it — does not exist.  External links (http/https/mailto) are not
fetched; docs should stay verifiable offline.
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", "build-tsan", "build-asan", "build-werror",
             "third_party", "node_modules"}

# Inline links: [text](target). Images share the syntax; the leading
# "!" does not change resolution. Reference-style links are rare in
# this repo and intentionally unsupported (the checker would go quiet
# on typos in unused definitions).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_anchor(heading: str) -> str:
    """GitHub's anchor algorithm: lowercase, drop punctuation, dash spaces."""
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: str) -> set:
    anchors = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = re.match(r"^#{1,6}\s+(.*)$", line)
            if m:
                anchors.add(github_anchor(m.group(1)))
    return anchors


def links_of(path: str):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                yield lineno, m.group(1)


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), ".."))
    md_files = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        md_files.extend(os.path.join(dirpath, f) for f in filenames
                        if f.endswith(".md"))

    errors = []
    checked = 0
    for md in sorted(md_files):
        for lineno, target in links_of(md):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            checked += 1
            target_path, _, anchor = target.partition("#")
            base = (os.path.normpath(
                os.path.join(os.path.dirname(md), target_path))
                if target_path else md)
            rel = os.path.relpath(md, root)
            if not os.path.exists(base):
                errors.append(f"{rel}:{lineno}: broken link: {target}")
                continue
            if anchor and base.endswith(".md"):
                if github_anchor(anchor) not in anchors_of(base):
                    errors.append(
                        f"{rel}:{lineno}: missing anchor: {target}")

    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {checked} relative links in {len(md_files)} files: "
          f"{len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
