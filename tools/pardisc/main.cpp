// pardisc — the PARDIS IDL compiler driver.
//
// Usage: pardisc <input.idl> [-o <outdir>]
//
// Emits <stem>.pardis.hpp and <stem>.pardis.cpp into the output directory
// (default: the current directory).  Exits non-zero and prints diagnostics
// on any error.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "pardis/idl/codegen.hpp"
#include "pardis/idl/parser.hpp"
#include "pardis/idl/sema.hpp"

namespace {

int usage() {
  std::fprintf(stderr, "usage: pardisc <input.idl> [-o <outdir>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string outdir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (i + 1 >= argc) return usage();
      outdir = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "pardisc: unknown option '%s'\n", arg.c_str());
      return usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) return usage();

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "pardisc: cannot open '%s'\n", input.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  const std::filesystem::path source_path(input);
  pardis::idl::CodegenOptions options;
  options.stem = source_path.stem().string();
  options.source_name = source_path.filename().string();

  pardis::idl::DiagnosticSink sink;
  const auto tu = pardis::idl::parse(buffer.str(), sink);
  const auto model = pardis::idl::analyze(tu, sink);
  for (const auto& diag : sink.all()) {
    std::fprintf(stderr, "%s: %s\n", input.c_str(),
                 diag.to_string().c_str());
  }
  if (sink.has_errors()) {
    return 1;
  }
  const auto code = pardis::idl::generate(tu, model, options);

  std::filesystem::create_directories(outdir);
  const auto hpp_path =
      std::filesystem::path(outdir) / (options.stem + ".pardis.hpp");
  const auto cpp_path =
      std::filesystem::path(outdir) / (options.stem + ".pardis.cpp");
  {
    std::ofstream out(hpp_path);
    if (!out) {
      std::fprintf(stderr, "pardisc: cannot write '%s'\n",
                   hpp_path.c_str());
      return 1;
    }
    out << code.header;
  }
  {
    std::ofstream out(cpp_path);
    if (!out) {
      std::fprintf(stderr, "pardisc: cannot write '%s'\n",
                   cpp_path.c_str());
      return 1;
    }
    out << code.source;
  }
  return 0;
}
