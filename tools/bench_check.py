#!/usr/bin/env python3
"""Benchmark baseline gate (docs/benchmarks.md).

Three modes, all stdlib-only so CI needs nothing beyond python3:

  --schema            validate every committed BENCH_*.json structurally
  --compare FRESHDIR  compare fresh BENCH_*.json runs against the committed
                      baselines; fail on a throughput regression beyond
                      --tolerance (default 30%).  Repeatable: with several
                      dirs (one per repeat run) each metric is gated on its
                      best run, which keeps scheduler noise on shared CI
                      runners from flaking the gate
  --self-test FRESHDIR  prove the gate can fail: synthesize a 2x slowdown
                      from the committed baselines and assert --compare
                      rejects it

Throughput comparisons are one-sided: a fresh run may be arbitrarily
faster than the baseline (shared CI runners are noisy in that direction
too, but a faster box should never fail the gate).  Chaos rows of the
storm bench are checked for schema and hung futures only — throughput
under injected faults is not a stable trajectory.
"""

import argparse
import glob
import json
import math
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HIST_REQUIRED = ("count", "mean", "min", "max", "p50", "p99", "p999")


class CheckFailure(Exception):
    pass


def fail(msg):
    raise CheckFailure(msg)


def is_finite_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool) and math.isfinite(v)


def looks_like_histogram(obj):
    return isinstance(obj, dict) and "p50" in obj


def check_histogram(path, obj):
    for key in HIST_REQUIRED:
        if key not in obj:
            fail(f"{path}: histogram missing '{key}'")
        if not is_finite_number(obj[key]):
            fail(f"{path}.{key}: not a finite number: {obj[key]!r}")
    if obj["count"] < 0:
        fail(f"{path}.count: negative")
    if obj["count"] == 0:
        return  # empty histograms report zeros
    lo, p50, p99, p999, hi = (
        obj["min"], obj["p50"], obj["p99"], obj["p999"], obj["max"])
    if not (lo <= p50 <= p99 <= p999 <= hi):
        fail(
            f"{path}: quantiles not monotone: "
            f"min={lo} p50={p50} p99={p99} p999={p999} max={hi}")


def walk_histograms(path, obj):
    """Recursively validate every histogram-shaped dict in the document."""
    if isinstance(obj, dict):
        if looks_like_histogram(obj):
            check_histogram(path, obj)
            return
        for key, value in obj.items():
            walk_histograms(f"{path}.{key}", value)
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            walk_histograms(f"{path}[{i}]", value)
    elif obj is not None and not isinstance(obj, (str, bool)):
        if not is_finite_number(obj):
            fail(f"{path}: not a finite number: {obj!r}")


def load(filename):
    with open(filename) as f:
        try:
            return json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{filename}: invalid JSON: {e}")


def check_schema_file(filename):
    doc = load(filename)
    base = os.path.basename(filename)
    expected = base[len("BENCH_"):-len(".json")]
    if doc.get("bench") != expected:
        fail(f"{base}: 'bench' field is {doc.get('bench')!r}, "
             f"expected {expected!r} (must match the filename)")
    walk_histograms(base, doc)
    if expected == "storm":
        check_storm_rows(base, doc)
    if expected == "fig4_bandwidth":
        check_fig4_cells(base, doc)


PIPELINE_PHASES = ("credit_wait_us", "wire_us", "queue_wait_us", "exec_us")


def fig4_cells(doc):
    """A fig4 document is either one run ('transport' + 'points') or the
    committed multi-transport form ({'cells': [run, run]}); a fresh bench
    invocation always emits the single-run form."""
    return doc.get("cells") if isinstance(doc.get("cells"), list) else [doc]


def check_fig4_cells(base, doc):
    seen = set()
    for i, cell in enumerate(fig4_cells(doc)):
        where = f"{base}.cells[{i}]" if "cells" in doc else base
        transport = cell.get("transport")
        if not isinstance(transport, str) or not transport:
            fail(f"{where}: missing 'transport'")
        if transport in seen:
            fail(f"{base}: duplicate cell for transport {transport!r}")
        seen.add(transport)
        points = cell.get("points")
        if not isinstance(points, list) or not points:
            fail(f"{where}: no points")


def check_storm_rows(base, doc):
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{base}: storm document has no rows")
    for i, row in enumerate(rows):
        where = f"{base}.rows[{i}]"
        for key in ("backend", "chaos", "echo", "bulk_stream", "futures",
                    "pipeline_phases", "admin"):
            if key not in row:
                fail(f"{where}: missing '{key}'")
        futures = row["futures"]
        if futures.get("hung", 1) != 0:
            fail(f"{where}: {futures.get('hung')} hung futures "
                 f"(issued={futures.get('issued')} "
                 f"settled={futures.get('settled')})")
        if futures.get("issued") != futures.get("settled"):
            fail(f"{where}: issued != settled")
        if not row["chaos"] and row.get("spmd_bulk") is None:
            fail(f"{where}: chaos-off row missing spmd_bulk")
        phases = row["pipeline_phases"]
        for key in PIPELINE_PHASES:
            if key not in phases:
                fail(f"{where}.pipeline_phases: missing '{key}'")
            check_histogram(f"{where}.pipeline_phases.{key}", phases[key])
            # Calm rows always drive the pipelined path, so an empty phase
            # histogram there means the instrumentation came unplugged.
            if not row["chaos"] and phases[key].get("count", 0) <= 0:
                fail(f"{where}.pipeline_phases.{key}: empty on a calm row")
        admin = row["admin"]
        if admin.get("snapshot_ok") is not True:
            fail(f"{where}: live admin /metrics probe did not succeed")
        if admin.get("slow_log_ok") is not True:
            fail(f"{where}: live admin /slow probe did not succeed")


def committed_bench_files():
    return sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")))


def run_schema():
    files = committed_bench_files()
    if not files:
        fail("no committed BENCH_*.json files found")
    for filename in files:
        check_schema_file(filename)
        print(f"schema ok: {os.path.relpath(filename, REPO_ROOT)}")
    return 0


# ---- comparison -----------------------------------------------------------


def storm_row_key(row):
    return (row["backend"], bool(row["chaos"]))


def extract_throughputs(doc):
    """Returns {metric_name: ops_per_sec} for the gated numbers of a doc."""
    bench = doc.get("bench")
    out = {}
    if bench == "pipeline_depth":
        for point in doc.get("depths", []):
            out[f"depth={point['depth']}"] = point["invocations_per_sec"]
    elif bench == "storm":
        for row in doc.get("rows", []):
            if row["chaos"]:
                continue  # chaos throughput is not a stable trajectory
            backend, _ = storm_row_key(row)
            out[f"{backend}/echo_ops_per_sec"] = row["echo"]["ops_per_sec"]
            out[f"{backend}/stream_mbytes_per_sec"] = (
                row["bulk_stream"]["mbytes_per_sec"])
            if row.get("spmd_bulk"):
                out[f"{backend}/spmd_mbytes_per_sec"] = (
                    row["spmd_bulk"]["mbytes_per_sec"])
    elif bench == "fig4_bandwidth":
        # Only the bandwidth-dominated points are stable enough to gate;
        # the small sizes measure per-invocation latency, which CI noise
        # swamps.
        for cell in fig4_cells(doc):
            transport = cell.get("transport", "?")
            for point in cell.get("points", []):
                if point.get("doubles", 0) < 100_000:
                    continue
                size = point["doubles"]
                out[f"{transport}/centralized_mbps@{size}"] = (
                    point["centralized_mbps"])
                out[f"{transport}/multiport_mbps@{size}"] = (
                    point["multiport_mbps"])
    return out


def best_throughputs(fresh_docs):
    """Per-metric max across repeat runs (one-sided gate: best run counts)."""
    merged = {}
    for doc in fresh_docs:
        for metric, value in extract_throughputs(doc).items():
            merged[metric] = max(merged.get(metric, value), value)
    return merged


def compare_file(name, committed, fresh_docs, tolerance):
    """Returns a list of regression messages (empty = pass)."""
    base = extract_throughputs(committed)
    new = best_throughputs(fresh_docs)
    problems = []
    for metric, old_value in sorted(base.items()):
        if metric not in new:
            problems.append(f"{name} {metric}: missing from fresh run")
            continue
        new_value = new[metric]
        floor = old_value * (1.0 - tolerance)
        verdict = "ok" if new_value >= floor else "REGRESSION"
        print(f"  {name} {metric}: committed {old_value:.0f}, "
              f"fresh {new_value:.0f}, floor {floor:.0f} -> {verdict}")
        if new_value < floor:
            problems.append(
                f"{name} {metric}: {new_value:.0f} < floor {floor:.0f} "
                f"(committed {old_value:.0f}, tolerance {tolerance:.0%})")
    return problems


def run_compare(fresh_dirs, tolerance, benches):
    problems = []
    compared = 0
    for filename in committed_bench_files():
        base = os.path.basename(filename)
        bench = base[len("BENCH_"):-len(".json")]
        if benches and bench not in benches:
            continue
        fresh_docs = []
        for fresh_dir in fresh_dirs:
            fresh_path = os.path.join(fresh_dir, base)
            if not os.path.exists(fresh_path):
                continue
            fresh = load(fresh_path)
            walk_histograms(f"{base} ({fresh_dir})", fresh)
            if bench == "storm":
                check_storm_rows(f"{base} ({fresh_dir})", fresh)
            fresh_docs.append(fresh)
        if not fresh_docs:
            if benches:  # explicitly requested: its absence is an error
                problems.append(f"{base}: no fresh run in {fresh_dirs}")
            continue
        committed = load(filename)
        check_schema_file(filename)
        problems += compare_file(base, committed, fresh_docs, tolerance)
        compared += 1
    if compared == 0:
        fail(f"nothing compared: no fresh BENCH_*.json in {fresh_dirs}")
    if problems:
        print("\nbench gate FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"\nbench gate passed ({compared} file(s) within "
          f"{tolerance:.0%} of committed baselines)")
    return 0


def run_self_test(tolerance):
    """Synthesizes a 2x slowdown and asserts the gate rejects it."""

    def slow_down(obj):
        if isinstance(obj, dict):
            return {k: slow_down(v) for k, v in obj.items()}
        if isinstance(obj, list):
            return [slow_down(v) for v in obj]
        return obj

    checked = 0
    for filename in committed_bench_files():
        committed = load(filename)
        if not extract_throughputs(committed):
            continue
        slowed = json.loads(json.dumps(committed))

        def halve(metrics, doc):
            if doc.get("bench") == "pipeline_depth":
                for point in doc.get("depths", []):
                    point["invocations_per_sec"] /= 2.0
            elif doc.get("bench") == "storm":
                for row in doc.get("rows", []):
                    row["echo"]["ops_per_sec"] /= 2.0
                    row["bulk_stream"]["mbytes_per_sec"] /= 2.0
                    if row.get("spmd_bulk"):
                        row["spmd_bulk"]["mbytes_per_sec"] /= 2.0
            elif doc.get("bench") == "fig4_bandwidth":
                for cell in fig4_cells(doc):
                    for point in cell.get("points", []):
                        point["centralized_mbps"] /= 2.0
                        point["multiport_mbps"] /= 2.0

        halve(None, slowed)
        name = os.path.basename(filename)
        problems = compare_file(name, committed, [slowed], tolerance)
        if not problems:
            fail(f"self-test: gate accepted a 2x slowdown of {name}")
        print(f"self-test ok: gate rejects 2x slowdown of {name} "
              f"({len(problems)} regression(s) flagged)")
        checked += 1
    if checked == 0:
        fail("self-test: no baselines with gated throughput metrics")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schema", action="store_true",
                        help="validate committed BENCH_*.json schemas")
    parser.add_argument("--compare", metavar="FRESHDIR", action="append",
                        default=[],
                        help="compare fresh results in FRESHDIR to "
                             "baselines; repeat for best-of-N gating")
    parser.add_argument("--self-test", action="store_true",
                        help="assert the gate fails on a synthetic slowdown")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional slowdown (default 0.30)")
    parser.add_argument("--bench", action="append", default=[],
                        help="restrict --compare to these bench names "
                             "(repeatable); their absence becomes an error")
    args = parser.parse_args()

    if not (args.schema or args.compare or args.self_test):
        parser.error("pick at least one of --schema / --compare / --self-test")

    try:
        rc = 0
        if args.schema:
            rc = max(rc, run_schema())
        if args.compare:
            rc = max(rc, run_compare(args.compare, args.tolerance, args.bench))
        if args.self_test:
            rc = max(rc, run_self_test(args.tolerance))
        return rc
    except CheckFailure as e:
        print(f"bench_check: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
