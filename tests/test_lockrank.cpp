// Lock-rank checker: ordered acquisition passes, violations abort with both
// rank names in the message, and the release flavor adds zero state.

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <thread>

#include "pardis/common/ranked_mutex.hpp"

namespace {

using pardis::common::CheckedRankedMutex;
using pardis::common::LockRank;
using pardis::common::PlainRankedMutex;

TEST(LockRank, OrderedAcquisitionPasses) {
  CheckedRankedMutex fabric(LockRank::kNetFabric);
  CheckedRankedMutex mailbox(LockRank::kRtsMailbox);
  CheckedRankedMutex log(LockRank::kCommonLog);
  std::lock_guard<CheckedRankedMutex> a(fabric);
  std::lock_guard<CheckedRankedMutex> b(mailbox);
  std::lock_guard<CheckedRankedMutex> c(log);
  SUCCEED();
}

TEST(LockRank, ReacquireAfterReleaseAtSameRankPasses) {
  CheckedRankedMutex mailbox(LockRank::kRtsMailbox);
  { std::lock_guard<CheckedRankedMutex> lock(mailbox); }
  { std::lock_guard<CheckedRankedMutex> lock(mailbox); }
  SUCCEED();
}

TEST(LockRank, OutOfOrderUnlockIsTracked) {
  // unique_lock juggling releases in acquisition order, not reverse order;
  // the held-rank stack must cope and still allow a later high acquire.
  CheckedRankedMutex low(LockRank::kNetFabric);
  CheckedRankedMutex mid(LockRank::kRtsMailbox);
  CheckedRankedMutex high(LockRank::kObsTrace);
  std::unique_lock<CheckedRankedMutex> a(low);
  std::unique_lock<CheckedRankedMutex> b(mid);
  a.unlock();  // out of order: low released while mid held
  std::lock_guard<CheckedRankedMutex> c(high);
  SUCCEED();
}

TEST(LockRank, HeldRanksArePerThread) {
  CheckedRankedMutex mailbox(LockRank::kRtsMailbox);
  CheckedRankedMutex fabric(LockRank::kNetFabric);
  std::lock_guard<CheckedRankedMutex> lock(mailbox);
  // A different thread holds nothing, so a lower rank is fine there.
  std::thread t([&] { std::lock_guard<CheckedRankedMutex> l2(fabric); });
  t.join();
  SUCCEED();
}

TEST(LockRank, ConditionVariableAnyRoundTrips) {
  // condition_variable_any drives rank bookkeeping through lock()/unlock();
  // after a wait() the rank must still be held exactly once.
  CheckedRankedMutex mailbox(LockRank::kRtsMailbox);
  CheckedRankedMutex trace(LockRank::kObsTrace);
  std::condition_variable_any cv;
  bool ready = false;
  std::thread producer([&] {
    std::lock_guard<CheckedRankedMutex> lock(mailbox);
    ready = true;
    cv.notify_all();
  });
  {
    std::unique_lock<CheckedRankedMutex> lock(mailbox);
    cv.wait(lock, [&] { return ready; });
    // Still inside the mailbox rank: a higher acquire must pass.
    std::lock_guard<CheckedRankedMutex> l2(trace);
  }
  producer.join();
  SUCCEED();
}

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, DescendingAcquireAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CheckedRankedMutex mailbox(LockRank::kRtsMailbox);
  CheckedRankedMutex fabric(LockRank::kNetFabric);
  EXPECT_DEATH(
      {
        std::lock_guard<CheckedRankedMutex> a(mailbox);
        std::lock_guard<CheckedRankedMutex> b(fabric);
      },
      "lock-rank violation.*kNetFabric.*kRtsMailbox");
}

TEST(LockRankDeathTest, SameRankNestingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CheckedRankedMutex a(LockRank::kRtsMailbox);
  CheckedRankedMutex b(LockRank::kRtsMailbox);
  EXPECT_DEATH(
      {
        std::lock_guard<CheckedRankedMutex> la(a);
        std::lock_guard<CheckedRankedMutex> lb(b);
      },
      "lock-rank violation.*kRtsMailbox.*kRtsMailbox");
}

// ---- release flavor --------------------------------------------------------

TEST(PlainRankedMutexTest, ZeroStateOverExposedMutex) {
  // The release-mode alias must be layout-identical to std::mutex: the rank
  // argument compiles away.
  static_assert(sizeof(PlainRankedMutex) == sizeof(std::mutex));
  PlainRankedMutex mu(LockRank::kRtsMailbox);
  std::lock_guard<PlainRankedMutex> lock(mu);
  SUCCEED();
}

TEST(PlainRankedMutexTest, IgnoresOrdering) {
  PlainRankedMutex mailbox(LockRank::kRtsMailbox);
  PlainRankedMutex fabric(LockRank::kNetFabric);
  std::lock_guard<PlainRankedMutex> a(mailbox);
  std::lock_guard<PlainRankedMutex> b(fabric);  // no checking, no abort
  SUCCEED();
}

}  // namespace
