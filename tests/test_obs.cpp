// Unit and integration tests for pardis/obs: RunningStat merging (the
// substrate under Histogram), MetricsRegistry under concurrency, the span
// tracer, and chrome://tracing JSON export well-formedness.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pardis/common/error.hpp"
#include "pardis/common/stats.hpp"
#include "pardis/obs/metrics.hpp"
#include "pardis/obs/phase_trace.hpp"
#include "pardis/obs/sink.hpp"
#include "pardis/obs/slowlog.hpp"
#include "pardis/obs/trace.hpp"
#include "pardis/sim/experiment.hpp"

namespace pardis {
namespace {

// ---- minimal JSON validator ------------------------------------------------
// Recursive-descent acceptance check, enough to assert the trace export is
// syntactically valid JSON without depending on an external parser.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default:  return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

TEST(JsonChecker, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker(R"({"a":[1,-2.5e3,"x\n",true,null]})").valid());
  EXPECT_FALSE(JsonChecker(R"({"a":1)").valid());
  EXPECT_FALSE(JsonChecker("{\"a\":\"\n\"}").valid());  // raw newline
  EXPECT_FALSE(JsonChecker(R"({"a":1} trailing)").valid());
}

// ---- RunningStat merge -----------------------------------------------------

TEST(RunningStat, MergeMatchesSingleStream) {
  std::mt19937 rng(42);
  std::normal_distribution<double> dist(5.0, 2.0);

  RunningStat whole;
  RunningStat parts[3];
  for (int i = 0; i < 999; ++i) {
    const double x = dist(rng);
    whole.add(x);
    parts[i % 3].add(x);
  }
  RunningStat merged;
  for (auto& p : parts) merged += p;

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
}

TEST(RunningStat, MergeWithEmptyIsIdentity) {
  RunningStat a;
  a.add(1.0);
  a.add(3.0);

  RunningStat b = a;
  b += RunningStat{};  // right identity
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);

  RunningStat c;
  c += a;  // left identity
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
  EXPECT_DOUBLE_EQ(c.max(), 3.0);
}

// ---- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistry, ConcurrentCounterUpdates) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 10'000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Shared instrument plus a per-thread one: exercises both the atomic
      // hot path and concurrent name creation.
      auto& shared = reg.counter("shared");
      auto& own = reg.counter("own." + std::to_string(t));
      for (int i = 0; i < kIters; ++i) {
        shared.add();
        own.add(2);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("own." + std::to_string(t)).value(), 2u * kIters);
  }
}

TEST(MetricsRegistry, ConcurrentHistogramUpdates) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 2'000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      auto& h = reg.histogram("latency");
      for (int i = 0; i < kIters; ++i) h.add(1.0);
    });
  }
  for (auto& th : threads) th.join();

  const RunningStat s = reg.histogram("latency").snapshot();
  EXPECT_EQ(s.count(), static_cast<std::size_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 1.0);
}

TEST(MetricsRegistry, KindConflictThrows) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), BAD_PARAM);
  EXPECT_THROW(reg.histogram("x"), BAD_PARAM);
  EXPECT_NO_THROW(reg.counter("x"));  // same kind is a lookup
}

TEST(MetricsRegistry, SnapshotAndDump) {
  obs::MetricsRegistry reg;
  reg.counter("b.count").add(7);
  reg.gauge("a.level").set(-3);
  reg.histogram("c.dist").add(2.5);

  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a.level");  // sorted by name
  EXPECT_EQ(samples[0].level, -3);
  EXPECT_EQ(samples[1].name, "b.count");
  EXPECT_EQ(samples[1].count, 7u);
  EXPECT_EQ(samples[2].name, "c.dist");
  EXPECT_DOUBLE_EQ(samples[2].stat.mean(), 2.5);

  const std::string dump = reg.dump();
  EXPECT_NE(dump.find("b.count"), std::string::npos);
  EXPECT_NE(dump.find("7"), std::string::npos);
}

// ---- Tracer / SpanGuard / TracedTimer --------------------------------------

TEST(Tracer, DisabledRecordsNothing) {
  obs::Tracer tracer;  // disabled by default
  const auto t0 = Clock::now();
  tracer.record("x", "c", 1, 0, t0, t0);
  { const obs::SpanGuard span(&tracer, "y", "c", 1, 0); }
  { const obs::SpanGuard inactive; }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Tracer, SpanGuardRecordsCompleteSpan) {
  obs::Tracer tracer;
  tracer.enable();
  { const obs::SpanGuard span(&tracer, "op", "invoke", obs::kClientPid, 3); }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "op");
  EXPECT_EQ(events[0].cat, "invoke");
  EXPECT_EQ(events[0].pid, obs::kClientPid);
  EXPECT_EQ(events[0].tid, 3u);
  EXPECT_GE(events[0].ts_us, 0.0);
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST(Tracer, TracedTimerAccumulatesAndEmits) {
  obs::Tracer tracer;
  tracer.enable();
  PhaseTimer timer;
  obs::TracedTimer traced(timer, &tracer, obs::kServerPid, 1);

  const int result = traced.time(Phase::kPack, [] { return 41 + 1; });
  EXPECT_EQ(result, 42);
  traced.time(Phase::kSend, [] {});

  EXPECT_GE(timer.get(Phase::kPack).count(), 0);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "pack");
  EXPECT_EQ(events[1].name, "send");
  EXPECT_EQ(events[0].cat, "phase");
  EXPECT_EQ(events[0].pid, obs::kServerPid);

  // Disabled tracer: still accumulates, no spans.
  tracer.enable(false);
  tracer.clear();
  traced.time(Phase::kRecv, [] {});
  EXPECT_EQ(tracer.size(), 0u);
}

// ---- Distributed-trace sampling and ids ------------------------------------

TEST(Tracer, SampleTraceIdZeroWhileDisabled) {
  obs::Tracer tracer;  // disabled by default
  EXPECT_EQ(tracer.sample_trace_id(), 0u);
}

TEST(Tracer, SampleTraceIdsAreUniqueAndNonzero) {
  obs::Tracer tracer;
  tracer.enable();
  const auto a = tracer.sample_trace_id();
  const auto b = tracer.sample_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(Tracer, SamplePeriodKeepsOneInN) {
  obs::Tracer tracer;
  tracer.enable();
  tracer.set_sample_period(4);
  int sampled = 0;
  for (int i = 0; i < 16; ++i) {
    sampled += tracer.sample_trace_id() != 0 ? 1 : 0;
  }
  EXPECT_EQ(sampled, 4);
  tracer.set_sample_period(1);  // n <= 1 samples everything again
  EXPECT_NE(tracer.sample_trace_id(), 0u);
}

TEST(Trace, ThisThreadTidStableAndAboveRankRange) {
  const std::uint32_t mine = obs::this_thread_tid();
  EXPECT_GE(mine, 64u);  // never collides with rank tids
  EXPECT_EQ(obs::this_thread_tid(), mine);
  std::uint32_t other = 0;
  std::thread t([&] { other = obs::this_thread_tid(); });
  t.join();
  EXPECT_NE(other, mine);
}

TEST(Trace, RolePidDefaultsToFixedRole) {
  // PARDIS_TRACE_PID is unset in the test environment, so the scenario
  // pids stay the fixed single-process values.
  EXPECT_EQ(obs::role_pid(obs::kClientPid), obs::kClientPid);
  EXPECT_EQ(obs::role_pid(obs::kServerPid), obs::kServerPid);
}

// ---- Prometheus snapshot ---------------------------------------------------

TEST(Metrics, PrometheusTextRendersAllKinds) {
  obs::MetricsRegistry reg;
  reg.counter("server.pipeline.requests").add(7);
  reg.gauge("client.pipeline.credits").set(-3);
  auto& h = reg.histogram("client.pipeline.wire_us");
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));

  const std::string text = obs::prometheus_text(reg);
  EXPECT_NE(text.find("# TYPE server_pipeline_requests counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("server_pipeline_requests 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE client_pipeline_credits gauge"),
            std::string::npos);
  EXPECT_NE(text.find("client_pipeline_credits -3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE client_pipeline_wire_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("client_pipeline_wire_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("client_pipeline_wire_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("client_pipeline_wire_us_count 100"),
            std::string::npos);
  // Names are sanitized, never dotted.
  EXPECT_EQ(text.find("client.pipeline"), std::string::npos);
}

TEST(Metrics, DumpIsSortedAndCarriesPercentiles) {
  obs::MetricsRegistry reg;
  reg.histogram("z.last").add(1.0);
  reg.counter("a.first").add(1);
  reg.gauge("m.middle").set(5);
  const std::string dump = reg.dump();
  const auto a = dump.find("a.first");
  const auto m = dump.find("m.middle");
  const auto z = dump.find("z.last");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
  EXPECT_NE(dump.find("p50="), std::string::npos);
  EXPECT_NE(dump.find("p99="), std::string::npos);
  EXPECT_NE(dump.find("p999="), std::string::npos);
}

// ---- Slow-request log ------------------------------------------------------

TEST(SlowLog, DisabledByDefaultAndDropsBelowThreshold) {
  obs::SlowLog off;  // PARDIS_SLOW_MS unset -> disabled
  EXPECT_FALSE(off.enabled());
  off.observe({"op", 1, 1, 0, 0.0, 0.0, 1e9});
  EXPECT_TRUE(off.snapshot().empty());

  obs::SlowLog log(/*threshold_ms=*/2.0, /*capacity=*/4);
  ASSERT_TRUE(log.enabled());
  log.observe({"fast", 1, 1, 0, 1.0, 1.0, 500.0});  // under 2 ms
  EXPECT_TRUE(log.snapshot().empty());
  log.observe({"slow", 2, 1, 42, 100.0, 2800.0, 3000.0});
  const auto entries = log.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].operation, "slow");
  EXPECT_EQ(entries[0].trace_id, 42u);
}

TEST(SlowLog, KeepsNewestKAndRenders) {
  obs::SlowLog log(1.0, 3);
  for (std::uint32_t i = 1; i <= 5; ++i) {
    log.observe({"op" + std::to_string(i), i, 1, 0, 10.0, 10.0,
                 1000.0 + i});
  }
  const auto entries = log.snapshot();
  ASSERT_EQ(entries.size(), 3u);  // capacity-bounded
  EXPECT_EQ(entries[0].operation, "op5");  // newest first
  EXPECT_EQ(entries[2].operation, "op3");
  const std::string text = log.render();
  EXPECT_NE(text.find("# slow requests"), std::string::npos);
  EXPECT_NE(text.find("op5"), std::string::npos);
  EXPECT_NE(text.find("queue_wait_us="), std::string::npos);
  EXPECT_EQ(text.find("op1"), std::string::npos);  // evicted
}

// ---- JSON export -----------------------------------------------------------

TEST(TraceSink, JsonEscape) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(obs::json_escape(std::string("a\1b", 3)), "a\\u0001b");
}

TEST(TraceSink, WritesWellFormedJson) {
  obs::Tracer tracer;
  tracer.enable();
  // Hostile span names: must survive escaping.
  { const obs::SpanGuard s(&tracer, "invoke \"evil\"\n\\", "invoke", 1, 0); }
  { const obs::SpanGuard s(&tracer, "send", "phase", 2, 1); }

  obs::TraceSink sink;
  sink.add(tracer);
  sink.name_scenario_processes();

  std::ostringstream os;
  sink.write(os);
  const std::string json = os.str();

  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("client app"), std::string::npos);
  EXPECT_NE(json.find("server app"), std::string::npos);
}

TEST(TraceSink, TraceIdEmittedAsArg) {
  obs::Tracer tracer;
  tracer.enable();
  const auto t0 = Clock::now();
  tracer.record("wire 7", "pipeline", 1, 64, t0, t0, 0xdeadbeefull);
  tracer.record("plain", "phase", 1, 0, t0, t0);  // no trace id, no args

  obs::TraceSink sink;
  sink.add(tracer);
  std::ostringstream os;
  sink.write(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"trace_id\":\"3735928559\""), std::string::npos)
      << json;
  // Exactly one event carries args.
  EXPECT_EQ(json.find("trace_id"), json.rfind("trace_id"));
}

TEST(TraceSink, EmptySinkStillValidJson) {
  obs::TraceSink sink;
  std::ostringstream os;
  sink.write(os);
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

// ---- end-to-end: traced invocation through the full stack ------------------

TEST(ObsIntegration, ScenarioEmitsPhaseSpansForBothApps) {
  auto& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.enable();

  bench::BenchConfig cfg;
  cfg.client_ranks = 2;
  cfg.server_ranks = 2;
  cfg.seqlen = 1024;
  cfg.reps = 1;
  cfg.method = orb::TransferMethod::kMultiPort;
  cfg.link = net::LinkModel::unlimited();
  bench::run_config(cfg);

  tracer.enable(false);
  const auto events = tracer.snapshot();
  tracer.clear();

  ASSERT_FALSE(events.empty());
  bool client_invoke = false, server_request = false;
  bool client_send = false, server_unpack = false;
  std::uint32_t max_client_tid = 0;
  for (const auto& e : events) {
    if (e.pid == obs::kClientPid) {
      max_client_tid = std::max(max_client_tid, e.tid);
      if (e.cat == "invoke") client_invoke = true;
      if (e.name == "send") client_send = true;
    } else if (e.pid == obs::kServerPid) {
      if (e.cat == "request") server_request = true;
      if (e.name == "unpack") server_unpack = true;
    }
  }
  EXPECT_TRUE(client_invoke);
  EXPECT_TRUE(server_request);
  EXPECT_TRUE(client_send);
  EXPECT_TRUE(server_unpack);
  EXPECT_EQ(max_client_tid, 1u);  // both client ranks produced spans

  // The exported file is what chrome://tracing loads; check it end to end.
  obs::TraceSink sink;
  sink.add_events(events);
  sink.name_scenario_processes();
  const std::string path = "obs_test.trace.json";
  ASSERT_TRUE(sink.write_file(path));
  std::ostringstream os;
  sink.write(os);
  EXPECT_TRUE(JsonChecker(os.str()).valid());
  std::remove(path.c_str());
}

TEST(ObsIntegration, ScenarioPopulatesMetrics) {
  bench::BenchConfig cfg;
  cfg.client_ranks = 2;
  cfg.server_ranks = 1;
  cfg.seqlen = 512;
  cfg.reps = 2;
  cfg.method = orb::TransferMethod::kCentralized;
  cfg.link = net::LinkModel::unlimited();

  sim::ScenarioConfig scfg;
  scfg.server.nranks = cfg.server_ranks;
  scfg.client.nranks = cfg.client_ranks;
  scfg.link = cfg.link;
  // Asserts on per-link gauges, which only the simulated fabric publishes.
  scfg.orb.transport = transport::Kind::kSim;
  sim::Scenario scenario(scfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, scfg.server.host);
        bench::SinkServant servant;
        server.activate("sink", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto binding = transfer::SpmdBinding::bind(
            scenario.orb(), comm, scfg.client.host, "sink",
            "IDL:bench/sink:1.0");
        dseq::DSequence<double> seq(comm, cfg.seqlen);
        transfer::CallOptions opts;
        opts.method = cfg.method;
        for (int rep = 0; rep < cfg.reps; ++rep) {
          transfer::TypedDSeqArg<double> arg(seq, orb::ArgDir::kIn);
          cdr::Encoder enc;
          enc.put_long(rep);
          binding.invoke("consume", enc.take(), {&arg}, opts);
          transfer::reduce_stats(comm, binding.last_stats(),
                                 &scenario.orb().metrics(), "client.phase.");
        }
        binding.unbind();
      },
      "sink");

  auto& m = scenario.orb().collect_metrics();
  // +1: the shutdown message is also an invocation.
  EXPECT_GE(m.counter("client.invocations").value(),
            static_cast<std::uint64_t>(cfg.reps));
  EXPECT_GE(m.counter("server.requests").value(),
            static_cast<std::uint64_t>(cfg.reps));
  EXPECT_GE(m.counter("server.binds").value(), 1u);
  EXPECT_GT(m.counter("net.frames").value(), 0u);
  EXPECT_GT(m.counter("net.bytes").value(), 0u);
  EXPECT_EQ(m.histogram("client.phase.send").snapshot().count(),
            static_cast<std::size_t>(cfg.reps));
  EXPECT_EQ(m.histogram("server.phase.total").snapshot().count(),
            static_cast<std::size_t>(cfg.reps));

  // The fabric publishes per-link gauges on collect_metrics().
  bool link_gauge = false;
  for (const auto& s : m.snapshot()) {
    if (s.name.rfind("link.", 0) == 0) link_gauge = true;
  }
  EXPECT_TRUE(link_gauge);
}

}  // namespace
}  // namespace pardis
