// Robustness and stress tests: hostile bytes never crash the broker (they
// throw typed exceptions), heavy concurrency on mailboxes and connections,
// contention between concurrently bound clients (the §3.3 motivation for
// keeping the invocation header centralized), and lifecycle edges such as
// deactivation.

#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "pardis/orb/protocol.hpp"
#include "pardis/sim/scenario.hpp"
#include "pardis/transfer/spmd_client.hpp"
#include "pardis/transfer/spmd_server.hpp"

namespace pardis {
namespace {

// ---- hostile bytes ------------------------------------------------------------

TEST(Hostile, TruncatedFramesAlwaysThrowMarshal) {
  // Build a valid request frame, then decode every truncation of it: the
  // decoder must throw MARSHAL (never crash, never accept).
  cdr::Encoder enc;
  orb::begin_frame(enc, orb::MsgType::kRequest);
  orb::RequestHeader h;
  h.request_id = 1;
  h.operation = "diffusion";
  h.scalar_args = Bytes{1, 2, 3, 4};
  orb::DSeqDescriptor d;
  d.elem_size = 8;
  d.total_length = 4;
  d.src_counts = {2, 2};
  h.dseqs.push_back(d);
  h.encode(enc);
  const Bytes frame = enc.take();

  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    Bytes truncated(frame.begin(),
                    frame.begin() + static_cast<std::ptrdiff_t>(cut));
    try {
      const orb::Frame info = orb::parse_frame(truncated);
      auto dec = orb::body_decoder(truncated, info);
      (void)orb::RequestHeader::decode(dec);
      // Decoding a strict prefix must not succeed: every field of the
      // header is load-bearing.
      ADD_FAILURE() << "truncation at " << cut << " decoded successfully";
    } catch (const MARSHAL&) {
      // expected
    }
  }
}

TEST(Hostile, RandomBytesNeverCrashFrameParser) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes junk(rng() % 64);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    try {
      const orb::Frame info = orb::parse_frame(junk);
      auto dec = orb::body_decoder(junk, info);
      (void)orb::ReplyHeader::decode(dec);
    } catch (const MARSHAL&) {
    } catch (const BAD_PARAM&) {
    }
  }
}

TEST(Hostile, BitflippedValidFrameThrowsOrDecodes) {
  // Flipping any single byte of a valid frame must either still decode
  // (payload bytes) or throw MARSHAL — never crash or hang.
  cdr::Encoder enc;
  orb::begin_frame(enc, orb::MsgType::kReply);
  orb::ReplyHeader r;
  r.request_id = 3;
  r.payload = Bytes{9, 9};
  r.encode(enc);
  const Bytes frame = enc.take();
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (std::uint8_t flip : {std::uint8_t{0xFF}, std::uint8_t{0x01}}) {
      Bytes mutated = frame;
      mutated[i] ^= flip;
      try {
        const orb::Frame info = orb::parse_frame(mutated);
        auto dec = orb::body_decoder(mutated, info);
        (void)orb::ReplyHeader::decode(dec);
      } catch (const MARSHAL&) {
      }
    }
  }
}

TEST(Hostile, StringifiedRefFuzz) {
  std::mt19937_64 rng(21);
  const std::string prefix = "PARDIS:";
  for (int trial = 0; trial < 300; ++trial) {
    std::string s = prefix;
    const std::size_t n = rng() % 40;
    for (std::size_t i = 0; i < n; ++i) {
      s.push_back("0123456789abcdefzz"[rng() % 18]);
    }
    try {
      (void)orb::ObjectRef::from_string(s);
    } catch (const INV_OBJREF&) {
    }
  }
}

// ---- stress --------------------------------------------------------------------

TEST(Stress, MailboxManyProducersOneConsumer) {
  rts::Team team("t", 8);
  team.run([](rts::Communicator& comm) {
    constexpr int kPerRank = 300;
    if (comm.rank() == 0) {
      std::vector<int> seen(8, 0);
      for (int i = 0; i < 7 * kPerRank; ++i) {
        const auto m = comm.recv(rts::kAnySource, 1);
        // Per-source payloads must arrive in order.
        EXPECT_EQ(static_cast<int>(m.payload[0]),
                  seen[static_cast<std::size_t>(m.src)] % 256);
        ++seen[static_cast<std::size_t>(m.src)];
      }
      for (int r = 1; r < 8; ++r) {
        EXPECT_EQ(seen[static_cast<std::size_t>(r)], kPerRank);
      }
    } else {
      for (int i = 0; i < kPerRank; ++i) {
        comm.send(0, 1, Bytes{static_cast<std::uint8_t>(i % 256)});
      }
    }
  });
}

TEST(Stress, ConnectionPingPongBurst) {
  net::Fabric fabric;
  auto acceptor = fabric.listen("s");
  auto client = fabric.connect("c", acceptor->address());
  auto server = acceptor->accept();
  std::thread echo([&] {
    while (auto frame = server->recv()) {
      server->send(std::move(*frame));
    }
  });
  for (int i = 0; i < 2000; ++i) {
    client->send(Bytes{static_cast<std::uint8_t>(i & 0xFF)});
    const Bytes back = client->recv_or_throw();
    ASSERT_EQ(back[0], i & 0xFF);
  }
  client->close();
  echo.join();
}

TEST(Stress, ManyInvocationsOnOneBinding) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 2;
  cfg.server.nranks = 2;
  sim::Scenario scenario(cfg);

  class EchoServant : public transfer::SpmdServant {
   public:
    const char* type_id() const override { return "IDL:test/echo:1.0"; }
    void dispatch(transfer::ServerCall& call) override {
      auto args = call.args();
      call.results().put_long(args.get_long() * 2);
    }
  };

  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, cfg.server.host);
        EchoServant servant;
        server.activate("echo", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto binding =
            transfer::SpmdBinding::bind(scenario.orb(), comm,
                                        cfg.client.host, "echo",
                                        "IDL:test/echo:1.0");
        for (int i = 0; i < 200; ++i) {
          cdr::Encoder enc;
          enc.put_long(i);
          const Bytes r = binding.invoke("echo", enc.take(), {}, {});
          cdr::Decoder dec{BytesView(r)};
          ASSERT_EQ(dec.get_long(), 2 * i);
        }
        binding.unbind();
      },
      "echo");
}

// ---- multi-client contention (§3.3 motivation) ---------------------------------

TEST(Contention, ConcurrentSpmdClientsSerializeCorrectly) {
  // Two independent parallel client applications bind to one SPMD object
  // concurrently and fire interleaved invocations.  The header-centralized
  // design must keep every invocation atomic: no request may observe
  // another client's arguments.
  auto orb = orb::Orb::create();

  class CheckServant : public transfer::SpmdServant {
   public:
    const char* type_id() const override { return "IDL:test/check:1.0"; }
    void dispatch(transfer::ServerCall& call) override {
      auto args = call.args();
      const auto client_id = args.get_long();
      auto seq = call.take_dseq<double>(0);
      // Every element must carry the invoking client's id.
      for (std::size_t i = 0; i < seq.local_length(); ++i) {
        if (seq.local_data()[i] != static_cast<double>(client_id)) {
          throw INTERNAL("argument mixed between clients");
        }
      }
      call.results().put_long(client_id);
    }
  };

  rts::Team server_team("server", 3);
  server_team.start([&](rts::Communicator& comm) {
    transfer::SpmdServer server(*orb, comm, "serverhost");
    CheckServant servant;
    server.activate("check", servant);
    server.serve();
  });

  auto client_app = [&](int client_id, const std::string& host) {
    rts::Team team("client" + std::to_string(client_id), 2);
    team.run([&](rts::Communicator& comm) {
      auto binding = transfer::SpmdBinding::bind(
          *orb, comm, host, "check", "IDL:test/check:1.0");
      for (int i = 0; i < 30; ++i) {
        dseq::DSequence<double> seq(comm, 256);
        for (std::size_t j = 0; j < seq.local_length(); ++j) {
          seq.local_data()[j] = static_cast<double>(client_id);
        }
        transfer::CallOptions opts;
        opts.method = (i % 2 == 0) ? orb::TransferMethod::kCentralized
                                   : orb::TransferMethod::kMultiPort;
        transfer::TypedDSeqArg<double> arg(seq, orb::ArgDir::kIn);
        cdr::Encoder enc;
        enc.put_long(client_id);
        const Bytes r = binding.invoke("check", enc.take(), {&arg}, opts);
        cdr::Decoder dec{BytesView(r)};
        ASSERT_EQ(dec.get_long(), client_id);
      }
      binding.unbind();
    });
  };

  std::thread c1([&] { client_app(1, "hostA"); });
  std::thread c2([&] { client_app(2, "hostB"); });
  c1.join();
  c2.join();

  transfer::send_shutdown(*orb, "hostA", *orb->naming().resolve("check"));
  server_team.join();
}

TEST(Contention, ManyDirectClientsInParallel) {
  auto orb = orb::Orb::create();

  class CounterServant : public transfer::SpmdServant {
   public:
    const char* type_id() const override { return "IDL:test/ctr:1.0"; }
    void dispatch(transfer::ServerCall& call) override {
      call.results().put_long(++count_);
    }
   private:
    cdr::Long count_ = 0;
  };

  rts::Team server_team("server", 1);
  server_team.start([&](rts::Communicator& comm) {
    transfer::SpmdServer server(*orb, comm, "s");
    CounterServant servant;
    server.activate("ctr", servant);
    server.serve();
  });

  constexpr int kClients = 6;
  constexpr int kCallsEach = 25;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        auto binding = transfer::DirectBinding::bind(
            *orb, "client" + std::to_string(c), "ctr", "IDL:test/ctr:1.0");
        cdr::Long prev = 0;
        for (int i = 0; i < kCallsEach; ++i) {
          const Bytes r = binding.invoke("bump", {});
          cdr::Decoder dec{BytesView(r)};
          const auto v = dec.get_long();
          if (v <= prev) ++failures;  // strictly increasing per client
          prev = v;
        }
        binding.unbind();
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The counter saw every call exactly once.
  auto binding =
      transfer::DirectBinding::bind(*orb, "probe", "ctr", "IDL:test/ctr:1.0");
  const Bytes r = binding.invoke("bump", {});
  cdr::Decoder final_dec{BytesView(r)};
  EXPECT_EQ(final_dec.get_long(), kClients * kCallsEach + 1);
  binding.unbind();

  transfer::send_shutdown(*orb, "probe", *orb->naming().resolve("ctr"));
  server_team.join();
}

// ---- lifecycle edges --------------------------------------------------------------

TEST(Lifecycle, DeactivatedObjectRejectsNewBinds) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 1;
  cfg.server.nranks = 1;
  sim::Scenario scenario(cfg);

  class NopServant : public transfer::SpmdServant {
   public:
    const char* type_id() const override { return "IDL:test/nop:1.0"; }
    void dispatch(transfer::ServerCall&) override {}
  };

  setenv("PARDIS_BIND_TIMEOUT_MS", "100", 1);
  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, cfg.server.host);
        NopServant keep;
        NopServant gone;
        server.activate("keeper", keep);
        server.activate("victim", gone);
        server.deactivate("victim");
        server.serve();
      },
      [&](rts::Communicator& comm) {
        (void)comm;
        // The deactivated name no longer resolves.
        EXPECT_THROW((void)transfer::DirectBinding::bind(
                         scenario.orb(), cfg.client.host, "victim",
                         "IDL:test/nop:1.0"),
                     OBJECT_NOT_EXIST);
        // The surviving object still works.
        auto ok = transfer::DirectBinding::bind(
            scenario.orb(), cfg.client.host, "keeper", "IDL:test/nop:1.0");
        ok.invoke("anything", {});
        ok.unbind();
      },
      "keeper");
  unsetenv("PARDIS_BIND_TIMEOUT_MS");
}

TEST(Lifecycle, UnbindThenRebindWorks) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 2;
  cfg.server.nranks = 2;
  sim::Scenario scenario(cfg);

  class NopServant : public transfer::SpmdServant {
   public:
    const char* type_id() const override { return "IDL:test/nop:1.0"; }
    void dispatch(transfer::ServerCall& call) override {
      call.results().put_boolean(true);
    }
  };

  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, cfg.server.host);
        NopServant servant;
        server.activate("nop", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        for (int round = 0; round < 3; ++round) {
          auto binding = transfer::SpmdBinding::bind(
              scenario.orb(), comm, cfg.client.host, "nop",
              "IDL:test/nop:1.0");
          const Bytes r = binding.invoke("f", {}, {}, {});
          cdr::Decoder dec{BytesView(r)};
          EXPECT_TRUE(dec.get_boolean());
          binding.unbind();
        }
      },
      "nop");
}

}  // namespace
}  // namespace pardis
