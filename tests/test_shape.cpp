// Shape tests: the paper's qualitative performance claims, asserted with
// generous tolerances over the throttled link model.  These are the
// repository's regression guard for the evaluation section — if a change
// breaks one of the paper's orderings, a table would silently stop
// reproducing.
//
// All tests here are wall-clock sensitive and registered RUN_SERIAL.

#include <gtest/gtest.h>

#include "pardis/sim/experiment.hpp"

// Sanitizer instrumentation slows the CPU-bound phases (gather, pack) by
// 2-20x while the modeled wire time stays real-time, which distorts the
// cross-configuration ratios these tests assert.  Under PARDIS_SAN the
// workloads still run — that is the race/UB coverage — but the wall-clock
// shape assertions are disabled.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PARDIS_PERF_ASSERTS 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PARDIS_PERF_ASSERTS 0
#endif
#endif
#ifndef PARDIS_PERF_ASSERTS
#define PARDIS_PERF_ASSERTS 1
#endif

namespace pardis {
namespace {

constexpr bool kPerfAsserts = PARDIS_PERF_ASSERTS != 0;

// The empty-then-branch keeps the trailing `<< msg` attached to the gtest
// macro without an ambiguous-else warning.
#define EXPECT_SHAPE_GT(a, b) \
  if (!kPerfAsserts) {        \
  } else                      \
    EXPECT_GT(a, b)
#define EXPECT_SHAPE_LT(a, b) \
  if (!kPerfAsserts) {        \
  } else                      \
    EXPECT_LT(a, b)

using bench::BenchConfig;
using bench::BenchResult;
using bench::run_config;

net::LinkModel test_link() {
  // 100 MB/s aggregate, 0.46 per-stream, 200 us latency: the bench default.
  return net::LinkModel::atm_scaled(100e6, std::chrono::microseconds(200),
                                    0.46);
}

BenchConfig base_config() {
  BenchConfig cfg;
  cfg.seqlen = 1u << 16;  // 512 KB: solidly bandwidth-bound
  cfg.reps = 5;
  cfg.link = test_link();
  // These tests assert orderings produced by the throttled link model,
  // which only shapes traffic on the simulated backend — pin it so a
  // PARDIS_TRANSPORT=tcp environment doesn't turn them into loopback
  // wall-clock comparisons.
  cfg.transport = transport::Kind::kSim;
  return cfg;
}

TEST(Shape, MultiPortNeverLosesToCentralized) {
  // Paper §3.4: "we have not found a case in which it would underperform
  // the centralized method" (large-argument regime).
  for (const auto& [k, p] : {std::pair{2, 2}, std::pair{4, 8}}) {
    BenchConfig cfg = base_config();
    cfg.client_ranks = k;
    cfg.server_ranks = p;
    cfg.method = orb::TransferMethod::kCentralized;
    const double central = run_config(cfg).client_ms(Phase::kTotal);
    cfg.method = orb::TransferMethod::kMultiPort;
    const double multi = run_config(cfg).client_ms(Phase::kTotal);
    EXPECT_SHAPE_LT(multi, central * 1.15)
        << "K=" << k << " P=" << p << " central=" << central
        << "ms multi=" << multi << "ms";
  }
}

TEST(Shape, MultiPortGainsFromClientThreads) {
  // Paper Table 2: total invocation time decreases as K grows (K=1 is
  // stream-capped; K=4 saturates the aggregate link).
  BenchConfig cfg = base_config();
  cfg.server_ranks = 4;
  cfg.method = orb::TransferMethod::kMultiPort;
  cfg.client_ranks = 1;
  const double k1 = run_config(cfg).client_ms(Phase::kTotal);
  cfg.client_ranks = 4;
  const double k4 = run_config(cfg).client_ms(Phase::kTotal);
  EXPECT_SHAPE_LT(k4, k1 * 0.85) << "k1=" << k1 << "ms k4=" << k4 << "ms";
}

TEST(Shape, CentralizedDoesNotGainFromThreads) {
  // Paper Table 1: adding threads never speeds the centralized method up
  // (the single stream is the bottleneck and gather/scatter only grow).
  BenchConfig cfg = base_config();
  cfg.method = orb::TransferMethod::kCentralized;
  cfg.client_ranks = 2;
  cfg.server_ranks = 1;
  const double small = run_config(cfg).client_ms(Phase::kTotal);
  cfg.client_ranks = 4;
  cfg.server_ranks = 8;
  const double big = run_config(cfg).client_ms(Phase::kTotal);
  EXPECT_SHAPE_GT(big, small * 0.8)
      << "small=" << small << "ms big=" << big << "ms";
}

TEST(Shape, ExitBarrierRevealsSerializedSends) {
  // Paper §3.3's diagnostic: with K=1,P=2 the lone client thread
  // serializes two transfers, so the server's exit barrier absorbs
  // roughly half the send; with K=P=2 the transfers interleave and the
  // barrier nearly vanishes.
  BenchConfig cfg = base_config();
  cfg.method = orb::TransferMethod::kMultiPort;
  cfg.client_ranks = 1;
  cfg.server_ranks = 2;
  const BenchResult serial = run_config(cfg);
  const double send = serial.client_ms(Phase::kSend);
  const double barrier = serial.server_ms(Phase::kBarrier);
  EXPECT_SHAPE_GT(barrier, 0.25 * send);
  EXPECT_SHAPE_LT(barrier, 0.75 * send);

  cfg.client_ranks = 2;
  const BenchResult parallel = run_config(cfg);
  EXPECT_SHAPE_LT(parallel.server_ms(Phase::kBarrier), 0.25 * send);
}

TEST(Shape, EffectiveBandwidthRatioAtPeak) {
  // Paper Figure 4: multi-port peak / centralized peak = 26.7/12.27 ~ 2.2.
  BenchConfig cfg = base_config();
  cfg.client_ranks = 4;
  cfg.server_ranks = 8;
  cfg.seqlen = 1u << 17;
  cfg.method = orb::TransferMethod::kCentralized;
  const double central = run_config(cfg).client_ms(Phase::kTotal);
  cfg.method = orb::TransferMethod::kMultiPort;
  const double multi = run_config(cfg).client_ms(Phase::kTotal);
  const double ratio = central / multi;
  EXPECT_SHAPE_GT(ratio, 1.5) << "ratio=" << ratio;
  EXPECT_SHAPE_LT(ratio, 3.5) << "ratio=" << ratio;
}

TEST(Shape, SmallMessagesConverge) {
  // Paper Figure 4: for small data sizes the two methods are nearly the
  // same (both latency-bound).
  BenchConfig cfg = base_config();
  cfg.client_ranks = 4;
  cfg.server_ranks = 8;
  cfg.seqlen = 16;
  cfg.reps = 10;
  cfg.method = orb::TransferMethod::kCentralized;
  const double central = run_config(cfg).client_ms(Phase::kTotal);
  cfg.method = orb::TransferMethod::kMultiPort;
  const double multi = run_config(cfg).client_ms(Phase::kTotal);
  EXPECT_SHAPE_LT(multi, central * 3.0);
  EXPECT_SHAPE_LT(central, multi * 3.0);
}

TEST(Shape, CentralizedRecvTracksSend) {
  // Paper Table 1: the server's receive time tracks the client's
  // pack+send (the transfers overlap on the wire).
  BenchConfig cfg = base_config();
  cfg.client_ranks = 2;
  cfg.server_ranks = 4;
  cfg.method = orb::TransferMethod::kCentralized;
  const BenchResult r = run_config(cfg);
  const double t_ps = r.client_ms(Phase::kPack) + r.client_ms(Phase::kSend);
  const double t_r = r.server_ms(Phase::kRecv) + r.server_ms(Phase::kUnpack);
  EXPECT_SHAPE_GT(t_r, 0.5 * t_ps);
  EXPECT_SHAPE_LT(t_r, 2.5 * t_ps);
}

}  // namespace
}  // namespace pardis
