// Request pipelining over multiplexed streams (docs/pipelining.md):
// out-of-order completion, window negotiation, credit-based flow control
// with transient shedding, and the collective-future convention — over
// both wire backends.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pardis/sim/scenario.hpp"
#include "pardis/transfer/spmd_client.hpp"
#include "pardis/transfer/spmd_server.hpp"

namespace pardis::transfer {
namespace {

/// Sets an environment knob for one test and restores the default on
/// scope exit (the pipelining knobs are read at bind/serve time).
class EnvVar {
 public:
  EnvVar(const char* name, const std::string& value) : name_(name) {
    setenv(name, value.c_str(), 1);
  }
  ~EnvVar() { unsetenv(name_); }
  EnvVar(const EnvVar&) = delete;
  EnvVar& operator=(const EnvVar&) = delete;

 private:
  const char* name_;
};

/// "square" echoes x*x; "slow" sleeps its argument in milliseconds.
/// Stateless: safe for concurrent dispatch from the server worker pool.
class PipeServant : public SpmdServant {
 public:
  const char* type_id() const override { return "IDL:test/pipe:1.0"; }
  void dispatch(ServerCall& call) override {
    auto dec = call.args();
    if (call.operation() == "square") {
      const cdr::Long x = dec.get_long();
      call.results().put_long(x * x);
    } else if (call.operation() == "slow") {
      const cdr::Long ms = dec.get_long();
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      call.results().put_long(ms);
    } else {
      throw BAD_OPERATION(call.operation());
    }
  }
};

cdr::Long decode_long(const pardis::Bytes& payload) {
  cdr::Decoder dec{BytesView(payload)};
  return dec.get_long();
}

pardis::Bytes encode_long(cdr::Long x) {
  cdr::Encoder enc;
  enc.put_long(x);
  return enc.take();
}

void run_direct(sim::Scenario& scenario, const sim::ScenarioConfig& cfg,
                const std::function<void(DirectBinding&)>& body) {
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        PipeServant servant;
        server.activate("pipe", servant);
        server.serve();
      },
      [&](rts::Communicator&) {
        auto binding = DirectBinding::bind(scenario.orb(), cfg.client.host,
                                           "pipe", "IDL:test/pipe:1.0");
        body(binding);
      },
      "pipe");
}

/// Scoped environment override (process-wide; gtest serializes tests
/// within a binary, so no two overrides race).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

/// Backend x reactor-shard sweep: the pipelining semantics must be
/// identical whether the TCP read side runs one reactor shard or four
/// (the sim backend ignores the knob).
struct PipeParam {
  transport::Kind kind;
  const char* reactors;
};

class PipelineSweep : public ::testing::TestWithParam<PipeParam> {
 protected:
  void SetUp() override {
    reactors_env_.emplace("PARDIS_TCP_REACTORS", GetParam().reactors);
  }

  transport::Kind kind() const { return GetParam().kind; }

 private:
  std::optional<ScopedEnv> reactors_env_;
};

TEST_P(PipelineSweep, FuturesCompleteOutOfOrder) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 1;
  cfg.server.nranks = 1;
  cfg.orb.transport = kind();
  sim::Scenario scenario(cfg);
  run_direct(scenario, cfg, [&](DirectBinding& binding) {
    EXPECT_GE(binding.window(), 8u);
    std::vector<orb::Future<pardis::Bytes>> futures;
    for (cdr::Long i = 0; i < 8; ++i) {
      futures.push_back(binding.invoke_nb("square", encode_long(i)));
    }
    EXPECT_EQ(binding.inflight(), 8u);
    // Collect newest-first: the router stashes replies until their
    // future is asked for.
    for (cdr::Long i = 7; i >= 0; --i) {
      EXPECT_EQ(decode_long(futures[static_cast<std::size_t>(i)].get()),
                i * i);
    }
    EXPECT_EQ(binding.inflight(), 0u);
    binding.unbind();
  });
  EXPECT_EQ(
      scenario.orb().metrics().counter("client.pipeline.requests").value(),
      8);
  EXPECT_EQ(
      scenario.orb().metrics().counter("server.pipeline.requests").value(),
      8);
}

TEST_P(PipelineSweep, WindowIsMinOfClientCapAndServerCredit) {
  EnvVar inflight("PARDIS_MAX_INFLIGHT", "4");
  EnvVar credit("PARDIS_SERVER_CREDIT", "2");
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 1;
  cfg.server.nranks = 1;
  cfg.orb.transport = kind();
  sim::Scenario scenario(cfg);
  run_direct(scenario, cfg, [&](DirectBinding& binding) {
    EXPECT_EQ(binding.window(), 2u);
    // The window gates issue, not correctness: a sliding window deeper
    // than the credit still completes every invocation.
    std::vector<orb::Future<pardis::Bytes>> futures;
    for (cdr::Long i = 0; i < 16; ++i) {
      futures.push_back(binding.invoke_nb("square", encode_long(i)));
      if (futures.size() == 2) {
        EXPECT_EQ(decode_long(futures.front().get()), (i - 1) * (i - 1));
        futures.erase(futures.begin());
      }
    }
    for (auto& f : futures) (void)f.get();
    binding.unbind();
  });
}

TEST_P(PipelineSweep, MixedSyncAndPipelinedShareOneStream) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 1;
  cfg.server.nranks = 1;
  cfg.orb.transport = kind();
  sim::Scenario scenario(cfg);
  run_direct(scenario, cfg, [&](DirectBinding& binding) {
    auto f1 = binding.invoke_nb("square", encode_long(3));
    auto f2 = binding.invoke_nb("square", encode_long(4));
    // A synchronous invoke interleaves with outstanding pipelined
    // requests; the reply router keeps every reply with its request.
    EXPECT_EQ(decode_long(binding.invoke("square", encode_long(5))), 25);
    EXPECT_EQ(decode_long(f2.get()), 16);
    EXPECT_EQ(decode_long(f1.get()), 9);
    binding.unbind();
  });
}

TEST_P(PipelineSweep, SingleClientNeverOverrunsItsCredit) {
  // The server caps its advertised credit at the queue bound, so one
  // honest client cannot overflow the queue on its own: flow control
  // absorbs the burst (blocking issue), nothing is shed.
  EnvVar queue("PARDIS_SERVER_QUEUE", "1");
  EnvVar workers("PARDIS_SERVER_WORKERS", "1");
  EnvVar credit("PARDIS_SERVER_CREDIT", "8");
  EnvVar inflight("PARDIS_MAX_INFLIGHT", "8");
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 1;
  cfg.server.nranks = 1;
  cfg.orb.transport = kind();
  sim::Scenario scenario(cfg);
  run_direct(scenario, cfg, [&](DirectBinding& binding) {
    EXPECT_EQ(binding.window(), 1u) << "credit is capped by the queue";
    std::vector<orb::Future<pardis::Bytes>> futures;
    for (cdr::Long i = 0; i < 4; ++i) {
      futures.push_back(binding.invoke_nb("square", encode_long(i)));
    }
    for (cdr::Long i = 0; i < 4; ++i) {
      EXPECT_EQ(decode_long(futures[static_cast<std::size_t>(i)].get()),
                i * i);
    }
    binding.unbind();
  });
  EXPECT_EQ(
      scenario.orb().metrics().counter("server.pipeline.rejects").value(),
      0);
}

TEST_P(PipelineSweep, OverloadAcrossConnectionsShedsWithTransient) {
  // Credit is per connection but the queue is shared: three connections
  // bursting into a one-slot queue with one busy worker exceed the bound,
  // and the overflow is shed with retryable TRANSIENT rejects while the
  // admitted requests still complete.
  EnvVar queue("PARDIS_SERVER_QUEUE", "1");
  EnvVar workers("PARDIS_SERVER_WORKERS", "1");
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 1;
  cfg.server.nranks = 1;
  cfg.orb.transport = kind();
  sim::Scenario scenario(cfg);
  int ok = 0;
  int shed = 0;
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        PipeServant servant;
        server.activate("pipe", servant);
        server.serve();
      },
      [&](rts::Communicator&) {
        std::vector<DirectBinding> bindings;
        for (int i = 0; i < 3; ++i) {
          bindings.push_back(DirectBinding::bind(scenario.orb(),
                                                 cfg.client.host, "pipe",
                                                 "IDL:test/pipe:1.0"));
        }
        std::vector<orb::Future<pardis::Bytes>> futures;
        for (auto& b : bindings) {
          futures.push_back(b.invoke_nb("slow", encode_long(100)));
        }
        for (auto& f : futures) {
          try {
            (void)f.get();
            ++ok;
          } catch (const TRANSIENT&) {
            ++shed;
          }
        }
        // The queue drained; a retry of the shed work now succeeds.
        EXPECT_EQ(decode_long(bindings[0].invoke("square", encode_long(6))),
                  36);
        for (auto& b : bindings) b.unbind();
      },
      "pipe");
  EXPECT_GE(ok, 1) << "an empty queue must admit the head of the burst";
  EXPECT_GE(shed, 1) << "a full queue must shed instead of blocking";
  EXPECT_EQ(ok + shed, 3);
  EXPECT_EQ(static_cast<int>(scenario.orb()
                                 .metrics()
                                 .counter("server.pipeline.rejects")
                                 .value()),
            shed);
}

TEST_P(PipelineSweep, UnbindWithUncollectedFutureFailsItCleanly) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 1;
  cfg.server.nranks = 1;
  cfg.orb.transport = kind();
  sim::Scenario scenario(cfg);
  orb::Future<pardis::Bytes> orphan;
  run_direct(scenario, cfg, [&](DirectBinding& binding) {
    orphan = binding.invoke_nb("square", encode_long(2));
    binding.unbind();  // closes the stream instead of pooling it
  });
  // The future outlives the binding; its reply can never arrive, so
  // collecting it reports the dead stream instead of hanging.
  EXPECT_THROW((void)orphan.get(), COMM_FAILURE);
}

TEST_P(PipelineSweep, SampledInvocationStitchesClientAndServerSpans) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 1;
  cfg.server.nranks = 1;
  cfg.orb.transport = kind();
  sim::Scenario scenario(cfg);
  auto& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_sample_period(1);
  tracer.enable();
  run_direct(scenario, cfg, [&](DirectBinding& binding) {
    auto f = binding.invoke_nb("square", encode_long(6));
    EXPECT_EQ(decode_long(f.get()), 36);
    binding.unbind();
  });

  tracer.enable(false);
  const auto events = tracer.snapshot();
  tracer.clear();

  // Every per-request span of the one sampled invocation — client and
  // server side — must share one nonzero trace id, with the phases on the
  // right chrome process track.
  std::map<std::uint64_t, std::set<std::string>> by_trace;
  std::map<std::uint64_t, std::set<std::uint32_t>> pids;
  for (const auto& e : events) {
    if (e.trace_id == 0) continue;
    std::string phase = e.name.substr(0, e.name.find(' '));
    by_trace[e.trace_id].insert(phase);
    pids[e.trace_id].insert(e.pid);
    if (phase == "credit_wait" || phase == "wire") {
      EXPECT_EQ(e.pid, obs::kClientPid) << e.name;
    } else if (phase == "queue_wait" || phase == "exec" || phase == "reply") {
      EXPECT_EQ(e.pid, obs::kServerPid) << e.name;
    }
  }
  ASSERT_EQ(by_trace.size(), 1u);
  const auto& phases = by_trace.begin()->second;
  for (const char* want :
       {"credit_wait", "wire", "queue_wait", "exec", "reply"}) {
    EXPECT_TRUE(phases.count(want)) << "missing span: " << want;
  }
  EXPECT_EQ(pids.begin()->second.size(), 2u);  // both processes contributed
}

TEST_P(PipelineSweep, SampledOutRequestsRecordZeroSpans) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 1;
  cfg.server.nranks = 1;
  cfg.orb.transport = kind();
  // Orb construction resets the sampling period from PARDIS_TRACE_SAMPLE,
  // so configure the tracer after the scenario exists.
  sim::Scenario scenario(cfg);
  auto& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_sample_period(1u << 30);
  tracer.enable();
  // Burn the one sampled-in draw of the period so every request below
  // loses the 1-in-N draw.
  EXPECT_NE(tracer.sample_trace_id(), 0u);
  run_direct(scenario, cfg, [&](DirectBinding& binding) {
    std::vector<orb::Future<pardis::Bytes>> futures;
    for (cdr::Long i = 0; i < 4; ++i) {
      futures.push_back(binding.invoke_nb("square", encode_long(i)));
    }
    for (cdr::Long i = 0; i < 4; ++i) {
      EXPECT_EQ(decode_long(futures[static_cast<std::size_t>(i)].get()),
                i * i);
    }
    binding.unbind();
  });

  tracer.enable(false);
  const auto events = tracer.snapshot();
  tracer.clear();
  tracer.set_sample_period(1);
  for (const auto& e : events) {
    EXPECT_EQ(e.trace_id, 0u) << e.name;
    EXPECT_NE(e.cat, "pipeline") << e.name;
  }
  // Phase histograms still fill in — sampling gates spans, not metrics.
  EXPECT_EQ(scenario.orb()
                .metrics()
                .histogram("server.pipeline.exec_us")
                .snapshot()
                .count(),
            4u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, PipelineSweep,
    ::testing::Values(PipeParam{transport::Kind::kSim, "1"},
                      PipeParam{transport::Kind::kTcp, "1"},
                      PipeParam{transport::Kind::kTcp, "4"}),
    [](const ::testing::TestParamInfo<PipeParam>& info) {
      std::string name(transport::to_string(info.param.kind));
      if (info.param.kind == transport::Kind::kTcp) {
        name += std::string("_r") + info.param.reactors;
      }
      return name;
    });

TEST(SpmdPipeline, CollectiveFuturesCollectOutOfOrder) {
  // Paper §2.2: futures of collective invocations may be outstanding
  // together as long as every rank performs the same sequence of get()
  // calls.  Replies arriving for a not-yet-collected future are stashed.
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 2;
  cfg.server.nranks = 2;
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        PipeServant servant;
        server.activate("pipe", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto binding = SpmdBinding::bind(scenario.orb(), comm,
                                         cfg.client.host, "pipe",
                                         "IDL:test/pipe:1.0");
        auto f1 = binding.invoke_nb("square", encode_long(2), {});
        auto f2 = binding.invoke_nb("square", encode_long(3), {});
        auto f3 = binding.invoke_nb("square", encode_long(4), {});
        // Same order on every rank, but not issue order.
        EXPECT_EQ(decode_long(f2.get()), 9);
        EXPECT_EQ(decode_long(f3.get()), 16);
        EXPECT_EQ(decode_long(f1.get()), 4);
        binding.unbind();
      },
      "pipe");
}

}  // namespace
}  // namespace pardis::transfer
