// Tests for the sharded zero-copy I/O engine (src/pardis/io): the
// GatherList/WireMessage iovec builders, engine selection and the
// epoll/io_uring readiness backends, and ReactorPool shard assignment and
// dispatch.  io_uring cases skip cleanly where the kernel (or a seccomp
// policy) denies io_uring_setup.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pardis/common/error.hpp"
#include "pardis/io/engine.hpp"
#include "pardis/io/gather.hpp"
#include "pardis/io/reactor.hpp"
#include "pardis/obs/observability.hpp"
#include "pardis/transport/tcp_transport.hpp"

namespace pardis::io {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string str_of(BytesView v) {
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

/// Scoped environment override (process-wide; gtest serializes tests
/// within a binary, so no two overrides race).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

// ---- GatherList ------------------------------------------------------------

TEST(GatherList, OwnedAndBorrowedSegmentsAccumulate) {
  const Bytes borrowed = bytes_of("world");
  GatherList gl;
  gl.append(bytes_of("hello "));
  gl.append_view(BytesView(borrowed));
  gl.append(Bytes{});  // empty buffers are dropped, not zero-length iovecs
  EXPECT_EQ(gl.total_bytes(), 11u);
  EXPECT_EQ(gl.segment_count(), 2u);
  EXPECT_FALSE(gl.empty());
  EXPECT_EQ(str_of(gl.segment(0)), "hello ");
  EXPECT_EQ(str_of(gl.segment(1)), "world");
}

TEST(GatherList, PadToMirrorsEncoderAlign) {
  GatherList gl;
  gl.append(bytes_of("abc"));
  gl.pad_to(8);
  EXPECT_EQ(gl.total_bytes(), 8u);
  gl.pad_to(8);  // already aligned: no-op
  EXPECT_EQ(gl.total_bytes(), 8u);
  EXPECT_THROW(gl.pad_to(3), BAD_PARAM);   // not a power of two
  EXPECT_THROW(gl.pad_to(16), BAD_PARAM);  // beyond CDR's max alignment
}

TEST(GatherList, FlattenConcatenatesInOrder) {
  GatherList gl;
  gl.append(bytes_of("one"));
  gl.append(bytes_of("two"));
  gl.pad_to(8);
  const Bytes flat = std::move(gl).flatten();
  ASSERT_EQ(flat.size(), 8u);
  EXPECT_EQ(str_of(BytesView(flat).first(6)), "onetwo");
  EXPECT_EQ(flat[6], 0u);
  EXPECT_EQ(flat[7], 0u);
}

/// Reassembles the message a writev call would emit for a given skip.
std::string gather_via_iovecs(const GatherList& gl, std::size_t skip,
                              std::size_t max = 16) {
  std::vector<struct iovec> iov(max);
  const std::size_t n = gl.fill_iovecs(iov.data(), max, skip);
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    out.append(static_cast<const char*>(iov[i].iov_base), iov[i].iov_len);
  }
  return out;
}

TEST(GatherList, FillIovecsSupportsPartialWriteResumption) {
  GatherList gl;
  gl.append(bytes_of("abcd"));
  gl.append(bytes_of("efgh"));
  EXPECT_EQ(gather_via_iovecs(gl, 0), "abcdefgh");
  EXPECT_EQ(gather_via_iovecs(gl, 2), "cdefgh");   // resume mid-segment
  EXPECT_EQ(gather_via_iovecs(gl, 4), "efgh");     // resume on a boundary
  EXPECT_EQ(gather_via_iovecs(gl, 7), "h");
  EXPECT_EQ(gather_via_iovecs(gl, 8), "");
}

TEST(GatherList, FillIovecsHonorsMax) {
  GatherList gl;
  gl.append(bytes_of("ab"));
  gl.append(bytes_of("cd"));
  gl.append(bytes_of("ef"));
  EXPECT_EQ(gather_via_iovecs(gl, 0, 2), "abcd");  // truncated at max
}

// ---- WireMessage -----------------------------------------------------------

TEST(WireMessage, PrefixIsBigEndianAndLeadsTheIovecs) {
  GatherList gl;
  gl.append(bytes_of("payload"));
  WireMessage msg;
  msg.payload = &gl;
  msg.set_prefix(0x01020304u);
  EXPECT_EQ(msg.prefix[0], 0x01u);
  EXPECT_EQ(msg.prefix[3], 0x04u);
  EXPECT_EQ(msg.total_bytes(), 4u + 7u);

  struct iovec iov[8];
  ASSERT_EQ(msg.fill_iovecs(iov, 8, 0), 2u);
  EXPECT_EQ(iov[0].iov_len, 4u);
  EXPECT_EQ(static_cast<const std::uint8_t*>(iov[0].iov_base)[0], 0x01u);
  EXPECT_EQ(iov[1].iov_len, 7u);

  // Resuming past the prefix must skip into the payload segments.
  ASSERT_EQ(msg.fill_iovecs(iov, 8, 6), 1u);
  EXPECT_EQ(std::string(static_cast<const char*>(iov[0].iov_base),
                        iov[0].iov_len),
            "yload");
}

// ---- engine selection ------------------------------------------------------

TEST(IoEngine, EnvSelectsBackend) {
  {
    ScopedEnv env("PARDIS_IO_ENGINE", "epoll");
    EXPECT_EQ(engine_kind_from_env(), EngineKind::kEpoll);
  }
  {
    ScopedEnv env("PARDIS_IO_ENGINE", "kqueue");
    EXPECT_THROW(engine_kind_from_env(), BAD_PARAM);
  }
  {
    // uring where supported; a logged fallback to epoll elsewhere —
    // never an error (the knob is a performance hint).
    ScopedEnv env("PARDIS_IO_ENGINE", "uring");
    const EngineKind kind = engine_kind_from_env();
    if (uring_supported()) {
      EXPECT_EQ(kind, EngineKind::kUring);
    } else {
      EXPECT_EQ(kind, EngineKind::kEpoll);
    }
  }
}

TEST(IoEngine, ToStringNames) {
  EXPECT_STREQ(to_string(EngineKind::kEpoll), "epoll");
  EXPECT_STREQ(to_string(EngineKind::kUring), "uring");
}

/// Always-green report so CI logs show which backend a runner exercised.
TEST(UringSupport, Report) {
  if (uring_supported()) {
    std::puts("io_uring: supported (uring engine tests will run)");
  } else {
    std::puts("io_uring: unsupported on this kernel/policy (uring tests skip)");
  }
}

/// Watch a pipe, deliver a byte, expect readiness; then a pure wake.
void exercise_engine(Engine& engine) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  engine.watch(fds[0]);

  std::vector<int> ready;
  const char byte = 'x';
  ASSERT_EQ(::write(fds[1], &byte, 1), 1);
  std::size_t n = engine.wait(ready);
  // A wake-only iteration is legal; poll until the fd shows up.
  while (n == 0) n = engine.wait(ready);
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(ready[0], fds[0]);

  // Drain, rearm, then interrupt the next wait from another thread.
  char sink = 0;
  ASSERT_EQ(::read(fds[0], &sink, 1), 1);
  engine.rearm(fds[0]);
  std::thread waker([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    engine.wake();
  });
  ready.clear();
  EXPECT_EQ(engine.wait(ready), 0u);
  waker.join();

  engine.unwatch(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(IoEngine, EpollReadinessAndWake) {
  auto engine = make_engine(EngineKind::kEpoll);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->kind(), EngineKind::kEpoll);
  exercise_engine(*engine);
}

TEST(IoEngine, UringReadinessAndWake) {
  if (!uring_supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel/policy";
  }
  auto engine = make_engine(EngineKind::kUring);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->kind(), EngineKind::kUring);
  exercise_engine(*engine);
}

// ---- reactor pool ----------------------------------------------------------

TEST(ReactorPool, RoundRobinAssignment) {
  obs::Observability obs;
  ReactorPool pool(3, EngineKind::kEpoll, &obs, "test.reactor", 3);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.assign().index(), 0u);
  EXPECT_EQ(pool.assign().index(), 1u);
  EXPECT_EQ(pool.assign().index(), 2u);
  EXPECT_EQ(pool.assign().index(), 0u);  // wraps
}

class CountingHandler : public FdHandler {
 public:
  explicit CountingHandler(int fd) : fd_(fd) {}
  void on_readable() override {
    char buf[16];
    while (::read(fd_, buf, sizeof(buf)) > 0) {
    }
    calls.fetch_add(1);
  }
  std::atomic<int> calls{0};

 private:
  int fd_;
};

TEST(ReactorPool, ShardDispatchesReadableFds) {
  obs::Observability obs;
  ReactorPool pool(2, EngineKind::kEpoll, &obs, "test.reactor", 3);

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Nonblocking read end: handlers must consume until EAGAIN.
  ASSERT_EQ(::fcntl(fds[0], F_SETFL, O_NONBLOCK), 0);
  auto handler = std::make_shared<CountingHandler>(fds[0]);
  ReactorShard& shard = pool.assign();
  shard.add(fds[0], handler);
  EXPECT_EQ(pool.watched(), 1u);

  const char byte = 'x';
  ASSERT_EQ(::write(fds[1], &byte, 1), 1);
  for (int spins = 0; handler->calls.load() == 0 && spins < 1000; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(handler->calls.load(), 1);

  shard.remove(fds[0]);
  EXPECT_EQ(pool.watched(), 0u);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---- TCP over io_uring (end to end) ----------------------------------------

TEST(TcpOverUring, RoundTripAndEngineKind) {
  if (!uring_supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel/policy";
  }
  ScopedEnv env("PARDIS_IO_ENGINE", "uring");
  ScopedEnv shards("PARDIS_TCP_REACTORS", "2");
  transport::TcpTransport transport(nullptr);
  EXPECT_EQ(transport.engine_kind(), EngineKind::kUring);
  EXPECT_EQ(transport.reactor_shards(), 2u);

  auto listener = transport.listen("serverhost", 0);
  auto client = transport.connect("clienthost", listener->address());
  auto server = listener->accept();
  ASSERT_NE(server, nullptr);

  client->send(bytes_of("ping over uring"));
  EXPECT_EQ(server->recv_or_throw(), bytes_of("ping over uring"));

  // The gather path: a multi-segment frame must arrive byte-identical.
  GatherList gl;
  gl.append(bytes_of("seg1|"));
  const Bytes borrowed = bytes_of("seg2-borrowed");
  gl.append_view(BytesView(borrowed));
  server->sendv(std::move(gl));
  EXPECT_EQ(client->recv_or_throw(), bytes_of("seg1|seg2-borrowed"));
}

}  // namespace
}  // namespace pardis::io
