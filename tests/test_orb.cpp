// Tests for the broker core: object references (stringification), the
// naming domain, wire-protocol encode/decode, exception marshaling, and
// futures.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "pardis/orb/admin.hpp"
#include "pardis/orb/exceptions.hpp"
#include "pardis/orb/future.hpp"
#include "pardis/orb/naming.hpp"
#include "pardis/orb/objref.hpp"
#include "pardis/orb/orb.hpp"
#include "pardis/orb/protocol.hpp"

namespace pardis::orb {
namespace {

ObjectRef sample_ref(int endpoints = 3) {
  ObjectRef ref;
  ref.type_id = "IDL:diff_object:1.0";
  ref.name = "example";
  ref.host = "powerchallenge";
  for (int i = 0; i < endpoints; ++i) {
    ref.endpoints.push_back(net::Address{"powerchallenge", 40000 + i});
  }
  return ref;
}

// ---- ObjectRef ----------------------------------------------------------------

TEST(ObjectRef, EncodeDecodeRoundTrip) {
  const ObjectRef ref = sample_ref();
  cdr::Encoder enc;
  ref.encode(enc);
  cdr::Decoder dec{BytesView(enc.bytes())};
  EXPECT_EQ(ObjectRef::decode(dec), ref);
}

TEST(ObjectRef, StringifyRoundTrip) {
  const ObjectRef ref = sample_ref(8);
  const std::string s = ref.to_string();
  EXPECT_EQ(s.rfind("PARDIS:", 0), 0u);
  EXPECT_EQ(ObjectRef::from_string(s), ref);
}

TEST(ObjectRef, SpmdSizeIsEndpointCount) {
  EXPECT_EQ(sample_ref(5).spmd_size(), 5);
  EXPECT_FALSE(ObjectRef{}.valid());
}

TEST(ObjectRef, FromStringRejectsGarbage) {
  EXPECT_THROW(ObjectRef::from_string("IOR:0042"), INV_OBJREF);
  EXPECT_THROW(ObjectRef::from_string("PARDIS:zz"), INV_OBJREF);
  EXPECT_THROW(ObjectRef::from_string("PARDIS:00"), INV_OBJREF);
}

// ---- NameService ----------------------------------------------------------------

TEST(NameService, RegisterResolveUnregister) {
  NameService ns;
  ns.register_object(sample_ref());
  auto found = ns.resolve("example");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->type_id, "IDL:diff_object:1.0");
  ns.unregister_object("example", "powerchallenge");
  EXPECT_FALSE(ns.resolve("example").has_value());
}

TEST(NameService, HostFilter) {
  NameService ns;
  ObjectRef a = sample_ref();
  ObjectRef b = sample_ref();
  b.host = "onyx";
  b.endpoints[0].host = "onyx";
  ns.register_object(a);
  ns.register_object(b);
  EXPECT_EQ(ns.resolve("example", "onyx")->host, "onyx");
  EXPECT_EQ(ns.resolve("example", "powerchallenge")->host, "powerchallenge");
  EXPECT_FALSE(ns.resolve("example", "nowhere").has_value());
  EXPECT_TRUE(ns.resolve("example").has_value());  // host optional (§2.1)
}

TEST(NameService, ReRegistrationReplaces) {
  NameService ns;
  ObjectRef ref = sample_ref();
  ns.register_object(ref);
  ref.endpoints[0].port = 50000;
  ns.register_object(ref);
  EXPECT_EQ(ns.resolve("example")->endpoints[0].port, 50000);
  EXPECT_EQ(ns.list().size(), 1u);
}

TEST(NameService, RejectsInvalidRegistrations) {
  NameService ns;
  ObjectRef ref = sample_ref();
  ref.name.clear();
  EXPECT_THROW(ns.register_object(ref), BAD_PARAM);
  ObjectRef no_eps = sample_ref();
  no_eps.endpoints.clear();
  EXPECT_THROW(ns.register_object(no_eps), BAD_PARAM);
}

TEST(NameService, ResolveWaitSeesLateRegistration) {
  NameService ns;
  std::thread registrar([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ns.register_object(sample_ref());
  });
  const auto found =
      ns.resolve_wait("example", "", std::chrono::seconds(5));
  registrar.join();
  EXPECT_TRUE(found.has_value());
}

TEST(NameService, ResolveWaitTimesOut) {
  NameService ns;
  const auto found =
      ns.resolve_wait("ghost", "", std::chrono::milliseconds(50));
  EXPECT_FALSE(found.has_value());
}

// ---- protocol -------------------------------------------------------------------

TEST(Protocol, FramePrologueRoundTrip) {
  cdr::Encoder enc;
  begin_frame(enc, MsgType::kRequest);
  enc.put_long(7);
  const Bytes frame = enc.take();
  const Frame info = parse_frame(frame);
  EXPECT_EQ(info.type, MsgType::kRequest);
  EXPECT_EQ(info.little_endian, host_is_little_endian());
  auto dec = body_decoder(frame, info);
  EXPECT_EQ(dec.get_long(), 7);
}

TEST(Protocol, BadMagicRejected) {
  Bytes junk{'X', 'X', 'X', 'X', 1, 1, 0, 0};
  EXPECT_THROW(parse_frame(junk), MARSHAL);
}

TEST(Protocol, ShortFrameRejected) {
  Bytes junk{'P', 'D'};
  EXPECT_THROW(parse_frame(junk), MARSHAL);
}

TEST(Protocol, UnknownTypeRejected) {
  Bytes junk{'P', 'D', 'I', 'S', 1, 1, 99, 0};
  EXPECT_THROW(parse_frame(junk), MARSHAL);
}

TEST(Protocol, UnbindFrameRoundTrip) {
  cdr::Encoder enc;
  begin_frame(enc, MsgType::kUnbind);
  enc.put_ulong(42);
  const Bytes frame = enc.take();
  const Frame info = parse_frame(frame);
  EXPECT_EQ(info.type, MsgType::kUnbind);
  EXPECT_STREQ(to_string(info.type), "Unbind");
  auto dec = body_decoder(frame, info);
  EXPECT_EQ(dec.get_ulong(), 42u);
}

TEST(Protocol, MuxFrameRoundTrip) {
  cdr::Encoder enc;
  begin_mux_frame(enc, MsgType::kRequest,
                  MuxInfo{77, FrameKind::kData, 3});
  enc.put_long(11);
  const Bytes frame = enc.take();
  const Frame info = parse_frame(frame);
  EXPECT_EQ(info.type, MsgType::kRequest);
  ASSERT_TRUE(info.mux.has_value());
  EXPECT_EQ(info.mux->request_id, 77u);
  EXPECT_EQ(info.mux->kind, FrameKind::kData);
  EXPECT_EQ(info.mux->credit, 3);
  auto dec = body_decoder(frame, info);
  EXPECT_EQ(dec.get_long(), 11);
}

TEST(Protocol, MuxCreditAndRejectKinds) {
  for (auto kind : {FrameKind::kCredit, FrameKind::kReject}) {
    cdr::Encoder enc;
    begin_mux_frame(enc, MsgType::kReply, MuxInfo{9, kind, 1});
    const Bytes frame = enc.take();
    const Frame info = parse_frame(frame);
    ASSERT_TRUE(info.mux.has_value());
    EXPECT_EQ(info.mux->kind, kind);
    EXPECT_EQ(info.mux->credit, 1);
  }
}

TEST(Protocol, PlainFrameHasNoMux) {
  cdr::Encoder enc;
  begin_frame(enc, MsgType::kReply);
  const Bytes frame = enc.take();
  EXPECT_FALSE(parse_frame(frame).mux.has_value());
}

TEST(Protocol, UnknownFlagBitsRejected) {
  cdr::Encoder enc;
  begin_frame(enc, MsgType::kRequest);
  Bytes frame = enc.take();
  frame[7] |= 0x80;  // a flag this version does not understand
  EXPECT_THROW(parse_frame(frame), MARSHAL);
}

TEST(Protocol, MuxBodyStaysAligned) {
  // The mux extension must preserve 8-byte body alignment so body
  // marshaling is identical with and without it.
  cdr::Encoder enc;
  begin_mux_frame(enc, MsgType::kRequest, MuxInfo{1, FrameKind::kData, 0});
  enc.put_double(2.5);
  const Bytes frame = enc.take();
  const Frame info = parse_frame(frame);
  EXPECT_EQ(info.body_offset % 8, 0u);
  auto dec = body_decoder(frame, info);
  EXPECT_EQ(dec.get_double(), 2.5);
}

TEST(Protocol, TraceFrameRoundTrip) {
  cdr::Encoder enc;
  begin_frame(enc, MsgType::kRequest, TraceContext{0xabcd000000000042ull, 17});
  enc.put_double(2.5);
  const Bytes frame = enc.take();
  const Frame info = parse_frame(frame);
  EXPECT_FALSE(info.mux.has_value());
  ASSERT_TRUE(info.trace.has_value());
  EXPECT_EQ(info.trace->trace_id, 0xabcd000000000042ull);
  EXPECT_EQ(info.trace->parent_span, 17u);
  EXPECT_EQ(info.body_offset % 8, 0u);
  auto dec = body_decoder(frame, info);
  EXPECT_EQ(dec.get_double(), 2.5);
}

TEST(Protocol, MuxTraceFrameRoundTrip) {
  cdr::Encoder enc;
  begin_mux_frame(enc, MsgType::kRequest, MuxInfo{77, FrameKind::kData, 3},
                  TraceContext{99, 77});
  enc.put_double(2.5);
  const Bytes frame = enc.take();
  const Frame info = parse_frame(frame);
  ASSERT_TRUE(info.mux.has_value());
  EXPECT_EQ(info.mux->request_id, 77u);
  EXPECT_EQ(info.mux->credit, 3);
  ASSERT_TRUE(info.trace.has_value());
  EXPECT_EQ(info.trace->trace_id, 99u);
  EXPECT_EQ(info.trace->parent_span, 77u);
  EXPECT_EQ(info.body_offset % 8, 0u);
  auto dec = body_decoder(frame, info);
  EXPECT_EQ(dec.get_double(), 2.5);
}

TEST(Protocol, UntracedFrameHasNoTraceAndIdenticalBytes) {
  // Old-peer compatibility: a sender without (or sampling out) tracing
  // emits byte-identical frames to the pre-trace protocol, and a receiver
  // parses them with no trace context and no MARSHAL.
  cdr::Encoder traced_off;
  begin_mux_frame(traced_off, MsgType::kRequest,
                  MuxInfo{5, FrameKind::kData, 1});
  const Bytes frame = traced_off.take();
  EXPECT_EQ(frame[7] & 0x02, 0);  // trace flag bit stays clear
  const Frame info = parse_frame(frame);
  EXPECT_FALSE(info.trace.has_value());
  EXPECT_EQ(info.body_offset, 16u);
}

TEST(Protocol, ZeroTraceIdRejectedBothWays) {
  // Zero means "not sampled" and never goes on the wire: encoding it is a
  // caller bug (BAD_PARAM), decoding it is a peer bug (MARSHAL).
  cdr::Encoder enc;
  EXPECT_THROW(begin_frame(enc, MsgType::kRequest, TraceContext{0, 1}),
               BAD_PARAM);
  cdr::Encoder ok;
  begin_frame(ok, MsgType::kRequest, TraceContext{1, 0});
  Bytes frame = ok.take();
  for (std::size_t i = 8; i < 16; ++i) frame[i] = 0;  // zero the trace id
  EXPECT_THROW(parse_frame(frame), MARSHAL);
}

TEST(Protocol, TraceFrameTruncatedExtensionRejected) {
  cdr::Encoder enc;
  begin_mux_frame(enc, MsgType::kRequest, MuxInfo{5, FrameKind::kData, 1},
                  TraceContext{42, 5});
  Bytes frame = enc.take();
  frame.resize(20);  // shorter than the 16-byte trace extension
  EXPECT_THROW(parse_frame(frame), MARSHAL);
}

TEST(Protocol, UnknownFlagBitsStillRejectedWithTrace) {
  cdr::Encoder enc;
  begin_frame(enc, MsgType::kRequest, TraceContext{42, 5});
  Bytes frame = enc.take();
  frame[7] |= 0x80;
  EXPECT_THROW(parse_frame(frame), MARSHAL);
}

TEST(Protocol, RequestHeaderRoundTrip) {
  RequestHeader h;
  h.request_id = 17;
  h.binding_id = 3;
  h.operation = "diffusion";
  h.response_expected = true;
  h.collective = true;
  h.method = TransferMethod::kMultiPort;
  h.scalar_args = Bytes{1, 2, 3};
  DSeqDescriptor d;
  d.arg_index = 0;
  d.dir = ArgDir::kInOut;
  d.elem_kind = ElemKind::kDouble;
  d.elem_size = 8;
  d.total_length = 10;
  d.src_counts = {6, 4};
  h.dseqs.push_back(d);

  cdr::Encoder enc;
  h.encode(enc);
  cdr::Decoder dec{BytesView(enc.bytes())};
  const RequestHeader back = RequestHeader::decode(dec);
  EXPECT_EQ(back.request_id, 17u);
  EXPECT_EQ(back.operation, "diffusion");
  EXPECT_EQ(back.method, TransferMethod::kMultiPort);
  EXPECT_EQ(back.scalar_args, (Bytes{1, 2, 3}));
  ASSERT_EQ(back.dseqs.size(), 1u);
  EXPECT_EQ(back.dseqs[0], d);
}

TEST(Protocol, DescriptorCountsMustSumToLength) {
  DSeqDescriptor d;
  d.elem_size = 8;
  d.total_length = 10;
  d.src_counts = {4, 4};  // sums to 8, not 10
  cdr::Encoder enc;
  d.encode(enc);
  cdr::Decoder dec{BytesView(enc.bytes())};
  EXPECT_THROW(DSeqDescriptor::decode(dec), MARSHAL);
}

TEST(Protocol, ReplyHeaderCarriesServerStats) {
  ReplyHeader r;
  r.request_id = 9;
  r.status = ReplyStatus::kNoException;
  r.payload = Bytes{5};
  r.server_stats_ms = {1.0, 2.0, 3.0};
  cdr::Encoder enc;
  r.encode(enc);
  cdr::Decoder dec{BytesView(enc.bytes())};
  const ReplyHeader back = ReplyHeader::decode(dec);
  EXPECT_EQ(back.server_stats_ms, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Protocol, BindHandshakeRoundTrip) {
  BindRequest req;
  req.binding_id = 11;
  req.client_host = "onyx";
  req.client_ranks = 4;
  req.object_key = "example";
  req.collective = true;
  cdr::Encoder enc;
  req.encode(enc);
  cdr::Decoder dec{BytesView(enc.bytes())};
  const BindRequest back = BindRequest::decode(dec);
  EXPECT_EQ(back.client_host, "onyx");
  EXPECT_EQ(back.client_ranks, 4u);
  EXPECT_TRUE(back.collective);
}

TEST(Protocol, BindRequestRejectsZeroRanks) {
  BindRequest req;
  req.client_ranks = 0;
  req.client_host = "x";
  req.object_key = "y";
  cdr::Encoder enc;
  req.encode(enc);
  cdr::Decoder dec{BytesView(enc.bytes())};
  EXPECT_THROW(BindRequest::decode(dec), MARSHAL);
}

// ---- exception marshaling -----------------------------------------------------

TEST(Exceptions, SystemExceptionRoundTrip) {
  const Bytes payload =
      marshal_system_exception(OBJECT_NOT_EXIST("gone", Completion::kNo));
  ExceptionRegistry registry;
  try {
    rethrow_reply_exception(ReplyStatus::kSystemException, payload,
                            registry);
    FAIL() << "did not throw";
  } catch (const OBJECT_NOT_EXIST& e) {
    EXPECT_NE(std::string(e.what()).find("gone"), std::string::npos);
    EXPECT_EQ(e.completed(), Completion::kNo);
  }
}

TEST(Exceptions, UnknownSystemKindStillThrowsSystemException) {
  cdr::Encoder enc;
  enc.put_string("SYS:FUTURE_KIND");
  enc.put_string("msg");
  enc.put_octet(0);
  ExceptionRegistry registry;
  EXPECT_THROW(rethrow_reply_exception(ReplyStatus::kSystemException,
                                       enc.bytes(), registry),
               SystemException);
}

TEST(Exceptions, RegisteredUserExceptionRethrownTyped) {
  class Custom : public TypedUserException {
   public:
    int code = 0;
    Custom() : TypedUserException("IDL:Test/Custom:1.0") {}
    void encode_body(cdr::Encoder& enc) const override {
      enc.put_long(code);
    }
  };
  ExceptionRegistry registry;
  registry.register_user_exception(
      "IDL:Test/Custom:1.0", [](cdr::Decoder& dec) {
        Custom e;
        e.code = dec.get_long();
        throw e;
      });
  Custom original;
  original.code = 99;
  const Bytes payload = marshal_user_exception(
      original, [&](cdr::Encoder& enc) { original.encode_body(enc); });
  try {
    rethrow_reply_exception(ReplyStatus::kUserException, payload, registry);
    FAIL() << "did not throw";
  } catch (const Custom& e) {
    EXPECT_EQ(e.code, 99);
  }
}

TEST(Exceptions, UnregisteredUserExceptionFallsBack) {
  const Bytes payload =
      marshal_user_exception(UserException("IDL:Nobody/Knows:1.0", "eh"),
                             nullptr);
  ExceptionRegistry registry;
  try {
    rethrow_reply_exception(ReplyStatus::kUserException, payload, registry);
    FAIL() << "did not throw";
  } catch (const UserException& e) {
    EXPECT_EQ(e.repo_id(), "IDL:Nobody/Knows:1.0");
  }
}

// ---- futures -------------------------------------------------------------------

TEST(Future, PromiseFulfillment) {
  Promise<int> promise;
  Future<int> future = promise.get_future();
  EXPECT_FALSE(future.ready());
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    promise.set_value(42);
  });
  EXPECT_EQ(future.get(), 42);
  EXPECT_TRUE(future.ready());
  EXPECT_EQ(future.get(), 42);  // get is repeatable
  producer.join();
}

TEST(Future, PromiseError) {
  Promise<int> promise;
  Future<int> future = promise.get_future();
  promise.set_exception(std::make_exception_ptr(TIMEOUT("late")));
  EXPECT_THROW(future.get(), TIMEOUT);
  EXPECT_THROW(future.get(), TIMEOUT);  // errors are sticky
}

TEST(Future, DeferredRunsOnceOnFirstGet) {
  int runs = 0;
  auto future = Future<int>::from_deferred([&] {
    ++runs;
    return 7;
  });
  EXPECT_FALSE(future.ready());
  EXPECT_EQ(future.get(), 7);
  EXPECT_EQ(future.get(), 7);
  EXPECT_EQ(runs, 1);
}

TEST(Future, DeferredErrorPropagates) {
  auto future = Future<int>::from_deferred(
      []() -> int { throw BAD_PARAM("deferred boom"); });
  EXPECT_THROW(future.get(), BAD_PARAM);
}

TEST(Future, FromValueIsImmediatelyReady) {
  auto future = Future<std::string>::from_value("done");
  EXPECT_TRUE(future.ready());
  EXPECT_EQ(future.get(), "done");
}

TEST(Future, EmptyFutureGetThrows) {
  Future<int> future;
  EXPECT_FALSE(future.valid());
  EXPECT_THROW(future.get(), BAD_PARAM);
}

TEST(Future, DoubleSettleRejected) {
  Promise<int> promise;
  promise.set_value(1);
  EXPECT_THROW(promise.set_value(2), INTERNAL);
}

TEST(Future, BrokenPromiseSettlesWithCommFailure) {
  Future<int> future;
  {
    Promise<int> promise;
    Promise<int> copy = promise;  // the guard is shared across copies
    future = promise.get_future();
    EXPECT_FALSE(future.ready());
  }  // every Promise dies unsettled
  EXPECT_TRUE(future.ready());
  EXPECT_THROW(future.get(), COMM_FAILURE);
  EXPECT_THROW(future.get(), COMM_FAILURE);  // sticky, like any error
}

TEST(Future, SettledPromiseDeathIsQuiet) {
  Promise<int> promise;
  Future<int> future = promise.get_future();
  promise.set_value(5);
  { Promise<int> grave = std::move(promise); }
  EXPECT_EQ(future.get(), 5);
}

TEST(Future, ConcurrentGetOneCompleterManyWaiters) {
  std::atomic<int> runs{0};
  auto future = Future<int>::from_deferred([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return ++runs;
  });
  std::vector<std::thread> threads;
  std::atomic<int> sum{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] { sum += future.get(); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(runs.load(), 1) << "exactly one caller runs the completer";
  EXPECT_EQ(sum.load(), 4) << "every caller observes the same value";
}

TEST(Future, ReentrantGetFromCompleterDetected) {
  Future<int> future;
  future = Future<int>::from_deferred([&]() -> int {
    future.get();  // would deadlock; must throw INTERNAL instead
    return 0;
  });
  // The INTERNAL from the re-entrant get() propagates out of the
  // completer and settles the future as an error.
  EXPECT_THROW(future.get(), INTERNAL);
}

TEST(FutureVoid, DeferredCompletion) {
  bool ran = false;
  auto future = Future<void>::from_deferred([&] { ran = true; });
  future.get();
  EXPECT_TRUE(ran);
  future.get();  // repeatable
}

TEST(FutureVoid, ErrorPropagates) {
  auto future =
      Future<void>::from_deferred([] { throw COMM_FAILURE("void boom"); });
  EXPECT_THROW(future.get(), COMM_FAILURE);
}

// ---- Orb ----------------------------------------------------------------------

TEST(Orb, BindingIdsAreUnique) {
  auto orb = Orb::create();
  EXPECT_NE(orb->next_binding_id(), orb->next_binding_id());
}

TEST(Orb, ConfigDefaultLinkApplied) {
  OrbConfig config;
  config.default_link = net::LinkModel::atm_scaled(5e6);
  auto orb = Orb::create(config);
  auto acceptor = orb->fabric().listen("b");
  auto client = orb->fabric().connect("a", acceptor->address());
  auto server = acceptor->accept();
  const StopWatch w;
  client->send(Bytes(1u << 19));  // 512 KB at ~5 MB/s -> ~100 ms
  (void)server->recv_or_throw();
  EXPECT_GT(w.elapsed_ms(), 60.0);
}

// ---- Orb transport selection --------------------------------------------------

class OrbTransportSuite : public ::testing::TestWithParam<transport::Kind> {};

TEST_P(OrbTransportSuite, ConfigSelectsBackend) {
  OrbConfig config;
  config.transport = GetParam();
  auto orb = Orb::create(config);
  EXPECT_EQ(orb->transport().kind(), GetParam());
}

TEST_P(OrbTransportSuite, ProtocolFramesTravelOverEitherBackend) {
  OrbConfig config;
  config.transport = GetParam();
  auto orb = Orb::create(config);
  auto listener = orb->transport().listen("b", 0);
  auto client = orb->transport().connect("a", listener->address());
  auto server = listener->accept();
  ASSERT_NE(server, nullptr);
  cdr::Encoder enc;
  begin_frame(enc, MsgType::kRequest);
  enc.put_string("payload");
  client->send(enc.take());
  const Bytes raw = server->recv_or_throw();
  const Frame info = parse_frame(raw);
  EXPECT_EQ(info.type, MsgType::kRequest);
  auto dec = body_decoder(raw, info);
  EXPECT_EQ(dec.get_string(), "payload");
}

TEST_P(OrbTransportSuite, AdminEndpointServesMetricsAndSlowLog) {
  OrbConfig config;
  config.transport = GetParam();
  auto orb = Orb::create(config);
  orb->metrics().counter("test.admin.hits").add(3);
  orb->metrics().histogram("test.admin.lat_us").add(12.5);

  AdminServer admin(*orb, "adminhost");
  const std::string metrics =
      admin_fetch(*orb, "curlhost", admin.endpoint(), "/metrics");
  EXPECT_NE(metrics.find("# TYPE test_admin_hits counter"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("test_admin_hits 3"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE test_admin_lat_us summary"),
            std::string::npos);

  // HTTP-style request lines work too, so curl-shaped tooling can speak
  // to the TCP backend's framing without a custom client.
  const std::string via_get =
      admin_fetch(*orb, "curlhost", admin.endpoint(), "GET /slow HTTP/1.1");
  EXPECT_NE(via_get.find("# slow requests"), std::string::npos) << via_get;

  const std::string unknown =
      admin_fetch(*orb, "curlhost", admin.endpoint(), "/nope");
  EXPECT_NE(unknown.find("unknown path"), std::string::npos);
  admin.shutdown();  // idempotent with the destructor
}

INSTANTIATE_TEST_SUITE_P(
    Backends, OrbTransportSuite,
    ::testing::Values(transport::Kind::kSim, transport::Kind::kTcp),
    [](const ::testing::TestParamInfo<transport::Kind>& info) {
      return std::string(transport::to_string(info.param));
    });

}  // namespace
}  // namespace pardis::orb
