// Unit and property tests for the CDR codec: alignment rules, round trips,
// receiver-makes-right byte-order handling, encapsulations, and hostile
// input.

#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "pardis/cdr/decoder.hpp"
#include "pardis/cdr/encoder.hpp"
#include "pardis/common/error.hpp"

namespace pardis::cdr {
namespace {

// ---- alignment --------------------------------------------------------------

TEST(CdrAlignment, PrimitivesAlignToTheirSize) {
  Encoder enc;
  enc.put_octet(1);    // offset 0
  enc.put_long(2);     // aligns to 4 -> offset 4
  EXPECT_EQ(enc.size(), 8u);
  enc.put_octet(3);    // offset 8
  enc.put_double(4.0); // aligns to 8 -> offset 16
  EXPECT_EQ(enc.size(), 24u);
  enc.put_short(5);    // offset 24 already aligned
  EXPECT_EQ(enc.size(), 26u);
}

TEST(CdrAlignment, PaddingBytesAreZero) {
  Encoder enc;
  enc.put_octet(0xFF);
  enc.put_ulong(0xFFFFFFFF);
  const Bytes& b = enc.bytes();
  EXPECT_EQ(b[1], 0);
  EXPECT_EQ(b[2], 0);
  EXPECT_EQ(b[3], 0);
}

TEST(CdrAlignment, DecoderSkipsSamePadding) {
  Encoder enc;
  enc.put_octet(7);
  enc.put_double(1.25);
  Decoder dec{BytesView(enc.bytes())};
  EXPECT_EQ(dec.get_octet(), 7);
  EXPECT_EQ(dec.get_double(), 1.25);
  EXPECT_TRUE(dec.exhausted());
}

TEST(CdrAlignment, ExplicitAlign) {
  Encoder enc;
  enc.put_octet(1);
  enc.align(8);
  EXPECT_EQ(enc.size(), 8u);
  enc.align(8);  // already aligned: no-op
  EXPECT_EQ(enc.size(), 8u);
}

// ---- scalar round trips -----------------------------------------------------

TEST(CdrRoundTrip, AllScalarKinds) {
  Encoder enc;
  enc.put_octet(0xAB);
  enc.put_boolean(true);
  enc.put_boolean(false);
  enc.put_char('z');
  enc.put_short(-1234);
  enc.put_ushort(65535);
  enc.put_long(-100000);
  enc.put_ulong(4000000000u);
  enc.put_longlong(-1234567890123456789ll);
  enc.put_ulonglong(18000000000000000000ull);
  enc.put_float(1.5f);
  enc.put_double(-2.25);

  Decoder dec{BytesView(enc.bytes())};
  EXPECT_EQ(dec.get_octet(), 0xAB);
  EXPECT_TRUE(dec.get_boolean());
  EXPECT_FALSE(dec.get_boolean());
  EXPECT_EQ(dec.get_char(), 'z');
  EXPECT_EQ(dec.get_short(), -1234);
  EXPECT_EQ(dec.get_ushort(), 65535);
  EXPECT_EQ(dec.get_long(), -100000);
  EXPECT_EQ(dec.get_ulong(), 4000000000u);
  EXPECT_EQ(dec.get_longlong(), -1234567890123456789ll);
  EXPECT_EQ(dec.get_ulonglong(), 18000000000000000000ull);
  EXPECT_EQ(dec.get_float(), 1.5f);
  EXPECT_EQ(dec.get_double(), -2.25);
  EXPECT_TRUE(dec.exhausted());
}

TEST(CdrRoundTrip, ExtremeValues) {
  Encoder enc;
  enc.put_long(std::numeric_limits<Long>::min());
  enc.put_long(std::numeric_limits<Long>::max());
  enc.put_double(std::numeric_limits<double>::infinity());
  enc.put_double(std::numeric_limits<double>::denorm_min());
  Decoder dec{BytesView(enc.bytes())};
  EXPECT_EQ(dec.get_long(), std::numeric_limits<Long>::min());
  EXPECT_EQ(dec.get_long(), std::numeric_limits<Long>::max());
  EXPECT_EQ(dec.get_double(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(dec.get_double(), std::numeric_limits<double>::denorm_min());
}

// ---- strings ----------------------------------------------------------------

TEST(CdrString, RoundTrip) {
  Encoder enc;
  enc.put_string("diffusion");
  enc.put_string("");
  Decoder dec{BytesView(enc.bytes())};
  EXPECT_EQ(dec.get_string(), "diffusion");
  EXPECT_EQ(dec.get_string(), "");
}

TEST(CdrString, LengthIncludesNul) {
  Encoder enc;
  enc.put_string("ab");
  Decoder dec{BytesView(enc.bytes())};
  EXPECT_EQ(dec.get_ulong(), 3u);  // 'a','b','\0'
}

TEST(CdrString, RejectsMissingNul) {
  Encoder enc;
  enc.put_ulong(2);
  enc.put_octet('a');
  enc.put_octet('b');  // no NUL
  Decoder dec{BytesView(enc.bytes())};
  EXPECT_THROW(dec.get_string(), MARSHAL);
}

TEST(CdrString, RejectsZeroLength) {
  Encoder enc;
  enc.put_ulong(0);
  Decoder dec{BytesView(enc.bytes())};
  EXPECT_THROW(dec.get_string(), MARSHAL);
}

// ---- arrays & sequences -------------------------------------------------------

TEST(CdrArray, RoundTripDoubles) {
  std::vector<double> values{1.0, -2.5, 3.75};
  Encoder enc;
  enc.put_array(values.data(), values.size());
  Decoder dec{BytesView(enc.bytes())};
  EXPECT_EQ(dec.get_array<double>(), values);
}

TEST(CdrArray, EmptyArray) {
  Encoder enc;
  enc.put_array(static_cast<const double*>(nullptr), 0);
  Decoder dec{BytesView(enc.bytes())};
  EXPECT_TRUE(dec.get_array<double>().empty());
}

TEST(CdrArray, LengthLimitEnforced) {
  std::vector<std::int32_t> values(100, 7);
  Encoder enc;
  enc.put_array(values.data(), values.size());
  Decoder dec{BytesView(enc.bytes())};
  EXPECT_THROW(dec.get_array<std::int32_t>(50), MARSHAL);
}

TEST(CdrArray, GetArrayIntoMatchingCount) {
  std::vector<float> values{1.f, 2.f, 3.f, 4.f};
  Encoder enc;
  enc.put_array(values.data(), values.size());
  Decoder dec{BytesView(enc.bytes())};
  std::vector<float> out(4);
  dec.get_array_into(out.data(), 4);
  EXPECT_EQ(out, values);
}

TEST(CdrArray, GetArrayIntoCountMismatchThrows) {
  std::vector<float> values{1.f, 2.f};
  Encoder enc;
  enc.put_array(values.data(), values.size());
  Decoder dec{BytesView(enc.bytes())};
  std::vector<float> out(3);
  EXPECT_THROW(dec.get_array_into(out.data(), 3), MARSHAL);
}

TEST(CdrOctets, SequenceRoundTrip) {
  const Bytes payload{9, 8, 7, 6};
  Encoder enc;
  enc.put_octet_sequence(payload);
  Decoder dec{BytesView(enc.bytes())};
  EXPECT_EQ(dec.get_octet_sequence(), payload);
}

// ---- byte order -------------------------------------------------------------

TEST(CdrByteOrder, ForeignOrderScalarsAreSwapped) {
  // Encode in host order, then lie about the source order: the decoder must
  // produce byteswapped values.
  Encoder enc;
  enc.put_ulong(0x01020304u);
  Decoder dec{BytesView(enc.bytes()), !host_is_little_endian()};
  EXPECT_EQ(dec.get_ulong(), 0x04030201u);
}

TEST(CdrByteOrder, ForeignOrderArraysAreSwapped) {
  std::vector<std::uint16_t> values{0x1122, 0x3344};
  Encoder enc;
  enc.put_array(values.data(), values.size());
  Decoder dec{BytesView(enc.bytes()), !host_is_little_endian()};
  // The count prefix itself is also swapped, so rebuild what the decoder
  // sees: count 2 swapped is 0x02000000, which would fail the limit.  Use
  // matching count via handcrafted buffer instead.
  (void)dec;
  Encoder raw;
  raw.put_ulong(byteswap(std::uint32_t{2}));
  raw.put_ushort(0x2211);
  raw.put_ushort(0x4433);
  Decoder dec2{BytesView(raw.bytes()), !host_is_little_endian()};
  EXPECT_EQ(dec2.get_array<std::uint16_t>(), values);
}

TEST(CdrByteOrder, SameOrderIsPassThrough) {
  Encoder enc;
  enc.put_double(6.25);
  Decoder dec{BytesView(enc.bytes()), host_is_little_endian()};
  EXPECT_EQ(dec.get_double(), 6.25);
}

// ---- encapsulation ----------------------------------------------------------

TEST(CdrEncapsulation, RoundTrip) {
  Encoder body;
  body.put_long(42);
  body.put_string("inner");
  Encoder outer;
  outer.put_encapsulation(body.bytes());
  Decoder dec{BytesView(outer.bytes())};
  Decoder inner = dec.get_encapsulation();
  EXPECT_EQ(inner.get_long(), 42);
  EXPECT_EQ(inner.get_string(), "inner");
}

TEST(CdrEncapsulation, EmptyBodyThrows) {
  Encoder outer;
  outer.put_ulong(0);
  Decoder dec{BytesView(outer.bytes())};
  EXPECT_THROW(dec.get_encapsulation(), MARSHAL);
}

// ---- hostile input ----------------------------------------------------------

TEST(CdrHostile, TruncatedScalar) {
  Encoder enc;
  enc.put_ulong(7);
  Bytes bytes = enc.take();
  bytes.resize(2);
  Decoder dec{BytesView(bytes)};
  EXPECT_THROW(dec.get_ulong(), MARSHAL);
}

TEST(CdrHostile, TruncatedString) {
  Encoder enc;
  enc.put_ulong(100);  // claims 100 bytes follow
  enc.put_octet('x');
  Decoder dec{BytesView(enc.bytes())};
  EXPECT_THROW(dec.get_string(), MARSHAL);
}

TEST(CdrHostile, TruncatedArray) {
  Encoder enc;
  enc.put_ulong(1000);
  Decoder dec{BytesView(enc.bytes())};
  EXPECT_THROW(dec.get_array<double>(), MARSHAL);
}

TEST(CdrHostile, EmptyStream) {
  Decoder dec{BytesView()};
  EXPECT_THROW(dec.get_octet(), MARSHAL);
  EXPECT_TRUE(dec.exhausted());
}

// ---- property sweep: random round trips ---------------------------------------

template <typename T>
class CdrScalarSweep : public ::testing::Test {};

using ScalarTypes =
    ::testing::Types<std::int16_t, std::uint16_t, std::int32_t,
                     std::uint32_t, std::int64_t, std::uint64_t, float,
                     double>;
TYPED_TEST_SUITE(CdrScalarSweep, ScalarTypes);

TYPED_TEST(CdrScalarSweep, RandomRoundTrip) {
  std::mt19937_64 rng(1234);
  for (int i = 0; i < 200; ++i) {
    TypeParam value;
    if constexpr (std::is_floating_point_v<TypeParam>) {
      std::uniform_real_distribution<double> dist(-1e9, 1e9);
      value = static_cast<TypeParam>(dist(rng));
    } else {
      value = static_cast<TypeParam>(rng());
    }
    Encoder enc;
    // Random leading octets exercise every alignment phase.
    const int lead = static_cast<int>(rng() % 8);
    for (int j = 0; j < lead; ++j) enc.put_octet(0);
    if constexpr (std::is_same_v<TypeParam, float>) {
      enc.put_float(value);
    } else if constexpr (std::is_same_v<TypeParam, double>) {
      enc.put_double(value);
    } else {
      enc.put_array(&value, 1);
    }
    Decoder dec{BytesView(enc.bytes())};
    for (int j = 0; j < lead; ++j) (void)dec.get_octet();
    if constexpr (std::is_same_v<TypeParam, float>) {
      EXPECT_EQ(dec.get_float(), value);
    } else if constexpr (std::is_same_v<TypeParam, double>) {
      EXPECT_EQ(dec.get_double(), value);
    } else {
      const auto out = dec.get_array<TypeParam>();
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0], value);
    }
  }
}

class CdrArraySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CdrArraySweep, RandomDoubleArrays) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> dist(-1e6, 1e6);
  std::vector<double> values(GetParam());
  for (double& v : values) v = dist(rng);
  Encoder enc;
  enc.put_string("header");
  enc.put_array(values.data(), values.size());
  enc.put_long(-1);
  Decoder dec{BytesView(enc.bytes())};
  EXPECT_EQ(dec.get_string(), "header");
  EXPECT_EQ(dec.get_array<double>(), values);
  EXPECT_EQ(dec.get_long(), -1);
  EXPECT_TRUE(dec.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Sizes, CdrArraySweep,
                         ::testing::Values(0, 1, 2, 3, 7, 64, 1000, 4096));

}  // namespace
}  // namespace pardis::cdr
