// Tests for the distributed-sequence layer: Proportions splitting,
// distribution templates (including the paper's grow/shrink semantics),
// redistribution plans (property-tested), and DSequence behavior.

#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "pardis/common/error.hpp"
#include "pardis/dseq/dsequence.hpp"
#include "pardis/dseq/plan.hpp"
#include "pardis/rts/team.hpp"

namespace pardis::dseq {
namespace {

// ---- Proportions -------------------------------------------------------------

TEST(Proportions, UniformSplitIsBlockwise) {
  const Proportions p;
  EXPECT_EQ(p.split(10, 4), (std::vector<std::uint64_t>{3, 3, 2, 2}));
  EXPECT_EQ(p.split(8, 4), (std::vector<std::uint64_t>{2, 2, 2, 2}));
  EXPECT_EQ(p.split(3, 4), (std::vector<std::uint64_t>{1, 1, 1, 0}));
  EXPECT_EQ(p.split(0, 3), (std::vector<std::uint64_t>{0, 0, 0}));
}

TEST(Proportions, PaperExample2424) {
  // Paper §2.2: Proportions(2,4,2,4) distributes over threads 0..3 in
  // proportions 2:4:2:4.
  const Proportions p(2, 4, 2, 4);
  EXPECT_EQ(p.split(12, 4), (std::vector<std::uint64_t>{2, 4, 2, 4}));
  EXPECT_EQ(p.split(24, 4), (std::vector<std::uint64_t>{4, 8, 4, 8}));
}

TEST(Proportions, LargestRemainderConservesTotal) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const int p = 1 + static_cast<int>(rng() % 16);
    std::vector<double> weights(static_cast<std::size_t>(p));
    for (double& w : weights) w = 0.1 + (rng() % 1000) / 100.0;
    const std::uint64_t n = rng() % 100000;
    const auto counts = Proportions(weights).split(n, p);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(),
                              std::uint64_t{0}),
              n);
  }
}

TEST(Proportions, RejectsBadWeights) {
  EXPECT_THROW(Proportions(std::vector<double>{}), BAD_PARAM);
  EXPECT_THROW(Proportions({1.0, 0.0}), BAD_PARAM);
  EXPECT_THROW(Proportions({1.0, -2.0}), BAD_PARAM);
}

TEST(Proportions, WeightCountMustMatchRanks) {
  EXPECT_THROW(Proportions(1, 2).split(10, 3), BAD_PARAM);
}

// ---- DistTempl ----------------------------------------------------------------

TEST(DistTempl, BlockBasics) {
  const auto d = DistTempl::block(10, 4);
  EXPECT_EQ(d.length(), 10u);
  EXPECT_EQ(d.nranks(), 4);
  EXPECT_EQ(d.count(0), 3u);
  EXPECT_EQ(d.offset(0), 0u);
  EXPECT_EQ(d.offset(1), 3u);
  EXPECT_EQ(d.offset(3), 8u);
  EXPECT_EQ(d.local_range(2), std::make_pair(std::uint64_t{6},
                                             std::uint64_t{8}));
}

TEST(DistTempl, OwnerIsConsistentWithRanges) {
  const auto d = DistTempl::proportional(100, Proportions(1, 3, 2), 3);
  for (std::uint64_t i = 0; i < d.length(); ++i) {
    const int o = d.owner(i);
    const auto [lo, hi] = d.local_range(o);
    EXPECT_GE(i, lo);
    EXPECT_LT(i, hi);
  }
}

TEST(DistTempl, OwnerSkipsEmptyRanks) {
  const auto d = DistTempl::from_counts({0, 5, 0, 5});
  EXPECT_EQ(d.owner(0), 1);
  EXPECT_EQ(d.owner(4), 1);
  EXPECT_EQ(d.owner(5), 3);
  EXPECT_EQ(d.owner(9), 3);
}

TEST(DistTempl, OwnerOutOfRangeThrows) {
  const auto d = DistTempl::block(10, 2);
  EXPECT_THROW(d.owner(10), BAD_PARAM);
}

TEST(DistTempl, RankOutOfRangeThrows) {
  const auto d = DistTempl::block(10, 2);
  EXPECT_THROW(d.count(2), BAD_PARAM);
  EXPECT_THROW(d.offset(-1), BAD_PARAM);
}

TEST(DistTempl, ResizeShrinkDiscardsFromTop) {
  // Paper §2.2: "if a sequence is shrunk, the data above the length value
  // will be discarded".
  const auto d = DistTempl::from_counts({4, 4, 4});
  const auto s = d.resized(6);
  EXPECT_EQ(s.count(0), 4u);
  EXPECT_EQ(s.count(1), 2u);
  EXPECT_EQ(s.count(2), 0u);
  EXPECT_EQ(s.length(), 6u);
}

TEST(DistTempl, ResizeGrowExtendsLastOwner) {
  // Paper §2.2: "new elements will be added to the ownership of the
  // computing thread which owned the last elements of the old sequence".
  const auto d = DistTempl::from_counts({4, 4, 0});  // rank 1 owns the tail
  const auto g = d.resized(12);
  EXPECT_EQ(g.count(0), 4u);
  EXPECT_EQ(g.count(1), 8u);
  EXPECT_EQ(g.count(2), 0u);
}

TEST(DistTempl, ResizeGrowFromEmptyGoesToRankZero) {
  const auto d = DistTempl::block(0, 3);
  const auto g = d.resized(9);
  EXPECT_EQ(g.count(0), 9u);
}

TEST(DistTempl, ResizeToZero) {
  const auto d = DistTempl::block(10, 3);
  const auto z = d.resized(0);
  EXPECT_EQ(z.length(), 0u);
  EXPECT_EQ(z.nranks(), 3);
}

// ---- RedistributionPlan ----------------------------------------------------------

TEST(Plan, IdentityPlanIsLocalOnly) {
  const auto d = DistTempl::block(100, 4);
  const RedistributionPlan plan(d, d);
  for (const Segment& s : plan.segments()) {
    EXPECT_EQ(s.src_rank, s.dst_rank);
  }
}

TEST(Plan, LengthMismatchThrows) {
  EXPECT_THROW(RedistributionPlan(DistTempl::block(10, 2),
                                  DistTempl::block(11, 2)),
               BAD_PARAM);
}

TEST(Plan, KnownIntersection) {
  // src: [0,5) rank0, [5,10) rank1;  dst: [0,2) r0, [2,8) r1, [8,10) r2.
  const RedistributionPlan plan(DistTempl::from_counts({5, 5}),
                                DistTempl::from_counts({2, 6, 2}));
  const auto segs = plan.segments();
  ASSERT_EQ(segs.size(), 4u);
  EXPECT_EQ(segs[0], (Segment{0, 0, 0, 0, 2}));
  EXPECT_EQ(segs[1], (Segment{0, 1, 2, 0, 3}));
  EXPECT_EQ(segs[2], (Segment{1, 1, 0, 3, 3}));
  EXPECT_EQ(segs[3], (Segment{1, 2, 3, 0, 2}));
}

/// Property: a plan covers every element exactly once, with in-bounds
/// offsets on both sides, and moving data through it equals a direct
/// re-slice.
void check_plan_properties(const DistTempl& src, const DistTempl& dst) {
  const RedistributionPlan plan(src, dst);
  const std::uint64_t n = src.length();
  std::vector<int> covered(n, 0);
  for (const Segment& s : plan.segments()) {
    ASSERT_LT(s.src_rank, src.nranks());
    ASSERT_LT(s.dst_rank, dst.nranks());
    ASSERT_LE(s.src_offset + s.count, src.count(s.src_rank));
    ASSERT_LE(s.dst_offset + s.count, dst.count(s.dst_rank));
    ASSERT_GT(s.count, 0u);
    const std::uint64_t global_src = src.offset(s.src_rank) + s.src_offset;
    const std::uint64_t global_dst = dst.offset(s.dst_rank) + s.dst_offset;
    EXPECT_EQ(global_src, global_dst);  // plans preserve global order
    for (std::uint64_t i = 0; i < s.count; ++i) ++covered[global_src + i];
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(covered[i], 1) << "element " << i;
  }
  // incoming/outgoing views partition the segment list.
  std::size_t via_views = 0;
  for (int r = 0; r < src.nranks(); ++r) via_views += plan.outgoing(r).size();
  EXPECT_EQ(via_views, plan.segments().size());
}

TEST(Plan, PropertyRandomDistributions) {
  std::mt19937_64 rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t n = rng() % 5000;
    const int k = 1 + static_cast<int>(rng() % 8);
    const int p = 1 + static_cast<int>(rng() % 8);
    auto random_dist = [&](int ranks) {
      if (rng() % 3 == 0) return DistTempl::block(n, ranks);
      std::vector<double> w(static_cast<std::size_t>(ranks));
      for (double& x : w) x = 0.05 + (rng() % 100) / 10.0;
      return DistTempl::proportional(n, Proportions(w), ranks);
    };
    check_plan_properties(random_dist(k), random_dist(p));
  }
}

TEST(Plan, IncomingCountsMatchDistribution) {
  const auto src = DistTempl::block(1000, 3);
  const auto dst = DistTempl::proportional(1000, Proportions(5, 1, 1, 1), 4);
  const RedistributionPlan plan(src, dst);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(plan.incoming_count(r), dst.count(r));
  }
}

// ---- DSequence ------------------------------------------------------------------

class DSeqTest : public ::testing::TestWithParam<int> {};

TEST_P(DSeqTest, ConstructionDistributesBlockwise) {
  rts::Team team("t", GetParam());
  team.run([](rts::Communicator& comm) {
    DSequence<double> s(comm, 100);
    EXPECT_EQ(s.length(), 100u);
    EXPECT_EQ(s.local_length(),
              DistTempl::block(100, comm.size()).count(comm.rank()));
    // Zero-initialized.
    for (std::size_t i = 0; i < s.local_length(); ++i) {
      EXPECT_EQ(s.local_data()[i], 0.0);
    }
  });
}

TEST_P(DSeqTest, GatherAllReassemblesGlobalOrder) {
  rts::Team team("t", GetParam());
  team.run([](rts::Communicator& comm) {
    DSequence<int> s(comm, 53);
    for (std::size_t i = 0; i < s.local_length(); ++i) {
      s.local_data()[i] = static_cast<int>(s.local_offset() + i);
    }
    const auto all = s.gather_all();
    ASSERT_EQ(all.size(), 53u);
    for (int i = 0; i < 53; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
  });
}

TEST_P(DSeqTest, ElementProxyReadsAndWritesCollectively) {
  rts::Team team("t", GetParam());
  team.run([](rts::Communicator& comm) {
    DSequence<double> s(comm, 20);
    s[7] = 3.5;                    // collective write
    const double v = s[7];         // collective read: every rank sees it
    EXPECT_EQ(v, 3.5);
    EXPECT_EQ(s.get(19), 0.0);
  });
}

TEST_P(DSeqTest, LengthGrowAndShrink) {
  rts::Team team("t", GetParam());
  team.run([](rts::Communicator& comm) {
    DSequence<int> s(comm, 10);
    for (std::size_t i = 0; i < s.local_length(); ++i) {
      s.local_data()[i] = static_cast<int>(s.local_offset() + i);
    }
    s.length(6);  // shrink: discard the top
    auto all = s.gather_all();
    EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3, 4, 5}));
    s.length(9);  // grow: zeros appended at the tail owner
    all = s.gather_all();
    EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3, 4, 5, 0, 0, 0}));
  });
}

TEST_P(DSeqTest, RedistributePreservesContents) {
  const int p = GetParam();
  rts::Team team("t", p);
  team.run([&](rts::Communicator& comm) {
    DSequence<double> s(comm, 97);
    for (std::size_t i = 0; i < s.local_length(); ++i) {
      s.local_data()[i] = static_cast<double>(s.local_offset() + i) * 1.5;
    }
    std::vector<double> w(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) w[static_cast<std::size_t>(r)] = r + 1;
    s.redistribute(Proportions(w));
    EXPECT_EQ(s.local_length(),
              DistTempl::proportional(97, Proportions(w), p)
                  .count(comm.rank()));
    const auto all = s.gather_all();
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(all[i], static_cast<double>(i) * 1.5);
    }
  });
}

TEST_P(DSeqTest, CopyIsDeep) {
  rts::Team team("t", GetParam());
  team.run([](rts::Communicator& comm) {
    DSequence<int> a(comm, 12);
    for (std::size_t i = 0; i < a.local_length(); ++i) a.local_data()[i] = 1;
    DSequence<int> b = a;
    for (std::size_t i = 0; i < b.local_length(); ++i) b.local_data()[i] = 2;
    for (std::size_t i = 0; i < a.local_length(); ++i) {
      EXPECT_EQ(a.local_data()[i], 1);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(TeamSizes, DSeqTest, ::testing::Values(1, 2, 3, 5));

TEST(DSeqConversion, BorrowedMemoryIsNotOwned) {
  // Paper §2.2: "The conversion constructor ... allows the programmer to
  // create a sequence based on his or her memory management scheme, with no
  // data ownership."
  rts::Team team("t", 2);
  team.run([](rts::Communicator& comm) {
    std::vector<double> mine(5, comm.rank() + 1.0);
    {
      DSequence<double> s(comm, mine.size(), mine.data(), /*release=*/false);
      EXPECT_EQ(s.length(), 10u);
      EXPECT_EQ(s.local_data(), mine.data());  // borrows, does not copy
      EXPECT_EQ(s.local_offset(), comm.rank() == 0 ? 0u : 5u);
      // Writes through the sequence hit the user's memory.
      s.local_data()[0] = 42.0;
    }
    EXPECT_EQ(mine[0], 42.0);  // still valid after the sequence died
  });
}

TEST(DSeqConversion, AdoptedMemoryIsFreed) {
  rts::Team team("t", 2);
  team.run([](rts::Communicator& comm) {
    auto* raw = new double[4]{1, 2, 3, 4};
    DSequence<double> s(comm, 4, raw, /*release=*/true);
    EXPECT_EQ(s.length(), 8u);
    EXPECT_EQ(s.local_data(), raw);
    // Destructor frees `raw`; asan/valgrind would flag a double free or leak.
    (void)comm;
  });
}

TEST(DSeqConversion, UnequalLocalLengthsFormValidTemplate) {
  rts::Team team("t", 3);
  team.run([](rts::Communicator& comm) {
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()) * 2 + 1, 7);
    DSequence<int> s(comm, mine.size(), mine.data(), false);
    EXPECT_EQ(s.length(), 1u + 3u + 5u);
    EXPECT_EQ(s.distribution().count(0), 1u);
    EXPECT_EQ(s.distribution().count(1), 3u);
    EXPECT_EQ(s.distribution().count(2), 5u);
  });
}

TEST(DSeqErrors, FromLocalChunkSizeMismatch) {
  rts::Team team("t", 2);
  EXPECT_THROW(
      team.run([](rts::Communicator& comm) {
        (void)DSequence<int>::from_local_chunk(
            comm, DistTempl::block(10, 2), std::vector<int>(3));
      }),
      Exception);
}

TEST(DSeqErrors, TemplateRankCountMustMatchTeam) {
  rts::Team team("t", 2);
  EXPECT_THROW(team.run([](rts::Communicator& comm) {
                 DSequence<int> s(comm, 10, DistTempl::block(10, 3));
               }),
               Exception);
}

}  // namespace
}  // namespace pardis::dseq
