// Unit tests for pardis/common: bytes, endian, config, stats, timing,
// error model.

#include <gtest/gtest.h>

#include <cstdlib>

#include "pardis/common/bytes.hpp"
#include "pardis/common/config.hpp"
#include "pardis/common/endian.hpp"
#include "pardis/common/error.hpp"
#include "pardis/common/stats.hpp"
#include "pardis/common/timing.hpp"

namespace pardis {
namespace {

// ---- bytes -----------------------------------------------------------------

TEST(Bytes, AppendConcatenates) {
  Bytes out{1, 2};
  const Bytes extra{3, 4, 5};
  append(out, extra);
  EXPECT_EQ(out, (Bytes{1, 2, 3, 4, 5}));
}

TEST(Bytes, AppendRawCopiesObjectRepresentation) {
  Bytes out;
  const std::uint32_t v = 0x01020304;
  append_raw(out, v);
  ASSERT_EQ(out.size(), 4u);
  std::uint32_t back;
  std::memcpy(&back, out.data(), 4);
  EXPECT_EQ(back, v);
}

TEST(Bytes, HexRoundTrip) {
  const Bytes data{0x00, 0x7f, 0x80, 0xff, 0xde, 0xad};
  EXPECT_EQ(to_hex(data), "007f80ffdead");
  EXPECT_EQ(from_hex("007f80ffdead"), data);
  EXPECT_EQ(from_hex("007F80FFDEAD"), data);  // upper case accepted
}

TEST(Bytes, FromHexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), BAD_PARAM);
}

TEST(Bytes, FromHexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), BAD_PARAM);
}

TEST(Bytes, FromHexEmpty) { EXPECT_TRUE(from_hex("").empty()); }

TEST(Bytes, HexDumpTruncates) {
  Bytes data(100, 0xab);
  const std::string dump = hex_dump(data, 4);
  EXPECT_EQ(dump, "ab ab ab ab ...");
}

// ---- endian ----------------------------------------------------------------

TEST(Endian, Swap16) { EXPECT_EQ(byteswap(std::uint16_t{0x1234}), 0x3412); }

TEST(Endian, Swap32) {
  EXPECT_EQ(byteswap(std::uint32_t{0x12345678}), 0x78563412u);
}

TEST(Endian, Swap64) {
  EXPECT_EQ(byteswap(std::uint64_t{0x0102030405060708ull}),
            0x0807060504030201ull);
}

TEST(Endian, SwapIsInvolution) {
  const std::uint32_t v = 0xdeadbeef;
  EXPECT_EQ(byteswap(byteswap(v)), v);
}

TEST(Endian, ScalarSwapDouble) {
  const double v = 3.14159;
  const double twice = byteswap_scalar(byteswap_scalar(v));
  EXPECT_EQ(twice, v);
  EXPECT_NE(byteswap_scalar(v), v);
}

TEST(Endian, ScalarSwapSingleByteIsIdentity) {
  EXPECT_EQ(byteswap_scalar(std::uint8_t{0xab}), 0xab);
}

// ---- config ----------------------------------------------------------------

class ConfigTest : public ::testing::Test {
 protected:
  void SetEnv(const char* name, const char* value) {
    setenv(name, value, 1);
    names_.push_back(name);
  }
  void TearDown() override {
    for (const char* name : names_) unsetenv(name);
  }
  std::vector<const char*> names_;
};

TEST_F(ConfigTest, U64Fallback) {
  EXPECT_EQ(env_u64("PARDIS_TEST_UNSET", 42), 42u);
}

TEST_F(ConfigTest, U64Plain) {
  SetEnv("PARDIS_TEST_U64", "123");
  EXPECT_EQ(env_u64("PARDIS_TEST_U64", 0), 123u);
}

TEST_F(ConfigTest, U64Suffixes) {
  SetEnv("PARDIS_TEST_U64", "64k");
  EXPECT_EQ(env_u64("PARDIS_TEST_U64", 0), 64u * 1024);
  SetEnv("PARDIS_TEST_U64", "2m");
  EXPECT_EQ(env_u64("PARDIS_TEST_U64", 0), 2u * 1024 * 1024);
  SetEnv("PARDIS_TEST_U64", "1g");
  EXPECT_EQ(env_u64("PARDIS_TEST_U64", 0), 1024u * 1024 * 1024);
}

TEST_F(ConfigTest, U64Malformed) {
  SetEnv("PARDIS_TEST_U64", "12q");
  EXPECT_THROW(env_u64("PARDIS_TEST_U64", 0), BAD_PARAM);
  SetEnv("PARDIS_TEST_U64", "abc");
  EXPECT_THROW(env_u64("PARDIS_TEST_U64", 0), BAD_PARAM);
}

TEST_F(ConfigTest, DoubleParses) {
  SetEnv("PARDIS_TEST_D", "2.5");
  EXPECT_DOUBLE_EQ(env_double("PARDIS_TEST_D", 0), 2.5);
  EXPECT_DOUBLE_EQ(env_double("PARDIS_TEST_D_UNSET", 1.5), 1.5);
}

TEST_F(ConfigTest, BoolParses) {
  SetEnv("PARDIS_TEST_B", "true");
  EXPECT_TRUE(env_bool("PARDIS_TEST_B", false));
  SetEnv("PARDIS_TEST_B", "0");
  EXPECT_FALSE(env_bool("PARDIS_TEST_B", true));
  SetEnv("PARDIS_TEST_B", "sometimes");
  EXPECT_THROW(env_bool("PARDIS_TEST_B", true), BAD_PARAM);
}

// ---- stats -----------------------------------------------------------------

TEST(RunningStat, Basics) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergePreservesMoments) {
  RunningStat a, b, all;
  for (int i = 0; i < 10; ++i) {
    const double v = i * 1.3;
    (i < 5 ? a : b).add(v);
    all.add(v);
  }
  a += b;
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Stats, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

// ---- timing ----------------------------------------------------------------

TEST(PhaseTimer, AccumulatesPerPhase) {
  PhaseTimer t;
  t.add(Phase::kPack, std::chrono::milliseconds(5));
  t.add(Phase::kPack, std::chrono::milliseconds(7));
  t.add(Phase::kSend, std::chrono::milliseconds(3));
  EXPECT_DOUBLE_EQ(t.ms(Phase::kPack), 12.0);
  EXPECT_DOUBLE_EQ(t.ms(Phase::kSend), 3.0);
  EXPECT_DOUBLE_EQ(t.ms(Phase::kRecv), 0.0);
}

TEST(PhaseTimer, TimeReturnsResult) {
  PhaseTimer t;
  const int x = t.time(Phase::kPack, [] { return 41 + 1; });
  EXPECT_EQ(x, 42);
  EXPECT_GE(t.get(Phase::kPack).count(), 0);
}

TEST(PhaseTimer, PlusEquals) {
  PhaseTimer a, b;
  a.add(Phase::kSend, std::chrono::milliseconds(1));
  b.add(Phase::kSend, std::chrono::milliseconds(2));
  a += b;
  EXPECT_DOUBLE_EQ(a.ms(Phase::kSend), 3.0);
}

TEST(PhaseTimer, ResetClearsAll) {
  PhaseTimer t;
  t.add(Phase::kTotal, std::chrono::seconds(1));
  t.reset();
  EXPECT_DOUBLE_EQ(t.ms(Phase::kTotal), 0.0);
}

TEST(Timing, PhaseNames) {
  EXPECT_STREQ(to_string(Phase::kGather), "gather");
  EXPECT_STREQ(to_string(Phase::kBarrier), "barrier");
}

// ---- error model -----------------------------------------------------------

TEST(Errors, SystemExceptionCarriesKindAndCompletion) {
  try {
    throw COMM_FAILURE("link down", Completion::kMaybe);
  } catch (const SystemException& e) {
    EXPECT_EQ(e.kind(), "COMM_FAILURE");
    EXPECT_EQ(e.completed(), Completion::kMaybe);
    EXPECT_NE(std::string(e.what()).find("link down"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("COMPLETED_MAYBE"),
              std::string::npos);
  }
}

TEST(Errors, HierarchyCatchableAsException) {
  EXPECT_THROW(throw BAD_PARAM("x"), Exception);
  EXPECT_THROW(throw UserException("IDL:X:1.0"), Exception);
}

TEST(Errors, UserExceptionRepoId) {
  const UserException e("IDL:M/E:1.0", "boom");
  EXPECT_EQ(e.repo_id(), "IDL:M/E:1.0");
  EXPECT_STREQ(e.what(), "boom");
}

}  // namespace
}  // namespace pardis
