// Integration tests over pardisc-GENERATED code: the full pipeline
// IDL file -> pardisc (at build time) -> stubs/skeletons -> live scenario.
// Covers the distributed and non-distributed mappings, attributes, structs,
// typed user exceptions, futures, oneway and the `_bind` path — all through
// the generated API only.

#include <gtest/gtest.h>

#include <cmath>
#include <future>

#include "pardis/sim/scenario.hpp"
#include "testsuite.pardis.hpp"

namespace {

using namespace pardis;

class DiffImpl : public TestSuite::POA_diff_object {
 public:
  void diffusion(transfer::ServerCall&, cdr::Long timestep,
                 dseq::DSequence<double>& darray) override {
    if (timestep < 0 || timestep > TestSuite::kMaxTimesteps) {
      throw TestSuite::BadTimestep(timestep, "timestep out of range");
    }
    for (std::size_t i = 0; i < darray.local_length(); ++i) {
      darray.local_data()[i] += static_cast<double>(timestep);
    }
    steps_ += timestep;
  }
  double norm(transfer::ServerCall& call,
              dseq::DSequence<double>& darray) override {
    double local = 0;
    for (std::size_t i = 0; i < darray.local_length(); ++i) {
      local += darray.local_data()[i] * darray.local_data()[i];
    }
    return std::sqrt(rts::allreduce_value(call.comm(), local));
  }
  void set_region(transfer::ServerCall&,
                  const ::TestSuite::Region& r) override {
    region_ = r;
  }
  ::TestSuite::Region get_region(transfer::ServerCall&) override {
    return region_;
  }
  void ping(transfer::ServerCall&, cdr::Long) override { ++pings_; }
  cdr::Long _get_steps_done(transfer::ServerCall&) override {
    return steps_;
  }
  cdr::Double _get_coefficient(transfer::ServerCall&) override {
    return coeff_;
  }
  void _set_coefficient(transfer::ServerCall&, cdr::Double v) override {
    coeff_ = v;
  }

  int pings_ = 0;

 private:
  cdr::Long steps_ = 0;
  cdr::Double coeff_ = 1.0;
  ::TestSuite::Region region_{};
};

class TaggedImpl : public TestSuite::POA_tagged_diff {
 public:
  // tagged_diff's skeleton flattens diff_object's operations.
  void diffusion(transfer::ServerCall&, cdr::Long t,
                 dseq::DSequence<double>& d) override {
    for (std::size_t i = 0; i < d.local_length(); ++i) {
      d.local_data()[i] += static_cast<double>(t);
    }
  }
  double norm(transfer::ServerCall& c,
              dseq::DSequence<double>& d) override {
    double local = 0;
    for (std::size_t i = 0; i < d.local_length(); ++i) {
      local += d.local_data()[i] * d.local_data()[i];
    }
    return std::sqrt(rts::allreduce_value(c.comm(), local));
  }
  void set_region(transfer::ServerCall&,
                  const ::TestSuite::Region&) override {}
  ::TestSuite::Region get_region(transfer::ServerCall&) override {
    return {};
  }
  void ping(transfer::ServerCall&, cdr::Long) override {}
  cdr::Long _get_steps_done(transfer::ServerCall&) override { return 0; }
  cdr::Double _get_coefficient(transfer::ServerCall&) override { return 0; }
  void _set_coefficient(transfer::ServerCall&, cdr::Double) override {}
  std::string tag(transfer::ServerCall&) override { return "v1"; }
};

struct GenShape {
  int k, p;
  orb::TransferMethod method;
};

class GeneratedSweep : public ::testing::TestWithParam<GenShape> {};

TEST_P(GeneratedSweep, DistributedMappingRoundTrip) {
  const GenShape shape = GetParam();
  sim::ScenarioConfig cfg;
  cfg.client.nranks = shape.k;
  cfg.server.nranks = shape.p;
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, cfg.server.host);
        DiffImpl servant;
        server.activate("example", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto diff = TestSuite::diff_object::_spmd_bind(
            scenario.orb(), comm, cfg.client.host, "example");
        diff._transfer_method(shape.method);
        dseq::DSequence<double> darray(comm, 300);
        diff.diffusion(5, darray);
        const auto all = darray.gather_all();
        for (double v : all) EXPECT_EQ(v, 5.0);
        EXPECT_NEAR(diff.norm(darray), std::sqrt(300 * 25.0), 1e-9);
        diff._unbind();
      },
      "example");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeneratedSweep,
    ::testing::Values(GenShape{1, 1, orb::TransferMethod::kCentralized},
                      GenShape{2, 3, orb::TransferMethod::kCentralized},
                      GenShape{2, 3, orb::TransferMethod::kMultiPort},
                      GenShape{4, 2, orb::TransferMethod::kMultiPort}),
    [](const auto& info) {
      return "K" + std::to_string(info.param.k) + "_P" +
             std::to_string(info.param.p) +
             (info.param.method == orb::TransferMethod::kCentralized
                  ? "_central"
                  : "_multiport");
    });

TEST(Generated, FullFeatureScenario) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 2;
  cfg.server.nranks = 3;
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, cfg.server.host);
        DiffImpl servant;
        server.activate("example", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto diff = TestSuite::diff_object::_spmd_bind(
            scenario.orb(), comm, cfg.client.host, "example");

        // Typed user exception with members, through generated code.
        bool caught = false;
        dseq::DSequence<double> darray(comm, 32);
        try {
          diff.diffusion(-3, darray);
        } catch (const TestSuite::BadTimestep& e) {
          caught = true;
          EXPECT_EQ(e.timestep, -3);
          EXPECT_EQ(e.reason, "timestep out of range");
        }
        EXPECT_TRUE(caught);

        // Struct arguments and results.
        TestSuite::Region region{100, 50, 0.75};
        diff.set_region(region);
        EXPECT_EQ(diff.get_region(), region);

        // Attributes (generated _get_/_set_ plumbing).
        diff.coefficient(0.125);
        EXPECT_EQ(diff.coefficient(), 0.125);
        EXPECT_EQ(diff.steps_done(), 0);

        // Non-blocking future with collective get().
        auto fut = diff.diffusion_nb(2, darray);
        EXPECT_FALSE(fut.ready());
        fut.get();
        EXPECT_EQ(darray.gather_all()[0], 2.0);
        EXPECT_EQ(diff.steps_done(), 2);

        // Oneway.
        diff.ping(1);

        // Non-distributed mapping through the collective binding.
        std::vector<double> nd(10, 1.0);
        diff.diffusion(3, nd);
        for (double v : nd) EXPECT_EQ(v, 4.0);

        comm.barrier();
        // Per-thread _bind with the nd mapping (paper §2.1).
        if (comm.rank() == 1) {
          auto mine = TestSuite::diff_object::_bind(
              scenario.orb(), cfg.client.host, "example");
          std::vector<double> local(6, 0.0);
          mine.diffusion(7, local);
          for (double v : local) EXPECT_EQ(v, 7.0);
          // Distributed mapping is rejected on a per-thread binding.
          dseq::DSequence<double> d2(comm, 0);
          (void)d2;
          mine._unbind();
        }
        comm.barrier();
        diff._unbind();
      },
      "example");
}

TEST(Generated, InterfaceInheritanceWorksEndToEnd) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 2;
  cfg.server.nranks = 2;
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, cfg.server.host);
        TaggedImpl servant;
        server.activate("tagged", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto obj = TestSuite::tagged_diff::_spmd_bind(
            scenario.orb(), comm, cfg.client.host, "tagged");
        EXPECT_EQ(obj.tag(), "v1");  // derived operation
        dseq::DSequence<double> darray(comm, 40);
        obj.diffusion(4, darray);  // inherited operation
        EXPECT_EQ(darray.gather_all()[0], 4.0);
        obj._unbind();
      },
      "tagged");
}

TEST(Generated, StringifiedReferenceUsableOutOfBand) {
  // object_to_string/string_to_object style: stringify the reference on
  // the server, parse it elsewhere, verify identity.
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 1;
  cfg.server.nranks = 2;
  sim::Scenario scenario(cfg);
  std::promise<std::string> stringified_promise;
  auto stringified_future = stringified_promise.get_future();
  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, cfg.server.host);
        DiffImpl servant;
        server.activate("example", servant);
        if (comm.rank() == 0) {
          stringified_promise.set_value(server.object_ref().to_string());
        }
        server.serve();
      },
      [&](rts::Communicator& comm) {
        (void)comm;
        auto diff = TestSuite::diff_object::_bind(
            scenario.orb(), cfg.client.host, "example");
        const auto parsed =
            orb::ObjectRef::from_string(stringified_future.get());
        EXPECT_EQ(parsed, diff._object());
        EXPECT_EQ(parsed.spmd_size(), 2);
        diff._unbind();
      },
      "example");
}

}  // namespace

namespace {

// ---- marshal-order stress: mixed directions, multiple dseqs, scalars ----

class ComboImpl : public TestSuite::POA_combo_object {
 public:
  cdr::Double combo(transfer::ServerCall& call, cdr::Long a,
                    dseq::DSequence<double>& x, cdr::Long& doubled,
                    dseq::DSequence<cdr::Long>& y,
                    dseq::DSequence<cdr::Long>& z, std::string& tag,
                    ::TestSuite::Mode mode,
                    ::TestSuite::Region& where) override {
    EXPECT_EQ(mode, TestSuite::Mode::kImplicit);
    // inout dseq: add `a` to every element.
    for (std::size_t i = 0; i < x.local_length(); ++i) {
      x.local_data()[i] += static_cast<double>(a);
    }
    // in dseq: fold into the return value.
    long long sum = 0;
    for (std::size_t i = 0; i < y.local_length(); ++i) {
      sum += y.local_data()[i];
    }
    sum = rts::allreduce_value(call.comm(), sum);
    // out dseq: iota of length 2a.
    z = dseq::DSequence<cdr::Long>(call.comm(),
                                   static_cast<std::uint64_t>(2 * a));
    for (std::size_t i = 0; i < z.local_length(); ++i) {
      z.local_data()[i] = static_cast<cdr::Long>(z.local_offset() + i);
    }
    // scalar outs/inouts.
    doubled = 2 * a;
    tag += "+server";
    where = ::TestSuite::Region{7, 8, 9.5};
    return static_cast<cdr::Double>(sum);
  }
};

class ComboSweep : public ::testing::TestWithParam<orb::TransferMethod> {};

TEST_P(ComboSweep, MixedDirectionsMarshalInOrder) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 2;
  cfg.server.nranks = 3;
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, cfg.server.host);
        ComboImpl servant;
        server.activate("combo", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto proxy = TestSuite::combo_object::_spmd_bind(
            scenario.orb(), comm, cfg.client.host, "combo");
        proxy._transfer_method(GetParam());

        dseq::DSequence<double> x(comm, 50);
        for (std::size_t i = 0; i < x.local_length(); ++i) {
          x.local_data()[i] = 1.0;
        }
        dseq::DSequence<cdr::Long> y(comm, 10);
        for (std::size_t i = 0; i < y.local_length(); ++i) {
          y.local_data()[i] = static_cast<cdr::Long>(y.local_offset() + i);
        }
        dseq::DSequence<cdr::Long> z(comm);
        cdr::Long doubled = 0;
        std::string tag = "client";
        ::TestSuite::Region where{};

        const double sum =
            proxy.combo(4, x, doubled, y, z, tag,
                        TestSuite::Mode::kImplicit, where);

        EXPECT_EQ(sum, 45.0);  // 0+..+9
        EXPECT_EQ(doubled, 8);
        EXPECT_EQ(tag, "client+server");
        EXPECT_EQ(where, (::TestSuite::Region{7, 8, 9.5}));
        const auto xs = x.gather_all();
        for (double v : xs) EXPECT_EQ(v, 5.0);
        ASSERT_EQ(z.length(), 8u);
        const auto zs = z.gather_all();
        for (std::size_t i = 0; i < zs.size(); ++i) {
          EXPECT_EQ(zs[i], static_cast<cdr::Long>(i));
        }

        // Non-blocking variant: outs land at get().
        cdr::Long doubled2 = 0;
        std::string tag2 = "nb";
        ::TestSuite::Region where2{};
        dseq::DSequence<cdr::Long> z2(comm);
        auto fut = proxy.combo_nb(3, x, doubled2, y, z2, tag2,
                                  TestSuite::Mode::kImplicit, where2);
        EXPECT_EQ(fut.get(), 45.0);
        EXPECT_EQ(doubled2, 6);
        EXPECT_EQ(tag2, "nb+server");
        EXPECT_EQ(z2.length(), 6u);
        proxy._unbind();
      },
      "combo");
}

INSTANTIATE_TEST_SUITE_P(Methods, ComboSweep,
                         ::testing::Values(
                             orb::TransferMethod::kCentralized,
                             orb::TransferMethod::kMultiPort),
                         [](const auto& info) {
                           return info.param ==
                                          orb::TransferMethod::kCentralized
                                      ? "centralized"
                                      : "multiport";
                         });

}  // namespace
