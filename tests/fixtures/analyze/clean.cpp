// Fixture: patterns the analyzer must NOT flag.
//
//   * the pump-style reader-duty handoff: take() passes its held unique_lock
//     into pump(), which unlocks it before blocking on the wire;
//   * a thread entry wrapped in a catch-all;
//   * a predicated condition-variable wait.
#include <condition_variable>
#include <mutex>
#include <thread>

#include "pardis/common/ranked_mutex.hpp"

namespace fixture {

struct Wire {
  int recv();
};

class Router {
 public:
  int take() {
    std::unique_lock<pardis::common::RankedMutex> lock(mu_);
    cv_.wait(lock, [this] { return ready_; });
    while (frame_ == 0) {
      pump(lock);
    }
    ready_ = false;
    return frame_;
  }

  void pump(std::unique_lock<pardis::common::RankedMutex>& lock) {
    lock.unlock();
    const int frame = wire_.recv();
    lock.lock();
    frame_ = frame;
    ready_ = true;
  }

 private:
  pardis::common::RankedMutex mu_{
      pardis::common::LockRank::kTransferPipeline};
  std::condition_variable_any cv_;
  Wire wire_;
  bool ready_ = false;
  int frame_ = 0;
};

class SafePoller {
 public:
  SafePoller() {
    thread_ = std::thread([this] {
      try {
        loop();
      } catch (...) {
      }
    });
  }

  void loop();

 private:
  std::thread thread_;
};

}  // namespace fixture
