// Fixture: a detached-thread entry that is neither noexcept nor wrapped in a
// catch-all.  loop() delegates to a function the index cannot resolve, so an
// exception can cross the thread boundary and std::terminate the rank.
#include <thread>

namespace fixture {

void poll_once();

class Poller {
 public:
  Poller() {
    thread_ = std::thread([this] { loop(); });
  }

  void loop() {
    poll_once();
  }

 private:
  std::thread thread_;
};

}  // namespace fixture
