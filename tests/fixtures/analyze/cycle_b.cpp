// Fixture: TU B of a cross-TU lock-order cycle (see cycle_a.cpp).
#include <mutex>

#include "pardis/common/ranked_mutex.hpp"

namespace fixture {

void audit_registry();  // cycle_a.cpp

pardis::common::RankedMutex mailbox_mu{pardis::common::LockRank::kRtsMailbox};

void drain_mailbox() {
  std::lock_guard<pardis::common::RankedMutex> lock(mailbox_mu);
  audit_registry();
}

}  // namespace fixture
