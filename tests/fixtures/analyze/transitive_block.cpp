// Fixture: a blocking primitive two call-graph hops below a guard scope.
// publish -> relay -> wire_flush -> Conn::transmit; the guard is live at the
// publish call site, so the analyzer must walk the chain and flag it.
#include <mutex>

#include "pardis/common/ranked_mutex.hpp"

namespace fixture {

struct Conn {
  void transmit(int payload);
};

pardis::common::RankedMutex table_mu{pardis::common::LockRank::kOrbNaming};

void wire_flush(Conn& c) {
  c.transmit(42);
}

void relay(Conn& c) {
  wire_flush(c);
}

void publish(Conn& c) {
  std::lock_guard<pardis::common::RankedMutex> lock(table_mu);
  relay(c);
}

}  // namespace fixture
