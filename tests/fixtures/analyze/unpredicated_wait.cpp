// Fixture: a condition-variable wait without a predicate.  A spurious wakeup
// or missed notify leaves take() consuming garbage or hanging forever.
#include <condition_variable>
#include <mutex>

#include "pardis/common/ranked_mutex.hpp"

namespace fixture {

class JobQueue {
 public:
  int take() {
    std::unique_lock<pardis::common::RankedMutex> lock(mu_);
    cv_.wait(lock);
    const int out = head_;
    head_ = 0;
    return out;
  }

  void put(int job) {
    {
      std::lock_guard<pardis::common::RankedMutex> lock(mu_);
      head_ = job;
    }
    cv_.notify_one();
  }

 private:
  pardis::common::RankedMutex mu_{pardis::common::LockRank::kRtsTeamError};
  std::condition_variable_any cv_;
  int head_ = 0;
};

}  // namespace fixture
