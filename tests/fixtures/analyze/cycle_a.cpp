// Fixture: TU A of a cross-TU lock-order cycle.
//
// refresh_registry holds kNetFabric(10) and calls drain_mailbox (cycle_b.cpp),
// which acquires kRtsMailbox(60) and then calls back into audit_registry here,
// re-acquiring kNetFabric.  The analyzer must stitch the two TUs together and
// report the kNetFabric -> kRtsMailbox -> kNetFabric cycle plus the rank
// inversions on the back edges.
#include <mutex>

#include "pardis/common/ranked_mutex.hpp"

namespace fixture {

void drain_mailbox();  // cycle_b.cpp

pardis::common::RankedMutex registry_mu{pardis::common::LockRank::kNetFabric};
pardis::common::RankedMutex audit_mu{pardis::common::LockRank::kNetFabric};

void audit_registry() {
  std::lock_guard<pardis::common::RankedMutex> lock(audit_mu);
}

void refresh_registry() {
  std::lock_guard<pardis::common::RankedMutex> lock(registry_mu);
  drain_mailbox();
}

}  // namespace fixture
