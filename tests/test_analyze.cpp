// pardis-analyze behavior: the fixture corpus must reproduce the golden
// diagnostics exactly (no false negatives, no false positives), plus unit
// coverage for the rank-table parser, suppression handling, and the JSON
// report.  PARDIS_ANALYZE_FIXTURES / PARDIS_LOCK_RANKS_DEF are injected by
// the build (tests/CMakeLists.txt).

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze.hpp"

namespace fs = std::filesystem;
using pardis::analyze::Options;
using pardis::analyze::Result;
using pardis::analyze::Source;

namespace {

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  EXPECT_TRUE(in) << "cannot read " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string ranks_path() { return PARDIS_LOCK_RANKS_DEF; }
std::string ranks_text() { return slurp(PARDIS_LOCK_RANKS_DEF); }

Result analyze_sources(const std::vector<Source>& sources,
                       Options options = {}) {
  options.check_unused_ranks = false;
  return pardis::analyze::analyze(sources, ranks_path(), ranks_text(), {},
                                  options);
}

TEST(AnalyzeFixtures, MatchesGoldenDiagnostics) {
  const fs::path dir = PARDIS_ANALYZE_FIXTURES;
  std::vector<Source> sources;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".cpp") {
      sources.emplace_back(entry.path().generic_string(),
                           slurp(entry.path()));
    }
  }
  ASSERT_GE(sources.size(), 6u);

  std::set<std::string> expected;
  std::istringstream golden(slurp(dir / "expected.txt"));
  std::string line;
  while (std::getline(golden, line)) {
    if (line.empty() || line[0] == '#') continue;
    expected.insert(line);
  }
  ASSERT_FALSE(expected.empty());

  const Result result = analyze_sources(sources);
  std::set<std::string> got;
  for (const auto& d : result.findings) {
    got.insert(fs::path(d.file).filename().string() + ":" +
               std::to_string(d.line) + ": [" + d.rule + "]");
  }
  EXPECT_EQ(got, expected);
}

TEST(AnalyzeFixtures, RaisedHopBudgetKeepsCleanFixtureClean) {
  const fs::path dir = PARDIS_ANALYZE_FIXTURES;
  Options options;
  options.max_hops = 6;
  const Result result = analyze_sources(
      {{(dir / "clean.cpp").generic_string(), slurp(dir / "clean.cpp")}},
      options);
  EXPECT_TRUE(result.findings.empty())
      << pardis::lint::format(result.findings.front());
}

TEST(RankTable, ParsesTheRealTable) {
  std::vector<pardis::analyze::Diagnostic> diags;
  const auto table =
      pardis::analyze::parse_rank_table(ranks_path(), ranks_text(), diags);
  EXPECT_TRUE(diags.empty());
  EXPECT_GE(table.entries.size(), 20u);
  EXPECT_TRUE(table.known("kNetFabric"));
  EXPECT_EQ(table.values.at("kCommonLog"), 140);
}

TEST(RankTable, FlagsDuplicateValuesAndMalformedEntries) {
  const std::string text =
      "PARDIS_LOCK_RANK(kA, 10, \"a\")\n"
      "PARDIS_LOCK_RANK(kB, 10, \"b\")\n"
      "PARDIS_LOCK_RANK(kC, xyz, \"c\")\n";
  std::vector<pardis::analyze::Diagnostic> diags;
  pardis::analyze::parse_rank_table("ranks.def", text, diags);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "rank-table-drift");
  EXPECT_EQ(diags[1].rule, "rank-table-drift");
}

TEST(RankTable, UsedButUndeclaredRankDrifts) {
  const std::string src =
      "#include \"pardis/common/ranked_mutex.hpp\"\n"
      "pardis::common::RankedMutex mu{pardis::common::LockRank::kBogus};\n";
  const Result result = analyze_sources({{"drift.cpp", src}});
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "rank-table-drift");
  EXPECT_EQ(result.findings[0].line, 2);
}

TEST(Suppressions, ReasonedAllowSilencesAndIsInventoried) {
  const std::string src =
      "#include <condition_variable>\n"
      "#include \"pardis/common/ranked_mutex.hpp\"\n"
      "struct Q {\n"
      "  void take() {\n"
      "    std::unique_lock<pardis::common::RankedMutex> lock(mu_);\n"
      "    // pardis-lint: allow(wait-without-predicate: callers loop)\n"
      "    cv_.wait(lock);\n"
      "  }\n"
      "  pardis::common::RankedMutex mu_{\n"
      "      pardis::common::LockRank::kRtsMailbox};\n"
      "  std::condition_variable_any cv_;\n"
      "};\n";
  const Result result = analyze_sources({{"q.cpp", src}});
  EXPECT_TRUE(result.findings.empty());
  ASSERT_EQ(result.suppressions.size(), 1u);
  EXPECT_EQ(result.suppressions[0].rule, "wait-without-predicate");
  EXPECT_EQ(result.suppressions[0].reason, "callers loop");
}

TEST(Suppressions, BareAllowIsAnErrorAndSuppressesNothing) {
  const std::string src =
      "#include <condition_variable>\n"
      "#include \"pardis/common/ranked_mutex.hpp\"\n"
      "struct Q {\n"
      "  void take() {\n"
      "    std::unique_lock<pardis::common::RankedMutex> lock(mu_);\n"
      "    // pardis-lint: allow(wait-without-predicate)\n"
      "    cv_.wait(lock);\n"
      "  }\n"
      "  pardis::common::RankedMutex mu_{\n"
      "      pardis::common::LockRank::kRtsMailbox};\n"
      "  std::condition_variable_any cv_;\n"
      "};\n";
  const Result result = analyze_sources({{"q.cpp", src}});
  std::set<std::string> rules;
  for (const auto& d : result.findings) rules.insert(d.rule);
  EXPECT_TRUE(rules.count("missing-reason")) << "bare allow must be flagged";
  EXPECT_TRUE(rules.count("wait-without-predicate"))
      << "bare allow must not suppress";
}

TEST(Report, JsonCarriesFindingsAndCounters) {
  const fs::path dir = PARDIS_ANALYZE_FIXTURES;
  const Result result = analyze_sources(
      {{(dir / "unpredicated_wait.cpp").generic_string(),
        slurp(dir / "unpredicated_wait.cpp")}});
  const std::string json = pardis::analyze::to_json(result);
  EXPECT_NE(json.find("\"wait-without-predicate\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"suppressions\""), std::string::npos);
}

TEST(Rules, ListsAllSeven) {
  const auto& rules = pardis::analyze::rule_names();
  EXPECT_EQ(rules.size(), 7u);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "lock-order-cycle"),
            rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "missing-reason"),
            rules.end());
}

}  // namespace
