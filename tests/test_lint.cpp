// pardis-lint rule coverage: every rule must fire on a fixture that
// violates it and stay quiet on the clean fixture / whitelisted paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using pardis::lint::Diagnostic;
using pardis::lint::scan_source;

bool fired(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

constexpr const char* kNonWhitelistedPath = "src/pardis/rts/fixture.cpp";

// ---- relaxed-order ---------------------------------------------------------

TEST(LintRelaxedOrder, FiresOutsideWhitelist) {
  const auto diags = scan_source(
      kNonWhitelistedPath,
      "void f(std::atomic<int>& a) { a.load(std::memory_order_relaxed); }");
  ASSERT_TRUE(fired(diags, "relaxed-order"));
  EXPECT_EQ(diags.front().line, 1);
}

TEST(LintRelaxedOrder, QuietOnWhitelistedCounterFile) {
  const auto diags = scan_source(
      "src/pardis/obs/metrics.hpp",
      "void f(std::atomic<int>& a) { a.load(std::memory_order_relaxed); }");
  EXPECT_FALSE(fired(diags, "relaxed-order"));
}

TEST(LintRelaxedOrder, QuietInCommentsAndStrings) {
  const auto diags = scan_source(
      kNonWhitelistedPath,
      "// memory_order_relaxed\n"
      "/* memory_order_relaxed */\n"
      "const char* s = \"memory_order_relaxed\";\n");
  EXPECT_FALSE(fired(diags, "relaxed-order"));
}

// ---- raw-mutex -------------------------------------------------------------

TEST(LintRawMutex, FiresOutsideCommon) {
  const auto diags =
      scan_source(kNonWhitelistedPath, "struct S { std::mutex mu_; };");
  EXPECT_TRUE(fired(diags, "raw-mutex"));
}

TEST(LintRawMutex, FiresOnMutexCousins) {
  const auto diags = scan_source(kNonWhitelistedPath,
                                 "std::shared_mutex a;\n"
                                 "std::recursive_mutex b;\n");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "raw-mutex");
  EXPECT_EQ(diags[1].line, 2);
}

TEST(LintRawMutex, AllowedUnderCommon) {
  const auto diags = scan_source("src/pardis/common/ranked_mutex.hpp",
                                 "struct S { std::mutex mu_; };");
  EXPECT_FALSE(fired(diags, "raw-mutex"));
}

TEST(LintRawMutex, IncludeLineDoesNotTrip) {
  const auto diags = scan_source(kNonWhitelistedPath, "#include <mutex>\n");
  EXPECT_TRUE(diags.empty());
}

// ---- blocking-under-lock ---------------------------------------------------

TEST(LintBlockingUnderLock, FiresOnSendUnderGuard) {
  const auto diags = scan_source(
      kNonWhitelistedPath,
      "void f() {\n"
      "  std::lock_guard<common::RankedMutex> lock(mu_);\n"
      "  conn->send(frame);\n"
      "}\n");
  ASSERT_TRUE(fired(diags, "blocking-under-lock"));
  EXPECT_EQ(diags.front().line, 3);
}

TEST(LintBlockingUnderLock, QuietAfterScopeEnds) {
  const auto diags = scan_source(kNonWhitelistedPath,
                                 "void f() {\n"
                                 "  {\n"
                                 "    std::lock_guard<M> lock(mu_);\n"
                                 "    queue_.push_back(x);\n"
                                 "  }\n"
                                 "  conn->send(frame);\n"
                                 "}\n");
  EXPECT_FALSE(fired(diags, "blocking-under-lock"));
}

TEST(LintBlockingUnderLock, QuietAfterExplicitUnlock) {
  const auto diags = scan_source(kNonWhitelistedPath,
                                 "void f() {\n"
                                 "  std::unique_lock<M> lock(mu_);\n"
                                 "  lock.unlock();\n"
                                 "  governor_->transmit(n);\n"
                                 "}\n");
  EXPECT_FALSE(fired(diags, "blocking-under-lock"));
}

TEST(LintBlockingUnderLock, FiresAgainAfterRelock) {
  const auto diags = scan_source(kNonWhitelistedPath,
                                 "void f() {\n"
                                 "  std::unique_lock<M> lock(mu_);\n"
                                 "  lock.unlock();\n"
                                 "  lock.lock();\n"
                                 "  peer.recv();\n"
                                 "}\n");
  EXPECT_TRUE(fired(diags, "blocking-under-lock"));
}

TEST(LintBlockingUnderLock, ConditionWaitIsAllowed) {
  const auto diags =
      scan_source(kNonWhitelistedPath,
                  "void f() {\n"
                  "  std::unique_lock<M> lock(mu_);\n"
                  "  cv_.wait(lock, [&] { return !queue_.empty(); });\n"
                  "}\n");
  EXPECT_FALSE(fired(diags, "blocking-under-lock"));
}

// ---- raw-new-delete --------------------------------------------------------

TEST(LintRawNewDelete, FiresOnBareNewAndDelete) {
  const auto diags = scan_source(kNonWhitelistedPath,
                                 "void f() {\n"
                                 "  int* p = new int(3);\n"
                                 "  delete p;\n"
                                 "}\n");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "raw-new-delete");
  EXPECT_EQ(diags[1].rule, "raw-new-delete");
}

TEST(LintRawNewDelete, SharedPtrWrapperIsAllowed) {
  const auto diags = scan_source(
      kNonWhitelistedPath,
      "auto a = std::shared_ptr<Acceptor>(new Acceptor(*this, address));\n"
      "auto b = std::shared_ptr<Connection>(\n"
      "    new Connection(fwd, bwd, label));\n");
  EXPECT_FALSE(fired(diags, "raw-new-delete"));
}

TEST(LintRawNewDelete, DeletedFunctionIsAllowed) {
  const auto diags = scan_source(
      kNonWhitelistedPath, "struct S { S(const S&) = delete; };");
  EXPECT_FALSE(fired(diags, "raw-new-delete"));
}

// ---- suppression and clean fixture ----------------------------------------

TEST(LintSuppression, AllowCommentSilencesSameAndNextLine) {
  const auto same = scan_source(
      kNonWhitelistedPath,
      "std::mutex mu_;  // pardis-lint: allow(raw-mutex: ffi shim)\n");
  EXPECT_TRUE(same.empty());

  const auto next = scan_source(kNonWhitelistedPath,
                                "// pardis-lint: allow(raw-mutex: ffi shim)\n"
                                "std::mutex mu_;\n");
  EXPECT_TRUE(next.empty());

  const auto other = scan_source(
      kNonWhitelistedPath,
      "std::mutex mu_;  // pardis-lint: allow(relaxed-order: nope)\n");
  EXPECT_TRUE(fired(other, "raw-mutex")) << "wrong rule must not suppress";
}

TEST(LintSuppression, BareAllowIsAnErrorAndSuppressesNothing) {
  const auto diags = scan_source(
      kNonWhitelistedPath,
      "std::mutex mu_;  // pardis-lint: allow(raw-mutex)\n");
  EXPECT_TRUE(fired(diags, "missing-reason")) << "bare allow must be flagged";
  EXPECT_TRUE(fired(diags, "raw-mutex")) << "bare allow must not suppress";
}

TEST(LintSuppression, ListSuppressionsInventoriesReasons) {
  const auto sups = pardis::lint::list_suppressions(
      kNonWhitelistedPath,
      "std::mutex a_;  // pardis-lint: allow(raw-mutex: ffi shim)\n"
      "std::mutex b_;  // pardis-lint: allow(raw-mutex)\n");
  ASSERT_EQ(sups.size(), 2u);
  EXPECT_EQ(sups[0].rule, "raw-mutex");
  EXPECT_EQ(sups[0].reason, "ffi shim");
  EXPECT_TRUE(sups[1].reason.empty());
}

TEST(LintClean, CleanFixturePasses) {
  const auto diags = scan_source(
      kNonWhitelistedPath,
      "#include <mutex>\n"
      "#include \"pardis/common/ranked_mutex.hpp\"\n"
      "struct Box {\n"
      "  void post(Message m) {\n"
      "    {\n"
      "      std::lock_guard<common::RankedMutex> lock(mu_);\n"
      "      queue_.push_back(std::move(m));\n"
      "    }\n"
      "    cv_.notify_all();\n"
      "    peer_->send(std::move(frame));\n"
      "  }\n"
      "  std::unique_ptr<int> owned_ = std::make_unique<int>(1);\n"
      "  common::RankedMutex mu_{common::LockRank::kRtsMailbox};\n"
      "  std::condition_variable_any cv_;\n"
      "};\n");
  EXPECT_TRUE(diags.empty()) << pardis::lint::format(diags.front());
}

// ---- unframed-send ---------------------------------------------------------

TEST(LintUnframedSend, FiresOnDirectSendInTransferLayer) {
  const auto dot = scan_source("src/pardis/transfer/spmd_client.cpp",
                               "void f() { control_.send(frame); }");
  EXPECT_TRUE(fired(dot, "unframed-send"));

  const auto arrow = scan_source("src/pardis/transfer/spmd_server.cpp",
                                 "void f() { control_->send(frame); }");
  EXPECT_TRUE(fired(arrow, "unframed-send"));
}

TEST(LintUnframedSend, QuietInFramingLayerAndOutsideTransfer) {
  const auto framing = scan_source("src/pardis/transfer/framing.hpp",
                                   "void f() { conn.send(enc.take()); }");
  EXPECT_FALSE(fired(framing, "unframed-send"));

  const auto transport = scan_source("src/pardis/transport/tcp_transport.cpp",
                                     "void f() { conn->send(frame); }");
  EXPECT_FALSE(fired(transport, "unframed-send"));
}

TEST(LintUnframedSend, QuietOnFramingHelperCalls) {
  const auto diags = scan_source(
      "src/pardis/transfer/spmd_client.cpp",
      "void f() {\n"
      "  send_frame(*control_, orb::MsgType::kRequest, body);\n"
      "  send_framed(*control_, std::move(frame));\n"
      "}\n");
  EXPECT_FALSE(fired(diags, "unframed-send"));
}

TEST(LintUnframedSend, SuppressibleWithAllow) {
  const auto diags = scan_source(
      "src/pardis/transfer/spmd_client.cpp",
      "// pardis-lint: allow(unframed-send: control channel predates mux)\n"
      "void f() { control_->send(frame); }\n");
  EXPECT_FALSE(fired(diags, "unframed-send"));
}

TEST(LintUnframedSend, FiresOnDirectSendvInTransferLayer) {
  const auto diags = scan_source("src/pardis/transfer/spmd_client.cpp",
                                 "void f() { control_->sendv(std::move(gl)); }");
  EXPECT_TRUE(fired(diags, "unframed-send"));
}

// ---- staging-copy-in-tx ----------------------------------------------------

TEST(LintStagingCopyInTx, FiresOnMemcpyInTransportAndIo) {
  const auto transport =
      scan_source("src/pardis/transport/tcp_transport.cpp",
                  "void f() { std::memcpy(buf, seg.data(), seg.size()); }");
  EXPECT_TRUE(fired(transport, "staging-copy-in-tx"));

  const auto io =
      scan_source("src/pardis/io/reactor.cpp",
                  "void f() { memmove(dst, src, n); }");
  EXPECT_TRUE(fired(io, "staging-copy-in-tx"));
}

TEST(LintStagingCopyInTx, QuietInGatherBuilderAndOutsideTxPaths) {
  const auto gather =
      scan_source("src/pardis/io/gather.cpp",
                  "void f() { std::memcpy(out, seg.data(), seg.size()); }");
  EXPECT_FALSE(fired(gather, "staging-copy-in-tx"));

  const auto cdr =
      scan_source("src/pardis/cdr/encoder.hpp",
                  "void f() { std::memcpy(buf, data, n); }");
  EXPECT_FALSE(fired(cdr, "staging-copy-in-tx"));
}

TEST(LintStagingCopyInTx, QuietInCommentsAndOnNonCallUses) {
  const auto diags = scan_source(
      "src/pardis/transport/tcp_transport.cpp",
      "// transfers complete at memcpy speed\n"
      "const char* s = \"memcpy\";\n");
  EXPECT_FALSE(fired(diags, "staging-copy-in-tx"));
}

TEST(LintStagingCopyInTx, SuppressibleWithReason) {
  const auto diags = scan_source(
      "src/pardis/transport/tcp_transport.cpp",
      "// pardis-lint: allow(staging-copy-in-tx: short-message fallback)\n"
      "void f() { std::memcpy(buf, msg.prefix, sizeof(msg.prefix)); }\n");
  EXPECT_FALSE(fired(diags, "staging-copy-in-tx"));
}

TEST(LintFormat, ClickableDiagnostic) {
  const Diagnostic d{"src/pardis/rts/foo.cpp", 12, "raw-mutex", "msg"};
  EXPECT_EQ(pardis::lint::format(d),
            "src/pardis/rts/foo.cpp:12: [raw-mutex] msg");
}

}  // namespace
