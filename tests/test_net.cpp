// Tests for the simulated network fabric: addressing, accept/connect,
// framed delivery, EOF semantics, and the shared-link governor's bandwidth,
// latency, per-stream cap, and interleaving behavior.

#include <gtest/gtest.h>

#include <thread>

#include "pardis/common/error.hpp"
#include "pardis/net/fabric.hpp"
#include "pardis/obs/metrics.hpp"

namespace pardis::net {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ---- fabric addressing --------------------------------------------------------

TEST(Fabric, ListenAssignsEphemeralPorts) {
  Fabric fabric;
  auto a = fabric.listen("host", 0);
  auto b = fabric.listen("host", 0);
  EXPECT_NE(a->address().port, b->address().port);
  EXPECT_EQ(a->address().host, "host");
}

TEST(Fabric, ExplicitPortHonored) {
  Fabric fabric;
  auto a = fabric.listen("host", 7001);
  EXPECT_EQ(a->address().port, 7001);
}

TEST(Fabric, DoubleBindRejected) {
  Fabric fabric;
  auto a = fabric.listen("host", 7001);
  EXPECT_THROW(fabric.listen("host", 7001), BAD_PARAM);
}

TEST(Fabric, PortFreedAfterAcceptorCloses) {
  Fabric fabric;
  {
    auto a = fabric.listen("host", 7002);
    a->close();
  }
  auto b = fabric.listen("host", 7002);
  EXPECT_EQ(b->address().port, 7002);
}

TEST(Fabric, ConnectToNothingRefused) {
  Fabric fabric;
  EXPECT_THROW(fabric.connect("client", Address{"host", 9999}),
               COMM_FAILURE);
}

TEST(Fabric, EmptyHostRejected) {
  Fabric fabric;
  EXPECT_THROW(fabric.listen("", 0), BAD_PARAM);
}

// ---- connection semantics -------------------------------------------------------

TEST(Connection, FramesArriveIntactAndInOrder) {
  Fabric fabric;
  auto acceptor = fabric.listen("server");
  auto client = fabric.connect("client", acceptor->address());
  auto server = acceptor->accept();
  ASSERT_NE(server, nullptr);

  client->send(bytes_of("frame-1"));
  client->send(bytes_of("frame-2"));
  EXPECT_EQ(server->recv_or_throw(), bytes_of("frame-1"));
  EXPECT_EQ(server->recv_or_throw(), bytes_of("frame-2"));
}

TEST(Connection, FullDuplex) {
  Fabric fabric;
  auto acceptor = fabric.listen("server");
  auto client = fabric.connect("client", acceptor->address());
  auto server = acceptor->accept();
  client->send(bytes_of("ping"));
  EXPECT_EQ(server->recv_or_throw(), bytes_of("ping"));
  server->send(bytes_of("pong"));
  EXPECT_EQ(client->recv_or_throw(), bytes_of("pong"));
}

TEST(Connection, LargeFrameSurvives) {
  Fabric fabric;
  auto acceptor = fabric.listen("server");
  auto client = fabric.connect("client", acceptor->address());
  auto server = acceptor->accept();
  Bytes big(4u << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  client->send(big);
  EXPECT_EQ(server->recv_or_throw(), big);
}

TEST(Connection, EofAfterCloseDrainsQueuedFrames) {
  Fabric fabric;
  auto acceptor = fabric.listen("server");
  auto client = fabric.connect("client", acceptor->address());
  auto server = acceptor->accept();
  client->send(bytes_of("last"));
  client->close();
  EXPECT_EQ(server->recv_or_throw(), bytes_of("last"));  // drained first
  EXPECT_EQ(server->recv(), std::nullopt);               // then EOF
  EXPECT_TRUE(server->eof());
  EXPECT_THROW(server->recv_or_throw(), COMM_FAILURE);
}

TEST(Connection, SendOnClosedThrows) {
  Fabric fabric;
  auto acceptor = fabric.listen("server");
  auto client = fabric.connect("client", acceptor->address());
  client->close();
  client->close();  // idempotent
  EXPECT_THROW(client->send(bytes_of("x")), COMM_FAILURE);
}

TEST(Connection, SendAfterPeerCloseThrows) {
  // close() takes down both directions: the peer's sends must fail loudly
  // rather than queue into a connection nobody reads (the contract every
  // transport::Stream backend shares).
  Fabric fabric;
  auto acceptor = fabric.listen("server");
  auto client = fabric.connect("client", acceptor->address());
  auto server = acceptor->accept();
  server->close();
  EXPECT_THROW(client->send(bytes_of("x")), COMM_FAILURE);
}

TEST(Connection, OwnCloseStillDrainsReceivedFrames) {
  // Frames that already crossed the wire stay readable after a local
  // close; only after the drain does recv() report EOF.
  Fabric fabric;
  auto acceptor = fabric.listen("server");
  auto client = fabric.connect("client", acceptor->address());
  auto server = acceptor->accept();
  client->send(bytes_of("in-flight"));
  server->close();
  EXPECT_EQ(server->recv_or_throw(), bytes_of("in-flight"));
  EXPECT_EQ(server->recv(), std::nullopt);
  EXPECT_TRUE(server->eof());
}

TEST(Connection, TryRecvNonBlocking) {
  Fabric fabric;
  auto acceptor = fabric.listen("server");
  auto client = fabric.connect("client", acceptor->address());
  auto server = acceptor->accept();
  EXPECT_EQ(server->try_recv(), std::nullopt);
  EXPECT_FALSE(server->has_frame());
  client->send(bytes_of("x"));
  EXPECT_TRUE(server->has_frame());
  EXPECT_EQ(server->try_recv(), bytes_of("x"));
}

TEST(Acceptor, TryAcceptNonBlocking) {
  Fabric fabric;
  auto acceptor = fabric.listen("server");
  EXPECT_EQ(acceptor->try_accept(), nullptr);
  auto client = fabric.connect("client", acceptor->address());
  EXPECT_NE(acceptor->try_accept(), nullptr);
}

TEST(Acceptor, CloseWakesBlockedAccept) {
  Fabric fabric;
  auto acceptor = fabric.listen("server");
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    acceptor->close();
  });
  EXPECT_EQ(acceptor->accept(), nullptr);
  closer.join();
}

// ---- link governor --------------------------------------------------------------

TEST(LinkGovernor, UnlimitedIsInstant) {
  LinkGovernor gov(LinkModel::unlimited());
  const StopWatch w;
  gov.transmit(100u << 20);
  EXPECT_LT(w.elapsed_ms(), 5.0);
}

TEST(LinkGovernor, BandwidthPacesTransfers) {
  // 10 MB at 100 MB/s should take ~100 ms.
  LinkModel model;
  model.bandwidth_bps = 100e6;
  LinkGovernor gov(model);
  const StopWatch w;
  gov.transmit(10u << 20);
  const double ms = w.elapsed_ms();
  EXPECT_GT(ms, 80.0);
  EXPECT_LT(ms, 160.0);
}

TEST(LinkGovernor, LatencyChargedPerFrame) {
  LinkModel model;
  model.bandwidth_bps = 1e9;
  model.latency = std::chrono::milliseconds(5);
  LinkGovernor gov(model);
  const StopWatch w;
  gov.transmit(10);
  gov.transmit(10);
  EXPECT_GE(w.elapsed_ms(), 10.0);
}

TEST(LinkGovernor, ConcurrentSendersShareBandwidth) {
  // Two 5 MB transfers over a 100 MB/s link: aggregate ~100 ms, and both
  // must finish at roughly the same time (chunk interleaving).
  LinkModel model;
  model.bandwidth_bps = 100e6;
  LinkGovernor gov(model);
  const auto start = Clock::now();
  double done[2];
  std::thread a([&] {
    gov.transmit(5u << 20);
    done[0] = to_ms(Clock::now() - start);
  });
  std::thread b([&] {
    gov.transmit(5u << 20);
    done[1] = to_ms(Clock::now() - start);
  });
  a.join();
  b.join();
  const double total = std::max(done[0], done[1]);
  EXPECT_GT(total, 85.0);
  EXPECT_LT(total, 200.0);
  // Interleaved: the completion spread is a small fraction of the total.
  EXPECT_LT(std::abs(done[0] - done[1]), 0.35 * total);
}

TEST(LinkGovernor, PerStreamCapLimitsOneStream) {
  // One stream on a 100 MB/s link capped at 40 MB/s per stream: 4 MB takes
  // ~100 ms instead of ~40 ms.
  LinkModel model;
  model.bandwidth_bps = 100e6;
  model.per_stream_bps = 40e6;
  LinkGovernor gov(model);
  StreamPacer pacer;
  const StopWatch w;
  gov.transmit(4u << 20, &pacer);
  const double ms = w.elapsed_ms();
  EXPECT_GT(ms, 85.0);
  EXPECT_LT(ms, 180.0);
}

TEST(LinkGovernor, ManyStreamsSaturateAggregate) {
  // Four capped streams (40 MB/s each) on a 100 MB/s link move 4x2 MB in
  // aggregate-bound ~80 ms, not stream-bound ~200 ms.
  LinkModel model;
  model.bandwidth_bps = 100e6;
  model.per_stream_bps = 40e6;
  LinkGovernor gov(model);
  const StopWatch w;
  std::vector<std::thread> threads;
  std::vector<StreamPacer> pacers(4);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] { gov.transmit(2u << 20, &pacers[i]); });
  }
  for (auto& t : threads) t.join();
  const double ms = w.elapsed_ms();
  EXPECT_GT(ms, 65.0);
  EXPECT_LT(ms, 160.0);
}

TEST(Fabric, LoopbackIsUnlimitedByDefault) {
  Fabric fabric;
  fabric.set_default_link(LinkModel::atm_scaled(1e6));  // slow default
  auto acceptor = fabric.listen("samehost");
  auto client = fabric.connect("samehost", acceptor->address());
  auto server = acceptor->accept();
  const StopWatch w;
  client->send(Bytes(1u << 20));
  (void)server->recv_or_throw();
  EXPECT_LT(w.elapsed_ms(), 50.0);  // 1 MB at 1 MB/s would be ~1000 ms
}

TEST(Fabric, LoopbackSkipsGovernorEntirely) {
  // Same-host traffic without a configured link takes the fast path: no
  // governor is created at all, so no "link.host->host" gauges appear and
  // concurrent same-host senders never serialize on a governor mutex.
  obs::MetricsRegistry metrics;
  Fabric fabric;
  fabric.set_metrics(&metrics);
  auto loop_acc = fabric.listen("samehost");
  auto loop = fabric.connect("samehost", loop_acc->address());
  loop->send(bytes_of("x"));
  auto cross_acc = fabric.listen("b");
  auto cross = fabric.connect("a", cross_acc->address());
  cross->send(bytes_of("x"));
  fabric.collect_metrics();
  bool loopback_gauge = false;
  bool cross_gauge = false;
  for (const auto& s : metrics.snapshot()) {
    if (s.name.rfind("link.samehost->samehost", 0) == 0) {
      loopback_gauge = true;
    }
    if (s.name.rfind("link.a->b", 0) == 0) cross_gauge = true;
  }
  EXPECT_FALSE(loopback_gauge);
  EXPECT_TRUE(cross_gauge);
}

TEST(Fabric, ExplicitLoopbackLinkStillPaces) {
  // An explicitly configured same-host link must keep pacing (the fast
  // path only covers the unconfigured default).
  Fabric fabric;
  LinkModel model;
  model.bandwidth_bps = 10e6;  // 10 MB/s
  fabric.set_link("samehost", "samehost", model);
  auto acceptor = fabric.listen("samehost");
  auto client = fabric.connect("samehost", acceptor->address());
  auto server = acceptor->accept();
  const StopWatch w;
  client->send(Bytes(1u << 20));  // 1 MB -> ~100 ms
  (void)server->recv_or_throw();
  EXPECT_GT(w.elapsed_ms(), 80.0);
}

TEST(Fabric, ConfiguredLinkAppliesToHostPair) {
  Fabric fabric;
  LinkModel model;
  model.bandwidth_bps = 10e6;  // 10 MB/s
  fabric.set_link("a", "b", model);
  auto acceptor = fabric.listen("b");
  auto client = fabric.connect("a", acceptor->address());
  auto server = acceptor->accept();
  const StopWatch w;
  client->send(Bytes(1u << 20));  // 1 MB -> ~100 ms
  (void)server->recv_or_throw();
  const double ms = w.elapsed_ms();
  EXPECT_GT(ms, 80.0);
  EXPECT_LT(ms, 200.0);
}

TEST(Fabric, DirectionsArePacedIndependently) {
  // Full duplex: simultaneous 1 MB each way over a 10 MB/s link completes
  // in ~100 ms (not ~200 ms as half-duplex would).
  Fabric fabric;
  LinkModel model;
  model.bandwidth_bps = 10e6;
  fabric.set_link("a", "b", model);
  auto acceptor = fabric.listen("b");
  auto client = fabric.connect("a", acceptor->address());
  auto server = acceptor->accept();
  const StopWatch w;
  std::thread forward([&] { client->send(Bytes(1u << 20)); });
  std::thread backward([&] { server->send(Bytes(1u << 20)); });
  forward.join();
  backward.join();
  (void)server->recv_or_throw();
  (void)client->recv_or_throw();
  EXPECT_LT(w.elapsed_ms(), 170.0);
}

}  // namespace
}  // namespace pardis::net
