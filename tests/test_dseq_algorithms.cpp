// Tests for the STL-style collective algorithms over distributed
// sequences (the HPC++ PSTL-direction layer, DESIGN.md substitution
// table).

#include <gtest/gtest.h>

#include <cmath>

#include "pardis/dseq/algorithms.hpp"
#include "pardis/rts/team.hpp"

namespace pardis::dseq {
namespace {

class AlgoTest : public ::testing::TestWithParam<int> {};

TEST_P(AlgoTest, FillAndCount) {
  rts::Team team("t", GetParam());
  team.run([](rts::Communicator& comm) {
    DSequence<int> s(comm, 101);
    fill(s, 7);
    EXPECT_EQ(count_if(s, [](int v) { return v == 7; }), 101u);
    EXPECT_EQ(count_if(s, [](int v) { return v != 7; }), 0u);
  });
}

TEST_P(AlgoTest, IotaAndReduce) {
  rts::Team team("t", GetParam());
  team.run([](rts::Communicator& comm) {
    DSequence<long long> s(comm, 100);
    iota(s, 1ll);  // 1..100
    EXPECT_EQ(reduce(s), 5050);
    EXPECT_EQ(reduce(s, 10ll), 5060);
    const auto mx = reduce(s, std::numeric_limits<long long>::min(),
                           [](long long a, long long b) {
                             return a > b ? a : b;
                           });
    EXPECT_EQ(mx, 100);
  });
}

TEST_P(AlgoTest, GenerateAndTransform) {
  rts::Team team("t", GetParam());
  team.run([](rts::Communicator& comm) {
    DSequence<double> in(comm, 64);
    generate(in, [](std::uint64_t g) { return static_cast<double>(g); });
    DSequence<double> out(comm, 64);
    transform(in, out, [](double v) { return v * v; });
    const auto all = out.gather_all();
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(all[i], static_cast<double>(i) * static_cast<double>(i));
    }
  });
}

TEST_P(AlgoTest, DotProduct) {
  rts::Team team("t", GetParam());
  team.run([](rts::Communicator& comm) {
    DSequence<double> a(comm, 50);
    DSequence<double> b(comm, 50);
    fill(a, 2.0);
    iota(b, 1.0);  // 1..50
    EXPECT_DOUBLE_EQ(dot(a, b), 2.0 * 50 * 51 / 2);
  });
}

TEST_P(AlgoTest, MinMaxElementWithIndices) {
  rts::Team team("t", GetParam());
  team.run([](rts::Communicator& comm) {
    DSequence<double> s(comm, 40);
    iota(s, 0.0);
    s.set(17, -5.0);
    s.set(31, 99.0);
    const auto lo = min_element(s);
    EXPECT_EQ(lo.index, 17u);
    EXPECT_EQ(lo.value, -5.0);
    const auto hi = max_element(s);
    EXPECT_EQ(hi.index, 31u);
    EXPECT_EQ(hi.value, 99.0);
  });
}

TEST_P(AlgoTest, ExtremumTieGoesToLowestIndex) {
  rts::Team team("t", GetParam());
  team.run([](rts::Communicator& comm) {
    DSequence<int> s(comm, 30);
    fill(s, 4);  // every element ties
    EXPECT_EQ(min_element(s).index, 0u);
    EXPECT_EQ(max_element(s).index, 0u);
  });
}

TEST_P(AlgoTest, AssignAndAxpy) {
  rts::Team team("t", GetParam());
  team.run([](rts::Communicator& comm) {
    std::vector<double> values(25);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<double>(i);
    }
    DSequence<double> x(comm, 25);
    DSequence<double> y(comm, 25);
    assign(x, values);
    fill(y, 1.0);
    axpy(3.0, x, y);  // y = 1 + 3i
    const auto all = y.gather_all();
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(all[i], 1.0 + 3.0 * static_cast<double>(i));
    }
  });
}

TEST_P(AlgoTest, ReduceSurvivesEmptyChunks) {
  const int p = GetParam();
  rts::Team team("t", p);
  team.run([&](rts::Communicator& comm) {
    // Fewer elements than ranks: some chunks are empty.
    DSequence<int> s(comm, 2);
    fill(s, 5);
    EXPECT_EQ(reduce(s), 10);
    EXPECT_EQ(min_element(s).value, 5);
  });
}

TEST_P(AlgoTest, ReduceOnUnevenDistribution) {
  const int p = GetParam();
  rts::Team team("t", p);
  team.run([&](rts::Communicator& comm) {
    std::vector<double> w(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) w[static_cast<std::size_t>(r)] = r + 1;
    DSequence<long long> s(comm, 60,
                           DistTempl::proportional(60, Proportions(w), p));
    iota(s, 1ll);
    EXPECT_EQ(reduce(s), 60 * 61 / 2);
  });
}

INSTANTIATE_TEST_SUITE_P(TeamSizes, AlgoTest, ::testing::Values(1, 2, 3, 6));

TEST(AlgoErrors, MismatchedDistributionsRejected) {
  rts::Team team("t", 2);
  EXPECT_THROW(team.run([](rts::Communicator& comm) {
                 DSequence<double> a(comm, 10);
                 DSequence<double> b(comm, 10, Proportions(1, 3));
                 (void)dot(a, b);
               }),
               Exception);
}

TEST(AlgoErrors, EmptySequenceExtremumThrows) {
  rts::Team team("t", 2);
  EXPECT_THROW(team.run([](rts::Communicator& comm) {
                 DSequence<int> s(comm, 0);
                 (void)min_element(s);
               }),
               Exception);
}

TEST(AlgoErrors, AssignSizeMismatchRejected) {
  rts::Team team("t", 2);
  EXPECT_THROW(team.run([](rts::Communicator& comm) {
                 DSequence<int> s(comm, 10);
                 assign(s, std::vector<int>(9));
               }),
               Exception);
}

TEST(AlgoLocal, ForEachLocalSeesGlobalIndices) {
  rts::Team team("t", 3);
  team.run([](rts::Communicator& comm) {
    DSequence<std::uint64_t> s(comm, 20);
    for_each_local(s, [](std::uint64_t g, std::uint64_t& v) { v = g; });
    const auto span = local_span(s);
    for (std::size_t i = 0; i < span.size(); ++i) {
      EXPECT_EQ(span[i], s.local_offset() + i);
    }
  });
}

}  // namespace
}  // namespace pardis::dseq
