// The benchmark-summary layer: histogram quantile estimation (obs) and the
// BENCH_*.json serialization helpers (bench/bench_json.hpp) that the CI
// bench gate (tools/bench_check.py) parses.
//
// The quantile tests pin down a regression: the old interpolation returned
// `2^(i-1) * 2^frac` with frac hitting exactly 1.0 whenever the target rank
// was the last sample of its bucket, which pinned p99 to the bucket's upper
// bound — a power of two (or, clamped, the observed max) regardless of
// where the samples actually sat.  Committed baselines showed it: p99 of
// 2048/4096/4608 exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "pardis/obs/metrics.hpp"

namespace pardis::bench {
namespace {

obs::MetricsRegistry::Sample histogram_sample(obs::MetricsRegistry& registry,
                                              const std::string& name) {
  for (auto& s : registry.snapshot()) {
    if (s.name == name) return s;
  }
  return {};
}

TEST(HistogramQuantile, EmptyHistogramReportsZero) {
  obs::Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.999), 0.0);
}

TEST(HistogramQuantile, SingleSampleReturnsThatSample) {
  obs::Histogram h;
  h.add(300.0);
  // One sample: every quantile clamps to the only observed value.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 300.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 300.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 300.0);
}

TEST(HistogramQuantile, EstimateStaysStrictlyInsideTheBucket) {
  // 99 samples at ~300 (bucket (256, 512]) plus one at 5000.  p50 lands on
  // the last rank of the 300s bucket; the old interpolation collapsed it
  // to exactly 512.0 (the bucket's upper bound).  The fixed estimator must
  // stay strictly below the bucket bound.
  obs::Histogram h;
  for (int i = 0; i < 99; ++i) h.add(300.0);
  h.add(5000.0);
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 256.0);
  EXPECT_LT(p50, 512.0);
}

TEST(HistogramQuantile, TailQuantileNotPinnedToPowerOfTwo) {
  // All 1000 samples in one bucket: p99 and p999 must interpolate inside
  // (2048, 4096], not return 4096 exactly, and must respect the observed
  // max clamp.
  obs::Histogram h;
  for (int i = 0; i < 1000; ++i) h.add(3000.0);
  for (const double q : {0.5, 0.99, 0.999}) {
    const double est = h.quantile(q);
    EXPECT_GT(est, 2048.0) << "q=" << q;
    EXPECT_LT(est, 4096.0) << "q=" << q;
    EXPECT_LE(est, 3000.0) << "q=" << q;  // clamped to the observed max
  }
}

TEST(HistogramQuantile, QuantilesAreMonotone) {
  obs::Histogram h;
  for (int i = 1; i <= 2000; ++i) h.add(static_cast<double>(i));
  double prev = 0.0;
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double est = h.quantile(q);
    EXPECT_GE(est, prev) << "q=" << q;
    EXPECT_GE(est, h.quantile(0.0)) << "q=" << q;
    prev = est;
  }
  EXPECT_LE(prev, 2000.0);
}

TEST(HistogramQuantile, ClampedToObservedRange) {
  obs::Histogram h;
  h.add(10.0);
  h.add(12.0);
  h.add(14.0);
  // Bucket (8, 16] spans beyond the observed extremes; estimates must not.
  EXPECT_GE(h.quantile(0.0), 10.0);
  EXPECT_LE(h.quantile(1.0), 14.0);
}

TEST(HistogramQuantile, SubUnitBucketInterpolatesLinearly) {
  // Bucket 0 covers (0, 1] and is linear, not log-scaled.
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) h.add(0.5);
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 1.0);
  EXPECT_DOUBLE_EQ(p50, 0.5);  // clamped to the observed range
}

TEST(MetricsSnapshot, CarriesP999) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("lat");
  for (int i = 0; i < 1000; ++i) h.add(100.0);
  h.add(9000.0);
  const auto s = histogram_sample(registry, "lat");
  EXPECT_EQ(s.count, 1001u);
  EXPECT_GT(s.p999, s.p50);
  EXPECT_LE(s.p999, 9000.0);
  EXPECT_LE(s.p50, s.p99);
  EXPECT_LE(s.p99, s.p999);
}

// ---- JSON helpers ---------------------------------------------------------

TEST(BenchJson, HistogramJsonHasAllQuantileKeys) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("lat");
  for (int i = 0; i < 10; ++i) h.add(100.0);
  const std::string json = histogram_json(histogram_sample(registry, "lat"));
  for (const char* key :
       {"\"count\"", "\"mean\"", "\"min\"", "\"max\"", "\"p50\"", "\"p99\"",
        "\"p999\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(BenchJson, EmptySampleSerializesAsZeros) {
  const std::string json = histogram_json(obs::MetricsRegistry::Sample{});
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos) << json;
  EXPECT_EQ(json.find("null"), std::string::npos) << json;
}

TEST(BenchJson, NumbersRoundTripAndNonFiniteBecomesNull) {
  EXPECT_EQ(json_num(1.5), "1.5");
  EXPECT_EQ(json_num(0.0), "0");
  EXPECT_EQ(json_num(std::nan("")), "null");
  EXPECT_EQ(json_num(std::numeric_limits<double>::infinity()), "null");
}

TEST(BenchJson, StringsEscapeQuotesAndBackslashes) {
  EXPECT_EQ(json_str("plain"), "\"plain\"");
  EXPECT_EQ(json_str("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_str("a\\b"), "\"a\\\\b\"");
}

TEST(BenchJson, PhasesJsonIncludesOnlyPhasesWithSamples) {
  obs::MetricsRegistry registry;
  registry.histogram("client.phase.send").add(1.0);
  registry.histogram("client.phase.total").add(2.0);
  registry.histogram("client.phase.gather");  // exists but empty
  const std::string json = phases_json(registry.snapshot(), "client.phase.");
  EXPECT_NE(json.find("\"send\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"total\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"gather\""), std::string::npos) << json;
}

TEST(BenchJson, FindSampleMissingNameYieldsEmptySample) {
  obs::MetricsRegistry registry;
  const auto s = find_sample(registry.snapshot(), "no.such.metric");
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p999, 0.0);
}

}  // namespace
}  // namespace pardis::bench
