// Tests for the pluggable transport subsystem: the backend-neutral
// Stream/Listener contract exercised identically over the simulated fabric
// and over real TCP loopback sockets, plus the TCP-only knobs (timeouts,
// frame cap, host resolution) and the idle-stream pool.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "pardis/common/error.hpp"
#include "pardis/net/fabric.hpp"
#include "pardis/obs/observability.hpp"
#include "pardis/sim/scenario.hpp"
#include "pardis/transfer/spmd_client.hpp"
#include "pardis/transfer/spmd_server.hpp"
#include "pardis/transport/tcp_transport.hpp"
#include "pardis/transport/transport.hpp"

namespace pardis::transport {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

/// Scoped environment override (process-wide; tests using it must not run
/// concurrently with each other, which gtest guarantees within a binary).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(TransportKind, ParseAndPrintRoundTrip) {
  EXPECT_EQ(parse_kind("sim"), Kind::kSim);
  EXPECT_EQ(parse_kind("tcp"), Kind::kTcp);
  EXPECT_STREQ(to_string(Kind::kSim), "sim");
  EXPECT_STREQ(to_string(Kind::kTcp), "tcp");
  EXPECT_THROW(parse_kind("smoke-signals"), BAD_PARAM);
}

TEST(TransportKind, EnvSelectsBackend) {
  {
    ScopedEnv env("PARDIS_TRANSPORT", "tcp");
    EXPECT_EQ(kind_from_env(), Kind::kTcp);
  }
  {
    ScopedEnv env("PARDIS_TRANSPORT", "sim");
    EXPECT_EQ(kind_from_env(), Kind::kSim);
  }
}

/// Backend x reactor-shard-count sweep: everything the suite asserts must
/// hold whether the TCP read side runs one shard or several (the sim
/// backend ignores the knob).
struct SuiteParam {
  Kind kind;
  int reactors;
};

class TransportSuite : public ::testing::TestWithParam<SuiteParam> {
 protected:
  void SetUp() override {
    reactors_env_.emplace("PARDIS_TCP_REACTORS",
                          std::to_string(GetParam().reactors).c_str());
    transport_ = make_transport(GetParam().kind, fabric_, &obs_);
  }

  std::shared_ptr<Stream> connected_pair(std::shared_ptr<Listener>& listener,
                                         std::shared_ptr<Stream>& server) {
    listener = transport_->listen("serverhost", 0);
    auto client = transport_->connect("clienthost", listener->address());
    server = listener->accept();
    EXPECT_NE(server, nullptr);
    return client;
  }

  net::Fabric fabric_;
  obs::Observability obs_;
  std::optional<ScopedEnv> reactors_env_;
  std::unique_ptr<Transport> transport_;
};

std::string kind_name(const ::testing::TestParamInfo<SuiteParam>& info) {
  std::string name = to_string(info.param.kind);
  if (info.param.kind == Kind::kTcp) {
    name += "_r" + std::to_string(info.param.reactors);
  }
  return name;
}

TEST_P(TransportSuite, ListenAssignsDistinctPorts) {
  auto a = transport_->listen("serverhost", 0);
  auto b = transport_->listen("serverhost", 0);
  EXPECT_NE(a->address().port, b->address().port);
  EXPECT_EQ(a->address().host, "serverhost");
}

TEST_P(TransportSuite, DoubleBindRejected) {
  auto a = transport_->listen("serverhost", 0);
  EXPECT_THROW(transport_->listen("serverhost", a->address().port),
               BAD_PARAM);
}

TEST_P(TransportSuite, ConnectRefusedWithoutListener) {
  // Grab a port that really existed, then free it: both backends must
  // refuse with COMM_FAILURE rather than hang.
  int port = 0;
  {
    auto doomed = transport_->listen("serverhost", 0);
    port = doomed->address().port;
    doomed->close();
  }
  EXPECT_THROW(
      transport_->connect("clienthost", Endpoint{"serverhost", port}),
      COMM_FAILURE);
}

TEST_P(TransportSuite, FramesArriveIntactAndInOrder) {
  std::shared_ptr<Listener> listener;
  std::shared_ptr<Stream> server;
  auto client = connected_pair(listener, server);
  client->send(bytes_of("frame-1"));
  client->send(bytes_of("frame-2"));
  EXPECT_EQ(server->recv_or_throw(), bytes_of("frame-1"));
  EXPECT_EQ(server->recv_or_throw(), bytes_of("frame-2"));
}

TEST_P(TransportSuite, FullDuplex) {
  std::shared_ptr<Listener> listener;
  std::shared_ptr<Stream> server;
  auto client = connected_pair(listener, server);
  client->send(bytes_of("ping"));
  EXPECT_EQ(server->recv_or_throw(), bytes_of("ping"));
  server->send(bytes_of("pong"));
  EXPECT_EQ(client->recv_or_throw(), bytes_of("pong"));
}

TEST_P(TransportSuite, LargeFrameSurvives) {
  std::shared_ptr<Listener> listener;
  std::shared_ptr<Stream> server;
  auto client = connected_pair(listener, server);
  Bytes big(4u << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  // A 4 MB frame does not fit any socket buffer: the sender's write loop
  // must interleave with the receiver's reactor to make progress.
  std::thread sender([&] { client->send(big); });
  EXPECT_EQ(server->recv_or_throw(), big);
  sender.join();
}

TEST_P(TransportSuite, EofAfterCloseDrainsQueuedFrames) {
  std::shared_ptr<Listener> listener;
  std::shared_ptr<Stream> server;
  auto client = connected_pair(listener, server);
  client->send(bytes_of("last"));
  client->close();
  EXPECT_EQ(server->recv_or_throw(), bytes_of("last"));  // drained first
  EXPECT_EQ(server->recv(), std::nullopt);               // then EOF
  EXPECT_TRUE(server->eof());
  EXPECT_THROW(server->recv_or_throw(), COMM_FAILURE);
}

TEST_P(TransportSuite, SendAfterLocalCloseFailsLoudly) {
  std::shared_ptr<Listener> listener;
  std::shared_ptr<Stream> server;
  auto client = connected_pair(listener, server);
  client->close();
  client->close();  // idempotent
  EXPECT_THROW(client->send(bytes_of("x")), COMM_FAILURE);
}

TEST_P(TransportSuite, SendAfterPeerCloseFailsLoudly) {
  std::shared_ptr<Listener> listener;
  std::shared_ptr<Stream> server;
  auto client = connected_pair(listener, server);
  server->close();
  // The TCP backend learns of the peer's close asynchronously (reactor
  // reads the FIN) and may buffer one or two sends into the kernel before
  // the failure surfaces; both backends must fail loudly within a bound.
  EXPECT_THROW(
      {
        for (int i = 0; i < 1000; ++i) {
          client->send(bytes_of("x"));
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      },
      COMM_FAILURE);
}

TEST_P(TransportSuite, TryRecvAndHasFrameNonBlocking) {
  std::shared_ptr<Listener> listener;
  std::shared_ptr<Stream> server;
  auto client = connected_pair(listener, server);
  EXPECT_EQ(server->try_recv(), std::nullopt);
  EXPECT_FALSE(server->has_frame());
  client->send(bytes_of("x"));
  // The TCP reactor delivers asynchronously; poll until visible.
  for (int i = 0; i < 2000 && !server->has_frame(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(server->has_frame());
  EXPECT_EQ(server->try_recv(), bytes_of("x"));
}

TEST_P(TransportSuite, TryAcceptNonBlocking) {
  auto listener = transport_->listen("serverhost", 0);
  EXPECT_EQ(listener->try_accept(), nullptr);
  auto client = transport_->connect("clienthost", listener->address());
  std::shared_ptr<Stream> server;
  for (int i = 0; i < 2000 && server == nullptr; ++i) {
    server = listener->try_accept();
    if (server == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_NE(server, nullptr);
}

TEST_P(TransportSuite, ListenerCloseWakesBlockedAccept) {
  auto listener = transport_->listen("serverhost", 0);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    listener->close();
  });
  EXPECT_EQ(listener->accept(), nullptr);
  closer.join();
}

TEST_P(TransportSuite, CountersTrackTraffic) {
  std::shared_ptr<Listener> listener;
  std::shared_ptr<Stream> server;
  auto client = connected_pair(listener, server);
  client->send(bytes_of("abcdef"));
  (void)server->recv_or_throw();
  const auto sent = client->counters();
  EXPECT_EQ(sent.frames_sent, 1u);
  EXPECT_GE(sent.bytes_sent, 6u);
  const auto got = server->counters();
  EXPECT_EQ(got.frames_received, 1u);
  EXPECT_GE(got.bytes_received, 6u);
}

TEST_P(TransportSuite, LabelsIdentifyEndpoints) {
  std::shared_ptr<Listener> listener;
  std::shared_ptr<Stream> server;
  auto client = connected_pair(listener, server);
  EXPECT_NE(client->label().find("clienthost"), std::string::npos);
  EXPECT_EQ(client->peer(), listener->address());
  EXPECT_EQ(client->origin(), "clienthost");
}

// ---- idle-stream pool ----------------------------------------------------

TEST_P(TransportSuite, ReleasedStreamIsReacquired) {
  auto listener = transport_->listen("serverhost", 0);
  bool reused = true;
  auto first =
      transport_->acquire("clienthost", listener->address(), &reused);
  EXPECT_FALSE(reused);
  auto* raw = first.get();
  transport_->release(std::move(first));
  auto second =
      transport_->acquire("clienthost", listener->address(), &reused);
  EXPECT_TRUE(reused);
  EXPECT_EQ(second.get(), raw);
  EXPECT_GE(obs_.metrics().counter("transport.pool.hits").value(), 1u);
  EXPECT_GE(obs_.metrics().counter("transport.pool.misses").value(), 1u);
}

TEST_P(TransportSuite, PoolIsKeyedByEndpoint) {
  auto a = transport_->listen("serverhost", 0);
  auto b = transport_->listen("serverhost", 0);
  bool reused = false;
  auto to_a = transport_->acquire("clienthost", a->address(), &reused);
  transport_->release(std::move(to_a));
  auto to_b = transport_->acquire("clienthost", b->address(), &reused);
  EXPECT_FALSE(reused);  // different endpoint: no pool hit
}

TEST_P(TransportSuite, AcceptedStreamsAreNeverPooled) {
  std::shared_ptr<Listener> listener;
  std::shared_ptr<Stream> server;
  auto client = connected_pair(listener, server);
  // Accepted streams carry no peer endpoint to key the pool on; release
  // must close them instead of caching them.
  EXPECT_EQ(server->peer(), Endpoint{});
  auto keep = server;
  transport_->release(std::move(server));
  EXPECT_TRUE(keep->eof());
}

TEST_P(TransportSuite, DeadPooledStreamsAreDiscarded) {
  auto listener = transport_->listen("serverhost", 0);
  bool reused = true;
  auto first =
      transport_->acquire("clienthost", listener->address(), &reused);
  auto server = listener->accept();
  transport_->release(std::move(first));
  server->close();  // kill the pooled stream from the far side
  // Wait until the client end observes the close (async on tcp).
  // acquire() must then hand back a fresh connection, not the corpse.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto second =
      transport_->acquire("clienthost", listener->address(), &reused);
  EXPECT_FALSE(second->eof());
  second->send(bytes_of("alive"));
  auto server2 = listener->accept();
  ASSERT_NE(server2, nullptr);
  EXPECT_EQ(server2->recv_or_throw(), bytes_of("alive"));
}

TEST_P(TransportSuite, PoolCanBeDisabledByEnv) {
  ScopedEnv env("PARDIS_TRANSPORT_POOL", "0");
  auto transport = make_transport(GetParam().kind, fabric_, &obs_);
  auto listener = transport->listen("serverhost", 0);
  bool reused = true;
  auto first = transport->acquire("clienthost", listener->address(), &reused);
  auto keep = first;
  transport->release(std::move(first));
  EXPECT_TRUE(keep->eof());  // released streams are closed, not pooled
  auto second =
      transport->acquire("clienthost", listener->address(), &reused);
  EXPECT_FALSE(reused);
}

// ---- TCP-only behavior ---------------------------------------------------

TEST(TcpTransport, EnvKnobsAreParsed) {
  ScopedEnv t("PARDIS_TCP_CONNECT_TIMEOUT_MS", "1234");
  ScopedEnv r("PARDIS_TCP_RECV_TIMEOUT_MS", "567");
  ScopedEnv m("PARDIS_TCP_MAX_FRAME", "4096");
  TcpTransport transport(nullptr);
  EXPECT_EQ(transport.connect_timeout(), std::chrono::milliseconds(1234));
  EXPECT_EQ(transport.recv_timeout(), std::chrono::milliseconds(567));
  EXPECT_EQ(transport.max_frame(), 4096u);
}

TEST(TcpTransport, ResolvesLiteralsHostmapAndFallback) {
  ScopedEnv map("PARDIS_TCP_HOSTMAP", "onyx=127.0.0.1,power=127.0.0.2");
  TcpTransport transport(nullptr);
  EXPECT_EQ(transport.resolve("10.1.2.3"), "10.1.2.3");
  EXPECT_EQ(transport.resolve("onyx"), "127.0.0.1");
  EXPECT_EQ(transport.resolve("power"), "127.0.0.2");
  EXPECT_EQ(transport.resolve("unmapped"), "127.0.0.1");
}

TEST(TcpTransport, MalformedHostmapRejected) {
  ScopedEnv map("PARDIS_TCP_HOSTMAP", "onyx-no-equals-sign");
  EXPECT_THROW(TcpTransport transport(nullptr), BAD_PARAM);
}

TEST(TcpTransport, RecvTimeoutSurfacesAsTimeoutException) {
  ScopedEnv r("PARDIS_TCP_RECV_TIMEOUT_MS", "50");
  TcpTransport transport(nullptr);
  auto listener = transport.listen("serverhost", 0);
  auto client = transport.connect("clienthost", listener->address());
  EXPECT_THROW((void)client->recv(), TIMEOUT);
}

TEST(TcpTransport, OversizedFramePoisonsStream) {
  ScopedEnv m("PARDIS_TCP_MAX_FRAME", "1024");
  TcpTransport transport(nullptr);
  auto listener = transport.listen("serverhost", 0);
  auto client = transport.connect("clienthost", listener->address());
  auto server = listener->accept();
  client->send(Bytes(2048));  // exceeds the receiver's cap
  // The receiver must refuse to parse and report the stream dead rather
  // than deliver a truncated frame or allocate unboundedly.
  EXPECT_THROW((void)server->recv_or_throw(), COMM_FAILURE);
  EXPECT_TRUE(server->eof());
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportSuite,
                         ::testing::Values(SuiteParam{Kind::kSim, 1},
                                           SuiteParam{Kind::kTcp, 1},
                                           SuiteParam{Kind::kTcp, 4}),
                         kind_name);

// ---- peer death mid-pipelined-window -------------------------------------

/// "square" echoes x*x.  Stateless, safe for concurrent dispatch.
class SquareServant : public transfer::SpmdServant {
 public:
  const char* type_id() const override { return "IDL:test/square:1.0"; }
  void dispatch(transfer::ServerCall& call) override {
    if (call.operation() != "square") throw BAD_OPERATION(call.operation());
    auto dec = call.args();
    const cdr::Long x = dec.get_long();
    call.results().put_long(x * x);
  }
};

/// Killing a live TCP peer mid-window must settle every outstanding future
/// with a real outcome (value, TRANSIENT, or COMM_FAILURE) — never a hang —
/// and the next bind must come up clean whether or not the idle-stream pool
/// is recycling connections underneath.  PARDIS_CHAOS_KILL_EVERY makes the
/// server slam the control stream shut on every 5th admitted request, so
/// the first kill lands inside the first full window.
class PeerKillSweep : public ::testing::TestWithParam<
                          std::tuple<const char*, const char*>> {};

TEST_P(PeerKillSweep, MidWindowKillSettlesEveryFuture) {
  ScopedEnv pool("PARDIS_TRANSPORT_POOL", std::get<0>(GetParam()));
  ScopedEnv reactors("PARDIS_TCP_REACTORS", std::get<1>(GetParam()));
  ScopedEnv kill("PARDIS_CHAOS_KILL_EVERY", "5");
  ScopedEnv inflight("PARDIS_MAX_INFLIGHT", "8");

  sim::ScenarioConfig cfg;
  cfg.client.nranks = 1;
  cfg.server.nranks = 1;
  cfg.orb.transport = Kind::kTcp;
  sim::Scenario scenario(cfg);

  int values = 0;
  int sheds = 0;
  int comm_failures = 0;
  int rebinds = 0;
  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, cfg.server.host);
        SquareServant servant;
        server.activate("square", servant);
        server.serve();
      },
      [&](rts::Communicator&) {
        constexpr int kRounds = 6;
        constexpr int kWindow = 8;
        for (int round = 0; round < kRounds; ++round) {
          auto binding = transfer::DirectBinding::bind(
              scenario.orb(), cfg.client.host, "square",
              "IDL:test/square:1.0");
          ++rebinds;
          // Round 0 settles each request before issuing the next, which
          // pins the outcome regardless of scheduling: admissions 1-4 must
          // return values (the reply arrived before anything else was sent)
          // and admission 5 is the kill.  Later rounds keep a full window
          // in flight so kills land with futures outstanding.
          const bool sequential = round == 0;
          std::vector<orb::Future<pardis::Bytes>> futures;
          std::vector<cdr::Long> sent;
          bool dead = false;
          auto settle = [&](orb::Future<pardis::Bytes>& f, cdr::Long arg) {
            try {
              pardis::Bytes reply = f.get();
              cdr::Decoder dec{BytesView(reply)};
              EXPECT_EQ(dec.get_long(), arg * arg);
              ++values;
            } catch (const TRANSIENT&) {
              ++sheds;
            } catch (const COMM_FAILURE&) {
              ++comm_failures;
              dead = true;
            }
            // Anything else (incl. a hang) fails the test.
          };
          for (cdr::Long i = 0; i < kWindow && !dead; ++i) {
            try {
              cdr::Encoder enc;
              enc.put_long(i);
              auto f = binding.invoke_nb("square", enc.take());
              if (sequential) {
                settle(f, i);
              } else {
                futures.push_back(std::move(f));
                sent.push_back(i);
              }
            } catch (const COMM_FAILURE&) {
              dead = true;  // stream died while issuing; settle what's out
            }
          }
          // Every issued future must settle; the suite-level timeout is
          // the hang detector.
          for (std::size_t i = 0; i < futures.size(); ++i) {
            settle(futures[i], sent[i]);
          }
          binding.unbind();
        }
      },
      "square");

  // The sequential first round guarantees both outcomes: four replies
  // land before the kill at admission 5, then the kill surfaces as
  // COMM_FAILURE — and a fresh bind after each kill keeps working.
  EXPECT_GT(comm_failures, 0);
  EXPECT_GE(values, 4);
  EXPECT_EQ(rebinds, 6);
  EXPECT_EQ(sheds, 0);  // nothing here overloads the admission queue
}

std::string pool_name(
    const ::testing::TestParamInfo<std::tuple<const char*, const char*>>&
        info) {
  const std::string pool =
      std::string(std::get<0>(info.param)) == "0" ? "PoolOff" : "PoolOn";
  return pool + "_R" + std::get<1>(info.param);
}

// The kill must settle every future on every shard: sweep reactor counts
// so a victim stream parked on a non-zero shard gets the same treatment.
INSTANTIATE_TEST_SUITE_P(Pool, PeerKillSweep,
                         ::testing::Combine(::testing::Values("0", "1"),
                                            ::testing::Values("1", "4")),
                         pool_name);

}  // namespace
}  // namespace pardis::transport
