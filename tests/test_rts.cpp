// Tests for the message-passing runtime: tagged point-to-point semantics,
// pairwise FIFO, collectives across team sizes (parameterized sweeps), and
// failure injection (poisoned mailboxes unwind the team).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "pardis/common/error.hpp"
#include "pardis/rts/collectives.hpp"
#include "pardis/rts/team.hpp"

namespace pardis::rts {
namespace {

Bytes bytes_of(const std::string& s) {
  return Bytes(s.begin(), s.end());
}
std::string str_of(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

// ---- point-to-point ---------------------------------------------------------

TEST(RtsP2P, SendRecvDeliversPayload) {
  Team team("t", 2);
  team.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, bytes_of("hello"));
    } else {
      const Message m = comm.recv(0, 5);
      EXPECT_EQ(m.src, 0);
      EXPECT_EQ(m.tag, 5);
      EXPECT_EQ(str_of(m.payload), "hello");
    }
  });
}

TEST(RtsP2P, TagMatchingSelectsCorrectMessage) {
  Team team("t", 2);
  team.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, bytes_of("one"));
      comm.send(1, 2, bytes_of("two"));
    } else {
      // Receive out of arrival order by tag.
      EXPECT_EQ(str_of(comm.recv(0, 2).payload), "two");
      EXPECT_EQ(str_of(comm.recv(0, 1).payload), "one");
    }
  });
}

TEST(RtsP2P, PairwiseFifoPerTag) {
  Team team("t", 2);
  team.run([](Communicator& comm) {
    constexpr int kCount = 100;
    if (comm.rank() == 0) {
      for (int i = 0; i < kCount; ++i) {
        comm.send(1, 9, Bytes{static_cast<std::uint8_t>(i)});
      }
    } else {
      for (int i = 0; i < kCount; ++i) {
        EXPECT_EQ(comm.recv(0, 9).payload[0], i);
      }
    }
  });
}

TEST(RtsP2P, WildcardSourceAndTag) {
  Team team("t", 3);
  team.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      int seen_src[3] = {0, 0, 0};
      for (int i = 0; i < 2; ++i) {
        const Message m = comm.recv(kAnySource, kAnyTag);
        ++seen_src[m.src];
      }
      EXPECT_EQ(seen_src[1], 1);
      EXPECT_EQ(seen_src[2], 1);
    } else {
      comm.send(0, comm.rank(), bytes_of("x"));
    }
  });
}

TEST(RtsP2P, SelfSendWorks) {
  Team team("t", 1);
  team.run([](Communicator& comm) {
    comm.send(0, 3, bytes_of("me"));
    EXPECT_EQ(str_of(comm.recv(0, 3).payload), "me");
  });
}

TEST(RtsP2P, ProbeIsNonBlocking) {
  Team team("t", 2);
  team.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      EXPECT_FALSE(comm.probe(1, 4));
      comm.barrier();       // rank 1 sends before this completes on both
      comm.barrier();
      EXPECT_TRUE(comm.probe(1, 4));
      (void)comm.recv(1, 4);
    } else {
      comm.barrier();
      comm.send(0, 4, bytes_of("p"));
      comm.barrier();
    }
  });
}

TEST(RtsP2P, InvalidRanksAndTagsRejected) {
  Team team("t", 2);
  team.run([](Communicator& comm) {
    EXPECT_THROW(comm.send(7, 1, {}), BAD_PARAM);
    EXPECT_THROW(comm.send(-1, 1, {}), BAD_PARAM);
    EXPECT_THROW(comm.send(0, -3, {}), BAD_PARAM);
    EXPECT_THROW(comm.send(0, kInternalTagBase, {}), BAD_PARAM);
  });
}

TEST(RtsP2P, PayloadIsCopiedNotShared) {
  // Distributed-memory model: mutating the sender's buffer after send must
  // not affect the delivered message.
  Team team("t", 2);
  team.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      Bytes data = bytes_of("AAAA");
      comm.send(1, 1, data);
      data[0] = 'Z';
      comm.barrier();
    } else {
      comm.barrier();
      EXPECT_EQ(str_of(comm.recv(0, 1).payload), "AAAA");
    }
  });
}

// ---- team lifecycle ----------------------------------------------------------

TEST(Team, RejectsNonPositiveSize) {
  EXPECT_THROW(Team("t", 0), BAD_PARAM);
  EXPECT_THROW(Team("t", -2), BAD_PARAM);
}

TEST(Team, RunsEveryRankExactlyOnce) {
  Team team("t", 6);
  std::atomic<int> mask{0};
  team.run([&](Communicator& comm) { mask |= 1 << comm.rank(); });
  EXPECT_EQ(mask.load(), 0b111111);
}

TEST(Team, RankExceptionPropagatesAfterJoin) {
  Team team("t", 3);
  EXPECT_THROW(team.run([](Communicator& comm) {
                 if (comm.rank() == 1) {
                   throw BAD_PARAM("rank 1 fails");
                 }
                 // Other ranks block; the poison must unwind them instead
                 // of deadlocking the join.
                 (void)comm.recv(kAnySource, 0);
               }),
               Exception);
}

TEST(Team, CanRunTwiceSequentially) {
  Team team("t", 2);
  for (int round = 0; round < 2; ++round) {
    team.run([&](Communicator& comm) {
      if (comm.rank() == 0) {
        comm.send(1, round, bytes_of("r"));
      } else {
        EXPECT_EQ(comm.recv(0, round).tag, round);
      }
    });
  }
}

// ---- collectives, parameterized over team size --------------------------------

class Collectives : public ::testing::TestWithParam<int> {};

TEST_P(Collectives, BarrierCompletes) {
  Team team("t", GetParam());
  team.run([](Communicator& comm) {
    for (int i = 0; i < 20; ++i) comm.barrier();
  });
}

TEST_P(Collectives, BarrierSeparatesPhases) {
  // No rank may observe phase-2 work from a peer before it finished its
  // own phase 1.
  const int p = GetParam();
  Team team("t", p);
  std::vector<std::atomic<int>> phase(static_cast<std::size_t>(p));
  for (auto& ph : phase) ph = 0;
  team.run([&](Communicator& comm) {
    phase[static_cast<std::size_t>(comm.rank())] = 1;
    comm.barrier();
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_GE(phase[static_cast<std::size_t>(r)].load(), 1);
    }
  });
}

TEST_P(Collectives, BcastFromEveryRoot) {
  const int p = GetParam();
  Team team("t", p);
  team.run([&](Communicator& comm) {
    for (int root = 0; root < p; ++root) {
      Bytes data;
      if (comm.rank() == root) data = bytes_of("root=" + std::to_string(root));
      comm.bcast_bytes(data, root);
      EXPECT_EQ(str_of(data), "root=" + std::to_string(root));
    }
  });
}

TEST_P(Collectives, BcastValueAndVector) {
  Team team("t", GetParam());
  team.run([](Communicator& comm) {
    const double v = bcast_value(comm, comm.rank() == 0 ? 2.5 : -1.0, 0);
    EXPECT_EQ(v, 2.5);
    std::vector<int> values;
    if (comm.rank() == 0) values = {1, 2, 3};
    bcast_vector(comm, values, 0);
    EXPECT_EQ(values, (std::vector<int>{1, 2, 3}));
  });
}

TEST_P(Collectives, GatherOrdersByRank) {
  Team team("t", GetParam());
  team.run([](Communicator& comm) {
    const auto parts =
        comm.gather_bytes(bytes_of(std::to_string(comm.rank())), 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(parts.size(), static_cast<std::size_t>(comm.size()));
      for (int r = 0; r < comm.size(); ++r) {
        EXPECT_EQ(str_of(parts[static_cast<std::size_t>(r)]),
                  std::to_string(r));
      }
    } else {
      EXPECT_TRUE(parts.empty());
    }
  });
}

TEST_P(Collectives, ScatterDeliversPerRankPart) {
  const int p = GetParam();
  Team team("t", p);
  team.run([&](Communicator& comm) {
    std::vector<Bytes> parts;
    if (comm.rank() == 0) {
      for (int r = 0; r < p; ++r) parts.push_back(bytes_of("part" + std::to_string(r)));
    }
    const Bytes mine = comm.scatter_bytes(parts, 0);
    EXPECT_EQ(str_of(mine), "part" + std::to_string(comm.rank()));
  });
}

TEST_P(Collectives, GathervScattervRoundTrip) {
  const int p = GetParam();
  Team team("t", p);
  team.run([&](Communicator& comm) {
    // Variable chunk sizes: rank r contributes r+1 doubles.
    std::vector<double> local(static_cast<std::size_t>(comm.rank()) + 1,
                              comm.rank() * 1.5);
    auto all = gatherv<double>(comm, local, 0);
    std::vector<std::size_t> counts;
    if (comm.rank() == 0) {
      std::size_t expected = 0;
      for (int r = 0; r < p; ++r) expected += static_cast<std::size_t>(r) + 1;
      EXPECT_EQ(all.size(), expected);
      for (int r = 0; r < p; ++r) {
        counts.push_back(static_cast<std::size_t>(r) + 1);
      }
    } else {
      counts.resize(static_cast<std::size_t>(p));
    }
    auto back = scatterv<double>(comm, all, counts, 0);
    EXPECT_EQ(back, local);
  });
}

TEST_P(Collectives, AllgatherValue) {
  Team team("t", GetParam());
  team.run([](Communicator& comm) {
    const auto all = allgather_value(comm, comm.rank() * 10);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 10);
    }
  });
}

TEST_P(Collectives, ReduceAndAllreduce) {
  const int p = GetParam();
  Team team("t", p);
  team.run([&](Communicator& comm) {
    const int sum = reduce_value(comm, comm.rank() + 1, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(sum, p * (p + 1) / 2);
    }
    const int total = allreduce_value(comm, comm.rank() + 1);
    EXPECT_EQ(total, p * (p + 1) / 2);
    const int mx = allreduce_value(comm, comm.rank(),
                                   [](int a, int b) { return std::max(a, b); });
    EXPECT_EQ(mx, p - 1);
  });
}

TEST_P(Collectives, AlltoallPersonalized) {
  const int p = GetParam();
  Team team("t", p);
  team.run([&](Communicator& comm) {
    std::vector<std::vector<int>> parts(static_cast<std::size_t>(p));
    for (int dst = 0; dst < p; ++dst) {
      parts[static_cast<std::size_t>(dst)] = {comm.rank() * 100 + dst};
    }
    auto got = alltoallv(comm, parts);
    ASSERT_EQ(got.size(), static_cast<std::size_t>(p));
    for (int src = 0; src < p; ++src) {
      ASSERT_EQ(got[static_cast<std::size_t>(src)].size(), 1u);
      EXPECT_EQ(got[static_cast<std::size_t>(src)][0],
                src * 100 + comm.rank());
    }
  });
}

TEST_P(Collectives, BackToBackCollectivesDoNotCrossTalk) {
  Team team("t", GetParam());
  team.run([](Communicator& comm) {
    for (int i = 0; i < 25; ++i) {
      const int v = bcast_value(comm, comm.rank() == 0 ? i : -1, 0);
      EXPECT_EQ(v, i);
      const int s = allreduce_value(comm, 1);
      EXPECT_EQ(s, comm.size());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(TeamSizes, Collectives,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

// ---- collective argument validation -------------------------------------------

TEST(CollectiveErrors, ScatterPartsSizeMismatch) {
  Team team("t", 2);
  EXPECT_THROW(team.run([](Communicator& comm) {
                 std::vector<Bytes> parts(1);  // wrong: needs 2 at root
                 (void)comm.scatter_bytes(parts, 0);
               }),
               Exception);
}

TEST(CollectiveErrors, ScattervCountsMustCoverData) {
  Team team("t", 2);
  EXPECT_THROW(
      team.run([](Communicator& comm) {
        std::vector<double> all(10);
        std::vector<std::size_t> counts{3, 3};  // covers only 6 of 10
        (void)scatterv<double>(comm, all, counts, 0);
      }),
      Exception);
}

TEST(CollectiveErrors, BadRootRejected) {
  Team team("t", 2);
  EXPECT_THROW(team.run([](Communicator& comm) {
                 Bytes b;
                 comm.bcast_bytes(b, 5);
               }),
               Exception);
}

}  // namespace
}  // namespace pardis::rts
