// End-to-end tests of the transfer layer: both argument-transfer methods
// across client/server shape sweeps, all argument directions, preset
// distributions, oneway and non-blocking invocations, exception
// propagation, non-collective bindings, multiple objects, sequential
// clients, and the server poll() API.

#include <gtest/gtest.h>

#include <cmath>

#include "pardis/sim/scenario.hpp"
#include "pardis/transfer/spmd_client.hpp"
#include "pardis/transfer/spmd_server.hpp"

namespace pardis::transfer {
namespace {

/// Servant exercising every argument direction:
///   scale:   in long, inout dseq<double>   -> multiplies, returns sum
///   iota:    in long n, out dseq<long long> -> emits 0..n-1
///   checksum: in dseq<float>               -> returns sum
///   boom:    throws BAD_PARAM
///   notify:  oneway, records token
class KitchenSinkServant : public SpmdServant {
 public:
  const char* type_id() const override { return "IDL:test/kitchen:1.0"; }

  void dispatch(ServerCall& call) override {
    if (call.operation() == "scale") {
      auto args = call.args();
      const auto factor = args.get_long();
      auto seq = call.take_dseq<double>(0);
      double local = 0;
      for (std::size_t i = 0; i < seq.local_length(); ++i) {
        seq.local_data()[i] *= factor;
        local += seq.local_data()[i];
      }
      call.put_dseq(0, seq);
      call.results().put_double(rts::allreduce_value(call.comm(), local));
      return;
    }
    if (call.operation() == "iota") {
      auto args = call.args();
      const auto n = args.get_long();
      dseq::DSequence<cdr::LongLong> out(call.comm(),
                                         static_cast<std::uint64_t>(n));
      for (std::size_t i = 0; i < out.local_length(); ++i) {
        out.local_data()[i] =
            static_cast<cdr::LongLong>(out.local_offset() + i);
      }
      call.put_dseq(0, out);
      return;
    }
    if (call.operation() == "checksum") {
      auto seq = call.take_dseq<float>(0);
      float local = 0;
      for (std::size_t i = 0; i < seq.local_length(); ++i) {
        local += seq.local_data()[i];
      }
      call.results().put_float(rts::allreduce_value(call.comm(), local));
      return;
    }
    if (call.operation() == "boom") {
      throw BAD_PARAM("requested failure");
    }
    if (call.operation() == "notify") {
      auto args = call.args();
      last_token_ = args.get_long();
      return;
    }
    if (call.operation() == "token") {
      call.results().put_long(last_token_);
      return;
    }
    throw BAD_OPERATION(call.operation());
  }

 private:
  cdr::Long last_token_ = -1;
};

struct Shape {
  int client_ranks;
  int server_ranks;
  orb::TransferMethod method;
  std::uint64_t len;
};

std::string shape_name(const ::testing::TestParamInfo<Shape>& info) {
  const Shape& s = info.param;
  return "K" + std::to_string(s.client_ranks) + "_P" +
         std::to_string(s.server_ranks) + "_" +
         (s.method == orb::TransferMethod::kCentralized ? "central"
                                                        : "multiport") +
         "_n" + std::to_string(s.len);
}

class TransferSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(TransferSweep, InOutArgumentRoundTrip) {
  const Shape shape = GetParam();
  sim::ScenarioConfig cfg;
  cfg.client.nranks = shape.client_ranks;
  cfg.server.nranks = shape.server_ranks;
  sim::Scenario scenario(cfg);

  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        KitchenSinkServant servant;
        server.activate("kitchen", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto binding =
            SpmdBinding::bind(scenario.orb(), comm, cfg.client.host,
                              "kitchen", "IDL:test/kitchen:1.0");
        dseq::DSequence<double> seq(comm, shape.len);
        double expected_sum = 0;
        for (std::size_t i = 0; i < seq.local_length(); ++i) {
          seq.local_data()[i] =
              static_cast<double>(seq.local_offset() + i);
        }
        for (std::uint64_t i = 0; i < shape.len; ++i) {
          expected_sum += 3.0 * static_cast<double>(i);
        }
        CallOptions opts;
        opts.method = shape.method;
        cdr::Encoder enc;
        enc.put_long(3);
        TypedDSeqArg<double> arg(seq, orb::ArgDir::kInOut);
        const Bytes results =
            binding.invoke("scale", enc.take(), {&arg}, opts);
        cdr::Decoder dec{BytesView(results)};
        EXPECT_DOUBLE_EQ(dec.get_double(), expected_sum);
        const auto all = seq.gather_all();
        ASSERT_EQ(all.size(), shape.len);
        for (std::size_t i = 0; i < all.size(); ++i) {
          ASSERT_EQ(all[i], 3.0 * static_cast<double>(i)) << "index " << i;
        }
        binding.unbind();
      },
      "kitchen");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransferSweep,
    ::testing::Values(
        Shape{1, 1, orb::TransferMethod::kCentralized, 100},
        Shape{1, 1, orb::TransferMethod::kMultiPort, 100},
        Shape{2, 4, orb::TransferMethod::kCentralized, 1000},
        Shape{2, 4, orb::TransferMethod::kMultiPort, 1000},
        Shape{4, 2, orb::TransferMethod::kCentralized, 997},
        Shape{4, 2, orb::TransferMethod::kMultiPort, 997},
        Shape{3, 5, orb::TransferMethod::kMultiPort, 1024},
        Shape{4, 8, orb::TransferMethod::kMultiPort, 4096},
        Shape{2, 2, orb::TransferMethod::kCentralized, 0},
        Shape{2, 2, orb::TransferMethod::kMultiPort, 0},
        Shape{2, 3, orb::TransferMethod::kMultiPort, 1},
        Shape{5, 2, orb::TransferMethod::kCentralized, 64}),
    shape_name);

/// One scenario covering out-args, float element types, exceptions, oneway,
/// futures and stats, for both methods.
class TransferFeatures
    : public ::testing::TestWithParam<orb::TransferMethod> {};

TEST_P(TransferFeatures, OutArgumentDelivered) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 3;
  cfg.server.nranks = 2;
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        KitchenSinkServant servant;
        server.activate("kitchen", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto binding =
            SpmdBinding::bind(scenario.orb(), comm, cfg.client.host,
                              "kitchen", "IDL:test/kitchen:1.0");
        dseq::DSequence<cdr::LongLong> out(comm);
        CallOptions opts;
        opts.method = GetParam();
        cdr::Encoder enc;
        enc.put_long(500);
        TypedDSeqArg<cdr::LongLong> arg(out, orb::ArgDir::kOut);
        binding.invoke("iota", enc.take(), {&arg}, opts);
        EXPECT_EQ(out.length(), 500u);
        const auto all = out.gather_all();
        for (std::size_t i = 0; i < all.size(); ++i) {
          EXPECT_EQ(all[i], static_cast<cdr::LongLong>(i));
        }
        binding.unbind();
      },
      "kitchen");
}

TEST_P(TransferFeatures, FloatElementsAndInOnlyArg) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 2;
  cfg.server.nranks = 3;
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        KitchenSinkServant servant;
        server.activate("kitchen", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto binding =
            SpmdBinding::bind(scenario.orb(), comm, cfg.client.host,
                              "kitchen", "IDL:test/kitchen:1.0");
        dseq::DSequence<float> seq(comm, 256);
        for (std::size_t i = 0; i < seq.local_length(); ++i) {
          seq.local_data()[i] = 0.5f;
        }
        CallOptions opts;
        opts.method = GetParam();
        TypedDSeqArg<float> arg(seq, orb::ArgDir::kIn);
        const Bytes results = binding.invoke("checksum", {}, {&arg}, opts);
        cdr::Decoder dec{BytesView(results)};
        EXPECT_FLOAT_EQ(dec.get_float(), 128.0f);
        binding.unbind();
      },
      "kitchen");
}

TEST_P(TransferFeatures, ServerExceptionReachesEveryRank) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 3;
  cfg.server.nranks = 2;
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        KitchenSinkServant servant;
        server.activate("kitchen", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto binding =
            SpmdBinding::bind(scenario.orb(), comm, cfg.client.host,
                              "kitchen", "IDL:test/kitchen:1.0");
        CallOptions opts;
        opts.method = GetParam();
        bool caught = false;
        try {
          binding.invoke("boom", {}, {}, opts);
        } catch (const BAD_PARAM& e) {
          caught = true;
          EXPECT_NE(std::string(e.what()).find("requested failure"),
                    std::string::npos);
        }
        EXPECT_TRUE(caught);  // on every rank
        // The binding survives an exception: next invocation works.
        binding.invoke("notify", [] {
          cdr::Encoder enc;
          enc.put_long(5);
          return enc.take();
        }(), {}, opts);
        binding.unbind();
      },
      "kitchen");
}

TEST_P(TransferFeatures, StatsArePopulated) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 2;
  cfg.server.nranks = 2;
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        KitchenSinkServant servant;
        server.activate("kitchen", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto binding =
            SpmdBinding::bind(scenario.orb(), comm, cfg.client.host,
                              "kitchen", "IDL:test/kitchen:1.0");
        dseq::DSequence<double> seq(comm, 10000);
        CallOptions opts;
        opts.method = GetParam();
        cdr::Encoder enc;
        enc.put_long(1);
        TypedDSeqArg<double> arg(seq, orb::ArgDir::kInOut);
        binding.invoke("scale", enc.take(), {&arg}, opts);
        EXPECT_GT(binding.last_stats().ms(Phase::kTotal), 0.0);
        ASSERT_EQ(binding.last_server_stats().size(), kPhaseCount);
        EXPECT_GT(binding.last_server_stats()[static_cast<std::size_t>(
                      Phase::kTotal)],
                  0.0);
        binding.unbind();
      },
      "kitchen");
}

INSTANTIATE_TEST_SUITE_P(Methods, TransferFeatures,
                         ::testing::Values(
                             orb::TransferMethod::kCentralized,
                             orb::TransferMethod::kMultiPort),
                         [](const auto& info) {
                           return info.param ==
                                          orb::TransferMethod::kCentralized
                                      ? "centralized"
                                      : "multiport";
                         });

// ---- preset distributions ------------------------------------------------------

TEST(TransferPolicy, ServerPresetDistributionIsApplied) {
  // Paper §2.2: the server presets Proportions(2,4,2,4) for an argument
  // before registration; the elements must land in those proportions.
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 2;
  cfg.server.nranks = 4;
  sim::Scenario scenario(cfg);

  class ProbeServant : public SpmdServant {
   public:
    const char* type_id() const override { return "IDL:test/probe:1.0"; }
    void dispatch(ServerCall& call) override {
      auto seq = call.take_dseq<double>(0);
      const auto counts =
          rts::allgather_value(call.comm(), seq.local_length());
      auto& res = call.results();
      for (auto c : counts) res.put_ulonglong(c);
    }
  };

  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        ProbeServant servant;
        ArgDistPolicy policy;
        policy.set("probe", 0, dseq::Proportions(2, 4, 2, 4));
        server.activate("probe", servant, policy);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto binding = SpmdBinding::bind(scenario.orb(), comm,
                                         cfg.client.host, "probe",
                                         "IDL:test/probe:1.0");
        // Both methods must respect the preset.
        for (auto method : {orb::TransferMethod::kCentralized,
                            orb::TransferMethod::kMultiPort}) {
          dseq::DSequence<double> seq(comm, 120);
          CallOptions opts;
          opts.method = method;
          TypedDSeqArg<double> arg(seq, orb::ArgDir::kIn);
          const Bytes results = binding.invoke("probe", {}, {&arg}, opts);
          cdr::Decoder dec{BytesView(results)};
          EXPECT_EQ(dec.get_ulonglong(), 20u);  // 120 * 2/12
          EXPECT_EQ(dec.get_ulonglong(), 40u);  // 120 * 4/12
          EXPECT_EQ(dec.get_ulonglong(), 20u);
          EXPECT_EQ(dec.get_ulonglong(), 40u);
        }
        binding.unbind();
      },
      "probe");
}

// ---- oneway / futures ------------------------------------------------------------

TEST(TransferAsync, OnewayAndFuture) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 2;
  cfg.server.nranks = 2;
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        KitchenSinkServant servant;
        server.activate("kitchen", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto binding =
            SpmdBinding::bind(scenario.orb(), comm, cfg.client.host,
                              "kitchen", "IDL:test/kitchen:1.0");
        // Oneway invocation: no reply awaited.
        cdr::Encoder enc;
        enc.put_long(77);
        CallOptions oneway;
        oneway.response_expected = false;
        binding.invoke("notify", enc.take(), {}, oneway);
        // A later synchronous call observes its effect (same control
        // connection, FIFO).
        const Bytes results = binding.invoke("token", {}, {}, {});
        cdr::Decoder dec{BytesView(results)};
        EXPECT_EQ(dec.get_long(), 77);

        // Non-blocking invocation with a distributed inout argument.
        dseq::DSequence<double> seq(comm, 64);
        for (std::size_t i = 0; i < seq.local_length(); ++i) {
          seq.local_data()[i] = 1.0;
        }
        cdr::Encoder enc2;
        enc2.put_long(2);
        TypedDSeqArg<double> arg(seq, orb::ArgDir::kInOut);
        auto future = binding.invoke_nb("scale", enc2.take(), {&arg}, {});
        EXPECT_FALSE(future.ready());
        const Bytes r = future.get();  // collective
        cdr::Decoder dec2{BytesView(r)};
        EXPECT_DOUBLE_EQ(dec2.get_double(), 128.0);
        for (std::size_t i = 0; i < seq.local_length(); ++i) {
          EXPECT_EQ(seq.local_data()[i], 2.0);
        }
        binding.unbind();
      },
      "kitchen");
}

// ---- bindings / naming errors ---------------------------------------------------

TEST(TransferBinding, UnknownObjectThrowsOnAllRanks) {
  setenv("PARDIS_BIND_TIMEOUT_MS", "100", 1);
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 2;
  cfg.server.nranks = 1;
  sim::Scenario scenario(cfg);
  std::atomic<int> throws{0};
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        KitchenSinkServant servant;
        server.activate("kitchen", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        try {
          // A short naming wait happens inside bind; "ghost" never appears.
          (void)SpmdBinding::bind(scenario.orb(), comm, cfg.client.host,
                                  "ghost", "IDL:test/kitchen:1.0");
        } catch (const OBJECT_NOT_EXIST&) {
          ++throws;
        }
        comm.barrier();
      },
      "kitchen");
  unsetenv("PARDIS_BIND_TIMEOUT_MS");
  EXPECT_EQ(throws.load(), 2);
}

TEST(TransferBinding, TypeMismatchRejected) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 1;
  cfg.server.nranks = 1;
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        KitchenSinkServant servant;
        server.activate("kitchen", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        EXPECT_THROW((void)SpmdBinding::bind(scenario.orb(), comm,
                                             cfg.client.host, "kitchen",
                                             "IDL:other/type:1.0"),
                     OBJECT_NOT_EXIST);
      },
      "kitchen");
}

TEST(TransferBinding, DirectBindingNonCollective) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 3;
  cfg.server.nranks = 2;
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        KitchenSinkServant servant;
        server.activate("kitchen", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        // Every client thread binds and invokes independently.
        auto direct = DirectBinding::bind(scenario.orb(), cfg.client.host,
                                          "kitchen",
                                          "IDL:test/kitchen:1.0");
        cdr::Encoder enc;
        enc.put_long(comm.rank());
        direct.invoke("notify", enc.take());
        const Bytes r = direct.invoke("token", {});
        cdr::Decoder dec{BytesView(r)};
        (void)dec.get_long();  // some rank's token; server serializes
        direct.unbind();
        comm.barrier();
      },
      "kitchen");
}

TEST(TransferBinding, SequentialClientsServed) {
  // Two collective bindings one after the other on the same object.
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 2;
  cfg.server.nranks = 2;
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        KitchenSinkServant servant;
        server.activate("kitchen", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        for (int round = 0; round < 2; ++round) {
          auto binding =
              SpmdBinding::bind(scenario.orb(), comm, cfg.client.host,
                                "kitchen", "IDL:test/kitchen:1.0");
          dseq::DSequence<double> seq(comm, 32);
          cdr::Encoder enc;
          enc.put_long(1);
          TypedDSeqArg<double> arg(seq, orb::ArgDir::kInOut);
          binding.invoke("scale", enc.take(), {&arg}, {});
          binding.unbind();
        }
      },
      "kitchen");
}

TEST(TransferServer, MultipleObjectsOneServer) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 1;
  cfg.server.nranks = 2;
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        KitchenSinkServant a;
        KitchenSinkServant b;
        server.activate("alpha", a);
        server.activate("beta", b);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        (void)comm;
        auto bind_a = DirectBinding::bind(scenario.orb(), cfg.client.host,
                                          "alpha", "IDL:test/kitchen:1.0");
        auto bind_b = DirectBinding::bind(scenario.orb(), cfg.client.host,
                                          "beta", "IDL:test/kitchen:1.0");
        cdr::Encoder e1;
        e1.put_long(1);
        bind_a.invoke("notify", e1.take());
        cdr::Encoder e2;
        e2.put_long(2);
        bind_b.invoke("notify", e2.take());
        const Bytes ra = bind_a.invoke("token", {});
        const Bytes rb = bind_b.invoke("token", {});
        cdr::Decoder da{BytesView(ra)};
        cdr::Decoder db{BytesView(rb)};
        EXPECT_EQ(da.get_long(), 1);  // objects hold independent state
        EXPECT_EQ(db.get_long(), 2);
        bind_a.unbind();
        bind_b.unbind();
      },
      "alpha");
}

TEST(TransferServer, PollProcessesOutstandingRequests) {
  // Paper §2.1: the server can interrupt its computation to process
  // outstanding requests.  The server loops on poll() between slices of
  // its own work instead of blocking in serve().
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 1;
  cfg.server.nranks = 2;
  sim::Scenario scenario(cfg);
  std::atomic<long> compute_slices{0};
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        KitchenSinkServant servant;
        server.activate("kitchen", servant);
        while (!server.shutdown_seen()) {
          ++compute_slices;  // the server's own computation
          (void)server.poll();
        }
      },
      [&](rts::Communicator& comm) {
        (void)comm;
        auto direct = DirectBinding::bind(scenario.orb(), cfg.client.host,
                                          "kitchen",
                                          "IDL:test/kitchen:1.0");
        cdr::Encoder enc;
        enc.put_long(123);
        direct.invoke("notify", enc.take());
        const Bytes r = direct.invoke("token", {});
        cdr::Decoder dec{BytesView(r)};
        EXPECT_EQ(dec.get_long(), 123);
        direct.unbind();
      },
      "kitchen");
  EXPECT_GT(compute_slices.load(), 0);
}

}  // namespace
}  // namespace pardis::transfer

namespace pardis::transfer {
namespace {

// Paper §2.2: "An `out' argument ... should be initialized by a
// distribution template before calling the operation which returns it;
// otherwise a uniform blockwise distribution will be assumed."
class OutTemplateTest
    : public ::testing::TestWithParam<orb::TransferMethod> {};

TEST_P(OutTemplateTest, PresetTemplateGovernsOutArgument) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 4;
  cfg.server.nranks = 2;
  sim::Scenario scenario(cfg);

  class IotaServant : public SpmdServant {
   public:
    const char* type_id() const override { return "IDL:test/iota2:1.0"; }
    void dispatch(ServerCall& call) override {
      auto args = call.args();
      const auto n = args.get_long();
      dseq::DSequence<double> out(call.comm(),
                                  static_cast<std::uint64_t>(n));
      for (std::size_t i = 0; i < out.local_length(); ++i) {
        out.local_data()[i] = static_cast<double>(out.local_offset() + i);
      }
      call.put_dseq(0, out);
    }
  };

  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        IotaServant servant;
        server.activate("iota2", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto binding = SpmdBinding::bind(scenario.orb(), comm,
                                         cfg.client.host, "iota2",
                                         "IDL:test/iota2:1.0");
        CallOptions opts;
        opts.method = GetParam();

        // Case 1: preset template of the matching length -> honored.
        {
          const auto preset = dseq::DistTempl::proportional(
              120, dseq::Proportions(1, 2, 3, 4), comm.size());
          dseq::DSequence<double> out(comm, 120, preset);
          TypedDSeqArg<double> arg(out, orb::ArgDir::kOut);
          cdr::Encoder enc;
          enc.put_long(120);
          binding.invoke("iota", enc.take(), {&arg}, opts);
          EXPECT_EQ(out.distribution(), preset);
          const auto all = out.gather_all();
          for (std::size_t i = 0; i < all.size(); ++i) {
            EXPECT_EQ(all[i], static_cast<double>(i));
          }
        }
        // Case 2: no preset (or mismatched length) -> uniform blockwise.
        {
          dseq::DSequence<double> out(comm);
          TypedDSeqArg<double> arg(out, orb::ArgDir::kOut);
          cdr::Encoder enc;
          enc.put_long(90);
          binding.invoke("iota", enc.take(), {&arg}, opts);
          EXPECT_EQ(out.distribution(),
                    dseq::DistTempl::block(90, comm.size()));
        }
        binding.unbind();
      },
      "iota2");
}

INSTANTIATE_TEST_SUITE_P(Methods, OutTemplateTest,
                         ::testing::Values(
                             orb::TransferMethod::kCentralized,
                             orb::TransferMethod::kMultiPort),
                         [](const auto& info) {
                           return info.param ==
                                          orb::TransferMethod::kCentralized
                                      ? "centralized"
                                      : "multiport";
                         });

// ---- backend sweep: the same end-to-end flows over sim and real TCP --------

class BackendSweep : public ::testing::TestWithParam<transport::Kind> {};

TEST_P(BackendSweep, CollectiveInvokeBothMethods) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 2;
  cfg.server.nranks = 2;
  cfg.orb.transport = GetParam();
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        KitchenSinkServant servant;
        server.activate("kitchen", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto binding =
            SpmdBinding::bind(scenario.orb(), comm, cfg.client.host,
                              "kitchen", "IDL:test/kitchen:1.0");
        for (const auto method : {orb::TransferMethod::kCentralized,
                                  orb::TransferMethod::kMultiPort}) {
          dseq::DSequence<double> seq(comm, 257);
          for (std::size_t i = 0; i < seq.local_length(); ++i) {
            seq.local_data()[i] =
                static_cast<double>(seq.local_offset() + i);
          }
          double expected = 0;
          for (std::uint64_t i = 0; i < 257; ++i) {
            expected += 2.0 * static_cast<double>(i);
          }
          CallOptions opts;
          opts.method = method;
          cdr::Encoder enc;
          enc.put_long(2);
          TypedDSeqArg<double> arg(seq, orb::ArgDir::kInOut);
          const Bytes results =
              binding.invoke("scale", enc.take(), {&arg}, opts);
          cdr::Decoder dec{BytesView(results)};
          EXPECT_DOUBLE_EQ(dec.get_double(), expected);
        }
        binding.unbind();
      },
      "kitchen");
}

TEST_P(BackendSweep, DirectUnbindReturnsControlStreamToPool) {
  sim::ScenarioConfig cfg;
  cfg.client.nranks = 1;
  cfg.server.nranks = 1;
  cfg.orb.transport = GetParam();
  sim::Scenario scenario(cfg);
  scenario.run(
      [&](rts::Communicator& comm) {
        SpmdServer server(scenario.orb(), comm, cfg.server.host);
        KitchenSinkServant servant;
        server.activate("kitchen", servant);
        server.serve();
      },
      [&](rts::Communicator&) {
        for (int round = 0; round < 2; ++round) {
          auto direct = DirectBinding::bind(scenario.orb(), cfg.client.host,
                                            "kitchen",
                                            "IDL:test/kitchen:1.0");
          cdr::Encoder enc;
          enc.put_long(round);
          direct.invoke("notify", enc.take());
          const Bytes r = direct.invoke("token", {});
          cdr::Decoder dec{BytesView(r)};
          EXPECT_EQ(dec.get_long(), round);
          direct.unbind();
        }
        // The second bind must have reused the control stream the first
        // unbind released (same client host, same endpoint).
        EXPECT_GE(
            scenario.orb().metrics().counter("transport.pool.hits").value(),
            1u);
      },
      "kitchen");
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendSweep,
    ::testing::Values(transport::Kind::kSim, transport::Kind::kTcp),
    [](const ::testing::TestParamInfo<transport::Kind>& info) {
      return std::string(transport::to_string(info.param));
    });

}  // namespace
}  // namespace pardis::transfer
