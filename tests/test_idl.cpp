// Tests for the IDL compiler: lexer, parser, semantic analysis and code
// generation (string-level; compile-and-run coverage lives in
// test_integration.cpp, which links pardisc-generated stubs).

#include <gtest/gtest.h>

#include "pardis/idl/codegen.hpp"
#include "pardis/idl/lexer.hpp"
#include "pardis/idl/parser.hpp"
#include "pardis/idl/sema.hpp"

namespace pardis::idl {
namespace {

// ---- lexer ----------------------------------------------------------------

std::vector<Token> lex_ok(const std::string& src) {
  DiagnosticSink sink;
  auto tokens = lex(src, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.to_string();
  return tokens;
}

TEST(Lexer, KeywordsVsIdentifiers) {
  const auto tokens = lex_ok("interface diffusion dsequence foo_1");
  ASSERT_EQ(tokens.size(), 5u);  // + EOF
  EXPECT_EQ(tokens[0].kind, TokKind::kKeyword);
  EXPECT_EQ(tokens[1].kind, TokKind::kIdentifier);
  EXPECT_EQ(tokens[2].kind, TokKind::kKeyword);
  EXPECT_EQ(tokens[3].kind, TokKind::kIdentifier);
  EXPECT_EQ(tokens[4].kind, TokKind::kEof);
}

TEST(Lexer, NumbersAndLiterals) {
  const auto tokens = lex_ok("1024 0x40 3.5 1e-3 \"hi\\n\"");
  EXPECT_EQ(tokens[0].kind, TokKind::kIntLiteral);
  EXPECT_EQ(tokens[1].kind, TokKind::kIntLiteral);
  EXPECT_EQ(tokens[1].text, "0x40");
  EXPECT_EQ(tokens[2].kind, TokKind::kFloatLiteral);
  EXPECT_EQ(tokens[3].kind, TokKind::kFloatLiteral);
  EXPECT_EQ(tokens[4].kind, TokKind::kStringLiteral);
  EXPECT_EQ(tokens[4].text, "hi\n");
}

TEST(Lexer, CommentsAndPreprocessorLinesSkipped) {
  const auto tokens = lex_ok(
      "// line comment\n#include <x>\n/* block\ncomment */ typedef");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].is_keyword("typedef"));
}

TEST(Lexer, ScopeOperatorIsOneToken) {
  const auto tokens = lex_ok("A::B");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[1].is_punct("::"));
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = lex_ok("module\n  interface");
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[0].loc.column, 1);
  EXPECT_EQ(tokens[1].loc.line, 2);
  EXPECT_EQ(tokens[1].loc.column, 3);
}

TEST(Lexer, ReportsUnterminatedConstructs) {
  DiagnosticSink sink;
  lex("\"never closed", sink);
  EXPECT_TRUE(sink.has_errors());
  DiagnosticSink sink2;
  lex("/* never closed", sink2);
  EXPECT_TRUE(sink2.has_errors());
  DiagnosticSink sink3;
  lex("@", sink3);
  EXPECT_TRUE(sink3.has_errors());
}

// ---- parser ---------------------------------------------------------------

TranslationUnit parse_ok(const std::string& src) {
  DiagnosticSink sink;
  auto tu = parse(src, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.to_string();
  return tu;
}

std::string parse_errors(const std::string& src) {
  DiagnosticSink sink;
  (void)parse(src, sink);
  EXPECT_TRUE(sink.has_errors());
  return sink.to_string();
}

TEST(Parser, PaperInterface) {
  // The exact interface from paper §2.1.
  const auto tu = parse_ok(
      "typedef dsequence<double, 1024> diff_array;\n"
      "interface diff_object {\n"
      "  void diffusion(in long timestep, inout diff_array darray);\n"
      "};\n");
  ASSERT_EQ(tu.definitions.size(), 2u);
  const auto& iface = std::get<InterfaceDef>(tu.definitions[1]);
  EXPECT_EQ(iface.name, "diff_object");
  ASSERT_EQ(iface.operations.size(), 1u);
  const Operation& op = iface.operations[0];
  EXPECT_EQ(op.name, "diffusion");
  EXPECT_EQ(op.return_type.kind, TypeKind::kVoid);
  ASSERT_EQ(op.params.size(), 2u);
  EXPECT_EQ(op.params[0].dir, ParamDir::kIn);
  EXPECT_EQ(op.params[1].dir, ParamDir::kInOut);
  EXPECT_EQ(op.params[1].type.kind, TypeKind::kNamed);
  const auto& td = std::get<TypedefDef>(tu.definitions[0]);
  EXPECT_EQ(td.type.kind, TypeKind::kDSequence);
  EXPECT_EQ(td.type.bound, 1024u);
  EXPECT_EQ(td.type.element->basic, BasicKind::kDouble);
}

TEST(Parser, AllBasicTypes) {
  const auto tu = parse_ok(
      "struct S { short a; unsigned short b; long c; unsigned long d;\n"
      "  long long e; unsigned long long f; float g; double h;\n"
      "  boolean i; char j; octet k; string l; sequence<long> m; };");
  const auto& s = std::get<StructDef>(tu.definitions[0]);
  ASSERT_EQ(s.fields.size(), 13u);
  EXPECT_EQ(s.fields[1].type.basic, BasicKind::kUShort);
  EXPECT_EQ(s.fields[5].type.basic, BasicKind::kULongLong);
  EXPECT_EQ(s.fields[11].type.kind, TypeKind::kString);
  EXPECT_EQ(s.fields[12].type.kind, TypeKind::kSequence);
}

TEST(Parser, ModulesNestAndEnumsConstsExceptions) {
  const auto tu = parse_ok(
      "module Outer { module Inner {\n"
      "  enum Color { kRed, kGreen };\n"
      "  const double kPi = 3.14;\n"
      "  const boolean kOn = TRUE;\n"
      "  const string kName = \"x\";\n"
      "  exception Oops { long code; };\n"
      "}; };");
  const auto& outer =
      *std::get<std::shared_ptr<ModuleDef>>(tu.definitions[0]);
  const auto& inner =
      *std::get<std::shared_ptr<ModuleDef>>(outer.definitions[0]);
  EXPECT_EQ(inner.definitions.size(), 5u);
}

TEST(Parser, InterfaceInheritanceOnewayAttributesRaises) {
  const auto tu = parse_ok(
      "exception E {};\n"
      "interface Base { void f(); };\n"
      "interface Derived : Base {\n"
      "  oneway void notify(in long t);\n"
      "  readonly attribute long count;\n"
      "  attribute double rate;\n"
      "  long g(out long result) raises (E);\n"
      "};");
  const auto& derived = std::get<InterfaceDef>(tu.definitions[2]);
  EXPECT_EQ(derived.bases, std::vector<std::string>{"Base"});
  EXPECT_TRUE(derived.operations[0].oneway);
  ASSERT_EQ(derived.attributes.size(), 2u);
  EXPECT_TRUE(derived.attributes[0].readonly);
  EXPECT_EQ(derived.operations[1].raises, std::vector<std::string>{"E"});
}

TEST(Parser, ErrorsNameTheLocation) {
  const std::string report =
      parse_errors("interface X {\n  void f(in long);\n};");
  EXPECT_NE(report.find("2:"), std::string::npos);  // line 2
}

TEST(Parser, RecoversAndReportsMultipleErrors) {
  DiagnosticSink sink;
  (void)parse("struct A { long }; struct B { oops x; };\n"
              "interface C { void ok(); };",
              sink);
  EXPECT_GE(sink.error_count(), 1u);
}

TEST(Parser, RejectsMissingSemicolons) {
  parse_errors("interface X { void f() }");
  parse_errors("struct S { long a; }");
}

TEST(Parser, RejectsBadParamDirection) {
  parse_errors("interface X { void f(sideways long x); };");
}

// ---- sema ----------------------------------------------------------------

std::string analyze_errors(const std::string& src) {
  DiagnosticSink sink;
  auto tu = parse(src, sink);
  EXPECT_FALSE(sink.has_errors()) << "parse failed: " << sink.to_string();
  (void)analyze(tu, sink);
  EXPECT_TRUE(sink.has_errors()) << "expected sema errors";
  return sink.to_string();
}

void analyze_ok(const std::string& src) {
  DiagnosticSink sink;
  auto tu = parse(src, sink);
  ASSERT_FALSE(sink.has_errors()) << sink.to_string();
  (void)analyze(tu, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.to_string();
}

TEST(Sema, AcceptsTheExampleIdl) {
  analyze_ok(
      "module Sim {\n"
      "  typedef dsequence<double> arr;\n"
      "  exception Bad { long t; };\n"
      "  interface obj {\n"
      "    void run(in long steps, inout arr a) raises (Bad);\n"
      "  };\n"
      "};");
}

TEST(Sema, DuplicateDefinitionsReported) {
  const auto report =
      analyze_errors("struct X { long a; }; enum X { kA };");
  EXPECT_NE(report.find("duplicate"), std::string::npos);
}

TEST(Sema, UnknownTypesReported) {
  analyze_errors("interface I { void f(in Mystery m); };");
  analyze_errors("struct S { Ghost g; };");
}

TEST(Sema, DSequencePlacementRules) {
  // dsequence is only valid as an operation parameter (or typedef of one).
  analyze_errors("struct S { dsequence<double> d; };");
  analyze_errors("interface I { dsequence<double> f(); };");
  analyze_ok("interface I { void f(in dsequence<double> d); };");
}

TEST(Sema, DSequenceElementMustBeNumeric) {
  analyze_errors("interface I { void f(in dsequence<string> d); };");
  analyze_errors("interface I { void f(in dsequence<boolean> d); };");
  analyze_errors(
      "struct S { long a; };\n"
      "interface I { void f(in dsequence<S> d); };");
  analyze_ok("interface I { void f(in dsequence<octet> d); };");
}

TEST(Sema, RaisesMustNameExceptions) {
  analyze_errors("interface I { void f() raises (Unknown); };");
  analyze_errors(
      "struct S { long a; };\n"
      "interface I { void f() raises (S); };");
}

TEST(Sema, ConstTypeChecking) {
  analyze_errors("const long x = 3.5;");
  analyze_errors("const boolean b = 42;");
  analyze_errors("const string s = 42;");
  analyze_ok("const double d = 3.5; const long n = 42;\n"
             "const boolean b = FALSE; const string s = \"ok\";");
}

TEST(Sema, InheritanceChecks) {
  analyze_errors("interface D : Missing { };");
  analyze_errors("struct S { long a; }; interface D : S { };");
  analyze_errors(
      "interface B { void f(); };\n"
      "interface D : B { void f(); };");  // duplicate member via base
}

TEST(Sema, OnewayRestrictions) {
  analyze_errors("interface I { oneway long f(); };");
  analyze_errors("interface I { oneway void f(out long x); };");
}

TEST(Sema, ScopedLookupAcrossModules) {
  analyze_ok(
      "module A { struct S { long x; }; };\n"
      "module B { interface I { void f(in A::S s); }; };");
  analyze_errors("module B { interface I { void f(in A::S s); }; };");
}

TEST(Sema, FlattenedOperationsIncludeBases) {
  DiagnosticSink sink;
  auto tu = parse(
      "interface A { void fa(); };\n"
      "interface B : A { void fb(); };\n"
      "interface C : B { void fc(); };",
      sink);
  const auto model = analyze(tu, sink);
  ASSERT_FALSE(sink.has_errors());
  const auto& c = std::get<InterfaceDef>(tu.definitions[2]);
  const auto ops = model.flattened_operations("", c);
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].name, "fa");
  EXPECT_EQ(ops[1].name, "fb");
  EXPECT_EQ(ops[2].name, "fc");
}

// ---- codegen (string level) -----------------------------------------------

GeneratedCode gen(const std::string& src) {
  CodegenOptions options;
  options.stem = "t";
  return compile(src, options);
}

TEST(Codegen, EmitsProxyAndSkeleton) {
  const auto code = gen(
      "typedef dsequence<double> arr;\n"
      "interface diff { void run(in long steps, inout arr a); };");
  EXPECT_NE(code.header.find("class diff : public "
                             "pardis::transfer::ProxyBase"),
            std::string::npos);
  EXPECT_NE(code.header.find("class POA_diff"), std::string::npos);
  EXPECT_NE(code.header.find("_spmd_bind"), std::string::npos);
  EXPECT_NE(code.header.find("run_nb"), std::string::npos);
  // Distributed and non-distributed mappings.
  EXPECT_NE(code.header.find("pardis::dseq::DSequence<pardis::cdr::Double>"),
            std::string::npos);
  EXPECT_NE(code.header.find("std::vector<pardis::cdr::Double>"),
            std::string::npos);
  // Repository id.
  EXPECT_NE(code.header.find("IDL:diff:1.0"), std::string::npos);
}

TEST(Codegen, RepoIdsIncludeModulePath) {
  const auto code =
      gen("module M { interface I { void f(); }; };");
  EXPECT_NE(code.header.find("IDL:M/I:1.0"), std::string::npos);
  EXPECT_NE(code.header.find("namespace M {"), std::string::npos);
}

TEST(Codegen, ExceptionRegistrarEmitted) {
  const auto code = gen("exception Bad { long code; string why; };");
  EXPECT_NE(code.header.find(
                "class Bad : public pardis::orb::TypedUserException"),
            std::string::npos);
  EXPECT_NE(code.source.find("register_user_exception"), std::string::npos);
}

TEST(Codegen, StructGetsMarshalHelpers) {
  const auto code = gen("struct P { double x; double y; };");
  EXPECT_NE(code.source.find("_pardis_encode"), std::string::npos);
  EXPECT_NE(code.source.find("_pardis_decode"), std::string::npos);
}

TEST(Codegen, ConstantsAndEnums) {
  const auto code = gen(
      "const long kMax = 64;\n"
      "const string kName = \"pardis\";\n"
      "enum Mode { kA, kB };");
  EXPECT_NE(code.header.find("inline constexpr pardis::cdr::Long kMax = 64"),
            std::string::npos);
  EXPECT_NE(code.header.find("enum class Mode"), std::string::npos);
}

TEST(Codegen, CompileRejectsBadIdl) {
  CodegenOptions options;
  EXPECT_THROW(compile("interface X { void f(in Missing m); };", options),
               CompileError);
  EXPECT_THROW(compile("garbage $$$", options), CompileError);
}

TEST(Codegen, OnewayUsesNoResponse) {
  const auto code =
      gen("interface I { oneway void fire(in long t); };");
  EXPECT_NE(code.source.find(", {}, false)"), std::string::npos);
}

}  // namespace
}  // namespace pardis::idl
