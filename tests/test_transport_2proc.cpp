// Two-process smoke test for the TCP backend: a forked server process and
// the parent client process, each with its own Orb, talking over real
// 127.0.0.1 sockets.  Covers the collective `_spmd_bind` handshake and a
// centralized-method invocation with one distributed argument — the
// paper's experiment shape, but across a genuine process boundary (the sim
// backend cannot express this; its fabric is in-memory).
//
// The object reference crosses the process boundary as a stringified IOR
// over a pipe, standing in for the shared naming substrate.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "pardis/dseq/dsequence.hpp"
#include "pardis/obs/sink.hpp"
#include "pardis/orb/orb.hpp"
#include "pardis/rts/team.hpp"
#include "pardis/transfer/spmd_client.hpp"
#include "pardis/transfer/spmd_server.hpp"

namespace pardis::transfer {
namespace {

// Both halves of this binary run with derived chrome pids
// (PARDIS_TRACE_PID=process) so traces exported by the two processes keep
// distinct process tracks when merged.  The knob must be set before the
// first span site latches the mode, hence a static initializer; the forked
// server inherits it.
const bool kTracePidModeSet = [] {
  ::setenv("PARDIS_TRACE_PID", "process", 1);
  return true;
}();

// Run both processes with reactor sharding on (4 shards): the cross-process
// handshake and centralized transfer must be oblivious to which shard a
// connection lands on.  The forked server inherits the knob.
const bool kShardedReactors = [] {
  ::setenv("PARDIS_TCP_REACTORS", "4", 1);
  return true;
}();

class SumServant : public SpmdServant {
 public:
  const char* type_id() const override { return "IDL:test/sum:1.0"; }
  void dispatch(ServerCall& call) override {
    if (call.operation() != "sum") throw BAD_OPERATION(call.operation());
    auto seq = call.take_dseq<double>(0);
    double local = 0;
    for (std::size_t i = 0; i < seq.local_length(); ++i) {
      local += seq.local_data()[i];
    }
    call.results().put_double(rts::allreduce_value(call.comm(), local));
  }
};

/// Server process body: never returns to gtest — exits 0 after an orderly
/// shutdown, nonzero on any exception.
[[noreturn]] void run_server_process(int ref_pipe_wr) {
  int code = 0;
  try {
    orb::OrbConfig config;
    config.transport = transport::Kind::kTcp;
    auto orb = orb::Orb::create(config);
    rts::Team team("serverhost", 2);
    team.run([&](rts::Communicator& comm) {
      SpmdServer server(*orb, comm, "serverhost");
      SumServant servant;
      server.activate("sum", servant);
      if (comm.rank() == 0) {
        const std::string ior = server.object_ref().to_string();
        const std::uint32_t len = static_cast<std::uint32_t>(ior.size());
        if (::write(ref_pipe_wr, &len, sizeof(len)) != sizeof(len) ||
            ::write(ref_pipe_wr, ior.data(), ior.size()) !=
                static_cast<ssize_t>(ior.size())) {
          throw COMM_FAILURE("could not hand the IOR to the client process");
        }
        ::close(ref_pipe_wr);
      }
      server.serve();
    });
  } catch (...) {
    code = 1;
  }
  ::_exit(code);
}

TEST(TcpTwoProcess, SpmdBindAndCentralizedInvoke) {
  ASSERT_TRUE(kShardedReactors);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(fds[0]);
    run_server_process(fds[1]);  // never returns
  }
  ::close(fds[1]);

  // Read the server's stringified object reference.
  std::uint32_t len = 0;
  ASSERT_EQ(::read(fds[0], &len, sizeof(len)),
            static_cast<ssize_t>(sizeof(len)));
  ASSERT_GT(len, 0u);
  ASSERT_LT(len, 1u << 16);
  std::string ior(len, '\0');
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fds[0], ior.data() + got, len - got);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  ::close(fds[0]);
  const orb::ObjectRef ref = orb::ObjectRef::from_string(ior);

  // The client process: its own Orb, its own naming domain into which the
  // foreign reference is registered, then the collective bind + invoke.
  orb::OrbConfig config;
  config.transport = transport::Kind::kTcp;
  auto orb = orb::Orb::create(config);
  orb->naming().register_object(ref);

  rts::Team team("clienthost", 2);
  team.run([&](rts::Communicator& comm) {
    auto binding = SpmdBinding::bind(*orb, comm, "clienthost", "sum",
                                     "IDL:test/sum:1.0");
    constexpr std::uint64_t kLen = 1000;
    dseq::DSequence<double> seq(comm, kLen);
    for (std::size_t i = 0; i < seq.local_length(); ++i) {
      seq.local_data()[i] = static_cast<double>(seq.local_offset() + i);
    }
    CallOptions opts;
    opts.method = orb::TransferMethod::kCentralized;
    TypedDSeqArg<double> arg(seq, orb::ArgDir::kIn);
    const Bytes results = binding.invoke("sum", {}, {&arg}, opts);
    cdr::Decoder dec{BytesView(results)};
    EXPECT_DOUBLE_EQ(dec.get_double(),
                     static_cast<double>(kLen * (kLen - 1)) / 2.0);
    binding.unbind();
    comm.barrier();
    if (comm.rank() == 0) {
      send_shutdown(*orb, "clienthost", ref);
    }
  });

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// ---- distributed tracing across the process boundary -----------------------

class EchoServant : public SpmdServant {
 public:
  const char* type_id() const override { return "IDL:test/echo:1.0"; }
  void dispatch(ServerCall& call) override {
    if (call.operation() != "ping") throw BAD_OPERATION(call.operation());
    auto dec = call.args();
    call.results().put_long(dec.get_long());
  }
};

constexpr const char* kServerTracePath = "trace_2proc_server.json";

/// Traced server process: single rank, pipelined dispatch, trace exported
/// on the way out for the parent to inspect.
[[noreturn]] void run_traced_server_process(int ref_pipe_wr) {
  int code = 0;
  try {
    orb::OrbConfig config;
    config.transport = transport::Kind::kTcp;
    auto orb = orb::Orb::create(config);
    orb->tracer().clear();
    orb->tracer().enable();
    rts::Team team("serverhost", 1);
    team.run([&](rts::Communicator& comm) {
      SpmdServer server(*orb, comm, "serverhost");
      EchoServant servant;
      server.activate("echo", servant);
      const std::string ior = server.object_ref().to_string();
      const std::uint32_t len = static_cast<std::uint32_t>(ior.size());
      if (::write(ref_pipe_wr, &len, sizeof(len)) != sizeof(len) ||
          ::write(ref_pipe_wr, ior.data(), ior.size()) !=
              static_cast<ssize_t>(ior.size())) {
        throw COMM_FAILURE("could not hand the IOR to the client process");
      }
      ::close(ref_pipe_wr);
      server.serve();
    });
    obs::TraceSink sink;
    sink.add(orb->tracer());
    sink.name_scenario_processes();
    if (!sink.write_file(kServerTracePath)) code = 2;
  } catch (...) {
    code = 1;
  }
  ::_exit(code);
}

TEST(TcpTwoProcess, MergedTraceKeepsDistinctProcessTracks) {
  ASSERT_TRUE(kTracePidModeSet);
  std::remove(kServerTracePath);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(fds[0]);
    run_traced_server_process(fds[1]);  // never returns
  }
  ::close(fds[1]);

  std::uint32_t len = 0;
  ASSERT_EQ(::read(fds[0], &len, sizeof(len)),
            static_cast<ssize_t>(sizeof(len)));
  ASSERT_GT(len, 0u);
  std::string ior(len, '\0');
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fds[0], ior.data() + got, len - got);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  ::close(fds[0]);

  orb::OrbConfig config;
  config.transport = transport::Kind::kTcp;
  auto orb = orb::Orb::create(config);
  const orb::ObjectRef ref = orb::ObjectRef::from_string(ior);
  orb->naming().register_object(ref);
  auto& tracer = orb->tracer();
  tracer.clear();
  tracer.set_sample_period(1);
  tracer.enable();

  auto binding =
      DirectBinding::bind(*orb, "clienthost", "echo", "IDL:test/echo:1.0");
  for (cdr::Long i = 0; i < 3; ++i) {
    cdr::Encoder enc;
    enc.put_long(i);
    auto f = binding.invoke_nb("ping", enc.take());
    cdr::Decoder dec{BytesView(f.get())};
    EXPECT_EQ(dec.get_long(), i);
  }
  binding.unbind();
  send_shutdown(*orb, "clienthost", ref);

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  tracer.enable(false);
  const auto events = tracer.snapshot();
  tracer.clear();

  // Client spans sit on this process's derived track, role recoverable.
  const std::uint32_t client_chrome_pid =
      static_cast<std::uint32_t>(::getpid()) * 4 + obs::kClientPid;
  std::set<std::uint64_t> trace_ids;
  for (const auto& e : events) {
    if (e.trace_id == 0) continue;
    EXPECT_EQ(e.pid, client_chrome_pid) << e.name;
    EXPECT_EQ(e.pid % 4, obs::kClientPid);
    trace_ids.insert(e.trace_id);
  }
  EXPECT_EQ(trace_ids.size(), 3u);

  // The server's exported half: its spans sit on the child's track — no
  // pid collision after a merge — and carry the client's trace ids, so
  // the two files stitch into one timeline.
  std::ifstream in(kServerTracePath);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string server_json = ss.str();
  const std::uint32_t server_chrome_pid =
      static_cast<std::uint32_t>(child) * 4 + obs::kServerPid;
  EXPECT_NE(
      server_json.find("\"pid\":" + std::to_string(server_chrome_pid)),
      std::string::npos);
  EXPECT_EQ(
      server_json.find("\"pid\":" + std::to_string(client_chrome_pid)),
      std::string::npos);
  bool stitched = false;
  for (const auto id : trace_ids) {
    stitched = stitched || server_json.find("\"trace_id\":\"" +
                                            std::to_string(id) + "\"") !=
                               std::string::npos;
  }
  EXPECT_TRUE(stitched) << server_json;
  std::remove(kServerTracePath);
}

}  // namespace
}  // namespace pardis::transfer
