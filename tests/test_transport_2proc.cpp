// Two-process smoke test for the TCP backend: a forked server process and
// the parent client process, each with its own Orb, talking over real
// 127.0.0.1 sockets.  Covers the collective `_spmd_bind` handshake and a
// centralized-method invocation with one distributed argument — the
// paper's experiment shape, but across a genuine process boundary (the sim
// backend cannot express this; its fabric is in-memory).
//
// The object reference crosses the process boundary as a stringified IOR
// over a pipe, standing in for the shared naming substrate.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "pardis/dseq/dsequence.hpp"
#include "pardis/orb/orb.hpp"
#include "pardis/rts/team.hpp"
#include "pardis/transfer/spmd_client.hpp"
#include "pardis/transfer/spmd_server.hpp"

namespace pardis::transfer {
namespace {

class SumServant : public SpmdServant {
 public:
  const char* type_id() const override { return "IDL:test/sum:1.0"; }
  void dispatch(ServerCall& call) override {
    if (call.operation() != "sum") throw BAD_OPERATION(call.operation());
    auto seq = call.take_dseq<double>(0);
    double local = 0;
    for (std::size_t i = 0; i < seq.local_length(); ++i) {
      local += seq.local_data()[i];
    }
    call.results().put_double(rts::allreduce_value(call.comm(), local));
  }
};

/// Server process body: never returns to gtest — exits 0 after an orderly
/// shutdown, nonzero on any exception.
[[noreturn]] void run_server_process(int ref_pipe_wr) {
  int code = 0;
  try {
    orb::OrbConfig config;
    config.transport = transport::Kind::kTcp;
    auto orb = orb::Orb::create(config);
    rts::Team team("serverhost", 2);
    team.run([&](rts::Communicator& comm) {
      SpmdServer server(*orb, comm, "serverhost");
      SumServant servant;
      server.activate("sum", servant);
      if (comm.rank() == 0) {
        const std::string ior = server.object_ref().to_string();
        const std::uint32_t len = static_cast<std::uint32_t>(ior.size());
        if (::write(ref_pipe_wr, &len, sizeof(len)) != sizeof(len) ||
            ::write(ref_pipe_wr, ior.data(), ior.size()) !=
                static_cast<ssize_t>(ior.size())) {
          throw COMM_FAILURE("could not hand the IOR to the client process");
        }
        ::close(ref_pipe_wr);
      }
      server.serve();
    });
  } catch (...) {
    code = 1;
  }
  ::_exit(code);
}

TEST(TcpTwoProcess, SpmdBindAndCentralizedInvoke) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(fds[0]);
    run_server_process(fds[1]);  // never returns
  }
  ::close(fds[1]);

  // Read the server's stringified object reference.
  std::uint32_t len = 0;
  ASSERT_EQ(::read(fds[0], &len, sizeof(len)),
            static_cast<ssize_t>(sizeof(len)));
  ASSERT_GT(len, 0u);
  ASSERT_LT(len, 1u << 16);
  std::string ior(len, '\0');
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fds[0], ior.data() + got, len - got);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  ::close(fds[0]);
  const orb::ObjectRef ref = orb::ObjectRef::from_string(ior);

  // The client process: its own Orb, its own naming domain into which the
  // foreign reference is registered, then the collective bind + invoke.
  orb::OrbConfig config;
  config.transport = transport::Kind::kTcp;
  auto orb = orb::Orb::create(config);
  orb->naming().register_object(ref);

  rts::Team team("clienthost", 2);
  team.run([&](rts::Communicator& comm) {
    auto binding = SpmdBinding::bind(*orb, comm, "clienthost", "sum",
                                     "IDL:test/sum:1.0");
    constexpr std::uint64_t kLen = 1000;
    dseq::DSequence<double> seq(comm, kLen);
    for (std::size_t i = 0; i < seq.local_length(); ++i) {
      seq.local_data()[i] = static_cast<double>(seq.local_offset() + i);
    }
    CallOptions opts;
    opts.method = orb::TransferMethod::kCentralized;
    TypedDSeqArg<double> arg(seq, orb::ArgDir::kIn);
    const Bytes results = binding.invoke("sum", {}, {&arg}, opts);
    cdr::Decoder dec{BytesView(results)};
    EXPECT_DOUBLE_EQ(dec.get_double(),
                     static_cast<double>(kLen * (kLen - 1)) / 2.0);
    binding.unbind();
    comm.barrier();
    if (comm.rank() == 0) {
      send_shutdown(*orb, "clienthost", ref);
    }
  });

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace pardis::transfer
