// Ablation: link-governor arbitration granularity (a design knob of the
// simulated fabric, DESIGN.md §4.2).
//
// The shared-link governor admits concurrent frames chunk-by-chunk.  Small
// chunks give fine-grained interleaving (concurrent sends finish together —
// what the paper observed on the ATM link); one huge chunk degenerates to
// frame-at-a-time serialization (a lone sender finishes first and its peer
// waits — the behavior the paper's K=1,P=2 exit-barrier numbers expose).
// This ablation quantifies both effects and confirms aggregate bandwidth is
// conserved regardless of granularity.

#include <thread>

#include "pardis/common/config.hpp"
#include "pardis/common/stats.hpp"
#include "pardis/common/timing.hpp"
#include "pardis/net/link.hpp"

#include <cstdio>
#include <vector>

using namespace pardis;

namespace {

struct Outcome {
  double total_ms;       // wall time until both transfers completed
  double first_done_ms;  // when the first sender finished
  double spread_ms;      // completion-time spread between the two senders
};

Outcome race_two_senders(std::size_t chunk_bytes, std::size_t frame_bytes,
                         double bandwidth) {
  net::LinkModel model;
  model.bandwidth_bps = bandwidth;
  model.chunk_bytes = chunk_bytes;
  net::LinkGovernor governor(model);

  const auto start = Clock::now();
  double done[2];
  std::thread a([&] {
    governor.transmit(frame_bytes);
    done[0] = to_ms(Clock::now() - start);
  });
  std::thread b([&] {
    governor.transmit(frame_bytes);
    done[1] = to_ms(Clock::now() - start);
  });
  a.join();
  b.join();
  Outcome o;
  o.total_ms = std::max(done[0], done[1]);
  o.first_done_ms = std::min(done[0], done[1]);
  o.spread_ms = o.total_ms - o.first_done_ms;
  return o;
}

}  // namespace

int main() {
  const double bandwidth = env_double("PARDIS_LINK_MBPS", 100.0) * 1e6;
  const std::size_t frame = static_cast<std::size_t>(
      env_u64("PARDIS_ABLATION_FRAME", 1u << 20));  // 1 MB per sender

  std::printf(
      "Ablation: link arbitration chunk size (two concurrent %zu-KB "
      "frames, %.0f MB/s link)\n\n",
      frame / 1024, bandwidth / 1e6);
  std::printf("  %10s | %9s | %11s | %9s | %s\n", "chunk", "total",
              "first done", "spread", "behavior");
  std::printf("  -----------+-----------+-------------+-----------+---------"
              "--------\n");

  const double ideal_ms = 2.0 * frame / bandwidth * 1e3;
  for (std::size_t chunk : {std::size_t{4} << 10, std::size_t{16} << 10,
                            std::size_t{64} << 10, std::size_t{256} << 10,
                            frame * 2}) {
    const Outcome o = race_two_senders(chunk, frame, bandwidth);
    const bool interleaved = o.spread_ms < 0.25 * o.total_ms;
    std::printf("  %7zu KB | %6.2f ms | %8.2f ms | %6.2f ms | %s\n",
                chunk / 1024, o.total_ms, o.first_done_ms, o.spread_ms,
                interleaved ? "interleaved (finish together)"
                            : "serialized (one waits)");
  }
  std::printf(
      "\nAggregate link time should stay ~%.2f ms at every granularity "
      "(bandwidth conservation).\n",
      ideal_ms);
  return 0;
}
