// Microbenchmarks (google-benchmark): CDR marshaling throughput and the
// distribution/plan algebra on the multi-port hot path.

#include <benchmark/benchmark.h>

#include <random>

#include "pardis/cdr/decoder.hpp"
#include "pardis/cdr/encoder.hpp"
#include "pardis/dseq/plan.hpp"

using namespace pardis;

namespace {

void BM_CdrEncodeDoubles(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> values(n, 3.14);
  for (auto _ : state) {
    cdr::Encoder enc;
    enc.reserve(n * 8 + 16);
    enc.put_array(values.data(), values.size());
    benchmark::DoNotOptimize(enc.bytes().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 8);
}
BENCHMARK(BM_CdrEncodeDoubles)->Range(1 << 10, 1 << 20);

void BM_CdrDecodeDoubles(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> values(n, 3.14);
  cdr::Encoder enc;
  enc.put_array(values.data(), values.size());
  const Bytes bytes = enc.take();
  for (auto _ : state) {
    cdr::Decoder dec{BytesView(bytes)};
    auto out = dec.get_array<double>();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 8);
}
BENCHMARK(BM_CdrDecodeDoubles)->Range(1 << 10, 1 << 20);

void BM_CdrEncodeMixedScalars(benchmark::State& state) {
  for (auto _ : state) {
    cdr::Encoder enc;
    for (int i = 0; i < 64; ++i) {
      enc.put_octet(1);
      enc.put_long(i);
      enc.put_double(i * 0.5);
      enc.put_string("operation_name");
    }
    benchmark::DoNotOptimize(enc.bytes().data());
  }
}
BENCHMARK(BM_CdrEncodeMixedScalars);

void BM_ProportionsSplit(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  std::vector<double> weights(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) weights[static_cast<std::size_t>(i)] = i + 1;
  const dseq::Proportions props(weights);
  for (auto _ : state) {
    auto counts = props.split(1 << 20, p);
    benchmark::DoNotOptimize(counts.data());
  }
}
BENCHMARK(BM_ProportionsSplit)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_RedistributionPlan(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int p = static_cast<int>(state.range(1));
  const auto src = dseq::DistTempl::block(1 << 20, k);
  const auto dst = dseq::DistTempl::block(1 << 20, p);
  for (auto _ : state) {
    dseq::RedistributionPlan plan(src, dst);
    benchmark::DoNotOptimize(plan.segments().data());
  }
}
BENCHMARK(BM_RedistributionPlan)
    ->Args({2, 8})
    ->Args({4, 8})
    ->Args({16, 64})
    ->Args({64, 256});

void BM_DistTemplOwner(benchmark::State& state) {
  const auto dist = dseq::DistTempl::block(1 << 20, 64);
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<std::uint64_t> pick(0, (1 << 20) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.owner(pick(rng)));
  }
}
BENCHMARK(BM_DistTemplOwner);

}  // namespace

BENCHMARK_MAIN();
