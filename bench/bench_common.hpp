// Thin alias: the experiment harness lives in the library so the shape
// tests (tests/test_shape.cpp) can assert against the same code paths the
// table benchmarks measure.

#pragma once

#include "pardis/sim/experiment.hpp"
