// Microbenchmarks (google-benchmark): runtime-system primitives — tagged
// point-to-point latency and the collective operations the transfer engines
// lean on.  Each benchmark runs a persistent team and measures many
// operations per team launch.

#include <benchmark/benchmark.h>

#include "pardis/common/timing.hpp"
#include "pardis/rts/collectives.hpp"
#include "pardis/rts/team.hpp"

using namespace pardis;

namespace {

/// Runs `per_rank` inside a team of `nranks` and reports the time per
/// repetition measured at rank 0.
template <typename Fn>
void run_team_bench(benchmark::State& state, int nranks, int reps,
                    const Fn& per_rank) {
  for (auto _ : state) {
    state.PauseTiming();
    rts::Team team("bench", nranks);
    double rank0_seconds = 0;
    state.ResumeTiming();
    team.run([&](rts::Communicator& comm) {
      comm.barrier();
      const auto t0 = Clock::now();
      for (int i = 0; i < reps; ++i) per_rank(comm, i);
      if (comm.rank() == 0) {
        rank0_seconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
      }
    });
    benchmark::DoNotOptimize(rank0_seconds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          reps);
}

void BM_PingPong(benchmark::State& state) {
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0xAB);
  run_team_bench(state, 2, 200, [&](rts::Communicator& comm, int) {
    if (comm.rank() == 0) {
      comm.send(1, 7, payload);
      (void)comm.recv(1, 8);
    } else {
      (void)comm.recv(0, 7);
      comm.send(0, 8, payload);
    }
  });
}
BENCHMARK(BM_PingPong)->Arg(8)->Arg(4096)->Arg(1 << 18)->Iterations(20);

void BM_Barrier(benchmark::State& state) {
  run_team_bench(state, static_cast<int>(state.range(0)), 200,
                 [](rts::Communicator& comm, int) { comm.barrier(); });
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8)->Iterations(20);

void BM_Bcast(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  run_team_bench(state, 8, 50, [&](rts::Communicator& comm, int) {
    Bytes data;
    if (comm.rank() == 0) data.assign(bytes, 0x5A);
    comm.bcast_bytes(data, 0);
    benchmark::DoNotOptimize(data.data());
  });
}
BENCHMARK(BM_Bcast)->Arg(64)->Arg(1 << 16)->Iterations(20);

void BM_Gatherv(benchmark::State& state) {
  const auto per_rank_elems = static_cast<std::size_t>(state.range(0));
  run_team_bench(state, 8, 50, [&](rts::Communicator& comm, int) {
    std::vector<double> local(per_rank_elems, 1.0);
    auto all = rts::gatherv<double>(comm, local, 0);
    benchmark::DoNotOptimize(all.data());
  });
}
BENCHMARK(BM_Gatherv)->Arg(1 << 10)->Arg(1 << 15)->Iterations(20);

void BM_Alltoall(benchmark::State& state) {
  const auto chunk = static_cast<std::size_t>(state.range(0));
  run_team_bench(state, 8, 20, [&](rts::Communicator& comm, int) {
    std::vector<std::vector<double>> parts(
        static_cast<std::size_t>(comm.size()),
        std::vector<double>(chunk, 2.0));
    auto got = rts::alltoallv(comm, parts);
    benchmark::DoNotOptimize(got.data());
  });
}
BENCHMARK(BM_Alltoall)->Arg(1 << 8)->Arg(1 << 12)->Iterations(20);

}  // namespace

BENCHMARK_MAIN();
