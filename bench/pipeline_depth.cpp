// Request pipelining (docs/pipelining.md): invocations per second of a
// tiny echo operation versus pipeline depth, over one multiplexed
// connection.
//
// A DirectBinding client keeps `depth` non-blocking invocations in flight
// (sliding window: collect the oldest future, issue the next request) so
// at depth 1 every request pays a full round trip while at depth 32 the
// round trips overlap.  The useful summary is the throughput curve —
// pipelining must recover at least the latency-bound 2x by depth 32 over
// tcp — plus per-invocation issue-to-collect latency (p50/p99 from the
// obs histogram), which *rises* with depth as requests queue behind each
// other.  Flow control shows up in the reject columns: with default
// server knobs every depth here fits the advertised credit window and
// both stay 0.
//
// Extra knobs: PARDIS_PIPELINE_REPS (invocations per depth, default 1000),
// plus the pipelining knobs themselves (PARDIS_SERVER_QUEUE,
// PARDIS_SERVER_WORKERS, PARDIS_SERVER_CREDIT).  PARDIS_MAX_INFLIGHT is
// owned by the sweep: it is how each depth is selected.

#include <chrono>
#include <cstdlib>
#include <deque>
#include <string>
#include <utility>

#include "bench_common.hpp"
#include "bench_json.hpp"

using namespace pardis;
using namespace pardis::bench;

namespace {

/// Minimal scalar echo: decode one long, send it back.  Stateless, so the
/// server worker pool may dispatch it concurrently.
class EchoServant : public transfer::SpmdServant {
 public:
  const char* type_id() const override { return "IDL:bench/echo:1.0"; }
  void dispatch(transfer::ServerCall& call) override {
    if (call.operation() != "ping") {
      throw BAD_OPERATION(call.operation());
    }
    auto dec = call.args();
    call.results().put_long(dec.get_long());
  }
};

struct DepthResult {
  int depth = 0;
  double inv_per_sec = 0;
  obs::MetricsRegistry::Sample latency_us{};
  std::uint64_t client_rejects = 0;
  std::uint64_t server_rejects = 0;
};

DepthResult run_depth(int depth, std::uint64_t reps,
                      const net::LinkModel& link,
                      std::optional<transport::Kind> kind) {
  // The client window is negotiated at bind time from PARDIS_MAX_INFLIGHT;
  // set it on the main thread, before the scenario spawns anything.
  setenv("PARDIS_MAX_INFLIGHT", std::to_string(depth).c_str(), 1);

  sim::ScenarioConfig scfg;
  scfg.client.nranks = 1;
  scfg.server.nranks = 1;
  scfg.link = link;
  scfg.orb.transport = kind;
  sim::Scenario scenario(scfg);

  DepthResult out;
  out.depth = depth;
  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, scfg.server.host);
        EchoServant servant;
        server.activate("echo", servant);
        server.serve();
      },
      [&](rts::Communicator&) {
        auto binding = transfer::DirectBinding::bind(
            scenario.orb(), scfg.client.host, "echo", "IDL:bench/echo:1.0");
        auto& latency =
            scenario.orb().metrics().histogram("bench.pipeline.latency_us");
        using Clock = std::chrono::steady_clock;

        // One synchronous warm-up keeps connection setup off the clock.
        {
          cdr::Encoder enc;
          enc.put_long(-1);
          (void)binding.invoke("ping", enc.take());
        }

        std::deque<std::pair<orb::Future<Bytes>, Clock::time_point>> window;
        auto collect = [&] {
          auto [future, issued] = std::move(window.front());
          window.pop_front();
          try {
            Bytes reply = future.get();
            latency.add(std::chrono::duration<double, std::micro>(
                            Clock::now() - issued)
                            .count());
            cdr::Decoder dec{BytesView(reply)};
            (void)dec.get_long();
          } catch (const TRANSIENT&) {
            ++out.client_rejects;  // server shed it; not a latency sample
          }
        };

        const auto start = Clock::now();
        for (std::uint64_t i = 0; i < reps; ++i) {
          if (window.size() == static_cast<std::size_t>(depth)) collect();
          cdr::Encoder enc;
          enc.put_long(static_cast<cdr::Long>(i));
          window.emplace_back(binding.invoke_nb("ping", enc.take()),
                              Clock::now());
        }
        while (!window.empty()) collect();
        const double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        out.inv_per_sec = static_cast<double>(reps) / seconds;
        binding.unbind();
      },
      "echo");

  const auto snap = scenario.orb().metrics().snapshot();
  out.latency_us = find_sample(snap, "bench.pipeline.latency_us");
  out.server_rejects = find_sample(snap, "server.pipeline.rejects").count;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  TraceSession trace(argc, argv);

  BenchConfig base;  // only used to parse --transport / the link model
  base.link = link_from_env();
  apply_transport_flag(base, argc, argv);
  const std::string kind = transport::to_string(
      base.transport.value_or(transport::kind_from_env()));

  const std::uint64_t reps = env_u64("PARDIS_PIPELINE_REPS", 1000);
  const int depths[] = {1, 2, 4, 8, 16, 32};

  std::printf("Pipeline depth sweep: echo invocations/s over one %s stream\n",
              kind.c_str());
  std::printf("  %llu invocations per depth, window = PARDIS_MAX_INFLIGHT\n\n",
              static_cast<unsigned long long>(reps));
  std::printf("  %5s | %10s | %9s | %9s | %7s | %s\n", "depth", "inv/s",
              "p50 (us)", "p99 (us)", "speedup", "rejects");
  std::printf("  ------+------------+-----------+-----------+---------+"
              "--------\n");

  JsonArray rows;
  double base_rate = 0;
  double last_rate = 0;
  for (const int depth : depths) {
    const DepthResult r = run_depth(depth, reps, base.link, base.transport);
    if (depth == 1) base_rate = r.inv_per_sec;
    last_rate = r.inv_per_sec;
    std::printf("  %5d | %10.0f | %9.0f | %9.0f | %6.2fx | %llu+%llu\n",
                r.depth, r.inv_per_sec, r.latency_us.p50, r.latency_us.p99,
                base_rate > 0 ? r.inv_per_sec / base_rate : 0.0,
                static_cast<unsigned long long>(r.client_rejects),
                static_cast<unsigned long long>(r.server_rejects));
    rows.item(JsonObject()
                  .field("depth", r.depth)
                  .field("invocations_per_sec", r.inv_per_sec)
                  .raw("latency_us", histogram_json(r.latency_us))
                  .field("client_rejects", r.client_rejects)
                  .field("server_rejects", r.server_rejects)
                  .str());
  }

  const double speedup = base_rate > 0 ? last_rate / base_rate : 0.0;
  std::printf("\n  depth 32 vs depth 1: %.2fx "
              "(acceptance over tcp: >= 2x)\n",
              speedup);

  write_bench_json("pipeline_depth",
                   JsonObject()
                       .field("bench", std::string("pipeline_depth"))
                       .field("transport", kind)
                       .field("invocations_per_depth", reps)
                       .raw("depths", rows.str())
                       .field("speedup_depth32_vs_depth1", speedup)
                       .str());
  return 0;
}
