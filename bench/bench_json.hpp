// Machine-readable benchmark summaries (README "Benchmarks").
//
// Benchmarks that track a perf trajectory write `BENCH_<name>.json` next
// to the working directory (override with PARDIS_BENCH_DIR) containing
// throughput plus p50/p99 latency pulled from the obs histograms.  The
// files are committed at the repo root so a reviewer can diff benchmark
// results across PRs without rerunning anything.
//
// The writer is a deliberately tiny hand-rolled builder: keys are
// programmer-controlled identifiers (no escaping needed beyond quotes and
// backslashes) and the output is a single pretty-enough line-per-field
// object, stable under diff.

#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

#include "pardis/common/config.hpp"
#include "pardis/common/timing.hpp"
#include "pardis/obs/metrics.hpp"

namespace pardis::bench {

/// Formats a double with enough digits to round-trip trends, and maps
/// non-finite values to null (JSON has no inf/nan).
inline std::string json_num(double v) {
  if (!(v == v) || v > 1e308 || v < -1e308) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

inline std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

/// Insertion-ordered JSON object builder.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, double v) {
    return raw(key, json_num(v));
  }
  JsonObject& field(const std::string& key, std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return raw(key, buf);
  }
  JsonObject& field(const std::string& key, int v) {
    return field(key, static_cast<std::uint64_t>(v < 0 ? 0 : v));
  }
  JsonObject& field(const std::string& key, const std::string& v) {
    return raw(key, json_str(v));
  }
  /// Nests an already-serialized JSON value (object, array, number).
  JsonObject& raw(const std::string& key, const std::string& json) {
    body_ += body_.empty() ? "" : ", ";
    body_ += json_str(key) + ": " + json;
    return *this;
  }
  std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

class JsonArray {
 public:
  JsonArray& item(const std::string& json) {
    body_ += body_.empty() ? "\n  " : ",\n  ";
    body_ += json;
    return *this;
  }
  std::string str() const {
    return body_.empty() ? "[]" : "[" + body_ + "\n]";
  }

 private:
  std::string body_;
};

/// Serializes one histogram sample as
/// {count, mean, min, max, p50, p99, p999}.
inline std::string histogram_json(const obs::MetricsRegistry::Sample& s) {
  return JsonObject()
      .field("count", s.count)
      .field("mean", s.stat.mean())
      .field("min", s.count ? s.stat.min() : 0.0)
      .field("max", s.count ? s.stat.max() : 0.0)
      .field("p50", s.p50)
      .field("p99", s.p99)
      .field("p999", s.p999)
      .str();
}

/// Looks up one instrument in a metrics snapshot (empty sample if absent).
inline obs::MetricsRegistry::Sample find_sample(
    const std::vector<obs::MetricsRegistry::Sample>& snapshot,
    const std::string& name) {
  for (const auto& s : snapshot) {
    if (s.name == name) return s;
  }
  return {};
}

/// Serializes the per-phase latency breakdown of one invocation path: one
/// histogram object per Phase whose `<prefix><phase>` instrument has
/// samples (reduce_stats feeds e.g. "client.phase.send").  Phases that
/// never ran are omitted so centralized rows don't carry empty
/// scatter/gather entries.
inline std::string phases_json(
    const std::vector<obs::MetricsRegistry::Sample>& snapshot,
    const std::string& prefix) {
  JsonObject o;
  for (int p = 0; p <= static_cast<int>(Phase::kTotal); ++p) {
    const auto phase = static_cast<Phase>(p);
    const auto s = find_sample(snapshot, prefix + to_string(phase));
    if (s.count > 0) o.raw(to_string(phase), histogram_json(s));
  }
  return o.str();
}

/// Writes BENCH_<bench>.json into PARDIS_BENCH_DIR (default: the working
/// directory — run benches from the repo root to refresh the committed
/// copies).  Returns false and warns on I/O failure rather than failing
/// the bench: the human-readable table already went to stdout.
inline bool write_bench_json(const std::string& bench,
                             const std::string& json) {
  const std::string dir = env_string("PARDIS_BENCH_DIR").value_or(".");
  const std::string path = dir + "/BENCH_" + bench + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(json.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("summary: %s\n", path.c_str());
  return true;
}

}  // namespace pardis::bench
