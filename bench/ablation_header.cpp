// Ablation: why multi-port separates the invocation header from the
// argument transfer (paper §3.3: "sending the invocation to every computing
// thread instead of having only one thread broadcast it to others could
// lead to contention between different invoking clients").
//
// We measure the fixed-overhead floor of both methods with a tiny argument
// (header-dominated regime) and the cost of the separated header as the
// argument grows.  Expectation: the separated header costs one extra small
// frame of latency — negligible for the large transfers SPMD objects are
// built for (the paper's small-size convergence in Figure 4).

#include "bench_common.hpp"

using namespace pardis;
using namespace pardis::bench;

int main() {
  BenchConfig base;
  base.client_ranks = 4;
  base.server_ranks = 4;
  base.reps = static_cast<int>(env_u64("PARDIS_REPS", 15));
  base.link = link_from_env();

  base.seqlen = 8;
  print_banner("Ablation: invocation-header overhead (piggybacked vs "
               "separated)", base);

  std::printf("  %9s | %12s | %12s | %s\n", "doubles",
              "centralized", "multi-port", "multi-port penalty");
  std::printf("  %9s | %12s | %12s | (extra header frame)\n", "", "(ms)",
              "(ms)");
  std::printf("  ----------+--------------+--------------+-----------------\n");
  for (std::uint64_t len : {8ull, 64ull, 512ull, 4096ull, 32768ull,
                            262144ull}) {
    double ms[2];
    for (auto method : {orb::TransferMethod::kCentralized,
                        orb::TransferMethod::kMultiPort}) {
      BenchConfig cfg = base;
      cfg.seqlen = len;
      cfg.method = method;
      const BenchResult r = run_config(cfg);
      ms[method == orb::TransferMethod::kMultiPort] =
          r.client_ms(Phase::kTotal);
    }
    std::printf("  %9llu | %12.3f | %12.3f | %+.3f ms\n",
                static_cast<unsigned long long>(len), ms[0], ms[1],
                ms[1] - ms[0]);
  }
  std::printf(
      "\nExpectation: a small constant penalty for tiny arguments that "
      "vanishes (and\nreverses) as the argument grows — the price of "
      "avoiding cross-client contention.\n");
  return 0;
}
