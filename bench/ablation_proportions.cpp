// Ablation for the paper's §3.3 remark: "Experiments show that cases when
// the sequence is split unevenly are of comparable efficiency (for example
// for K=3 and P=5 in the same experiment the timing of the invocation was
// 370 milliseconds)."
//
// We run the multi-port experiment at a fixed size and compare:
//   * uniform blockwise distribution on both sides;
//   * an uneven server-side preset (Proportions-style weights);
//   * an uneven client-side distribution;
//   * uneven on both sides;
// plus the paper's odd K=3 / P=5 configuration.  Expectation: totals within
// a small factor of the uniform case.

#include "bench_common.hpp"
#include "pardis/dseq/proportions.hpp"

using namespace pardis;
using namespace pardis::bench;

namespace {

double run_case(const BenchConfig& base, bool uneven_client,
                bool uneven_server) {
  sim::ScenarioConfig scfg;
  scfg.server.nranks = base.server_ranks;
  scfg.client.nranks = base.client_ranks;
  scfg.link = base.link;
  sim::Scenario scenario(scfg);

  double total_ms = 0;
  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, scfg.server.host);
        SinkServant servant;
        transfer::ArgDistPolicy policy;
        if (uneven_server) {
          // Weights 1,2,...,P — a strongly skewed preset (paper §2.2's
          // Proportions(2,4,2,4) example generalized).
          std::vector<double> w(static_cast<std::size_t>(comm.size()));
          for (std::size_t i = 0; i < w.size(); ++i) {
            w[i] = static_cast<double>(i + 1);
          }
          policy.set("consume", 0, dseq::Proportions(std::move(w)));
        }
        server.activate("sink", servant, std::move(policy));
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto binding = transfer::SpmdBinding::bind(
            scenario.orb(), comm, scfg.client.host, "sink",
            "IDL:bench/sink:1.0");
        dseq::DSequence<double> seq = [&] {
          if (!uneven_client) {
            return dseq::DSequence<double>(comm, base.seqlen);
          }
          std::vector<double> w(static_cast<std::size_t>(comm.size()));
          for (std::size_t i = 0; i < w.size(); ++i) {
            w[i] = static_cast<double>(w.size() - i);
          }
          return dseq::DSequence<double>(comm, base.seqlen,
                                         dseq::Proportions(std::move(w)));
        }();
        for (std::size_t i = 0; i < seq.local_length(); ++i) {
          seq.local_data()[i] = 1.0;
        }
        transfer::CallOptions opts;
        opts.method = orb::TransferMethod::kMultiPort;
        double sum = 0;
        for (int rep = -1; rep < base.reps; ++rep) {
          transfer::TypedDSeqArg<double> arg(seq, orb::ArgDir::kIn);
          cdr::Encoder enc;
          binding.invoke("consume", enc.take(), {&arg}, opts);
          if (rep < 0) continue;
          const auto reduced =
              transfer::reduce_stats(comm, binding.last_stats());
          sum += reduced[static_cast<std::size_t>(Phase::kTotal)];
        }
        if (comm.rank() == 0) total_ms = sum / base.reps;
        binding.unbind();
      },
      "sink");
  return total_ms;
}

}  // namespace

int main() {
  BenchConfig base;
  base.client_ranks = 4;
  base.server_ranks = 8;
  base.seqlen = env_u64("PARDIS_SEQLEN", 1u << 17);
  base.reps = static_cast<int>(env_u64("PARDIS_REPS", 10));
  base.link = link_from_env();

  print_banner(
      "Ablation: uneven distributions under multi-port transfer (paper "
      "§3.3 remark)",
      base);

  struct Case {
    const char* name;
    int k, p;
    bool uneven_client, uneven_server;
  };
  const Case cases[] = {
      {"uniform / uniform   (K=4,P=8)", 4, 8, false, false},
      {"uniform / uneven    (K=4,P=8)", 4, 8, false, true},
      {"uneven  / uniform   (K=4,P=8)", 4, 8, true, false},
      {"uneven  / uneven    (K=4,P=8)", 4, 8, true, true},
      {"uniform / uniform   (K=3,P=5)", 3, 5, false, false},
      {"uneven  / uneven    (K=3,P=5)", 3, 5, true, true},
  };

  double baseline = 0;
  for (const Case& c : cases) {
    BenchConfig cfg = base;
    cfg.client_ranks = c.k;
    cfg.server_ranks = c.p;
    const double ms = run_case(cfg, c.uneven_client, c.uneven_server);
    if (baseline == 0) baseline = ms;
    std::printf("  %-32s : %8.2f ms   (%.2fx of uniform)\n", c.name, ms,
                ms / baseline);
  }
  std::printf(
      "\nExpectation (paper): uneven splits are of comparable efficiency "
      "to even ones.\n");
  return 0;
}
