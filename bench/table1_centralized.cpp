// Table 1 (paper §3.2): time of invocation using the CENTRALIZED method of
// argument transfer, for server thread counts P = 1,2,4,8 and client thread
// counts K = 2,4.  One "in" distributed sequence of doubles travels from
// client to server inside the request message.
//
// Columns (matching the paper's):
//   t     total invocation time (client, max over threads)
//   t_ps  pack + send at the client's communicating thread
//   t_r   receive + unpack at the server's communicating thread
//   t_g   gather at the client (collect chunks at the communicating thread)
//   t_sc  scatter at the server (distribute chunks from the communicating
//         thread)
//
// Paper shape to verify: every column GROWS as P or K grows (gather/scatter
// cost, single serialized stream), and t_r tracks t_ps (the server's receive
// overlaps the client's send).

#include "bench_common.hpp"

using namespace pardis;
using namespace pardis::bench;

int main(int argc, char** argv) {
  TraceSession trace(argc, argv);

  BenchConfig base;
  base.seqlen = env_u64("PARDIS_SEQLEN", 1u << 17);
  base.reps = static_cast<int>(env_u64("PARDIS_REPS", 15));
  base.link = link_from_env();
  base.method = orb::TransferMethod::kCentralized;
  apply_transport_flag(base, argc, argv);

  print_banner("Table 1: centralized argument transfer", base);

  const int clients[] = {2, 4};
  const int servers[] = {1, 2, 4, 8};

  for (int k : clients) {
    std::printf("K = %d client threads\n", k);
    std::printf("  %2s | %9s %9s %9s %9s %9s\n", "P", "t", "t_ps", "t_r",
                "t_g", "t_sc");
    std::printf("  ---+-------------------------------------------------\n");
    for (int p : servers) {
      BenchConfig cfg = base;
      cfg.client_ranks = k;
      cfg.server_ranks = p;
      const BenchResult r = run_config(cfg);
      std::printf("  %2d | %9.2f %9.2f %9.2f %9.2f %9.2f\n", p,
                  r.client_ms(Phase::kTotal),
                  r.client_ms(Phase::kPack) + r.client_ms(Phase::kSend),
                  r.server_ms(Phase::kRecv) + r.server_ms(Phase::kUnpack),
                  r.client_ms(Phase::kGather),
                  r.server_ms(Phase::kScatter));
    }
    std::printf("\n");
  }
  std::printf("(all times in milliseconds)\n");
  return 0;
}
