// Table 2 (paper §3.3): time of invocation using the MULTI-PORT method of
// argument transfer, for P = 1,2,4,8 server threads and K = 1,2,4 client
// threads.  Each client thread routes its share of the sequence directly to
// the owning server threads over per-thread connections that all share one
// physical link.
//
// Columns (matching the paper's):
//   t      total invocation time
//   t_send send time (max over client threads)
//   t_p    packing/marshaling time (max over client threads)
//   t_ru   unpacking cost at the server (max over threads).  The paper's
//          "receiving and unpacking" numbers for this table are far smaller
//          than the send (23.5 ms vs 420 ms at K=2,P=1), i.e. they exclude
//          the time blocked waiting for data on the wire; we report the
//          matching quantity — per-thread data unpacking.
//   t_b    post-invocation exit barrier at the server's communicating thread
//
// Paper shapes to verify:
//   * t_p shrinks as K grows (parallel marshaling of smaller chunks);
//   * t_ru shrinks as P grows;
//   * with K < P the exit barrier absorbs the serialized tail of the send
//     (e.g. K=1, P=2: barrier ~ half the send), and with K = P concurrent
//     transfers interleave so the barrier collapses toward zero;
//   * t never exceeds the centralized method's (Table 1) at the same
//     configuration.

#include "bench_common.hpp"

using namespace pardis;
using namespace pardis::bench;

int main(int argc, char** argv) {
  TraceSession trace(argc, argv);

  BenchConfig base;
  base.seqlen = env_u64("PARDIS_SEQLEN", 1u << 17);
  base.reps = static_cast<int>(env_u64("PARDIS_REPS", 15));
  base.link = link_from_env();
  base.method = orb::TransferMethod::kMultiPort;
  apply_transport_flag(base, argc, argv);

  print_banner("Table 2: multi-port argument transfer", base);

  const int clients[] = {1, 2, 4};
  const int servers[] = {1, 2, 4, 8};

  for (int k : clients) {
    std::printf("K = %d client thread%s\n", k, k == 1 ? "" : "s");
    std::printf("  %2s | %9s %9s %9s %9s %9s\n", "P", "t", "t_send", "t_p",
                "t_ru", "t_b");
    std::printf("  ---+-------------------------------------------------\n");
    for (int p : servers) {
      BenchConfig cfg = base;
      cfg.client_ranks = k;
      cfg.server_ranks = p;
      const BenchResult r = run_config(cfg);
      std::printf("  %2d | %9.2f %9.2f %9.2f %9.2f %9.2f\n", p,
                  r.client_ms(Phase::kTotal),
                  r.client_ms(Phase::kSend),
                  r.client_ms(Phase::kPack),
                  r.server_ms(Phase::kUnpack),
                  r.server_ms(Phase::kBarrier));
    }
    std::printf("\n");
  }
  std::printf("(all times in milliseconds)\n");
  return 0;
}
