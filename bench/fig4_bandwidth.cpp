// Figure 4 (paper §3.4): effective bandwidth of an "in"-argument transfer —
// including all invocation overhead — versus sequence length, for both
// transfer methods in the most powerful configuration considered
// (K = 4 client threads, P = 8 server threads).
//
// The paper's curves: both methods are nearly identical for small
// sequences (header/latency dominated); for large sequences multi-port
// peaks at ~26.7 MB/s while centralized tops out at ~12.27 MB/s (about a
// 2.2x gap) and *declines* past its peak as gather/scatter costs grow with
// the data.  The reproduction must show the same ordering, a comparable
// ratio at the top end, and the small-size convergence.
//
// Extra knobs: PARDIS_FIG4_MAXLEN (default 1e6 doubles).

#include <cmath>

#include "bench_common.hpp"
#include "bench_json.hpp"

using namespace pardis;
using namespace pardis::bench;

int main(int argc, char** argv) {
  TraceSession trace(argc, argv);

  BenchConfig base;
  base.client_ranks = 4;
  base.server_ranks = 8;
  base.reps = static_cast<int>(env_u64("PARDIS_REPS", 7));
  base.link = link_from_env();
  apply_transport_flag(base, argc, argv);

  const auto max_len = env_u64("PARDIS_FIG4_MAXLEN", 1'000'000);

  base.seqlen = max_len;
  print_banner(
      "Figure 4: effective bandwidth, centralized vs multi-port (K=4, P=8)",
      base);

  std::printf("  %9s | %14s | %14s | %s\n", "doubles", "centralized",
              "multi-port", "ratio");
  std::printf("  %9s | %14s | %14s |\n", "", "(MB/s)", "(MB/s)");
  std::printf("  ----------+----------------+----------------+------\n");

  JsonArray points;
  for (std::uint64_t len = 10; len <= max_len; len *= 10) {
    double mbps[2] = {0, 0};
    JsonObject point;
    point.field("doubles", len);
    for (auto method : {orb::TransferMethod::kCentralized,
                        orb::TransferMethod::kMultiPort}) {
      BenchConfig cfg = base;
      cfg.seqlen = len;
      cfg.method = method;
      // Fewer reps for the big points to keep runtime sane.
      if (len >= 100'000) cfg.reps = std::max(3, cfg.reps / 2);
      const BenchResult r = run_config(cfg);
      const double seconds = r.client_ms(Phase::kTotal) / 1e3;
      const double mb = static_cast<double>(len) * 8.0 / 1e6;
      const bool multiport = method == orb::TransferMethod::kMultiPort;
      mbps[multiport] = mb / seconds;
      const char* prefix = multiport ? "multiport" : "centralized";
      point.field(std::string(prefix) + "_mbps", mbps[multiport]);
      point.raw(std::string(prefix) + "_total_ms",
                histogram_json(r.total_ms));
    }
    point.field("ratio", mbps[1] / mbps[0]);
    points.item(point.str());
    std::printf("  %9llu | %14.2f | %14.2f | %4.2fx\n",
                static_cast<unsigned long long>(len), mbps[0], mbps[1],
                mbps[1] / mbps[0]);
  }
  std::printf(
      "\n(effective bandwidth includes all invocation overhead, as in the "
      "paper)\n");

  write_bench_json(
      "fig4_bandwidth",
      JsonObject()
          .field("bench", std::string("fig4_bandwidth"))
          .field("transport",
                 std::string(transport::to_string(
                     base.transport.value_or(transport::kind_from_env()))))
          .field("client_ranks", base.client_ranks)
          .field("server_ranks", base.server_ranks)
          .field("reps", base.reps)
          .field("link_mbps", base.link.bandwidth_bps / 1e6)
          .raw("points", points.str())
          .str());
  return 0;
}
