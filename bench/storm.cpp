// Storm: a closed-loop load-and-chaos harness (docs/benchmarks.md).
//
// N client threads drive a mixed workload against one SPMD server over a
// chosen backend: pipelined small invocations through invoke_nb windows
// (the SLS control-system shape: hundreds of clients hammering tiny
// operations), chunked bulk streaming with resume-after-disconnect (the
// DLC-manager shape), periodic rebinds through the idle-stream pool, and —
// in chaos-off cells — collective dsequence transfers alternating the
// centralized and multi-port methods.
//
// The chaos layer exercises the recovery paths the transport and pipeline
// layers claim to provide:
//
//   * both backends: PARDIS_CHAOS_KILL_EVERY makes the server slam a
//     client's control stream shut mid-window every Nth pipelined
//     admission (peer-kill-and-reconnect);
//   * sim only: per-frame link fault injection (LinkModel::fault_rate)
//     kills live connections from the client side of the wire, and a
//     partition toggler periodically refuses new connects so rebinds must
//     back off and retry.
//
// The harness is closed-loop: every future issued must settle — as a
// value, TRANSIENT (shed), or COMM_FAILURE (died) — before its thread
// exits.  A nonzero hung-future count fails the run (exit 1); a hang
// simply never finishes, which CI timeouts catch.
//
// Collective SPMD invocations are *not* fault-recoverable (a rank that
// throws mid-collective would desync its siblings), so chaos cells carry
// their bulk traffic on the pipelined streamer path instead; see
// docs/benchmarks.md for the scenario matrix.
//
// Flags: --quick (CI-sized cells; the committed-baseline configuration),
// --transport=sim|tcp (restrict to one backend), --chaos=off|on|both.
// Knobs: PARDIS_STORM_CLIENTS/_SECONDS/_WINDOW/_BULK_LEN/_BLOB_KB/
// _REBIND_EVERY/_KILL_EVERY/_FAULT_RATE (see docs/configuration.md).

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "pardis/orb/admin.hpp"

using namespace pardis;
using namespace pardis::bench;

namespace {

constexpr const char* kStormType = "IDL:bench/storm:1.0";

/// Stateless servant with both storm operations; the pipelined worker pool
/// dispatches it concurrently.
class StormServant : public transfer::SpmdServant {
 public:
  const char* type_id() const override { return kStormType; }
  void dispatch(transfer::ServerCall& call) override {
    auto dec = call.args();
    if (call.operation() == "ping") {
      call.results().put_long(dec.get_long());
      return;
    }
    if (call.operation() == "blob") {
      // One chunk of a simulated download: (chunk id, size) -> id + bytes.
      const cdr::Long chunk = dec.get_long();
      const cdr::ULong nbytes = std::min<cdr::ULong>(dec.get_ulong(), 8u << 20);
      pardis::Bytes data(nbytes, static_cast<std::uint8_t>(chunk));
      call.results().put_long(chunk);
      call.results().put_octet_sequence(BytesView(data));
      return;
    }
    throw BAD_OPERATION(call.operation());
  }
};

struct CellConfig {
  transport::Kind kind = transport::Kind::kSim;
  bool chaos = false;
  bool quick = false;

  int clients = 192;          // swarm threads (1 in 4 are streamers)
  int server_ranks = 4;
  int spmd_ranks = 2;         // collective-bulk client team (chaos-off)
  double seconds = 5.0;
  std::uint32_t window = 16;  // PARDIS_MAX_INFLIGHT for this cell
  std::uint64_t bulk_len = 1u << 16;    // doubles per dseq transfer
  std::uint64_t blob_bytes = 256u << 10;  // streamer chunk size
  std::uint64_t chunks_per_file = 32;
  std::uint64_t rebind_every = 1000;  // echo ops between scheduled rebinds
  std::uint64_t kill_every = 61;      // server admissions per chaos kill
  double fault_rate = 0.0005;         // sim: per-frame connection-kill prob
};

/// Cross-thread tallies; everything here is written by swarm threads and
/// read once after the scenario winds down.
struct Counts {
  std::atomic<std::uint64_t> echo_ok{0};
  std::atomic<std::uint64_t> sheds{0};
  std::atomic<std::uint64_t> comm_failures{0};
  std::atomic<std::uint64_t> other_errors{0};
  std::atomic<std::uint64_t> issued{0};
  std::atomic<std::uint64_t> settled{0};
  std::atomic<std::uint64_t> binds{0};
  std::atomic<std::uint64_t> bind_failures{0};
  std::atomic<std::uint64_t> scheduled_rebinds{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> chunk_bytes{0};
  std::atomic<std::uint64_t> refetched_chunks{0};
  std::atomic<std::uint64_t> resumes{0};
  std::atomic<std::uint64_t> files{0};
  std::atomic<std::uint64_t> partition_windows{0};
  std::atomic<std::uint64_t> spmd_invokes{0};
  std::atomic<std::uint64_t> spmd_bytes{0};
};

struct CellRuntime {
  CellConfig cfg;
  orb::Orb* orb = nullptr;
  std::string client_host;
  Clock::time_point deadline{};
  Counts counts;
  obs::Histogram* echo_latency_us = nullptr;
  obs::Histogram* bulk_ms = nullptr;
};

enum class Role { kEcho, kStream };

/// One closed-loop client: bind, drive a pipelined window, settle
/// everything, rebind.  Echo threads issue tiny pings; streamer threads
/// download chunked blobs and resume from the last contiguously
/// acknowledged chunk after every disconnect (settles are FIFO, so a
/// contiguity pointer is enough).
void client_thread(CellRuntime& rt, Role role) {
  const CellConfig& cfg = rt.cfg;
  std::uint64_t acked = 0;  // streamer: chunks < acked are durable
  while (Clock::now() < rt.deadline) {
    std::optional<transfer::DirectBinding> binding;
    try {
      binding.emplace(transfer::DirectBinding::bind(
          *rt.orb, rt.client_host, "storm", kStormType));
    } catch (const SystemException&) {
      // Partitioned, shedding, or mid-kill: back off and retry.
      rt.counts.bind_failures.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    rt.counts.binds.fetch_add(1, std::memory_order_relaxed);

    struct Inflight {
      orb::Future<pardis::Bytes> future;
      Clock::time_point issued_at;
      std::uint64_t chunk_id = 0;
    };
    std::deque<Inflight> window;
    const std::size_t window_cap =
        std::max<std::size_t>(1, std::min<std::uint32_t>(cfg.window,
                                                         binding->window()));
    bool dead = false;    // stream failed: settle the window, then rebind
    bool rewind = false;  // streamer gap (shed): drain, restart at `acked`

    auto settle_one = [&] {
      Inflight entry = std::move(window.front());
      window.pop_front();
      try {
        pardis::Bytes reply = entry.future.get();
        const double us = std::chrono::duration<double, std::micro>(
                              Clock::now() - entry.issued_at)
                              .count();
        if (role == Role::kEcho) {
          rt.echo_latency_us->add(us);
          rt.counts.echo_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          cdr::Decoder dec{BytesView(reply)};
          (void)dec.get_long();
          const pardis::Bytes chunk = dec.get_octet_sequence();
          rt.counts.chunks.fetch_add(1, std::memory_order_relaxed);
          rt.counts.chunk_bytes.fetch_add(chunk.size(),
                                          std::memory_order_relaxed);
          if (entry.chunk_id == acked) {
            ++acked;  // contiguous: the download advanced
          } else {
            // Arrived past a shed gap; refetched after the rewind.
            rt.counts.refetched_chunks.fetch_add(1,
                                                 std::memory_order_relaxed);
          }
        }
      } catch (const TRANSIENT&) {
        rt.counts.sheds.fetch_add(1, std::memory_order_relaxed);
        if (role == Role::kStream) rewind = true;
      } catch (const COMM_FAILURE&) {
        rt.counts.comm_failures.fetch_add(1, std::memory_order_relaxed);
        dead = true;
      } catch (const SystemException&) {
        rt.counts.other_errors.fetch_add(1, std::memory_order_relaxed);
        dead = true;
      }
      rt.counts.settled.fetch_add(1, std::memory_order_relaxed);
    };

    std::uint64_t ops = 0;
    std::uint64_t issue = acked;  // streamer issue pointer
    while (!dead && !rewind && Clock::now() < rt.deadline) {
      if (role == Role::kEcho && ops >= cfg.rebind_every) break;
      if (window.size() >= window_cap) {
        settle_one();
        continue;
      }
      if (role == Role::kStream && issue >= cfg.chunks_per_file) {
        if (!window.empty()) {
          settle_one();
          continue;
        }
        if (acked >= cfg.chunks_per_file) {
          rt.counts.files.fetch_add(1, std::memory_order_relaxed);
          acked = 0;
        }
        issue = acked;
        continue;
      }
      try {
        cdr::Encoder enc;
        Inflight entry;
        if (role == Role::kEcho) {
          enc.put_long(static_cast<cdr::Long>(ops));
          entry.future = binding->invoke_nb("ping", enc.take());
        } else {
          enc.put_long(static_cast<cdr::Long>(issue));
          enc.put_ulong(static_cast<cdr::ULong>(cfg.blob_bytes));
          entry.chunk_id = issue++;
          entry.future = binding->invoke_nb("blob", enc.take());
        }
        entry.issued_at = Clock::now();
        window.push_back(std::move(entry));
        rt.counts.issued.fetch_add(1, std::memory_order_relaxed);
        ++ops;
      } catch (const SystemException&) {
        rt.counts.comm_failures.fetch_add(1, std::memory_order_relaxed);
        dead = true;
      }
    }

    // Closed loop: every issued future settles before the binding goes —
    // on a dead stream they all resolve as COMM_FAILURE, never a hang.
    while (!window.empty()) settle_one();

    try {
      binding->unbind();
    } catch (const SystemException&) {
      // Stream already dead; unbind closes it instead of pooling.
    }
    if (dead) {
      rt.counts.reconnects.fetch_add(1, std::memory_order_relaxed);
      if (role == Role::kStream) {
        rt.counts.resumes.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (role == Role::kEcho) {
      rt.counts.scheduled_rebinds.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

/// Collective bulk traffic (chaos-off cells): dsequence transfers through
/// the real SPMD invoke path, alternating centralized and multi-port, until
/// the shared deadline.  Rank 0 decides continuation so all ranks agree.
void spmd_bulk_loop(CellRuntime& rt, rts::Communicator& comm) {
  const CellConfig& cfg = rt.cfg;
  auto binding = transfer::SpmdBinding::bind(*rt.orb, comm, rt.client_host,
                                             "sink", "IDL:bench/sink:1.0");
  dseq::DSequence<double> seq(comm, cfg.bulk_len);
  for (std::size_t i = 0; i < seq.local_length(); ++i) {
    seq.local_data()[i] = static_cast<double>(i);
  }
  for (cdr::Long i = 0;; ++i) {
    const int cont =
        rts::bcast_value(comm,
                         comm.rank() == 0 && Clock::now() < rt.deadline ? 1
                                                                        : 0,
                         0);
    if (cont == 0) break;
    transfer::CallOptions opts;
    opts.method = (i % 2) == 0 ? orb::TransferMethod::kCentralized
                               : orb::TransferMethod::kMultiPort;
    transfer::TypedDSeqArg<double> arg(seq, orb::ArgDir::kIn);
    cdr::Encoder enc;
    enc.put_long(i);
    const auto t0 = Clock::now();
    binding.invoke("consume", enc.take(), {&arg}, opts);
    transfer::reduce_stats(comm, binding.last_stats(), &rt.orb->metrics(),
                           "client.phase.");
    if (comm.rank() == 0) {
      rt.bulk_ms->add(to_ms(Clock::now() - t0));
      rt.counts.spmd_invokes.fetch_add(1, std::memory_order_relaxed);
      rt.counts.spmd_bytes.fetch_add(cfg.bulk_len * sizeof(double),
                                     std::memory_order_relaxed);
    }
  }
  binding.unbind();
}

/// Scoped env override for per-cell knobs read inside the scenario.
class EnvVar {
 public:
  EnvVar(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~EnvVar() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvVar(const EnvVar&) = delete;
  EnvVar& operator=(const EnvVar&) = delete;

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

struct CellResult {
  CellConfig cfg;
  double elapsed = 0;
  std::uint64_t hung = 0;
  std::string json;
  double echo_per_sec = 0;
  bool admin_ok = false;     // mid-run /metrics probe answered
  bool slow_log_ok = false;  // mid-run /slow probe answered
};

CellResult run_cell(const CellConfig& cfg) {
  // Knobs the scenario bodies read at construction time.
  EnvVar inflight("PARDIS_MAX_INFLIGHT", std::to_string(cfg.window));
  std::optional<EnvVar> kill;
  if (cfg.chaos && cfg.kill_every > 0) {
    kill.emplace("PARDIS_CHAOS_KILL_EVERY", std::to_string(cfg.kill_every));
  }

  sim::ScenarioConfig scfg;
  scfg.server.nranks = cfg.server_ranks;
  scfg.client.nranks = cfg.chaos ? 1 : cfg.spmd_ranks;
  scfg.orb.transport = cfg.kind;
  const double mbps = env_double("PARDIS_LINK_MBPS", 0.0);
  if (mbps > 0) {
    scfg.link = net::LinkModel::atm_scaled(mbps * 1e6);
  }
  sim::Scenario scenario(scfg);

  // Live introspection sidecar: a background probe plays the operator's
  // curl against the admin endpoint while the storm is in full swing
  // (docs/observability.md).  Declared after the scenario so it shuts
  // down before the transport it listens on.
  orb::AdminServer admin(scenario.orb(), "adminhost");
  std::atomic<bool> admin_ok{false};
  std::atomic<bool> slow_log_ok{false};
  std::atomic<std::uint64_t> admin_bytes{0};

  CellRuntime rt;
  rt.cfg = cfg;
  rt.orb = &scenario.orb();
  rt.client_host = scfg.client.host;
  rt.echo_latency_us =
      &scenario.orb().metrics().histogram("storm.echo.latency_us");
  rt.bulk_ms = &scenario.orb().metrics().histogram("storm.bulk.ms");

  const bool sim_chaos = cfg.chaos && cfg.kind == transport::Kind::kSim;
  const auto start = Clock::now();
  rt.deadline = start + std::chrono::duration_cast<Duration>(
                            std::chrono::duration<double>(cfg.seconds));

  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, scfg.server.host);
        StormServant storm_servant;
        SinkServant sink_servant;
        server.activate("storm", storm_servant);
        server.activate("sink", sink_servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        std::vector<std::thread> swarm;
        std::thread partitioner;
        if (comm.rank() == 0) {
          if (sim_chaos) {
            // Open the chaos window: live connections start drawing
            // per-frame faults, and a toggler periodically partitions the
            // host pair so rebinds are refused in bursts.
            scenario.orb().fabric().set_fault_rate(
                scfg.client.host, scfg.server.host, cfg.fault_rate);
            partitioner = std::thread([&] {
              while (Clock::now() < rt.deadline) {
                std::this_thread::sleep_for(std::chrono::milliseconds(150));
                if (Clock::now() >= rt.deadline) break;
                scenario.orb().fabric().set_partitioned(scfg.client.host,
                                                        scfg.server.host,
                                                        true);
                rt.counts.partition_windows.fetch_add(
                    1, std::memory_order_relaxed);
                std::this_thread::sleep_for(std::chrono::milliseconds(40));
                scenario.orb().fabric().set_partitioned(scfg.client.host,
                                                        scfg.server.host,
                                                        false);
              }
            });
          }
          swarm.reserve(static_cast<std::size_t>(cfg.clients));
          for (int t = 0; t < cfg.clients; ++t) {
            const Role role = (t % 4) == 3 ? Role::kStream : Role::kEcho;
            swarm.emplace_back(client_thread, std::ref(rt), role);
          }
          // Probe the live endpoint mid-cell, with the swarm at full load.
          swarm.emplace_back([&] {
            std::this_thread::sleep_for(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::duration<double>(cfg.seconds / 2)));
            try {
              const std::string text =
                  orb::admin_fetch(scenario.orb(), rt.client_host,
                                   admin.endpoint(), "/metrics");
              admin_bytes.store(text.size(), std::memory_order_relaxed);
              admin_ok.store(text.find("# TYPE") != std::string::npos,
                             std::memory_order_relaxed);
              const std::string slow =
                  orb::admin_fetch(scenario.orb(), rt.client_host,
                                   admin.endpoint(), "/slow");
              slow_log_ok.store(
                  slow.find("# slow requests") != std::string::npos,
                  std::memory_order_relaxed);
            } catch (const SystemException&) {
              // Leaves the probe flags false; the run fails below.
            }
          });
        }
        if (!cfg.chaos) spmd_bulk_loop(rt, comm);
        if (comm.rank() == 0) {
          for (std::thread& t : swarm) t.join();
          if (partitioner.joinable()) partitioner.join();
          if (sim_chaos) {
            // Heal before wind-down so the scenario's shutdown frame and
            // the metrics dump cross a quiet wire.
            scenario.orb().fabric().set_fault_rate(scfg.client.host,
                                                   scfg.server.host, 0.0);
            scenario.orb().fabric().set_partitioned(scfg.client.host,
                                                    scfg.server.host, false);
          }
        }
      },
      "storm");

  CellResult out;
  out.cfg = cfg;
  out.elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  const Counts& c = rt.counts;
  out.hung = c.issued.load() - c.settled.load();
  out.admin_ok = admin_ok.load();
  out.slow_log_ok = slow_log_ok.load();

  const auto snap = scenario.orb().metrics().snapshot();
  const double secs = cfg.seconds;
  out.echo_per_sec = static_cast<double>(c.echo_ok.load()) / secs;
  const double stream_mb =
      static_cast<double>(c.chunk_bytes.load()) / (1024.0 * 1024.0);
  const double spmd_mb =
      static_cast<double>(c.spmd_bytes.load()) / (1024.0 * 1024.0);

  JsonObject row;
  row.field("backend", std::string(transport::to_string(cfg.kind)))
      .raw("chaos", cfg.chaos ? "true" : "false")
      .field("clients", cfg.clients)
      .field("window", static_cast<std::uint64_t>(cfg.window))
      .field("seconds", secs)
      .raw("echo", JsonObject()
                       .field("ops", c.echo_ok.load())
                       .field("ops_per_sec", out.echo_per_sec)
                       .field("sheds", c.sheds.load())
                       .raw("latency_us",
                            histogram_json(
                                find_sample(snap, "storm.echo.latency_us")))
                       .str())
      .raw("bulk_stream",
           JsonObject()
               .field("chunks", c.chunks.load())
               .field("mbytes", stream_mb)
               .field("mbytes_per_sec", stream_mb / secs)
               .field("files", c.files.load())
               .field("resumes", c.resumes.load())
               .field("refetched_chunks", c.refetched_chunks.load())
               .str());
  if (cfg.chaos) {
    row.raw("spmd_bulk", "null");
  } else {
    row.raw("spmd_bulk",
            JsonObject()
                .field("invokes", c.spmd_invokes.load())
                .field("mbytes", spmd_mb)
                .field("mbytes_per_sec", spmd_mb / secs)
                .raw("latency_ms",
                     histogram_json(find_sample(snap, "storm.bulk.ms")))
                .raw("phases", phases_json(snap, "client.phase."))
                .str());
  }
  row.raw("pipeline_phases",
          JsonObject()
              .raw("credit_wait_us",
                   histogram_json(
                       find_sample(snap, "client.pipeline.credit_wait_us")))
              .raw("wire_us",
                   histogram_json(find_sample(snap, "client.pipeline.wire_us")))
              .raw("queue_wait_us",
                   histogram_json(
                       find_sample(snap, "server.pipeline.queue_wait_us")))
              .raw("exec_us",
                   histogram_json(find_sample(snap, "server.pipeline.exec_us")))
              .str())
      .raw("admin", JsonObject()
                        .raw("snapshot_ok", admin_ok.load() ? "true" : "false")
                        .field("snapshot_bytes", admin_bytes.load())
                        .raw("slow_log_ok",
                             slow_log_ok.load() ? "true" : "false")
                        .str());
  row.raw("recovery",
          JsonObject()
              .field("comm_failures", c.comm_failures.load())
              .field("reconnects", c.reconnects.load())
              .field("scheduled_rebinds", c.scheduled_rebinds.load())
              .field("bind_failures", c.bind_failures.load())
              .field("stale_pool_retries",
                     find_sample(snap, "client.bind.stale_retries").count)
              .field("other_errors", c.other_errors.load())
              .str())
      .raw("chaos_stats",
           JsonObject()
               .field("server_kills",
                      find_sample(snap, "server.chaos.kills").count)
               .field("partition_windows", c.partition_windows.load())
               .field("server_sheds",
                      find_sample(snap, "server.pipeline.rejects").count)
               .str())
      .raw("futures", JsonObject()
                          .field("issued", c.issued.load())
                          .field("settled", c.settled.load())
                          .field("hung", out.hung)
                          .str());
  out.json = row.str();

  std::printf(
      "  %-3s %-5s | %8.0f echo/s | %7.2f MB/s stream | %6.2f MB/s dseq | "
      "%4llu kills | %4llu reconn | hung %llu\n",
      transport::to_string(cfg.kind), cfg.chaos ? "chaos" : "calm",
      out.echo_per_sec, stream_mb / secs, spmd_mb / secs,
      static_cast<unsigned long long>(
          find_sample(snap, "server.chaos.kills").count),
      static_cast<unsigned long long>(c.reconnects.load()),
      static_cast<unsigned long long>(out.hung));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  TraceSession trace(argc, argv);

  bool quick = false;
  std::string chaos_mode = "both";
  std::optional<transport::Kind> only_kind;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--chaos=", 8) == 0) chaos_mode = argv[i] + 8;
    if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      only_kind = transport::parse_kind(argv[i] + 12);
    }
  }
  if (chaos_mode != "off" && chaos_mode != "on" && chaos_mode != "both") {
    std::fprintf(stderr, "storm: --chaos must be off, on, or both\n");
    return 2;
  }

  CellConfig base;
  base.quick = quick;
  if (quick) {
    base.clients = 12;
    base.server_ranks = 2;
    base.seconds = 1.0;
    base.window = 8;
    base.bulk_len = 1u << 14;
    base.blob_bytes = 64u << 10;
    base.chunks_per_file = 16;
    base.rebind_every = 300;
    base.kill_every = 29;
    base.fault_rate = 0.002;
  }
  base.clients = static_cast<int>(
      env_u64("PARDIS_STORM_CLIENTS", static_cast<std::uint64_t>(base.clients)));
  base.seconds = env_double("PARDIS_STORM_SECONDS", base.seconds);
  base.window = static_cast<std::uint32_t>(
      env_u64("PARDIS_STORM_WINDOW", base.window));
  base.bulk_len = env_u64("PARDIS_STORM_BULK_LEN", base.bulk_len);
  base.blob_bytes = env_u64("PARDIS_STORM_BLOB_KB", base.blob_bytes >> 10)
                    << 10;
  base.rebind_every = env_u64("PARDIS_STORM_REBIND_EVERY", base.rebind_every);
  base.kill_every = env_u64("PARDIS_STORM_KILL_EVERY", base.kill_every);
  base.fault_rate = env_double("PARDIS_STORM_FAULT_RATE", base.fault_rate);

  std::printf("Storm: %d clients, %.1fs per cell, window %u%s\n\n",
              base.clients, base.seconds, base.window,
              quick ? " (quick)" : "");

  std::vector<CellConfig> cells;
  for (const transport::Kind kind :
       {transport::Kind::kSim, transport::Kind::kTcp}) {
    if (only_kind && kind != *only_kind) continue;
    for (const bool chaos : {false, true}) {
      if (chaos && chaos_mode == "off") continue;
      if (!chaos && chaos_mode == "on") continue;
      CellConfig cfg = base;
      cfg.kind = kind;
      cfg.chaos = chaos;
      cells.push_back(cfg);
    }
  }

  JsonArray rows;
  std::uint64_t hung_total = 0;
  int admin_failures = 0;
  for (const CellConfig& cfg : cells) {
    const CellResult r = run_cell(cfg);
    hung_total += r.hung;
    if (!r.admin_ok || !r.slow_log_ok) ++admin_failures;
    rows.item(r.json);
  }

  write_bench_json("storm", JsonObject()
                                .field("bench", std::string("storm"))
                                .raw("quick", quick ? "true" : "false")
                                .field("clients", base.clients)
                                .field("seconds_per_cell", base.seconds)
                                .raw("rows", rows.str())
                                .str());
  if (hung_total != 0) {
    std::fprintf(stderr,
                 "storm: FAIL — %llu futures never settled (hang bug)\n",
                 static_cast<unsigned long long>(hung_total));
    return 1;
  }
  if (admin_failures != 0) {
    std::fprintf(stderr,
                 "storm: FAIL — admin endpoint probe failed in %d cell(s)\n",
                 admin_failures);
    return 1;
  }
  std::printf("\nstorm: all issued futures settled (closed loop held)\n");
  return 0;
}
