file(REMOVE_RECURSE
  "../bench/micro_rts"
  "../bench/micro_rts.pdb"
  "CMakeFiles/micro_rts.dir/micro_rts.cpp.o"
  "CMakeFiles/micro_rts.dir/micro_rts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
