# Empty dependencies file for micro_rts.
# This may be replaced when dependencies are built.
