# Empty dependencies file for table1_centralized.
# This may be replaced when dependencies are built.
