file(REMOVE_RECURSE
  "../bench/table1_centralized"
  "../bench/table1_centralized.pdb"
  "CMakeFiles/table1_centralized.dir/table1_centralized.cpp.o"
  "CMakeFiles/table1_centralized.dir/table1_centralized.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_centralized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
