file(REMOVE_RECURSE
  "../bench/table2_multiport"
  "../bench/table2_multiport.pdb"
  "CMakeFiles/table2_multiport.dir/table2_multiport.cpp.o"
  "CMakeFiles/table2_multiport.dir/table2_multiport.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_multiport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
