# Empty compiler generated dependencies file for table2_multiport.
# This may be replaced when dependencies are built.
