file(REMOVE_RECURSE
  "../bench/ablation_header"
  "../bench/ablation_header.pdb"
  "CMakeFiles/ablation_header.dir/ablation_header.cpp.o"
  "CMakeFiles/ablation_header.dir/ablation_header.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_header.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
