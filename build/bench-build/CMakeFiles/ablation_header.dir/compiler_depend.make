# Empty compiler generated dependencies file for ablation_header.
# This may be replaced when dependencies are built.
