file(REMOVE_RECURSE
  "../bench/ablation_chunks"
  "../bench/ablation_chunks.pdb"
  "CMakeFiles/ablation_chunks.dir/ablation_chunks.cpp.o"
  "CMakeFiles/ablation_chunks.dir/ablation_chunks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chunks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
