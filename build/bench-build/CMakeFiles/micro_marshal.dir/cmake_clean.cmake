file(REMOVE_RECURSE
  "../bench/micro_marshal"
  "../bench/micro_marshal.pdb"
  "CMakeFiles/micro_marshal.dir/micro_marshal.cpp.o"
  "CMakeFiles/micro_marshal.dir/micro_marshal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_marshal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
