# Empty compiler generated dependencies file for ablation_proportions.
# This may be replaced when dependencies are built.
