file(REMOVE_RECURSE
  "../bench/ablation_proportions"
  "../bench/ablation_proportions.pdb"
  "CMakeFiles/ablation_proportions.dir/ablation_proportions.cpp.o"
  "CMakeFiles/ablation_proportions.dir/ablation_proportions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_proportions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
