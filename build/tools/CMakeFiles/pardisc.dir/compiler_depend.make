# Empty compiler generated dependencies file for pardisc.
# This may be replaced when dependencies are built.
