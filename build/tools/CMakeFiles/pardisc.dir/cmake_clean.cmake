file(REMOVE_RECURSE
  "CMakeFiles/pardisc.dir/pardisc/main.cpp.o"
  "CMakeFiles/pardisc.dir/pardisc/main.cpp.o.d"
  "pardisc"
  "pardisc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardisc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
