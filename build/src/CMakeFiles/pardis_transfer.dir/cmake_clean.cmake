file(REMOVE_RECURSE
  "CMakeFiles/pardis_transfer.dir/pardis/transfer/engine.cpp.o"
  "CMakeFiles/pardis_transfer.dir/pardis/transfer/engine.cpp.o.d"
  "CMakeFiles/pardis_transfer.dir/pardis/transfer/spmd_client.cpp.o"
  "CMakeFiles/pardis_transfer.dir/pardis/transfer/spmd_client.cpp.o.d"
  "CMakeFiles/pardis_transfer.dir/pardis/transfer/spmd_server.cpp.o"
  "CMakeFiles/pardis_transfer.dir/pardis/transfer/spmd_server.cpp.o.d"
  "libpardis_transfer.a"
  "libpardis_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
