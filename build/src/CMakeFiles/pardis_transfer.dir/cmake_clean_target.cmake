file(REMOVE_RECURSE
  "libpardis_transfer.a"
)
