# Empty dependencies file for pardis_transfer.
# This may be replaced when dependencies are built.
