
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pardis/transfer/engine.cpp" "src/CMakeFiles/pardis_transfer.dir/pardis/transfer/engine.cpp.o" "gcc" "src/CMakeFiles/pardis_transfer.dir/pardis/transfer/engine.cpp.o.d"
  "/root/repo/src/pardis/transfer/spmd_client.cpp" "src/CMakeFiles/pardis_transfer.dir/pardis/transfer/spmd_client.cpp.o" "gcc" "src/CMakeFiles/pardis_transfer.dir/pardis/transfer/spmd_client.cpp.o.d"
  "/root/repo/src/pardis/transfer/spmd_server.cpp" "src/CMakeFiles/pardis_transfer.dir/pardis/transfer/spmd_server.cpp.o" "gcc" "src/CMakeFiles/pardis_transfer.dir/pardis/transfer/spmd_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pardis_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pardis_dseq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pardis_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pardis_cdr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pardis_rts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pardis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
