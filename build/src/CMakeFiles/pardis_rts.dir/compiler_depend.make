# Empty compiler generated dependencies file for pardis_rts.
# This may be replaced when dependencies are built.
