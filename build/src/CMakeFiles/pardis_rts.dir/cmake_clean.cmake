file(REMOVE_RECURSE
  "CMakeFiles/pardis_rts.dir/pardis/rts/collectives.cpp.o"
  "CMakeFiles/pardis_rts.dir/pardis/rts/collectives.cpp.o.d"
  "CMakeFiles/pardis_rts.dir/pardis/rts/communicator.cpp.o"
  "CMakeFiles/pardis_rts.dir/pardis/rts/communicator.cpp.o.d"
  "CMakeFiles/pardis_rts.dir/pardis/rts/mailbox.cpp.o"
  "CMakeFiles/pardis_rts.dir/pardis/rts/mailbox.cpp.o.d"
  "CMakeFiles/pardis_rts.dir/pardis/rts/team.cpp.o"
  "CMakeFiles/pardis_rts.dir/pardis/rts/team.cpp.o.d"
  "libpardis_rts.a"
  "libpardis_rts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_rts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
