file(REMOVE_RECURSE
  "libpardis_rts.a"
)
