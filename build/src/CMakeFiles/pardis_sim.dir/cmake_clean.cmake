file(REMOVE_RECURSE
  "CMakeFiles/pardis_sim.dir/pardis/sim/scenario.cpp.o"
  "CMakeFiles/pardis_sim.dir/pardis/sim/scenario.cpp.o.d"
  "libpardis_sim.a"
  "libpardis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
