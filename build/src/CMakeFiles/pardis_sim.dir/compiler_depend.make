# Empty compiler generated dependencies file for pardis_sim.
# This may be replaced when dependencies are built.
