file(REMOVE_RECURSE
  "libpardis_sim.a"
)
