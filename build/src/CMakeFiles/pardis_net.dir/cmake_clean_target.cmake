file(REMOVE_RECURSE
  "libpardis_net.a"
)
