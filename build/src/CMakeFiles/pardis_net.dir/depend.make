# Empty dependencies file for pardis_net.
# This may be replaced when dependencies are built.
