file(REMOVE_RECURSE
  "CMakeFiles/pardis_net.dir/pardis/net/connection.cpp.o"
  "CMakeFiles/pardis_net.dir/pardis/net/connection.cpp.o.d"
  "CMakeFiles/pardis_net.dir/pardis/net/fabric.cpp.o"
  "CMakeFiles/pardis_net.dir/pardis/net/fabric.cpp.o.d"
  "CMakeFiles/pardis_net.dir/pardis/net/link.cpp.o"
  "CMakeFiles/pardis_net.dir/pardis/net/link.cpp.o.d"
  "libpardis_net.a"
  "libpardis_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
