
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pardis/net/connection.cpp" "src/CMakeFiles/pardis_net.dir/pardis/net/connection.cpp.o" "gcc" "src/CMakeFiles/pardis_net.dir/pardis/net/connection.cpp.o.d"
  "/root/repo/src/pardis/net/fabric.cpp" "src/CMakeFiles/pardis_net.dir/pardis/net/fabric.cpp.o" "gcc" "src/CMakeFiles/pardis_net.dir/pardis/net/fabric.cpp.o.d"
  "/root/repo/src/pardis/net/link.cpp" "src/CMakeFiles/pardis_net.dir/pardis/net/link.cpp.o" "gcc" "src/CMakeFiles/pardis_net.dir/pardis/net/link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pardis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
