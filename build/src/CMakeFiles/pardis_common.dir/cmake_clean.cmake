file(REMOVE_RECURSE
  "CMakeFiles/pardis_common.dir/pardis/common/bytes.cpp.o"
  "CMakeFiles/pardis_common.dir/pardis/common/bytes.cpp.o.d"
  "CMakeFiles/pardis_common.dir/pardis/common/config.cpp.o"
  "CMakeFiles/pardis_common.dir/pardis/common/config.cpp.o.d"
  "CMakeFiles/pardis_common.dir/pardis/common/error.cpp.o"
  "CMakeFiles/pardis_common.dir/pardis/common/error.cpp.o.d"
  "CMakeFiles/pardis_common.dir/pardis/common/log.cpp.o"
  "CMakeFiles/pardis_common.dir/pardis/common/log.cpp.o.d"
  "CMakeFiles/pardis_common.dir/pardis/common/stats.cpp.o"
  "CMakeFiles/pardis_common.dir/pardis/common/stats.cpp.o.d"
  "libpardis_common.a"
  "libpardis_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
