
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pardis/common/bytes.cpp" "src/CMakeFiles/pardis_common.dir/pardis/common/bytes.cpp.o" "gcc" "src/CMakeFiles/pardis_common.dir/pardis/common/bytes.cpp.o.d"
  "/root/repo/src/pardis/common/config.cpp" "src/CMakeFiles/pardis_common.dir/pardis/common/config.cpp.o" "gcc" "src/CMakeFiles/pardis_common.dir/pardis/common/config.cpp.o.d"
  "/root/repo/src/pardis/common/error.cpp" "src/CMakeFiles/pardis_common.dir/pardis/common/error.cpp.o" "gcc" "src/CMakeFiles/pardis_common.dir/pardis/common/error.cpp.o.d"
  "/root/repo/src/pardis/common/log.cpp" "src/CMakeFiles/pardis_common.dir/pardis/common/log.cpp.o" "gcc" "src/CMakeFiles/pardis_common.dir/pardis/common/log.cpp.o.d"
  "/root/repo/src/pardis/common/stats.cpp" "src/CMakeFiles/pardis_common.dir/pardis/common/stats.cpp.o" "gcc" "src/CMakeFiles/pardis_common.dir/pardis/common/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
