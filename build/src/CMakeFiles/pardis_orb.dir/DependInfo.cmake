
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pardis/orb/exceptions.cpp" "src/CMakeFiles/pardis_orb.dir/pardis/orb/exceptions.cpp.o" "gcc" "src/CMakeFiles/pardis_orb.dir/pardis/orb/exceptions.cpp.o.d"
  "/root/repo/src/pardis/orb/naming.cpp" "src/CMakeFiles/pardis_orb.dir/pardis/orb/naming.cpp.o" "gcc" "src/CMakeFiles/pardis_orb.dir/pardis/orb/naming.cpp.o.d"
  "/root/repo/src/pardis/orb/objref.cpp" "src/CMakeFiles/pardis_orb.dir/pardis/orb/objref.cpp.o" "gcc" "src/CMakeFiles/pardis_orb.dir/pardis/orb/objref.cpp.o.d"
  "/root/repo/src/pardis/orb/orb.cpp" "src/CMakeFiles/pardis_orb.dir/pardis/orb/orb.cpp.o" "gcc" "src/CMakeFiles/pardis_orb.dir/pardis/orb/orb.cpp.o.d"
  "/root/repo/src/pardis/orb/protocol.cpp" "src/CMakeFiles/pardis_orb.dir/pardis/orb/protocol.cpp.o" "gcc" "src/CMakeFiles/pardis_orb.dir/pardis/orb/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pardis_cdr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pardis_rts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pardis_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pardis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
