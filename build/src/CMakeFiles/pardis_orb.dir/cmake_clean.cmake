file(REMOVE_RECURSE
  "CMakeFiles/pardis_orb.dir/pardis/orb/exceptions.cpp.o"
  "CMakeFiles/pardis_orb.dir/pardis/orb/exceptions.cpp.o.d"
  "CMakeFiles/pardis_orb.dir/pardis/orb/naming.cpp.o"
  "CMakeFiles/pardis_orb.dir/pardis/orb/naming.cpp.o.d"
  "CMakeFiles/pardis_orb.dir/pardis/orb/objref.cpp.o"
  "CMakeFiles/pardis_orb.dir/pardis/orb/objref.cpp.o.d"
  "CMakeFiles/pardis_orb.dir/pardis/orb/orb.cpp.o"
  "CMakeFiles/pardis_orb.dir/pardis/orb/orb.cpp.o.d"
  "CMakeFiles/pardis_orb.dir/pardis/orb/protocol.cpp.o"
  "CMakeFiles/pardis_orb.dir/pardis/orb/protocol.cpp.o.d"
  "libpardis_orb.a"
  "libpardis_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
