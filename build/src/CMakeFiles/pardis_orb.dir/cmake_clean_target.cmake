file(REMOVE_RECURSE
  "libpardis_orb.a"
)
