# Empty compiler generated dependencies file for pardis_orb.
# This may be replaced when dependencies are built.
