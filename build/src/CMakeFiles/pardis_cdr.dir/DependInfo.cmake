
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pardis/cdr/decoder.cpp" "src/CMakeFiles/pardis_cdr.dir/pardis/cdr/decoder.cpp.o" "gcc" "src/CMakeFiles/pardis_cdr.dir/pardis/cdr/decoder.cpp.o.d"
  "/root/repo/src/pardis/cdr/encoder.cpp" "src/CMakeFiles/pardis_cdr.dir/pardis/cdr/encoder.cpp.o" "gcc" "src/CMakeFiles/pardis_cdr.dir/pardis/cdr/encoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pardis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
