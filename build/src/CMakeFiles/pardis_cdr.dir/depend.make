# Empty dependencies file for pardis_cdr.
# This may be replaced when dependencies are built.
