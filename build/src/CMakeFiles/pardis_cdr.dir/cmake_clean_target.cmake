file(REMOVE_RECURSE
  "libpardis_cdr.a"
)
