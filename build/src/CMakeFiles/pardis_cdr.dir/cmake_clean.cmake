file(REMOVE_RECURSE
  "CMakeFiles/pardis_cdr.dir/pardis/cdr/decoder.cpp.o"
  "CMakeFiles/pardis_cdr.dir/pardis/cdr/decoder.cpp.o.d"
  "CMakeFiles/pardis_cdr.dir/pardis/cdr/encoder.cpp.o"
  "CMakeFiles/pardis_cdr.dir/pardis/cdr/encoder.cpp.o.d"
  "libpardis_cdr.a"
  "libpardis_cdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_cdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
