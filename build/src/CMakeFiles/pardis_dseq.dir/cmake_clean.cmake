file(REMOVE_RECURSE
  "CMakeFiles/pardis_dseq.dir/pardis/dseq/dist_templ.cpp.o"
  "CMakeFiles/pardis_dseq.dir/pardis/dseq/dist_templ.cpp.o.d"
  "CMakeFiles/pardis_dseq.dir/pardis/dseq/plan.cpp.o"
  "CMakeFiles/pardis_dseq.dir/pardis/dseq/plan.cpp.o.d"
  "CMakeFiles/pardis_dseq.dir/pardis/dseq/proportions.cpp.o"
  "CMakeFiles/pardis_dseq.dir/pardis/dseq/proportions.cpp.o.d"
  "libpardis_dseq.a"
  "libpardis_dseq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_dseq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
