# Empty dependencies file for pardis_dseq.
# This may be replaced when dependencies are built.
