file(REMOVE_RECURSE
  "libpardis_dseq.a"
)
