file(REMOVE_RECURSE
  "CMakeFiles/pardis_idl.dir/pardis/idl/ast.cpp.o"
  "CMakeFiles/pardis_idl.dir/pardis/idl/ast.cpp.o.d"
  "CMakeFiles/pardis_idl.dir/pardis/idl/codegen.cpp.o"
  "CMakeFiles/pardis_idl.dir/pardis/idl/codegen.cpp.o.d"
  "CMakeFiles/pardis_idl.dir/pardis/idl/diagnostics.cpp.o"
  "CMakeFiles/pardis_idl.dir/pardis/idl/diagnostics.cpp.o.d"
  "CMakeFiles/pardis_idl.dir/pardis/idl/lexer.cpp.o"
  "CMakeFiles/pardis_idl.dir/pardis/idl/lexer.cpp.o.d"
  "CMakeFiles/pardis_idl.dir/pardis/idl/parser.cpp.o"
  "CMakeFiles/pardis_idl.dir/pardis/idl/parser.cpp.o.d"
  "CMakeFiles/pardis_idl.dir/pardis/idl/sema.cpp.o"
  "CMakeFiles/pardis_idl.dir/pardis/idl/sema.cpp.o.d"
  "libpardis_idl.a"
  "libpardis_idl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pardis_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
