
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pardis/idl/ast.cpp" "src/CMakeFiles/pardis_idl.dir/pardis/idl/ast.cpp.o" "gcc" "src/CMakeFiles/pardis_idl.dir/pardis/idl/ast.cpp.o.d"
  "/root/repo/src/pardis/idl/codegen.cpp" "src/CMakeFiles/pardis_idl.dir/pardis/idl/codegen.cpp.o" "gcc" "src/CMakeFiles/pardis_idl.dir/pardis/idl/codegen.cpp.o.d"
  "/root/repo/src/pardis/idl/diagnostics.cpp" "src/CMakeFiles/pardis_idl.dir/pardis/idl/diagnostics.cpp.o" "gcc" "src/CMakeFiles/pardis_idl.dir/pardis/idl/diagnostics.cpp.o.d"
  "/root/repo/src/pardis/idl/lexer.cpp" "src/CMakeFiles/pardis_idl.dir/pardis/idl/lexer.cpp.o" "gcc" "src/CMakeFiles/pardis_idl.dir/pardis/idl/lexer.cpp.o.d"
  "/root/repo/src/pardis/idl/parser.cpp" "src/CMakeFiles/pardis_idl.dir/pardis/idl/parser.cpp.o" "gcc" "src/CMakeFiles/pardis_idl.dir/pardis/idl/parser.cpp.o.d"
  "/root/repo/src/pardis/idl/sema.cpp" "src/CMakeFiles/pardis_idl.dir/pardis/idl/sema.cpp.o" "gcc" "src/CMakeFiles/pardis_idl.dir/pardis/idl/sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pardis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
