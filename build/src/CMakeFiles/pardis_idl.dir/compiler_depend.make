# Empty compiler generated dependencies file for pardis_idl.
# This may be replaced when dependencies are built.
