file(REMOVE_RECURSE
  "libpardis_idl.a"
)
