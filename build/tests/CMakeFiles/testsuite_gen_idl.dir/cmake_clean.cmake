file(REMOVE_RECURSE
  "CMakeFiles/testsuite_gen_idl"
  "pardis_generated/testsuite.pardis.cpp"
  "pardis_generated/testsuite.pardis.hpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/testsuite_gen_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
