# Empty compiler generated dependencies file for test_rts.
# This may be replaced when dependencies are built.
