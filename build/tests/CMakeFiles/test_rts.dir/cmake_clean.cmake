file(REMOVE_RECURSE
  "CMakeFiles/test_rts.dir/test_rts.cpp.o"
  "CMakeFiles/test_rts.dir/test_rts.cpp.o.d"
  "test_rts"
  "test_rts.pdb"
  "test_rts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
