file(REMOVE_RECURSE
  "CMakeFiles/test_dseq.dir/test_dseq.cpp.o"
  "CMakeFiles/test_dseq.dir/test_dseq.cpp.o.d"
  "test_dseq"
  "test_dseq.pdb"
  "test_dseq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dseq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
