# Empty compiler generated dependencies file for test_dseq.
# This may be replaced when dependencies are built.
