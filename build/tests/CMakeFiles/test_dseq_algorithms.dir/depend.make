# Empty dependencies file for test_dseq_algorithms.
# This may be replaced when dependencies are built.
