file(REMOVE_RECURSE
  "CMakeFiles/test_dseq_algorithms.dir/test_dseq_algorithms.cpp.o"
  "CMakeFiles/test_dseq_algorithms.dir/test_dseq_algorithms.cpp.o.d"
  "test_dseq_algorithms"
  "test_dseq_algorithms.pdb"
  "test_dseq_algorithms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dseq_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
