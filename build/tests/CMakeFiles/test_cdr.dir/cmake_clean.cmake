file(REMOVE_RECURSE
  "CMakeFiles/test_cdr.dir/test_cdr.cpp.o"
  "CMakeFiles/test_cdr.dir/test_cdr.cpp.o.d"
  "test_cdr"
  "test_cdr.pdb"
  "test_cdr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
