# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_cdr[1]_include.cmake")
include("/root/repo/build/tests/test_rts[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_dseq_algorithms[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_shape[1]_include.cmake")
include("/root/repo/build/tests/test_dseq[1]_include.cmake")
include("/root/repo/build/tests/test_orb[1]_include.cmake")
include("/root/repo/build/tests/test_idl[1]_include.cmake")
include("/root/repo/build/tests/test_transfer[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
add_test([=[pardisc_usage_without_args]=] "/root/repo/build/tools/pardisc")
set_tests_properties([=[pardisc_usage_without_args]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;40;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[pardisc_missing_file_fails]=] "/root/repo/build/tools/pardisc" "/nonexistent/void.idl")
set_tests_properties([=[pardisc_missing_file_fails]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[pardisc_generates_outputs]=] "/usr/bin/cmake" "-DPARDISC=/root/repo/build/tools/pardisc" "-DIDL=/root/repo/tests/idl/testsuite.idl" "-DOUT=/root/repo/build/tests/pardisc_cli_out" "-P" "/root/repo/tests/check_pardisc.cmake")
set_tests_properties([=[pardisc_generates_outputs]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[pardisc_rejects_bad_idl]=] "/usr/bin/cmake" "-DPARDISC=/root/repo/build/tools/pardisc" "-DIDL=/root/repo/tests/idl/broken.idl" "-DOUT=/root/repo/build/tests/pardisc_cli_bad" "-DEXPECT_FAIL=1" "-P" "/root/repo/tests/check_pardisc.cmake")
set_tests_properties([=[pardisc_rejects_bad_idl]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;55;add_test;/root/repo/tests/CMakeLists.txt;0;")
