# CMAKE generated file: DO NOT EDIT!
# Timestamp file for custom commands dependencies management for diffusion_gen_idl.
