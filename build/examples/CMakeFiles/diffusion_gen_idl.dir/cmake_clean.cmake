file(REMOVE_RECURSE
  "CMakeFiles/diffusion_gen_idl"
  "pardis_generated/diffusion.pardis.cpp"
  "pardis_generated/diffusion.pardis.hpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/diffusion_gen_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
