# Empty dependencies file for example_diffusion.
# This may be replaced when dependencies are built.
