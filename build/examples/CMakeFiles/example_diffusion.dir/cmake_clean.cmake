file(REMOVE_RECURSE
  "CMakeFiles/example_diffusion.dir/diffusion.cpp.o"
  "CMakeFiles/example_diffusion.dir/diffusion.cpp.o.d"
  "CMakeFiles/example_diffusion.dir/pardis_generated/diffusion.pardis.cpp.o"
  "CMakeFiles/example_diffusion.dir/pardis_generated/diffusion.pardis.cpp.o.d"
  "example_diffusion"
  "example_diffusion.pdb"
  "pardis_generated/diffusion.pardis.cpp"
  "pardis_generated/diffusion.pardis.hpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
