file(REMOVE_RECURSE
  "CMakeFiles/example_pipeline_monitor.dir/pardis_generated/diffusion.pardis.cpp.o"
  "CMakeFiles/example_pipeline_monitor.dir/pardis_generated/diffusion.pardis.cpp.o.d"
  "CMakeFiles/example_pipeline_monitor.dir/pardis_generated/monitor.pardis.cpp.o"
  "CMakeFiles/example_pipeline_monitor.dir/pardis_generated/monitor.pardis.cpp.o.d"
  "CMakeFiles/example_pipeline_monitor.dir/pipeline_monitor.cpp.o"
  "CMakeFiles/example_pipeline_monitor.dir/pipeline_monitor.cpp.o.d"
  "example_pipeline_monitor"
  "example_pipeline_monitor.pdb"
  "pardis_generated/diffusion.pardis.cpp"
  "pardis_generated/diffusion.pardis.hpp"
  "pardis_generated/monitor.pardis.cpp"
  "pardis_generated/monitor.pardis.hpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pipeline_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
