file(REMOVE_RECURSE
  "CMakeFiles/example_multibind.dir/multibind.cpp.o"
  "CMakeFiles/example_multibind.dir/multibind.cpp.o.d"
  "CMakeFiles/example_multibind.dir/pardis_generated/diffusion.pardis.cpp.o"
  "CMakeFiles/example_multibind.dir/pardis_generated/diffusion.pardis.cpp.o.d"
  "example_multibind"
  "example_multibind.pdb"
  "pardis_generated/diffusion.pardis.cpp"
  "pardis_generated/diffusion.pardis.hpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multibind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
