# Empty compiler generated dependencies file for example_multibind.
# This may be replaced when dependencies are built.
