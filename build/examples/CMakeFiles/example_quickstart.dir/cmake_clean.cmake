file(REMOVE_RECURSE
  "CMakeFiles/example_quickstart.dir/pardis_generated/quickstart.pardis.cpp.o"
  "CMakeFiles/example_quickstart.dir/pardis_generated/quickstart.pardis.cpp.o.d"
  "CMakeFiles/example_quickstart.dir/quickstart.cpp.o"
  "CMakeFiles/example_quickstart.dir/quickstart.cpp.o.d"
  "example_quickstart"
  "example_quickstart.pdb"
  "pardis_generated/quickstart.pardis.cpp"
  "pardis_generated/quickstart.pardis.hpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
