# Empty custom commands generated dependencies file for monitor_gen_idl.
# This may be replaced when dependencies are built.
