file(REMOVE_RECURSE
  "CMakeFiles/monitor_gen_idl"
  "pardis_generated/monitor.pardis.cpp"
  "pardis_generated/monitor.pardis.hpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/monitor_gen_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
