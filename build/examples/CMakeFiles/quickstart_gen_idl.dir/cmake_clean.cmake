file(REMOVE_RECURSE
  "CMakeFiles/quickstart_gen_idl"
  "pardis_generated/quickstart.pardis.cpp"
  "pardis_generated/quickstart.pardis.hpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/quickstart_gen_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
