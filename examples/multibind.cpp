// Non-collective binding (paper §2.1): "bind is non-collective and always
// establishes one binding per thread, so invoking it from all threads of a
// parallel program would establish multiple bindings either to the same
// object, or to different objects of the same type ...  This kind of
// interaction can be useful to parallel clients which want to interact in
// parallel with multiple distributed objects."
//
// One server application hosts four independent `diff_object` instances
// ("domain0".."domain3").  Each thread of the parallel client `_bind`s to
// its own object and drives it through the non-distributed mapping,
// concurrently and without any coordination with its sibling threads.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "diffusion.pardis.hpp"
#include "pardis/sim/scenario.hpp"

using namespace pardis;

namespace {

class DomainImpl : public Diffusion::POA_diff_object {
 public:
  void diffusion(transfer::ServerCall&, cdr::Long timesteps,
                 dseq::DSequence<double>& darray) override {
    if (timesteps < 0) {
      throw Diffusion::BadTimestep(timesteps, "negative timestep count");
    }
    // Independent per-domain smoothing; chunk-local (domains are small).
    const std::size_t n = darray.local_length();
    std::vector<double> next(n);
    double* u = darray.local_data();
    for (cdr::Long t = 0; t < timesteps; ++t) {
      for (std::size_t i = 0; i < n; ++i) {
        const double lo = i > 0 ? u[i - 1] : u[i];
        const double hi = i + 1 < n ? u[i + 1] : u[i];
        next[i] = u[i] + 0.25 * (lo - 2.0 * u[i] + hi);
      }
      std::memcpy(u, next.data(), n * sizeof(double));
    }
    steps_ += timesteps;
  }
  cdr::Long _get_steps_done(transfer::ServerCall&) override { return steps_; }
  cdr::Double _get_coefficient(transfer::ServerCall&) override { return 0.25; }
  void _set_coefficient(transfer::ServerCall&, cdr::Double) override {}

 private:
  cdr::Long steps_ = 0;
};

}  // namespace

int main() {
  constexpr int kDomains = 4;

  sim::ScenarioConfig cfg;
  cfg.server.nranks = 1;   // each object is itself small; one thread serves
  cfg.client.nranks = kDomains;
  sim::Scenario scenario(cfg);

  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, cfg.server.host);
        // One server application, several named objects of the same type.
        std::vector<DomainImpl> servants(kDomains);
        for (int d = 0; d < kDomains; ++d) {
          server.activate("domain" + std::to_string(d), servants[d]);
        }
        server.serve();
      },
      [&](rts::Communicator& comm) {
        // Every client thread binds independently to "its" object — the
        // paper's per-thread _bind — and works through the non-distributed
        // mapping.
        const std::string mine = "domain" + std::to_string(comm.rank());
        auto diff = Diffusion::diff_object::_bind(scenario.orb(),
                                                  cfg.client.host, mine);

        std::vector<double> u(512, 0.0);
        u[128 + 32 * static_cast<std::size_t>(comm.rank())] = 100.0;
        const double before = *std::max_element(u.begin(), u.end());
        diff.diffusion(25, u);  // non-collective invocation, nd mapping
        const double after = *std::max_element(u.begin(), u.end());

        std::printf(
            "client thread %d drove %s: peak %.1f -> %.3f over %d steps\n",
            comm.rank(), mine.c_str(), before, after, diff.steps_done());
        diff._unbind();
        comm.barrier();
      },
      "domain0");

  std::printf("multibind example: done\n");
  return 0;
}
