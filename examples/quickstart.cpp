// Quickstart: the smallest complete PARDIS program.
//
// One process simulates two machines: a server application with two
// computing threads exporting a `calculator` SPMD object, and a client
// application with two computing threads that binds to it collectively and
// invokes a scalar operation and a distributed-argument operation.
//
// Build: part of the default build; run: ./examples/example_quickstart

#include <cstdio>

#include "pardis/sim/scenario.hpp"
#include "quickstart.pardis.hpp"

using namespace pardis;

// The servant: derive from the generated skeleton and implement the pure
// virtuals.  Each computing thread of the server owns one instance.
class CalculatorImpl : public POA_calculator {
 public:
  cdr::Long add(transfer::ServerCall&, cdr::Long a, cdr::Long b) override {
    ++calls_;
    return a + b;
  }

  cdr::Double dot(transfer::ServerCall& call, dseq::DSequence<double>& x,
                  dseq::DSequence<double>& y) override {
    ++calls_;
    // Each thread combines its local chunks; an allreduce produces the
    // global dot product (every rank returns the same value; the
    // communicating thread's copy travels back).
    double local = 0.0;
    for (std::size_t i = 0; i < x.local_length(); ++i) {
      local += x.local_data()[i] * y.local_data()[i];
    }
    return rts::allreduce_value(call.comm(), local);
  }

  cdr::Long _get_calls(transfer::ServerCall&) override { return calls_; }

 private:
  cdr::Long calls_ = 0;
};

int main() {
  sim::ScenarioConfig cfg;
  cfg.server.nranks = 2;
  cfg.client.nranks = 2;
  sim::Scenario scenario(cfg);

  scenario.run(
      // ---- the server application (runs on every server rank) ----
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, cfg.server.host);
        CalculatorImpl servant;
        server.activate("calc", servant);
        server.serve();  // until the scenario delivers a shutdown
      },
      // ---- the client application (runs on every client rank) ----
      [&](rts::Communicator& comm) {
        auto calc = calculator::_spmd_bind(scenario.orb(), comm,
                                           cfg.client.host, "calc");

        const auto sum = calc.add(20, 22);

        dseq::DSequence<double> x(comm, 1000);
        dseq::DSequence<double> y(comm, 1000);
        for (std::size_t i = 0; i < x.local_length(); ++i) {
          x.local_data()[i] = 1.0;
          y.local_data()[i] = 2.0;
        }
        const double d = calc.dot(x, y);
        const auto calls = calc.calls();

        if (comm.rank() == 0) {
          std::printf("add(20, 22)        = %d\n", sum);
          std::printf("dot(1s, 2s) [1000] = %.1f\n", d);
          std::printf("server saw %d calls\n", calls);
        }
        calc._unbind();
      },
      /*shutdown_object=*/"calc");

  std::printf("quickstart: done\n");
  return 0;
}
