// A heterogeneous multi-application scenario (paper §2.1: "Principles
// applied in this simple scenario can be used to construct more complex
// interactions composed of multiple parallel applications, as well as units
// visualizing or otherwise monitoring their progress").
//
// Three applications on three simulated hosts:
//   * "compute"  — a 4-thread SPMD diffusion service;
//   * "console"  — a 1-thread monitor object collecting progress reports;
//   * "driver"   — a 2-thread parallel client that advances the simulation
//                  with non-blocking invocations (futures) and posts
//                  per-step statistics to the monitor with oneway calls.
//
// This example wires the fabric and teams manually instead of using
// sim::Scenario, demonstrating the lower-level deployment API.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <optional>
#include <vector>

#include "diffusion.pardis.hpp"
#include "monitor.pardis.hpp"
#include "pardis/rts/team.hpp"
#include "pardis/transfer/spmd_client.hpp"
#include "pardis/transfer/spmd_server.hpp"

using namespace pardis;

namespace {

class SimImpl : public Diffusion::POA_diff_object {
 public:
  void diffusion(transfer::ServerCall&, cdr::Long timesteps,
                 dseq::DSequence<double>& darray) override {
    const std::size_t n = darray.local_length();
    std::vector<double> next(n);
    double* u = darray.local_data();
    for (cdr::Long t = 0; t < timesteps; ++t) {
      for (std::size_t i = 0; i < n; ++i) {
        const double lo = i > 0 ? u[i - 1] : u[i];
        const double hi = i + 1 < n ? u[i + 1] : u[i];
        next[i] = u[i] + 0.25 * (lo - 2.0 * u[i] + hi);
      }
      std::memcpy(u, next.data(), n * sizeof(double));
    }
    steps_ += timesteps;
  }
  cdr::Long _get_steps_done(transfer::ServerCall&) override { return steps_; }
  cdr::Double _get_coefficient(transfer::ServerCall&) override { return 0.25; }
  void _set_coefficient(transfer::ServerCall&, cdr::Double) override {}

 private:
  cdr::Long steps_ = 0;
};

class MonitorImpl : public Pipeline::POA_monitor {
 public:
  void report(transfer::ServerCall&, const ::Pipeline::StepStats& s) override {
    std::printf("  [monitor] step %3d  min=%8.4f  max=%8.4f  mean=%8.4f\n",
                s.step, s.min, s.max, s.mean);
    ++received_;
  }
  cdr::Long reports_received(transfer::ServerCall&) override {
    return received_;
  }

 private:
  cdr::Long received_ = 0;
};

}  // namespace

int main() {
  auto orb = orb::Orb::create();
  // Distinct links: compute traffic is bulky, console traffic is chatty.
  orb->fabric().set_link("compute", "driver",
                         net::LinkModel::atm_scaled(100e6));
  orb->fabric().set_link("console", "driver",
                         net::LinkModel::atm_scaled(10e6));

  rts::Team compute("compute", 4);
  rts::Team console("console", 1);
  rts::Team driver("driver", 2);

  compute.start([&](rts::Communicator& comm) {
    transfer::SpmdServer server(*orb, comm, "compute");
    SimImpl servant;
    server.activate("sim", servant);
    server.serve();
  });
  console.start([&](rts::Communicator& comm) {
    transfer::SpmdServer server(*orb, comm, "console");
    MonitorImpl servant;
    server.activate("progress", servant);
    server.serve();
  });

  driver.run([&](rts::Communicator& comm) {
    auto sim = Diffusion::diff_object::_spmd_bind(*orb, comm, "driver",
                                                  "sim");
    // The monitor is driven by the communicating thread only, through a
    // per-thread binding.
    std::optional<Pipeline::monitor> progress;
    if (comm.rank() == 0) {
      progress = Pipeline::monitor::_bind(*orb, "driver", "progress");
    }

    dseq::DSequence<double> field(comm, 4096);
    for (std::size_t i = 0; i < field.local_length(); ++i) {
      field.local_data()[i] =
          (field.local_offset() + i == 2048) ? 500.0 : 0.0;
    }

    for (int step = 0; step < 5; ++step) {
      // Non-blocking invocation: the future's get() is collective.
      auto pending = sim.diffusion_nb(20, field);
      // ... the client could overlap its own work here (paper §2.1:
      // futures let the client use remote resources concurrently) ...
      pending.get();

      const auto values = field.gather_all();
      if (comm.rank() == 0) {
        Pipeline::StepStats stats;
        stats.step = step;
        const auto [lo, hi] =
            std::minmax_element(values.begin(), values.end());
        stats.min = *lo;
        stats.max = *hi;
        stats.mean = std::accumulate(values.begin(), values.end(), 0.0) /
                     static_cast<double>(values.size());
        progress->report(stats);  // oneway: returns immediately
      }
      comm.barrier();
    }

    // Collective query on the SPMD object (all driver ranks participate).
    const auto sim_steps = sim.steps_done();
    if (comm.rank() == 0) {
      // reports_received is a synchronous call, so it also flushes the
      // oneway stream ahead of it on the same connection.
      std::printf("driver: monitor received %d reports\n",
                  progress->reports_received());
      std::printf("driver: simulation ran %d steps\n", sim_steps);
      progress->_unbind();
    }
    comm.barrier();
    sim._unbind();
  });

  // Wind both servers down.
  transfer::send_shutdown(*orb, "driver", *orb->naming().resolve("sim"));
  transfer::send_shutdown(*orb, "driver",
                          *orb->naming().resolve("progress"));
  compute.join();
  console.join();

  std::printf("pipeline example: done\n");
  return 0;
}
