// The paper's §2.1 scenario: application B (a parallel diffusion service,
// here 4 computing threads) serves application A (a parallel client, here
// 2 computing threads) which owns a distributed array and asks B to advance
// it.  The client runs the same steps serially to verify the result, then
// compares the two argument-transfer methods of §3 on a throttled link.
//
// Environment knobs:
//   PARDIS_SEQLEN   sequence length in doubles   (default 1<<16)
//   PARDIS_STEPS    diffusion timesteps          (default 10)
//   PARDIS_LINK_MBPS simulated link bandwidth, MB/s (default 200; 0 = unlimited)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "diffusion.pardis.hpp"
#include "pardis/common/config.hpp"
#include "pardis/sim/scenario.hpp"

using namespace pardis;

namespace {

// Explicit 1-D diffusion with fixed boundaries: the real data-parallel
// computation behind the SPMD object.  Threads exchange halo cells through
// the runtime system each step.
class DiffusionImpl : public Diffusion::POA_diff_object {
 public:
  void diffusion(transfer::ServerCall& call, cdr::Long timesteps,
                 dseq::DSequence<double>& darray) override {
    if (timesteps < 0) {
      throw Diffusion::BadTimestep(timesteps, "negative timestep count");
    }
    auto& comm = call.comm();
    const int rank = comm.rank();
    const int size = comm.size();
    const std::size_t n = darray.local_length();
    constexpr int kLeftTag = 101;
    constexpr int kRightTag = 102;

    std::vector<double> next(n);
    for (cdr::Long t = 0; t < timesteps; ++t) {
      double* u = darray.local_data();
      // Halo exchange with the neighbouring threads.
      double left = 0.0;
      double right = 0.0;
      const bool has_left = rank > 0;
      const bool has_right = rank < size - 1;
      if (has_left && n > 0) {
        comm.send(rank - 1, kRightTag,
                  BytesView(reinterpret_cast<const std::uint8_t*>(&u[0]),
                            sizeof(double)));
      }
      if (has_right && n > 0) {
        comm.send(rank + 1, kLeftTag,
                  BytesView(reinterpret_cast<const std::uint8_t*>(&u[n - 1]),
                            sizeof(double)));
      }
      if (has_left && n > 0) {
        const auto msg = comm.recv(rank - 1, kLeftTag);
        std::memcpy(&left, msg.payload.data(), sizeof(double));
      }
      if (has_right && n > 0) {
        const auto msg = comm.recv(rank + 1, kRightTag);
        std::memcpy(&right, msg.payload.data(), sizeof(double));
      }
      for (std::size_t i = 0; i < n; ++i) {
        const double lo = i > 0 ? u[i - 1] : (has_left ? left : u[i]);
        const double hi =
            i + 1 < n ? u[i + 1] : (has_right ? right : u[i]);
        next[i] = u[i] + coeff_ * (lo - 2.0 * u[i] + hi);
      }
      std::memcpy(u, next.data(), n * sizeof(double));
    }
    steps_ += timesteps;
  }

  cdr::Long _get_steps_done(transfer::ServerCall&) override { return steps_; }
  cdr::Double _get_coefficient(transfer::ServerCall&) override {
    return coeff_;
  }
  void _set_coefficient(transfer::ServerCall&, cdr::Double v) override {
    coeff_ = v;
  }

 private:
  cdr::Long steps_ = 0;
  double coeff_ = Diffusion::kDefaultCoefficient;
};

// Serial reference used by the client to verify the remote result.
void serial_diffusion(std::vector<double>& u, int steps, double c) {
  std::vector<double> next(u.size());
  for (int t = 0; t < steps; ++t) {
    for (std::size_t i = 0; i < u.size(); ++i) {
      const double lo = i > 0 ? u[i - 1] : u[i];
      const double hi = i + 1 < u.size() ? u[i + 1] : u[i];
      next[i] = u[i] + c * (lo - 2.0 * u[i] + hi);
    }
    u.swap(next);
  }
}

}  // namespace

int main() {
  const auto seqlen = env_u64("PARDIS_SEQLEN", 1u << 16);
  const auto steps = static_cast<int>(env_u64("PARDIS_STEPS", 10));
  const double link_mbps = env_double("PARDIS_LINK_MBPS", 200.0);

  sim::ScenarioConfig cfg;
  cfg.server.nranks = 4;
  cfg.client.nranks = 2;
  if (link_mbps > 0) {
    cfg.link = net::LinkModel::atm_scaled(link_mbps * 1e6);
  }
  sim::Scenario scenario(cfg);

  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm, cfg.server.host);
        DiffusionImpl servant;
        server.activate("example", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        // As in the paper:  diff_object* diff = diff_object::_spmd_bind(...)
        auto diff = Diffusion::diff_object::_spmd_bind(
            scenario.orb(), comm, cfg.client.host, "example");

        // Build the client-side distributed array: a heat spike in the
        // middle of the domain.
        dseq::DSequence<double> darray(comm, seqlen);
        const auto offset = darray.local_offset();
        for (std::size_t i = 0; i < darray.local_length(); ++i) {
          const auto g = offset + i;
          darray.local_data()[i] = (g == seqlen / 2) ? 1000.0 : 0.0;
        }

        for (auto method : {orb::TransferMethod::kCentralized,
                            orb::TransferMethod::kMultiPort}) {
          diff._transfer_method(method);
          auto work = darray;  // deep copy per run
          const StopWatch watch;
          diff.diffusion(steps, work);
          const double elapsed = watch.elapsed_ms();

          // Verify against the serial reference.
          auto got = work.gather_all();
          std::vector<double> want = darray.gather_all();
          serial_diffusion(want, steps, Diffusion::kDefaultCoefficient);
          double max_err = 0.0;
          for (std::size_t i = 0; i < got.size(); ++i) {
            max_err = std::max(max_err, std::abs(got[i] - want[i]));
          }
          if (comm.rank() == 0) {
            std::printf(
                "diffusion(%d steps, %llu doubles) via %-11s : %8.2f ms   "
                "max|err| = %.2e\n",
                steps, static_cast<unsigned long long>(seqlen),
                orb::to_string(method), elapsed, max_err);
            if (max_err > 1e-9) {
              std::printf("!! verification FAILED\n");
            }
          }
        }
        // Attribute access is a collective invocation too: every rank of
        // the parallel client participates.
        const auto total_steps = diff.steps_done();
        if (comm.rank() == 0) {
          std::printf("server ran %d total steps\n", total_steps);
        }
        diff._unbind();
      },
      "example");

  std::printf("diffusion example: done\n");
  return 0;
}
