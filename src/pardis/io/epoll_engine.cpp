// Level-triggered epoll backend — the default readiness engine, ported
// from the original single-reactor TcpTransport loop.  Stateless beyond
// the two kernel fds: registration lives in the kernel's interest list,
// so watch/unwatch are plain epoll_ctl calls and need no user-space lock.

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <string>

#include "pardis/common/error.hpp"
#include "pardis/common/log.hpp"
#include "pardis/io/engine.hpp"

namespace pardis::io {

namespace {

std::string errno_text(int err) {
  std::array<char, 128> buf{};
  return std::string(strerror_r(err, buf.data(), buf.size()));
}

class EpollEngine final : public Engine {
 public:
  EpollEngine() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      throw INTERNAL("epoll_create1 failed: " + errno_text(errno));
    }
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
      const int err = errno;
      ::close(epoll_fd_);
      throw INTERNAL("eventfd failed: " + errno_text(err));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      const int err = errno;
      ::close(wake_fd_);
      ::close(epoll_fd_);
      throw INTERNAL("epoll_ctl(wake) failed: " + errno_text(err));
    }
  }

  ~EpollEngine() override {
    ::close(wake_fd_);
    ::close(epoll_fd_);
  }

  EngineKind kind() const noexcept override { return EngineKind::kEpoll; }

  void watch(int fd) override {
    epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered: re-reported until drained
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      throw INTERNAL("epoll_ctl(add) failed: " + errno_text(errno));
    }
  }

  void unwatch(int fd) override {
    // The fd may already be gone (peer close raced with teardown); only
    // surprising errors are worth a log line, none are worth throwing on
    // a teardown path.
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0 &&
        errno != ENOENT && errno != EBADF) {
      PARDIS_LOG_DEBUG << "epoll_ctl(del) failed: " << errno_text(errno);
    }
  }

  std::size_t wait(std::vector<int>& ready) override {
    std::array<epoll_event, 64> events{};
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) return 0;
      throw INTERNAL("epoll_wait failed: " + errno_text(errno));
    }
    std::size_t appended = 0;
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t rc =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      ready.push_back(fd);
      ++appended;
    }
    return appended;
  }

  void rearm(int /*fd*/) override {
    // Level-triggered: the kernel keeps reporting readiness until the
    // handler drains the socket, so there is nothing to re-arm.
  }

  void wake() override {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
  }

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
};

}  // namespace

namespace detail {

std::unique_ptr<Engine> make_epoll_engine() {
  return std::make_unique<EpollEngine>();
}

}  // namespace detail

}  // namespace pardis::io
