// io_uring readiness backend — raw syscalls, no liburing dependency.
//
// The engine runs io_uring in its simplest mode (no SQPOLL, no registered
// files): one oneshot IORING_OP_POLL_ADD per watched fd, re-armed by the
// shard thread after each dispatch, plus a persistent poll on an eventfd
// for cross-thread wakeups.  The shard thread is the only submitter and
// the only caller of io_uring_enter, so the SQ needs no user-space lock;
// the only shared state is the pending watch/unwatch queue, guarded by a
// kIoEngine-ranked mutex and drained by the shard thread at the top of
// every wait().
//
// Correctness notes (see docs/transport.md):
//   * POLL_ADD resolves the fd to a file at submission time, so a poll
//     armed for a since-closed-and-reused fd number can complete late; the
//     CQE is attributed by fd number and at worst causes one spurious
//     dispatch (the handler reads EAGAIN), never a miss — after every
//     dispatched completion the fd is re-armed if still watched.
//   * unwatch issues IORING_OP_POLL_REMOVE; a -ENOENT result just means
//     the poll had already completed and its CQE is in flight, which the
//     watched-set check filters out.
//
// Compiled to a stub (uring unsupported, factory returns null) when the
// kernel headers or syscall numbers are missing, and detected at runtime
// via an io_uring_setup probe — containers commonly deny the syscall even
// on new kernels, and the right answer there is a quiet epoll fallback.

#include "pardis/io/engine.hpp"

#include <sys/syscall.h>
#include <unistd.h>

#if defined(__linux__) && __has_include(<linux/io_uring.h>) && \
    defined(__NR_io_uring_setup) && defined(__NR_io_uring_enter)
#define PARDIS_HAS_URING 1
#else
#define PARDIS_HAS_URING 0
#endif

#if PARDIS_HAS_URING

#include <linux/io_uring.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/mman.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <utility>

#include "pardis/common/error.hpp"
#include "pardis/common/log.hpp"
#include "pardis/common/ranked_mutex.hpp"

namespace pardis::io {

namespace {

std::string errno_text(int err) {
  std::array<char, 128> buf{};
  return std::string(strerror_r(err, buf.data(), buf.size()));
}

int sys_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_uring_enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

// user_data encoding: fd in the high bits, a 2-bit tag below.
constexpr std::uint64_t kTagPoll = 0;
constexpr std::uint64_t kTagCancel = 1;
constexpr std::uint64_t kTagWake = 2;

constexpr std::uint64_t pack_user_data(int fd, std::uint64_t tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(fd)) << 2) |
         tag;
}

class UringEngine final : public Engine {
 public:
  static constexpr unsigned kEntries = 64;

  UringEngine() {
    io_uring_params params{};
    ring_fd_ = sys_uring_setup(kEntries, &params);
    if (ring_fd_ < 0) {
      throw INTERNAL("io_uring_setup failed: " + errno_text(errno));
    }

    sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_ring_bytes_ =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap =
        (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap && cq_ring_bytes_ > sq_ring_bytes_) {
      sq_ring_bytes_ = cq_ring_bytes_;
    }

    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) fail_ctor("mmap(sq ring)");
    if (single_mmap) {
      cq_ring_ = sq_ring_;
    } else {
      cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) fail_ctor("mmap(cq ring)");
    }
    sqe_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqe_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) fail_ctor("mmap(sqes)");

    auto* sq = static_cast<std::uint8_t*>(sq_ring_);
    sq_khead_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_ktail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    auto* cq = static_cast<std::uint8_t*>(cq_ring_);
    cq_khead_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_ktail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    sq_entries_ = params.sq_entries;
    sq_local_tail_ = std::atomic_ref<unsigned>(*sq_ktail_).load(
        std::memory_order_acquire);

    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) fail_ctor("eventfd");
  }

  ~UringEngine() override {
    if (wake_fd_ >= 0) ::close(wake_fd_);
    unmap_all();
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  EngineKind kind() const noexcept override { return EngineKind::kUring; }

  void watch(int fd) override {
    {
      const std::lock_guard<common::RankedMutex> lock(mu_);
      pending_.emplace_back(fd, true);
    }
    wake();
  }

  void unwatch(int fd) override {
    {
      const std::lock_guard<common::RankedMutex> lock(mu_);
      pending_.emplace_back(fd, false);
    }
    wake();
  }

  std::size_t wait(std::vector<int>& ready) override {
    apply_pending();
    if (!wake_armed_) {
      arm_poll(wake_fd_, pack_user_data(wake_fd_, kTagWake));
      wake_armed_ = true;
    }
    if (!flush_submissions(/*min_complete=*/1,
                           /*flags=*/IORING_ENTER_GETEVENTS)) {
      return 0;  // EINTR: let the caller re-check its stop flag
    }
    return drain_completions(ready);
  }

  void rearm(int fd) override {
    if (watched_.count(fd) != 0 && armed_.count(fd) == 0) {
      arm_poll(fd, pack_user_data(fd, kTagPoll));
      armed_.insert(fd);
    }
  }

  void wake() override {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
  }

 private:
  [[noreturn]] void fail_ctor(const char* what) {
    const int err = errno;
    if (wake_fd_ >= 0) ::close(wake_fd_);
    unmap_all();
    ::close(ring_fd_);
    throw INTERNAL(std::string("io_uring init: ") + what +
                   " failed: " + errno_text(err));
  }

  void unmap_all() {
    if (sqes_ != nullptr && sqes_ != MAP_FAILED) ::munmap(sqes_, sqe_bytes_);
    if (cq_ring_ != nullptr && cq_ring_ != MAP_FAILED && cq_ring_ != sq_ring_) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    if (sq_ring_ != nullptr && sq_ring_ != MAP_FAILED) {
      ::munmap(sq_ring_, sq_ring_bytes_);
    }
    sqes_ = nullptr;
    cq_ring_ = nullptr;
    sq_ring_ = nullptr;
  }

  // --- submission side; shard thread only -------------------------------

  io_uring_sqe* get_sqe() {
    const unsigned head =
        std::atomic_ref<unsigned>(*sq_khead_).load(std::memory_order_acquire);
    if (sq_local_tail_ - head == sq_entries_) {
      // Ring full: submit what we have (the kernel consumes synchronously
      // in non-SQPOLL mode) and retry.
      (void)flush_submissions(0, 0);
    }
    io_uring_sqe* sqe = &sqes_[sq_local_tail_ & sq_mask_];
    *sqe = io_uring_sqe{};
    return sqe;
  }

  void advance_tail() {
    sq_array_[sq_local_tail_ & sq_mask_] = sq_local_tail_ & sq_mask_;
    ++sq_local_tail_;
    std::atomic_ref<unsigned>(*sq_ktail_).store(sq_local_tail_,
                                                std::memory_order_release);
    ++unsubmitted_;
  }

  void arm_poll(int fd, std::uint64_t user_data) {
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = fd;
    sqe->poll_events = POLLIN;
    sqe->user_data = user_data;
    advance_tail();
  }

  void cancel_poll(int fd) {
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_POLL_REMOVE;
    sqe->fd = -1;
    sqe->addr = pack_user_data(fd, kTagPoll);
    sqe->user_data = pack_user_data(fd, kTagCancel);
    advance_tail();
  }

  /// Submits all queued SQEs; with IORING_ENTER_GETEVENTS also blocks for
  /// `min_complete` completions.  Returns false on EINTR.
  bool flush_submissions(unsigned min_complete, unsigned flags) {
    do {
      const int rc = sys_uring_enter(ring_fd_, unsubmitted_, min_complete,
                                     flags);
      if (rc < 0) {
        if (errno == EINTR) return false;
        throw INTERNAL("io_uring_enter failed: " + errno_text(errno));
      }
      unsubmitted_ -= std::min(static_cast<unsigned>(rc), unsubmitted_);
      // A short submit (rc < to_submit) leaves SQEs queued; loop only in
      // that case.  Once everything is in, a single GETEVENTS wait above
      // has already satisfied min_complete.
    } while (unsubmitted_ > 0 && flags == 0);
    return true;
  }

  void apply_pending() {
    std::vector<std::pair<int, bool>> batch;
    {
      const std::lock_guard<common::RankedMutex> lock(mu_);
      batch.swap(pending_);
    }
    for (const auto& [fd, add] : batch) {
      if (add) {
        watched_.insert(fd);
        if (armed_.count(fd) == 0) {
          arm_poll(fd, pack_user_data(fd, kTagPoll));
          armed_.insert(fd);
        }
      } else {
        watched_.erase(fd);
        if (armed_.count(fd) != 0) {
          cancel_poll(fd);
          armed_.erase(fd);
        }
      }
    }
  }

  std::size_t drain_completions(std::vector<int>& ready) {
    unsigned head =
        std::atomic_ref<unsigned>(*cq_khead_).load(std::memory_order_acquire);
    const unsigned tail =
        std::atomic_ref<unsigned>(*cq_ktail_).load(std::memory_order_acquire);
    std::size_t appended = 0;
    while (head != tail) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      const std::uint64_t tag = cqe.user_data & 0x3;
      const int fd = static_cast<int>(cqe.user_data >> 2);
      if (tag == kTagWake) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t rc =
            ::read(wake_fd_, &drained, sizeof(drained));
        wake_armed_ = false;  // oneshot poll consumed; wait() re-arms
      } else if (tag == kTagPoll) {
        armed_.erase(fd);
        if (watched_.count(fd) != 0) {
          ready.push_back(fd);
          ++appended;
        }
        // else: stale completion for an unwatched fd — dropped, matching
        // the epoll backend's weak_ptr-miss behavior.
      }
      // kTagCancel results (-ENOENT when the poll already fired) carry no
      // state we track.
      ++head;
    }
    std::atomic_ref<unsigned>(*cq_khead_).store(head,
                                                std::memory_order_release);
    return appended;
  }

  int ring_fd_ = -1;
  int wake_fd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  std::size_t cq_ring_bytes_ = 0;
  std::size_t sqe_bytes_ = 0;
  unsigned* sq_khead_ = nullptr;
  unsigned* sq_ktail_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned sq_local_tail_ = 0;
  unsigned* cq_khead_ = nullptr;
  unsigned* cq_ktail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned unsubmitted_ = 0;

  // Shard-thread-only bookkeeping.
  std::set<int> watched_;
  std::set<int> armed_;
  bool wake_armed_ = false;

  // Cross-thread control plane: watch/unwatch enqueue here and wake().
  common::RankedMutex mu_{common::LockRank::kIoEngine};
  std::vector<std::pair<int, bool>> pending_;
};

}  // namespace

bool uring_supported() noexcept {
  static const bool supported = [] {
    io_uring_params params{};
    const int fd = sys_uring_setup(4, &params);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return supported;
}

namespace detail {

std::unique_ptr<Engine> make_uring_engine() {
  if (!uring_supported()) return nullptr;
  return std::make_unique<UringEngine>();
}

}  // namespace detail

}  // namespace pardis::io

#else  // !PARDIS_HAS_URING

namespace pardis::io {

bool uring_supported() noexcept { return false; }

namespace detail {

std::unique_ptr<Engine> make_uring_engine() { return nullptr; }

}  // namespace detail

}  // namespace pardis::io

#endif  // PARDIS_HAS_URING
