// Sharded reactor: N event-loop threads, each owning one io::Engine and
// the registry of fds assigned to it.
//
// The original TcpTransport ran a single reactor thread whose fd→handler
// registry lock (and epoll interest list) every connection shared; under
// the many-client regime (the SLS deployment in PAPERS.md) that one lock
// and one thread become the bottleneck.  A ReactorPool splits both: each
// shard has its own engine, its own registry lock (kIoReactorShard), and
// its own dispatch thread.  Connections are assigned round-robin at
// accept/connect time and stay on their shard for life — fd add/remove
// only ever contends with the shard's own dispatch loop.
//
// Per-shard instruments (prefix supplied by the owner, e.g. "tcp.reactor"):
//   <prefix>.<i>.wakeups   engine wait() returns for shard i
//   <prefix>.<i>.fds       gauge: fds currently registered on shard i
//   <prefix>.<i>.batch     histogram: ready-fds per wakeup (dispatch queue
//                          depth seen by one engine wait)
// plus an aggregated "<prefix>.wakeups" counter kept for dashboards that
// predate sharding (docs/observability.md).  The owner aggregates fd
// totals at collect time.

#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pardis/common/ranked_mutex.hpp"
#include "pardis/io/engine.hpp"

namespace pardis::obs {
class Observability;
class Counter;
class Gauge;
class Histogram;
}  // namespace pardis::obs

namespace pardis::io {

/// Implemented by stream/listener objects that own an fd registered with
/// a shard.  on_readable() runs on the shard thread and must consume
/// until EAGAIN (engines may be level- or oneshot-triggered; handlers
/// cannot tell the difference).
class FdHandler {
 public:
  virtual ~FdHandler() = default;
  virtual void on_readable() = 0;
};

class ReactorShard {
 public:
  /// `trace_pid` labels this shard's dispatch spans ("reactor.drain") in
  /// merged traces; tid is the shard index.
  ReactorShard(std::size_t index, EngineKind kind, obs::Observability* obs,
               const std::string& metric_prefix, std::uint32_t trace_pid);
  ~ReactorShard();

  ReactorShard(const ReactorShard&) = delete;
  ReactorShard& operator=(const ReactorShard&) = delete;

  void add(int fd, const std::shared_ptr<FdHandler>& handler);
  void remove(int fd);

  std::size_t index() const noexcept { return index_; }
  std::size_t watched() const;
  Engine& engine() noexcept { return *engine_; }

 private:
  void run();

  const std::size_t index_;
  std::unique_ptr<Engine> engine_;
  std::atomic<bool> stop_{false};

  mutable common::RankedMutex mu_{common::LockRank::kIoReactorShard};
  std::map<int, std::weak_ptr<FdHandler>> handlers_;

  obs::Observability* obs_ = nullptr;
  obs::Counter* wakeups_ = nullptr;        // per-shard
  obs::Counter* wakeups_total_ = nullptr;  // pool-wide aggregate
  obs::Gauge* fds_ = nullptr;
  obs::Histogram* batch_ = nullptr;
  std::uint32_t trace_pid_ = 0;

  std::thread thread_;  // last member: joins in ~ReactorShard
};

class ReactorPool {
 public:
  /// Spins up `shards` dispatch threads (>= 1) over `kind` engines.
  ReactorPool(std::size_t shards, EngineKind kind, obs::Observability* obs,
              const std::string& metric_prefix, std::uint32_t trace_pid);

  /// Round-robin shard assignment for a new connection.
  ReactorShard& assign() noexcept;

  std::size_t size() const noexcept { return shards_.size(); }
  ReactorShard& shard(std::size_t i) noexcept { return *shards_[i]; }

  /// Sum of registered fds across shards.
  std::size_t watched() const;

 private:
  std::vector<std::unique_ptr<ReactorShard>> shards_;
  std::atomic<std::size_t> next_{0};
};

}  // namespace pardis::io
