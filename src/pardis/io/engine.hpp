// Readiness-notification engine behind the reactor shards.
//
// One shard thread blocks in Engine::wait() and dispatches the fds it
// returns; other threads add and remove fds (watch/unwatch) and interrupt
// the wait (wake).  Two backends implement the interface:
//
//   * EpollEngine — level-triggered epoll + eventfd wakeup.  The default,
//     and the fallback everywhere io_uring is unavailable.
//   * UringEngine — raw-syscall io_uring (no liburing dependency): oneshot
//     IORING_OP_POLL_ADD per fd, re-armed by the shard thread after each
//     dispatch.  Compiled only when <linux/io_uring.h> exists; selected at
//     runtime only when io_uring_setup succeeds (containers and seccomp
//     policies commonly deny it even on new kernels).
//
// Selection: PARDIS_IO_ENGINE=epoll|uring (unset → epoll).  Requesting
// uring where it is unsupported logs a warning and falls back to epoll —
// the knob is a performance hint, not a correctness switch.  Any other
// value throws BAD_PARAM.
//
// Threading contract (what the two implementations must provide):
//   * wait() is called by exactly one thread (the owning shard's);
//   * watch/unwatch/wake may be called from any thread, concurrently;
//   * unwatch(fd) guarantees that once it returns, a concurrent or later
//     wait() may still *report* the fd at most from events already in
//     flight — callers (ReactorShard) must tolerate stale readiness for a
//     removed fd, which they already do via the weak_ptr handler map;
//   * rearm(fd) is called only from the wait() thread, after dispatching
//     the fd's readiness (no-op for level-triggered epoll).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace pardis::io {

enum class EngineKind : std::uint8_t { kEpoll = 0, kUring = 1 };

const char* to_string(EngineKind kind) noexcept;

/// True when this process can actually create an io_uring instance
/// (header present at build time AND io_uring_setup succeeds at runtime).
/// Probed once and cached.
bool uring_supported() noexcept;

/// Parses PARDIS_IO_ENGINE.  Unset/empty/"epoll" → kEpoll; "uring" →
/// kUring when supported, else a logged fallback to kEpoll; anything else
/// throws BAD_PARAM.
EngineKind engine_kind_from_env();

class Engine {
 public:
  virtual ~Engine() = default;

  virtual EngineKind kind() const noexcept = 0;

  /// Starts delivering readiness for `fd` (input direction).
  virtual void watch(int fd) = 0;

  /// Stops delivering readiness for `fd`.  The caller still owns the fd
  /// and closes it afterwards.
  virtual void unwatch(int fd) = 0;

  /// Blocks until at least one watched fd is readable or wake() is
  /// called; appends ready fds to `ready` (which the caller cleared).
  /// Returns the number appended (0 on a pure wakeup).
  virtual std::size_t wait(std::vector<int>& ready) = 0;

  /// Re-arms readiness for `fd` after a dispatch.  Only the wait() thread
  /// calls this.  Level-triggered backends make it a no-op.
  virtual void rearm(int fd) = 0;

  /// Interrupts a concurrent wait().  Callable from any thread.
  virtual void wake() = 0;
};

/// Builds the requested backend; kUring where unsupported throws INTERNAL
/// (callers are expected to have consulted uring_supported(), as
/// engine_kind_from_env does).
std::unique_ptr<Engine> make_engine(EngineKind kind);

namespace detail {
// Per-backend factories (epoll_engine.cpp / uring_engine.cpp).  The uring
// factory returns null when the backend is compiled out or the runtime
// probe fails.
std::unique_ptr<Engine> make_epoll_engine();
std::unique_ptr<Engine> make_uring_engine();
}  // namespace detail

}  // namespace pardis::io
