#include "pardis/io/gather.hpp"

#include <sys/uio.h>

#include <utility>

#include "pardis/common/error.hpp"

namespace pardis::io {

namespace {

// Shared zero block for pad_to: padding is a borrowed view into static
// storage, so alignment never allocates.
constexpr std::uint8_t kZeros[8] = {0, 0, 0, 0, 0, 0, 0, 0};

}  // namespace

void GatherList::append(pardis::Bytes owned) {
  if (owned.empty()) return;
  Segment seg;
  seg.owned = std::move(owned);
  seg.view = pardis::BytesView(seg.owned);
  total_ += seg.view.size();
  segs_.push_back(std::move(seg));
}

void GatherList::append_view(pardis::BytesView view) {
  if (view.empty()) return;
  Segment seg;
  seg.view = view;
  total_ += view.size();
  segs_.push_back(std::move(seg));
}

void GatherList::pad_to(std::size_t alignment) {
  if (alignment == 0 || alignment > sizeof(kZeros) ||
      (alignment & (alignment - 1)) != 0) {
    throw BAD_PARAM("GatherList::pad_to: alignment must be a power of two <= 8");
  }
  const std::size_t rem = total_ % alignment;
  if (rem != 0) append_view(pardis::BytesView(kZeros, alignment - rem));
}

pardis::BytesView GatherList::segment(std::size_t i) const noexcept {
  return i < segs_.size() ? segs_[i].view : pardis::BytesView{};
}

pardis::Bytes GatherList::flatten() && {
  pardis::Bytes out;
  out.reserve(total_);
  for (const Segment& seg : segs_) pardis::append(out, seg.view);
  segs_.clear();
  total_ = 0;
  return out;
}

std::size_t GatherList::fill_iovecs(struct iovec* out, std::size_t max,
                                    std::size_t skip) const noexcept {
  std::size_t n = 0;
  for (const Segment& seg : segs_) {
    if (n == max) break;
    if (skip >= seg.view.size()) {
      skip -= seg.view.size();
      continue;
    }
    out[n].iov_base =
        const_cast<std::uint8_t*>(seg.view.data() + skip);  // NOLINT
    out[n].iov_len = seg.view.size() - skip;
    skip = 0;
    ++n;
  }
  return n;
}

void WireMessage::set_prefix(std::uint32_t frame_len) noexcept {
  prefix[0] = static_cast<std::uint8_t>((frame_len >> 24) & 0xff);
  prefix[1] = static_cast<std::uint8_t>((frame_len >> 16) & 0xff);
  prefix[2] = static_cast<std::uint8_t>((frame_len >> 8) & 0xff);
  prefix[3] = static_cast<std::uint8_t>(frame_len & 0xff);
}

std::size_t WireMessage::total_bytes() const noexcept {
  return sizeof(prefix) + (payload != nullptr ? payload->total_bytes() : 0);
}

std::size_t WireMessage::fill_iovecs(struct iovec* out, std::size_t max,
                                     std::size_t skip) const noexcept {
  std::size_t n = 0;
  if (skip < sizeof(prefix)) {
    if (max == 0) return 0;
    out[0].iov_base = const_cast<std::uint8_t*>(prefix + skip);  // NOLINT
    out[0].iov_len = sizeof(prefix) - skip;
    skip = 0;
    n = 1;
  } else {
    skip -= sizeof(prefix);
  }
  if (payload != nullptr) n += payload->fill_iovecs(out + n, max - n, skip);
  return n;
}

}  // namespace pardis::io
