#include "pardis/io/reactor.hpp"

#include <exception>
#include <utility>

#include "pardis/common/log.hpp"
#include "pardis/obs/observability.hpp"

namespace pardis::io {

ReactorShard::ReactorShard(std::size_t index, EngineKind kind,
                           obs::Observability* obs,
                           const std::string& metric_prefix,
                           std::uint32_t trace_pid)
    : index_(index), engine_(make_engine(kind)), obs_(obs),
      trace_pid_(trace_pid) {
  if (obs_ != nullptr) {
    const std::string shard_prefix =
        metric_prefix + "." + std::to_string(index_);
    wakeups_ = &obs_->metrics().counter(shard_prefix + ".wakeups");
    wakeups_total_ = &obs_->metrics().counter(metric_prefix + ".wakeups");
    fds_ = &obs_->metrics().gauge(shard_prefix + ".fds");
    batch_ = &obs_->metrics().histogram(shard_prefix + ".batch");
  }
  thread_ = std::thread([this] {
    try {
      run();
    } catch (const std::exception& e) {
      PARDIS_LOG_WARN << "reactor shard " << index_
                      << " exiting on unexpected error: " << e.what();
    } catch (...) {
      PARDIS_LOG_WARN << "reactor shard " << index_
                      << " exiting on unexpected error";
    }
  });
}

ReactorShard::~ReactorShard() {
  stop_.store(true, std::memory_order_release);
  engine_->wake();
  if (thread_.joinable()) thread_.join();
}

void ReactorShard::add(int fd, const std::shared_ptr<FdHandler>& handler) {
  {
    const std::lock_guard<common::RankedMutex> lock(mu_);
    handlers_[fd] = handler;
  }
  // Registry first, then engine: a readiness event that fires immediately
  // must find its handler.
  engine_->watch(fd);
  if (fds_ != nullptr) fds_->add(1);
}

void ReactorShard::remove(int fd) {
  engine_->unwatch(fd);
  bool erased = false;
  {
    const std::lock_guard<common::RankedMutex> lock(mu_);
    erased = handlers_.erase(fd) != 0;
  }
  if (erased && fds_ != nullptr) fds_->add(-1);
}

std::size_t ReactorShard::watched() const {
  const std::lock_guard<common::RankedMutex> lock(mu_);
  return handlers_.size();
}

void ReactorShard::run() {
  obs::Tracer* tracer = obs_ != nullptr ? &obs_->tracer() : nullptr;
  std::vector<int> ready;
  while (!stop_.load(std::memory_order_acquire)) {
    ready.clear();
    engine_->wait(ready);
    if (stop_.load(std::memory_order_acquire)) return;
    if (wakeups_ != nullptr) {
      wakeups_->add();
      wakeups_total_->add();
      batch_->add(static_cast<double>(ready.size()));
    }
    const auto dispatch = [&] {
      for (const int fd : ready) {
        std::shared_ptr<FdHandler> handler;
        {
          const std::lock_guard<common::RankedMutex> lock(mu_);
          auto it = handlers_.find(fd);
          if (it != handlers_.end()) handler = it->second.lock();
        }
        // A handler that vanished between wait and here was removed (and
        // possibly its fd reused); skipping is always safe — oneshot
        // engines drop the stale arm, level-triggered ones never re-report
        // an unregistered fd.
        if (handler) handler->on_readable();
        engine_->rearm(fd);
      }
    };
    if (tracer != nullptr && tracer->enabled() && !ready.empty()) {
      const obs::SpanGuard span(tracer, "reactor.drain", "reactor",
                                trace_pid_, static_cast<std::uint32_t>(index_));
      dispatch();
    } else {
      dispatch();
    }
  }
}

ReactorPool::ReactorPool(std::size_t shards, EngineKind kind,
                         obs::Observability* obs,
                         const std::string& metric_prefix,
                         std::uint32_t trace_pid) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<ReactorShard>(i, kind, obs,
                                                     metric_prefix, trace_pid));
  }
}

ReactorShard& ReactorPool::assign() noexcept {
  const std::size_t i = next_.fetch_add(1) % shards_.size();
  return *shards_[i];
}

std::size_t ReactorPool::watched() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->watched();
  return total;
}

}  // namespace pardis::io
