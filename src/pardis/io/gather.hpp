// Scatter-gather wire-message builder (DESIGN.md "zero-copy tx path").
//
// The paper's evaluation (Tables 1-2, Figure 4) is an accounting of where
// argument bytes get copied; the transport's job is to not add copies of
// its own.  A GatherList is an ordered sequence of byte segments — some
// owned (moved-in Bytes buffers), some borrowed views into caller storage —
// that the TCP backend hands to `writev` as an iovec array, so the ORB
// prologue, transfer headers, and POD dsequence local_data blocks reach the
// kernel without ever being packed into one staging buffer.
//
// Buffer-lifetime contract
// ------------------------
// Sends in this repo are *synchronous*: `Stream::sendv` returns only after
// the final byte has been accepted by the kernel (or throws).  Therefore:
//
//   * owned segments (append) are pinned by the GatherList itself;
//   * borrowed segments (append_view) must point into storage that the
//     caller keeps alive across the sendv call — which is trivially true
//     for locals in the calling frame.  Nothing retains a view after sendv
//     returns.
//
// If a future backend completes writes asynchronously it must either
// flatten borrowed segments or take ownership; the contract above is what
// transfer-layer callers are written against.
//
// Non-contiguous or very short messages fall back to a single flatten()
// copy — one memcpy is cheaper than a long iovec for tiny frames, and some
// paths (the sim backend, frame validation in tests) want contiguous bytes.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pardis/common/bytes.hpp"

struct iovec;  // <sys/uio.h>; kept out of this header on purpose

namespace pardis::io {

class GatherList {
 public:
  GatherList() = default;
  GatherList(GatherList&&) noexcept = default;
  GatherList& operator=(GatherList&&) noexcept = default;
  GatherList(const GatherList&) = delete;
  GatherList& operator=(const GatherList&) = delete;

  /// Appends an owned segment; the buffer is pinned until destruction.
  /// Empty buffers are dropped (zero-length iovecs are legal but useless).
  void append(pardis::Bytes owned);

  /// Appends a borrowed segment.  See the lifetime contract above: the
  /// caller keeps `view`'s storage alive until the send completes.
  void append_view(pardis::BytesView view);

  /// Pads with zero bytes so total_bytes() becomes a multiple of
  /// `alignment` (power of two, <= 8).  Mirrors cdr::Encoder::align for
  /// frames assembled segment-by-segment.
  void pad_to(std::size_t alignment);

  std::size_t total_bytes() const noexcept { return total_; }
  std::size_t segment_count() const noexcept { return segs_.size(); }
  bool empty() const noexcept { return total_ == 0; }

  /// Read-only view of one segment (valid while the list lives).
  pardis::BytesView segment(std::size_t i) const noexcept;

  /// Copies every segment into one contiguous buffer — the documented
  /// fallback path for short messages and for backends without
  /// scatter-gather output (sim).  Consumes the list.
  pardis::Bytes flatten() &&;

  /// Fills up to `max` iovecs starting `skip` bytes into the message
  /// (supporting partial-write resumption); returns how many were filled.
  /// Pointers stay valid while the list is alive and unmodified.
  std::size_t fill_iovecs(struct iovec* out, std::size_t max,
                          std::size_t skip) const noexcept;

 private:
  struct Segment {
    pardis::Bytes owned;        // empty for borrowed segments
    pardis::BytesView view;     // always set; points into owned or caller
  };

  std::vector<Segment> segs_;
  std::size_t total_ = 0;
};

/// A frame as it leaves a TCP stream: the 4-byte big-endian length prefix
/// followed by the gathered payload.  Built inside TcpStream::sendv; the
/// prefix lives in the WireMessage so it joins the same writev batch as
/// the first payload segment (one syscall for header + prologue + data).
struct WireMessage {
  std::uint8_t prefix[4] = {0, 0, 0, 0};
  const GatherList* payload = nullptr;

  void set_prefix(std::uint32_t frame_len) noexcept;
  std::size_t total_bytes() const noexcept;

  /// Same contract as GatherList::fill_iovecs, with the prefix as the
  /// leading pseudo-segment.
  std::size_t fill_iovecs(struct iovec* out, std::size_t max,
                          std::size_t skip) const noexcept;
};

}  // namespace pardis::io
