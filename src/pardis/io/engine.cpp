#include "pardis/io/engine.hpp"

#include <cstdlib>
#include <string>

#include "pardis/common/error.hpp"
#include "pardis/common/log.hpp"

namespace pardis::io {

const char* to_string(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kEpoll:
      return "epoll";
    case EngineKind::kUring:
      return "uring";
  }
  return "?";
}

EngineKind engine_kind_from_env() {
  const char* raw = std::getenv("PARDIS_IO_ENGINE");
  const std::string value = raw != nullptr ? raw : "";
  if (value.empty() || value == "epoll") return EngineKind::kEpoll;
  if (value == "uring") {
    if (uring_supported()) return EngineKind::kUring;
    PARDIS_LOG_WARN << "PARDIS_IO_ENGINE=uring requested but io_uring is "
                       "unavailable on this kernel/build; falling back to "
                       "epoll";
    return EngineKind::kEpoll;
  }
  throw BAD_PARAM("PARDIS_IO_ENGINE: expected 'epoll' or 'uring', got '" +
                  value + "'");
}

std::unique_ptr<Engine> make_engine(EngineKind kind) {
  if (kind == EngineKind::kUring) {
    auto engine = detail::make_uring_engine();
    if (engine == nullptr) {
      throw INTERNAL("io_uring engine requested but unsupported here");
    }
    return engine;
  }
  return detail::make_epoll_engine();
}

}  // namespace pardis::io
