#include "pardis/transport/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "pardis/common/config.hpp"
#include "pardis/common/error.hpp"
#include "pardis/common/log.hpp"

namespace pardis::transport {

namespace {

std::string errno_text(int err) {
  return std::string(std::strerror(err)) + " (errno " + std::to_string(err) +
         ")";
}

std::uint32_t decode_be32(const std::uint8_t* in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Waits for POLLOUT on a stalled socket; throws TIMEOUT on expiry.
void wait_writable(int fd, std::chrono::milliseconds stall_timeout,
                   const std::string& label) {
  struct pollfd p {};
  p.fd = fd;
  p.events = POLLOUT;
  const int rc = ::poll(&p, 1, static_cast<int>(stall_timeout.count()));
  if (rc == 0) {
    throw TIMEOUT("send stalled for " + std::to_string(stall_timeout.count()) +
                      "ms on " + label,
                  Completion::kMaybe);
  }
  // ready, error or EINTR: let the next write decide
}

/// Writes everything, waiting for POLLOUT on a full socket buffer.  Each
/// stall is bounded by `stall_timeout`; on expiry the frame is abandoned
/// mid-stream (Completion::kMaybe).
void write_all(int fd, const std::uint8_t* data, std::size_t size,
               std::chrono::milliseconds stall_timeout,
               const std::string& label) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n > 0) {
      data += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_writable(fd, stall_timeout, label);
      continue;
    }
    throw COMM_FAILURE("send failed on " + label + ": " + errno_text(errno),
                       Completion::kMaybe);
  }
}

/// Scatter-gather flavor of write_all: pushes the whole WireMessage
/// (length prefix + payload segments) through `writev`, resuming from the
/// written-bytes cursor after partial writes.  Feeds the tx instruments
/// (iovecs per syscall, bytes per syscall) when provided.
void writev_all(int fd, const io::WireMessage& msg,
                std::chrono::milliseconds stall_timeout,
                const std::string& label, obs::Histogram* iovec_batch,
                obs::Histogram* bytes_per_syscall) {
  constexpr std::size_t kMaxIov = 64;  // < IOV_MAX everywhere we run
  const std::size_t total = msg.total_bytes();
  std::size_t written = 0;
  while (written < total) {
    struct iovec iov[kMaxIov];
    const std::size_t n = msg.fill_iovecs(iov, kMaxIov, written);
    const ssize_t rc = ::writev(fd, iov, static_cast<int>(n));
    if (rc > 0) {
      written += static_cast<std::size_t>(rc);
      if (iovec_batch != nullptr) iovec_batch->add(static_cast<double>(n));
      if (bytes_per_syscall != nullptr) {
        bytes_per_syscall->add(static_cast<double>(rc));
      }
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_writable(fd, stall_timeout, label);
      continue;
    }
    throw COMM_FAILURE("send failed on " + label + ": " + errno_text(errno),
                       written == 0 ? Completion::kNo : Completion::kMaybe);
  }
}

/// Below this payload size the gather path is not worth the iovec setup:
/// prefix + segments are copied into one small stack buffer and written
/// with a single syscall — the documented short-message fallback copy.
constexpr std::size_t kShortFrameCopy = 512;

}  // namespace

std::size_t reactor_count_from_env() {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t fallback = std::min<std::size_t>(4, hw);
  const std::uint64_t n = env_u64("PARDIS_TCP_REACTORS", fallback);
  if (n == 0 || n > 1024) {
    throw BAD_PARAM("PARDIS_TCP_REACTORS must be in [1, 1024], got " +
                    std::to_string(n));
  }
  return static_cast<std::size_t>(n);
}

// ---- TcpStream -------------------------------------------------------------

TcpStream::TcpStream(int fd, std::string label, std::string origin,
                     Endpoint peer, TcpTransport* owner,
                     io::ReactorShard* shard)
    : fd_(fd),
      label_(std::move(label)),
      origin_(std::move(origin)),
      peer_(std::move(peer)),
      owner_(owner),
      shard_(shard) {}

TcpStream::~TcpStream() {
  shard_->remove(fd_);
  ::close(fd_);
}

void TcpStream::send(pardis::Bytes frame) {
  io::GatherList gl;
  gl.append(std::move(frame));
  send_wire(gl);
}

void TcpStream::sendv(io::GatherList&& frame) { send_wire(frame); }

void TcpStream::send_wire(const io::GatherList& frame) {
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    if (closed_) {
      throw COMM_FAILURE("send on closed connection", Completion::kNo);
    }
    if (peer_closed_) {
      throw COMM_FAILURE("send on connection closed by peer: " + label_,
                         Completion::kNo);
    }
  }
  const std::size_t payload = frame.total_bytes();
  io::WireMessage msg;
  msg.set_prefix(static_cast<std::uint32_t>(payload));
  msg.payload = &frame;
  {
    // tx_mu_ is a dedicated leaf (kTransportStreamTx): nothing is ever
    // acquired under it and recv never takes it, so holding it across the
    // socket write is exactly its job — serializing concurrent frame
    // writers so prefix+payload stay contiguous on the wire.
    std::lock_guard<common::RankedMutex> tx(tx_mu_);
    if (payload <= kShortFrameCopy) {
      // Short-message fallback: one copy beats an iovec walk for tiny
      // frames, and keeps prefix+payload in a single segment.
      std::uint8_t buf[sizeof(msg.prefix) + kShortFrameCopy];
      // pardis-lint: allow(staging-copy-in-tx: short-message fallback — copying <=512B into one stack buffer costs less than iovec setup; all larger sends take the gather path)
      std::memcpy(buf, msg.prefix, sizeof(msg.prefix));
      std::size_t off = sizeof(msg.prefix);
      for (std::size_t i = 0; i < frame.segment_count(); ++i) {
        const pardis::BytesView seg = frame.segment(i);
        // pardis-lint: allow(staging-copy-in-tx: short-message fallback — copying <=512B into one stack buffer costs less than iovec setup; all larger sends take the gather path)
        std::memcpy(buf + off, seg.data(), seg.size());
        off += seg.size();
      }
      // pardis-lint: allow(blocking-under-lock-transitive: tx_mu_ is the leaf transmit lock; serializing writers across the socket write is its purpose)
      write_all(fd_, buf, off, owner_->connect_timeout(), label_);
    } else {
      // pardis-lint: allow(blocking-under-lock-transitive: tx_mu_ is the leaf transmit lock; serializing writers across the socket write is its purpose)
      writev_all(fd_, msg, owner_->connect_timeout(), label_,
                 owner_->writev_batch_, owner_->bytes_per_syscall_);
    }
  }
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    counters_.frames_sent += 1;
    counters_.bytes_sent += payload;
  }
  if (owner_->agg_frames_ != nullptr) owner_->agg_frames_->add(1);
  if (owner_->agg_bytes_ != nullptr) owner_->agg_bytes_->add(payload);
}

std::optional<pardis::Bytes> TcpStream::recv() {
  std::unique_lock<common::RankedMutex> lock(mu_);
  const auto ready = [&] {
    return !queue_.empty() || closed_ || peer_closed_;
  };
  const auto timeout = owner_->recv_timeout();
  if (timeout.count() <= 0) {
    cv_.wait(lock, ready);
  } else if (!cv_.wait_for(lock, timeout, ready)) {
    throw TIMEOUT("recv timed out after " + std::to_string(timeout.count()) +
                  "ms on " + label_);
  }
  if (queue_.empty()) return std::nullopt;  // EOF
  pardis::Bytes frame = std::move(queue_.front());
  queue_.pop_front();
  return frame;
}

std::optional<pardis::Bytes> TcpStream::try_recv() {
  std::lock_guard<common::RankedMutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  pardis::Bytes frame = std::move(queue_.front());
  queue_.pop_front();
  return frame;
}

bool TcpStream::has_frame() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return !queue_.empty();
}

bool TcpStream::eof() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return (closed_ || peer_closed_) && queue_.empty();
}

void TcpStream::close() {
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  cv_.notify_all();
  // Both directions go down: our reactor shard sees EOF (deregistering the
  // fd) and the peer drains, then sees EOF.
  (void)::shutdown(fd_, SHUT_RDWR);
}

TcpStream::Counters TcpStream::counters() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return counters_;
}

void TcpStream::on_readable() {
  bool at_eof = false;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      rx_buf_.insert(rx_buf_.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      at_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    PARDIS_LOG_DEBUG << "tcp recv error on " << label_ << ": "
                     << errno_text(errno);
    at_eof = true;  // reset by peer etc.: deliver what we have, then EOF
    break;
  }
  deliver_frames();
  if (at_eof || rx_poisoned_) mark_peer_closed();
}

void TcpStream::deliver_frames() {
  std::vector<pardis::Bytes> ready;
  std::size_t pos = 0;
  while (!rx_poisoned_ && rx_buf_.size() - pos >= 4) {
    const std::uint32_t len = decode_be32(rx_buf_.data() + pos);
    if (len > owner_->max_frame()) {
      PARDIS_LOG_WARN << "tcp: dropping " << label_ << ": framed length "
                      << len << " exceeds PARDIS_TCP_MAX_FRAME";
      rx_poisoned_ = true;
      break;
    }
    if (rx_buf_.size() - pos - 4 < len) break;  // frame still in flight
    ready.emplace_back(rx_buf_.begin() + static_cast<std::ptrdiff_t>(pos + 4),
                       rx_buf_.begin() +
                           static_cast<std::ptrdiff_t>(pos + 4 + len));
    pos += 4 + len;
  }
  if (pos > 0) {
    rx_buf_.erase(rx_buf_.begin(),
                  rx_buf_.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  if (ready.empty()) return;
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    for (pardis::Bytes& frame : ready) {
      counters_.frames_received += 1;
      counters_.bytes_received += frame.size();
      queue_.push_back(std::move(frame));
    }
  }
  cv_.notify_all();
}

void TcpStream::mark_peer_closed() {
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    if (peer_closed_) return;
    peer_closed_ = true;
  }
  cv_.notify_all();
  // Keep the EOF'd fd out of the shard's interest set or level-triggered
  // engines would report it readable forever.  The fd itself stays open
  // until destruction.
  shard_->remove(fd_);
}

// ---- TcpListener -----------------------------------------------------------

TcpListener::TcpListener(int fd, Endpoint address, TcpTransport* owner,
                         io::ReactorShard* shard)
    : fd_(fd), address_(std::move(address)), owner_(owner), shard_(shard) {}

TcpListener::~TcpListener() {
  close();
  shard_->remove(fd_);
  ::close(fd_);
}

std::shared_ptr<Stream> TcpListener::accept() {
  std::unique_lock<common::RankedMutex> lock(mu_);
  cv_.wait(lock, [&] { return !pending_.empty() || closed_; });
  if (pending_.empty()) return nullptr;
  auto stream = std::move(pending_.front());
  pending_.pop_front();
  return stream;
}

std::shared_ptr<Stream> TcpListener::try_accept() {
  std::lock_guard<common::RankedMutex> lock(mu_);
  if (pending_.empty()) return nullptr;
  auto stream = std::move(pending_.front());
  pending_.pop_front();
  return stream;
}

void TcpListener::close() {
  std::deque<std::shared_ptr<Stream>> orphans;
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
    orphans.swap(pending_);
  }
  cv_.notify_all();
  // Stop watching: connection attempts may still complete in the kernel
  // backlog, but are never surfaced (the sim backend refuses them outright;
  // both satisfy "close() ends accepting").
  shard_->remove(fd_);
  for (auto& stream : orphans) stream->close();
}

void TcpListener::on_readable() {
  for (;;) {
    const int cfd =
        ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or the listener went down
    }
    set_nodelay(cfd);
    auto stream = owner_->adopt(
        cfd, address_.to_string() + " (accepted)", address_.host, Endpoint{});
    bool drop = false;
    {
      std::lock_guard<common::RankedMutex> lock(mu_);
      if (closed_) {
        drop = true;
      } else {
        pending_.push_back(stream);
      }
    }
    if (drop) {
      stream->close();
      continue;
    }
    cv_.notify_all();
  }
}

// ---- TcpTransport ----------------------------------------------------------

TcpTransport::TcpTransport(obs::Observability* obs)
    : obs_(obs),
      connect_timeout_(std::chrono::milliseconds(
          env_u64("PARDIS_TCP_CONNECT_TIMEOUT_MS", 10'000))),
      recv_timeout_(std::chrono::milliseconds(
          env_u64("PARDIS_TCP_RECV_TIMEOUT_MS", 0))),
      max_frame_(env_u64("PARDIS_TCP_MAX_FRAME", 1ull << 30)),
      bind_addr_(env_string("PARDIS_TCP_BIND_ADDR").value_or("127.0.0.1")),
      engine_kind_(io::engine_kind_from_env()),
      reactors_(reactor_count_from_env(), engine_kind_, obs, "tcp.reactor",
                kTransportPid) {
  if (const auto map = env_string("PARDIS_TCP_HOSTMAP")) {
    // "name=ip,name2=ip2"
    std::size_t start = 0;
    while (start < map->size()) {
      std::size_t end = map->find(',', start);
      if (end == std::string::npos) end = map->size();
      const std::string entry = map->substr(start, end - start);
      const std::size_t eq = entry.find('=');
      if (eq != std::string::npos && eq > 0) {
        hostmap_[entry.substr(0, eq)] = entry.substr(eq + 1);
      } else if (!entry.empty()) {
        throw BAD_PARAM("PARDIS_TCP_HOSTMAP: malformed entry '" + entry +
                        "' (expected name=ip)");
      }
      start = end + 1;
    }
  }
  if (obs_ != nullptr) {
    agg_frames_ = &obs_->metrics().counter("net.frames");
    agg_bytes_ = &obs_->metrics().counter("net.bytes");
    writev_batch_ = &obs_->metrics().histogram("tcp.writev.iovecs");
    bytes_per_syscall_ = &obs_->metrics().histogram("tcp.writev.bytes");
  }
  // A peer vanishing mid-write must surface as COMM_FAILURE from write(),
  // not kill the process.
  (void)std::signal(SIGPIPE, SIG_IGN);
}

TcpTransport::~TcpTransport() {
  // Pooled streams reference the reactor shards; drop them while they
  // still run (the base-class pool would otherwise outlive the members
  // below).
  clear_pool();
}

std::string TcpTransport::resolve(const std::string& host) const {
  struct in_addr probe {};
  if (::inet_aton(host.c_str(), &probe) != 0) return host;  // IPv4 literal
  const auto it = hostmap_.find(host);
  if (it != hostmap_.end()) return it->second;
  return "127.0.0.1";
}

std::shared_ptr<Listener> TcpTransport::listen(const std::string& host,
                                               int port) {
  if (host.empty()) {
    throw BAD_PARAM("listen: empty host name");
  }
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw COMM_FAILURE("socket failed: " + errno_text(errno));
  }
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_aton(bind_addr_.c_str(), &addr.sin_addr) == 0) {
    ::close(fd);
    throw BAD_PARAM("PARDIS_TCP_BIND_ADDR is not an IPv4 address: " +
                    bind_addr_);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    if (err == EADDRINUSE) {
      throw BAD_PARAM("listen: address already bound: " + host + ":" +
                      std::to_string(port));
    }
    throw COMM_FAILURE("bind failed: " + errno_text(err));
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const int err = errno;
    ::close(fd);
    throw COMM_FAILURE("listen failed: " + errno_text(err));
  }
  struct sockaddr_in bound {};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw INTERNAL("getsockname failed: " + errno_text(err));
  }
  io::ReactorShard& shard = reactors_.assign();
  auto listener = std::make_shared<TcpListener>(
      fd, Endpoint{host, static_cast<int>(ntohs(bound.sin_port))}, this,
      &shard);
  shard.add(fd, listener);
  if (metrics() != nullptr) metrics()->counter("tcp.listens").add();
  PARDIS_LOG_TRACE << "tcp listen " << host << " -> " << bind_addr_ << ":"
                   << ntohs(bound.sin_port);
  return listener;
}

std::shared_ptr<Stream> TcpTransport::connect(const std::string& from_host,
                                              const Endpoint& to) {
  const auto t0 = std::chrono::steady_clock::now();
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw COMM_FAILURE("socket failed: " + errno_text(errno));
  }
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(to.port));
  const std::string ip = resolve(to.host);
  if (::inet_aton(ip.c_str(), &addr.sin_addr) == 0) {
    ::close(fd);
    throw BAD_PARAM("cannot resolve host '" + to.host + "' (mapped to '" +
                    ip + "'); set PARDIS_TCP_HOSTMAP");
  }
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    struct pollfd p {};
    p.fd = fd;
    p.events = POLLOUT;
    const int ready =
        ::poll(&p, 1, static_cast<int>(connect_timeout_.count()));
    if (ready == 0) {
      ::close(fd);
      throw TIMEOUT("connect to " + to.to_string() + " timed out after " +
                    std::to_string(connect_timeout_.count()) + "ms");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    (void)::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    errno = err;
    rc = err == 0 ? 0 : -1;
  }
  if (rc != 0) {
    const int err = errno;
    ::close(fd);
    throw COMM_FAILURE("connection refused: no listener at " +
                       to.to_string() + " (" + ip + ": " + errno_text(err) +
                       ")");
  }
  set_nodelay(fd);
  if (obs_ != nullptr) {
    obs_->metrics().counter("tcp.connects").add();
    obs_->metrics()
        .histogram("tcp.connect_ms")
        .add(std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count());
  }
  PARDIS_LOG_TRACE << "tcp connect " << from_host << " -> " << to.to_string()
                   << " (" << ip << ")";
  return adopt(fd, from_host + "->" + to.to_string(), from_host, to);
}

std::shared_ptr<TcpStream> TcpTransport::adopt(int fd, std::string label,
                                               std::string origin,
                                               Endpoint peer) {
  io::ReactorShard& shard = reactors_.assign();
  auto stream =
      std::make_shared<TcpStream>(fd, std::move(label), std::move(origin),
                                  std::move(peer), this, &shard);
  shard.add(fd, stream);
  return stream;
}

void TcpTransport::collect_metrics() {
  if (metrics() == nullptr) return;
  // Per-shard gauges plus the pre-sharding aggregate name, so dashboards
  // keyed on tcp.reactor.fds keep working with any shard count.
  std::size_t total = 0;
  for (std::size_t i = 0; i < reactors_.size(); ++i) {
    const std::size_t watched = reactors_.shard(i).watched();
    total += watched;
    metrics()
        ->gauge("tcp.reactor." + std::to_string(i) + ".fds")
        .set(static_cast<std::int64_t>(watched));
  }
  metrics()->gauge("tcp.reactor.fds").set(static_cast<std::int64_t>(total));
  metrics()
      ->gauge("tcp.reactor.shards")
      .set(static_cast<std::int64_t>(reactors_.size()));
}

}  // namespace pardis::transport
