#include "pardis/transport/transport.hpp"

#include <utility>
#include <vector>

#include "pardis/common/config.hpp"
#include "pardis/common/error.hpp"
#include "pardis/transport/sim_transport.hpp"
#include "pardis/transport/tcp_transport.hpp"

namespace pardis::transport {

const char* to_string(Kind kind) noexcept {
  switch (kind) {
    case Kind::kSim: return "sim";
    case Kind::kTcp: return "tcp";
  }
  return "<unknown transport>";
}

Kind parse_kind(const std::string& value) {
  if (value == "sim") return Kind::kSim;
  if (value == "tcp") return Kind::kTcp;
  throw BAD_PARAM("unknown transport '" + value + "' (expected sim or tcp)");
}

Kind kind_from_env(Kind fallback) {
  const auto value = env_string("PARDIS_TRANSPORT");
  if (!value || value->empty()) return fallback;
  return parse_kind(*value);
}

pardis::Bytes Stream::recv_or_throw() {
  auto frame = recv();
  if (!frame) {
    throw COMM_FAILURE("connection closed by peer: " + label(),
                       Completion::kMaybe);
  }
  return std::move(*frame);
}

Transport::Transport()
    : pool_enabled_(env_bool("PARDIS_TRANSPORT_POOL", true)),
      pool_cap_(env_u64("PARDIS_TRANSPORT_POOL_CAP", 8)) {}

std::shared_ptr<Stream> Transport::acquire(const std::string& from_host,
                                           const Endpoint& to, bool* reused) {
  if (reused != nullptr) *reused = false;
  if (pool_enabled_) {
    std::shared_ptr<Stream> pooled;
    // Streams evicted under the pool lock are destroyed only after it is
    // released: tearing one down reaches the backend (reactor
    // deregistration, rank 22), which must not nest inside kTransportPool.
    std::vector<std::shared_ptr<Stream>> dead;
    {
      std::lock_guard<common::RankedMutex> lock(pool_mu_);
      auto it = pool_.find({from_host, to});
      if (it != pool_.end()) {
        // Drop streams that died while idle (peer closed, process exited).
        while (!it->second.empty() && it->second.front()->eof()) {
          dead.push_back(std::move(it->second.front()));
          it->second.pop_front();
        }
        if (!it->second.empty()) {
          pooled = std::move(it->second.front());
          it->second.pop_front();
        }
        if (it->second.empty()) pool_.erase(it);
      }
    }
    for (auto& stream : dead) stream->close();
    if (pooled) {
      if (reused != nullptr) *reused = true;
      if (metrics_ != nullptr) metrics_->counter("transport.pool.hits").add();
      return pooled;
    }
  }
  if (metrics_ != nullptr) metrics_->counter("transport.pool.misses").add();
  return connect(from_host, to);
}

void Transport::release(std::shared_ptr<Stream> stream) {
  if (!stream) return;
  if (!pool_enabled_ || stream->eof() || stream->peer() == Endpoint{}) {
    stream->close();
    return;
  }
  {
    std::lock_guard<common::RankedMutex> lock(pool_mu_);
    auto& idle = pool_[{stream->origin(), stream->peer()}];
    if (idle.size() < pool_cap_) {
      idle.push_back(std::move(stream));
      return;
    }
  }
  // Over-cap: close outside the pool lock (see acquire()).
  stream->close();
}

void Transport::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
}

void Transport::clear_pool() {
  std::vector<std::shared_ptr<Stream>> drained;
  {
    std::lock_guard<common::RankedMutex> lock(pool_mu_);
    for (auto& [key, idle] : pool_) {
      for (auto& stream : idle) drained.push_back(std::move(stream));
    }
    pool_.clear();
  }
  for (auto& stream : drained) stream->close();
}

std::unique_ptr<Transport> make_transport(Kind kind, net::Fabric& fabric,
                                          obs::Observability* obs) {
  std::unique_ptr<Transport> transport;
  switch (kind) {
    case Kind::kSim:
      transport = std::make_unique<SimTransport>(fabric);
      break;
    case Kind::kTcp:
      transport = std::make_unique<TcpTransport>(obs);
      break;
  }
  if (!transport) {
    throw BAD_PARAM("make_transport: unknown transport kind");
  }
  if (obs != nullptr) transport->set_metrics(&obs->metrics());
  return transport;
}

}  // namespace pardis::transport
