#include "pardis/transport/sim_transport.hpp"

namespace pardis::transport {

std::shared_ptr<Stream> SimListener::wrap(
    std::shared_ptr<net::Connection> conn) const {
  if (!conn) return nullptr;
  // The fabric does not expose the connecting host; accepted streams carry
  // the listener's host as origin and no pool key (they are never pooled).
  return std::make_shared<SimStream>(std::move(conn),
                                     acceptor_->address().host, Endpoint{});
}

std::shared_ptr<Stream> SimListener::accept() {
  return wrap(acceptor_->accept());
}

std::shared_ptr<Stream> SimListener::try_accept() {
  return wrap(acceptor_->try_accept());
}

std::shared_ptr<Listener> SimTransport::listen(const std::string& host,
                                               int port) {
  return std::make_shared<SimListener>(fabric_->listen(host, port));
}

std::shared_ptr<Stream> SimTransport::connect(const std::string& from_host,
                                              const Endpoint& to) {
  return std::make_shared<SimStream>(fabric_->connect(from_host, to),
                                     from_host, to);
}

}  // namespace pardis::transport
