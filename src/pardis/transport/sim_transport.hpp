// Simulated-fabric transport backend: a thin adapter over net::Fabric.
//
// Streams wrap net::Connection (whose Pipe pair already implements the
// framed contract, including link-model pacing), listeners wrap
// net::Acceptor.  The fabric itself stays owned by the Orb so link
// configuration (Fabric::set_link) keeps working regardless of backend.

#pragma once

#include <memory>
#include <string>

#include "pardis/transport/transport.hpp"

namespace pardis::transport {

class SimStream final : public Stream {
 public:
  SimStream(std::shared_ptr<net::Connection> conn, std::string origin,
            Endpoint peer)
      : conn_(std::move(conn)),
        origin_(std::move(origin)),
        peer_(std::move(peer)) {}

  void send(pardis::Bytes frame) override { conn_->send(std::move(frame)); }
  std::optional<pardis::Bytes> recv() override { return conn_->recv(); }
  std::optional<pardis::Bytes> try_recv() override {
    return conn_->try_recv();
  }
  bool has_frame() const override { return conn_->has_frame(); }
  bool eof() const override { return conn_->eof(); }
  void close() override { conn_->close(); }
  const std::string& label() const noexcept override {
    return conn_->label();
  }
  const std::string& origin() const noexcept override { return origin_; }
  const Endpoint& peer() const noexcept override { return peer_; }
  Counters counters() const override { return conn_->counters(); }

  /// The wrapped simulated connection (tests reach through for
  /// fabric-level assertions).
  const std::shared_ptr<net::Connection>& connection() const noexcept {
    return conn_;
  }

 private:
  std::shared_ptr<net::Connection> conn_;
  std::string origin_;
  Endpoint peer_;
};

class SimListener final : public Listener {
 public:
  explicit SimListener(std::shared_ptr<net::Acceptor> acceptor)
      : acceptor_(std::move(acceptor)) {}

  const Endpoint& address() const noexcept override {
    return acceptor_->address();
  }
  std::shared_ptr<Stream> accept() override;
  std::shared_ptr<Stream> try_accept() override;
  void close() override { acceptor_->close(); }

 private:
  std::shared_ptr<Stream> wrap(std::shared_ptr<net::Connection> conn) const;

  std::shared_ptr<net::Acceptor> acceptor_;
};

class SimTransport final : public Transport {
 public:
  explicit SimTransport(net::Fabric& fabric) : fabric_(&fabric) {}

  Kind kind() const noexcept override { return Kind::kSim; }
  std::shared_ptr<Listener> listen(const std::string& host,
                                   int port = 0) override;
  std::shared_ptr<Stream> connect(const std::string& from_host,
                                  const Endpoint& to) override;
  void collect_metrics() override { fabric_->collect_metrics(); }

 private:
  net::Fabric* fabric_;
};

}  // namespace pardis::transport
