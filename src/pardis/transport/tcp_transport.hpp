// Real-sockets transport backend: POSIX TCP with an epoll reactor.
//
// Wire format: each frame travels as a 4-byte big-endian payload length
// followed by the payload bytes (the ORB's own "PDIS" prologue stays inside
// the payload, untouched).  One reactor thread per TcpTransport owns every
// socket's read side: it drains readable fds into per-stream reassembly
// buffers, parses complete frames and hands them to the stream's queue,
// where recv() blocks exactly like the simulated backend.  Writes happen on
// the caller's thread (each PARDIS stream has a single protocol writer) via
// a nonblocking write/poll loop serialized by a per-stream tx mutex.
//
// Logical host names are resolved to IPs as follows: IPv4 literals pass
// through; otherwise PARDIS_TCP_HOSTMAP ("name=ip,name2=ip2") is consulted;
// unmapped names fall back to 127.0.0.1, which makes the existing
// two-named-hosts scenarios run over real loopback sockets unchanged.
//
// Knobs (docs/transport.md): PARDIS_TCP_CONNECT_TIMEOUT_MS (default
// 10000), PARDIS_TCP_RECV_TIMEOUT_MS (0 = block forever),
// PARDIS_TCP_MAX_FRAME (default 1g), PARDIS_TCP_BIND_ADDR (default
// 127.0.0.1).  Timeouts surface as pardis::TIMEOUT; refused/reset
// connections as pardis::COMM_FAILURE.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "pardis/obs/trace.hpp"
#include "pardis/transport/transport.hpp"

namespace pardis::transport {

/// Trace pid of the reactor thread's spans (client = 1, server = 2).
inline constexpr std::uint32_t kTransportPid = 3;

class TcpTransport;

namespace tcpdetail {

/// Implemented by everything the reactor watches (streams, listeners).
class FdHandler {
 public:
  virtual ~FdHandler() = default;
  /// Called on the reactor thread while the fd is readable; must consume
  /// until EAGAIN (the reactor polls level-triggered but re-arms nothing).
  virtual void on_readable() = 0;
};

/// The nonblocking read-side event loop: one thread, one epoll set.
/// Handlers are held weakly — an fd's owner removes itself (remove() is
/// epoll_ctl + map erase, safe from any thread) before closing the fd.
class Reactor {
 public:
  explicit Reactor(obs::Observability* obs);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  void add(int fd, const std::shared_ptr<FdHandler>& handler);
  void remove(int fd);

  /// Watched fds right now (reactor gauge).
  std::size_t watched() const;

 private:
  void run();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: wakes run() for shutdown
  std::atomic<bool> stop_{false};
  mutable common::RankedMutex mu_{common::LockRank::kTransportReactor};
  std::map<int, std::weak_ptr<FdHandler>> handlers_;
  obs::Observability* obs_;
  std::thread thread_;
};

}  // namespace tcpdetail

class TcpStream final : public Stream, public tcpdetail::FdHandler {
 public:
  /// Takes ownership of connected nonblocking `fd` and registers with the
  /// owning transport's reactor (via TcpTransport::adopt, the only caller).
  TcpStream(int fd, std::string label, std::string origin, Endpoint peer,
            TcpTransport* owner);
  ~TcpStream() override;

  void send(pardis::Bytes frame) override;
  std::optional<pardis::Bytes> recv() override;
  std::optional<pardis::Bytes> try_recv() override;
  bool has_frame() const override;
  bool eof() const override;
  void close() override;
  const std::string& label() const noexcept override { return label_; }
  const std::string& origin() const noexcept override { return origin_; }
  const Endpoint& peer() const noexcept override { return peer_; }
  Counters counters() const override;

  void on_readable() override;

 private:
  friend class TcpTransport;

  /// Appends parsed frames from rx_buf_ to the queue; reactor thread only.
  void deliver_frames();
  void mark_peer_closed();

  int fd_;
  std::string label_;
  std::string origin_;
  Endpoint peer_;
  TcpTransport* owner_;

  // Read-side reassembly state, touched only by the reactor thread.
  pardis::Bytes rx_buf_;
  bool rx_poisoned_ = false;  // oversized/garbled frame: stop parsing

  // Writer serialization (kTransportStreamTx < kTransportStream so a
  // failing write may flip the state below while holding tx_mu_).
  mutable common::RankedMutex tx_mu_{common::LockRank::kTransportStreamTx};

  mutable common::RankedMutex mu_{common::LockRank::kTransportStream};
  std::condition_variable_any cv_;
  std::deque<pardis::Bytes> queue_;
  bool closed_ = false;       // local close()
  bool peer_closed_ = false;  // read side saw EOF / error / reset
  Counters counters_{};
};

class TcpListener final : public Listener, public tcpdetail::FdHandler {
 public:
  TcpListener(int fd, Endpoint address, TcpTransport* owner);
  ~TcpListener() override;

  const Endpoint& address() const noexcept override { return address_; }
  std::shared_ptr<Stream> accept() override;
  std::shared_ptr<Stream> try_accept() override;
  void close() override;

  void on_readable() override;

 private:
  int fd_;
  Endpoint address_;
  TcpTransport* owner_;
  mutable common::RankedMutex mu_{common::LockRank::kTransportListener};
  std::condition_variable_any cv_;
  std::deque<std::shared_ptr<Stream>> pending_;
  bool closed_ = false;
};

class TcpTransport final : public Transport {
 public:
  /// `obs` (nullable) feeds reactor spans and connect-latency metrics; it
  /// must outlive the transport.
  explicit TcpTransport(obs::Observability* obs);
  ~TcpTransport() override;

  Kind kind() const noexcept override { return Kind::kTcp; }
  std::shared_ptr<Listener> listen(const std::string& host,
                                   int port = 0) override;
  std::shared_ptr<Stream> connect(const std::string& from_host,
                                  const Endpoint& to) override;
  void collect_metrics() override;

  std::chrono::milliseconds connect_timeout() const noexcept {
    return connect_timeout_;
  }
  std::chrono::milliseconds recv_timeout() const noexcept {
    return recv_timeout_;
  }
  std::size_t max_frame() const noexcept { return max_frame_; }

  /// Maps a logical host name to an IPv4 address (header comment).
  std::string resolve(const std::string& host) const;

 private:
  friend class TcpStream;
  friend class TcpListener;

  /// Wraps a connected nonblocking fd and registers it with the reactor.
  std::shared_ptr<TcpStream> adopt(int fd, std::string label,
                                   std::string origin, Endpoint peer);

  tcpdetail::Reactor& reactor() noexcept { return reactor_; }

  obs::Observability* obs_;
  std::chrono::milliseconds connect_timeout_;
  std::chrono::milliseconds recv_timeout_;
  std::size_t max_frame_;
  std::string bind_addr_;
  std::map<std::string, std::string> hostmap_;  // logical name -> IP
  /// Fabric-wide aggregate traffic counters (same names the sim feeds).
  obs::Counter* agg_frames_ = nullptr;
  obs::Counter* agg_bytes_ = nullptr;
  tcpdetail::Reactor reactor_;
};

}  // namespace pardis::transport
