// Real-sockets transport backend: POSIX TCP over sharded reactors.
//
// Wire format: each frame travels as a 4-byte big-endian payload length
// followed by the payload bytes (the ORB's own "PDIS" prologue stays inside
// the payload, untouched).  Read side: an io::ReactorPool of
// PARDIS_TCP_REACTORS shard threads (default min(4, hw cores)), each
// owning an io::Engine (epoll by default, io_uring via
// PARDIS_IO_ENGINE=uring) and the fds assigned to it round-robin at
// accept/connect time.  A shard drains readable fds into per-stream
// reassembly buffers, parses complete frames and hands them to the
// stream's queue, where recv() blocks exactly like the simulated backend.
// Writes happen on the caller's thread (each PARDIS stream has a single
// protocol writer) via a nonblocking writev/poll loop serialized by a
// per-stream tx mutex: the length prefix and the frame's gather segments
// go out in one scatter-gather syscall (io::WireMessage), with a
// single-buffer fallback for short frames.
//
// Logical host names are resolved to IPs as follows: IPv4 literals pass
// through; otherwise PARDIS_TCP_HOSTMAP ("name=ip,name2=ip2") is consulted;
// unmapped names fall back to 127.0.0.1, which makes the existing
// two-named-hosts scenarios run over real loopback sockets unchanged.
//
// Knobs (docs/transport.md): PARDIS_TCP_CONNECT_TIMEOUT_MS (default
// 10000), PARDIS_TCP_RECV_TIMEOUT_MS (0 = block forever),
// PARDIS_TCP_MAX_FRAME (default 1g), PARDIS_TCP_BIND_ADDR (default
// 127.0.0.1), PARDIS_TCP_REACTORS (shards, default min(4, hw cores)),
// PARDIS_IO_ENGINE (epoll | uring; uring falls back to epoll when
// unsupported).  Timeouts surface as pardis::TIMEOUT; refused/reset
// connections as pardis::COMM_FAILURE.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "pardis/io/reactor.hpp"
#include "pardis/obs/trace.hpp"
#include "pardis/transport/transport.hpp"

namespace pardis::transport {

/// Trace pid of the reactor shard threads' spans (client = 1, server = 2);
/// the span tid is the shard index.
inline constexpr std::uint32_t kTransportPid = 3;

class TcpTransport;

/// Reactor shard count from PARDIS_TCP_REACTORS; unset → min(4, hw
/// cores), floor 1.  Throws pardis::BAD_PARAM on a non-positive or
/// unparsable value.
std::size_t reactor_count_from_env();

class TcpStream final : public Stream, public io::FdHandler {
 public:
  /// Takes ownership of connected nonblocking `fd` and registers with the
  /// given reactor shard (via TcpTransport::adopt, the only caller).
  TcpStream(int fd, std::string label, std::string origin, Endpoint peer,
            TcpTransport* owner, io::ReactorShard* shard);
  ~TcpStream() override;

  void send(pardis::Bytes frame) override;
  void sendv(io::GatherList&& frame) override;
  std::optional<pardis::Bytes> recv() override;
  std::optional<pardis::Bytes> try_recv() override;
  bool has_frame() const override;
  bool eof() const override;
  void close() override;
  const std::string& label() const noexcept override { return label_; }
  const std::string& origin() const noexcept override { return origin_; }
  const Endpoint& peer() const noexcept override { return peer_; }
  Counters counters() const override;

  void on_readable() override;

 private:
  friend class TcpTransport;

  /// Common tx path: prefix + gather segments via writev (or one write
  /// for short frames), under tx_mu_.
  void send_wire(const io::GatherList& frame);

  /// Appends parsed frames from rx_buf_ to the queue; shard thread only.
  void deliver_frames();
  void mark_peer_closed();

  int fd_;
  std::string label_;
  std::string origin_;
  Endpoint peer_;
  TcpTransport* owner_;
  io::ReactorShard* shard_;

  // Read-side reassembly state, touched only by the owning shard thread.
  pardis::Bytes rx_buf_;
  bool rx_poisoned_ = false;  // oversized/garbled frame: stop parsing

  // Writer serialization (kTransportStreamTx < kTransportStream so a
  // failing write may flip the state below while holding tx_mu_).
  mutable common::RankedMutex tx_mu_{common::LockRank::kTransportStreamTx};

  mutable common::RankedMutex mu_{common::LockRank::kTransportStream};
  std::condition_variable_any cv_;
  std::deque<pardis::Bytes> queue_;
  bool closed_ = false;       // local close()
  bool peer_closed_ = false;  // read side saw EOF / error / reset
  Counters counters_{};
};

class TcpListener final : public Listener, public io::FdHandler {
 public:
  TcpListener(int fd, Endpoint address, TcpTransport* owner,
              io::ReactorShard* shard);
  ~TcpListener() override;

  const Endpoint& address() const noexcept override { return address_; }
  std::shared_ptr<Stream> accept() override;
  std::shared_ptr<Stream> try_accept() override;
  void close() override;

  void on_readable() override;

 private:
  int fd_;
  Endpoint address_;
  TcpTransport* owner_;
  io::ReactorShard* shard_;
  mutable common::RankedMutex mu_{common::LockRank::kTransportListener};
  std::condition_variable_any cv_;
  std::deque<std::shared_ptr<Stream>> pending_;
  bool closed_ = false;
};

class TcpTransport final : public Transport {
 public:
  /// `obs` (nullable) feeds reactor spans and connect-latency metrics; it
  /// must outlive the transport.
  explicit TcpTransport(obs::Observability* obs);
  ~TcpTransport() override;

  Kind kind() const noexcept override { return Kind::kTcp; }
  std::shared_ptr<Listener> listen(const std::string& host,
                                   int port = 0) override;
  std::shared_ptr<Stream> connect(const std::string& from_host,
                                  const Endpoint& to) override;
  void collect_metrics() override;

  std::chrono::milliseconds connect_timeout() const noexcept {
    return connect_timeout_;
  }
  std::chrono::milliseconds recv_timeout() const noexcept {
    return recv_timeout_;
  }
  std::size_t max_frame() const noexcept { return max_frame_; }
  std::size_t reactor_shards() const noexcept { return reactors_.size(); }
  io::EngineKind engine_kind() const noexcept { return engine_kind_; }

  /// Maps a logical host name to an IPv4 address (header comment).
  std::string resolve(const std::string& host) const;

 private:
  friend class TcpStream;
  friend class TcpListener;

  /// Wraps a connected nonblocking fd and registers it with the next
  /// reactor shard (round-robin).
  std::shared_ptr<TcpStream> adopt(int fd, std::string label,
                                   std::string origin, Endpoint peer);

  io::ReactorPool& reactors() noexcept { return reactors_; }

  obs::Observability* obs_;
  std::chrono::milliseconds connect_timeout_;
  std::chrono::milliseconds recv_timeout_;
  std::size_t max_frame_;
  std::string bind_addr_;
  std::map<std::string, std::string> hostmap_;  // logical name -> IP
  io::EngineKind engine_kind_;
  /// Fabric-wide aggregate traffic counters (same names the sim feeds).
  obs::Counter* agg_frames_ = nullptr;
  obs::Counter* agg_bytes_ = nullptr;
  /// Tx-path instruments: iovecs per writev and payload bytes per syscall.
  obs::Histogram* writev_batch_ = nullptr;
  obs::Histogram* bytes_per_syscall_ = nullptr;
  io::ReactorPool reactors_;
};

}  // namespace pardis::transport
