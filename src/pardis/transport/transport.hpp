// Backend-neutral transport layer.
//
// The transfer layer speaks to the wire through three abstractions with the
// same framed, full-duplex semantics as net::Connection:
//
//   * Stream   — one endpoint of a framed byte stream (send / recv /
//     try_recv / has_frame / eof / close, plus traffic counters);
//   * Listener — a bound (host, port) accepting Streams;
//   * Endpoint — the (host, port) address of a Listener (net::Address).
//
// Two backends implement the contract:
//
//   * SimTransport (sim_transport.hpp) adapts the in-process simulated
//     net::Fabric — the default, keeping tier-1 tests deterministic and the
//     paper's link model in charge of wire time;
//   * TcpTransport (tcp_transport.hpp) speaks real POSIX TCP with sharded
//     nonblocking reactor threads (io::ReactorPool over epoll or io_uring)
//     and 4-byte length-prefixed framing.
//
// The backend is selected per Orb via OrbConfig::transport, defaulting to
// the PARDIS_TRANSPORT environment variable (sim | tcp).
//
// Stream contract (asserted for both backends in test_net.cpp):
//   - recv() blocks for the next frame; after the peer closed, it drains
//     every queued frame and then returns nullopt (EOF);
//   - send() after close() — local or peer — fails loudly with
//     pardis::COMM_FAILURE (over real TCP a send after a *peer* close may
//     succeed into the socket buffer once before the reset is observed);
//   - close() is idempotent and closes both directions;
//   - eof() is true once the stream is closed *and* drained.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "pardis/common/bytes.hpp"
#include "pardis/common/ranked_mutex.hpp"
#include "pardis/io/gather.hpp"
#include "pardis/net/fabric.hpp"
#include "pardis/obs/observability.hpp"

namespace pardis::transport {

/// Transport addresses are fabric addresses: a logical host name plus a
/// port.  The TCP backend maps logical hosts to IPs (see resolve rules in
/// docs/transport.md); the sim backend uses them verbatim.
using Endpoint = net::Address;

enum class Kind : std::uint8_t {
  kSim = 0,  // in-process simulated fabric (default)
  kTcp = 1,  // real POSIX TCP over an epoll reactor
};

const char* to_string(Kind kind) noexcept;

/// Parses a PARDIS_TRANSPORT-style value ("sim" | "tcp"); throws
/// pardis::BAD_PARAM on anything else.
Kind parse_kind(const std::string& value);

/// Backend selected by the PARDIS_TRANSPORT environment variable, or
/// `fallback` when unset.
Kind kind_from_env(Kind fallback = Kind::kSim);

/// One endpoint of a framed, full-duplex byte stream (see the contract in
/// the header comment).  Method names and semantics mirror net::Connection
/// so the transfer layer is backend-agnostic.
class Stream {
 public:
  virtual ~Stream() = default;

  /// Sends one frame.  Throws pardis::COMM_FAILURE when the stream is
  /// closed (kNo before any bytes moved, kMaybe afterwards).
  virtual void send(pardis::Bytes frame) = 0;

  /// Sends one frame assembled as a gather list (io::GatherList) — the
  /// zero-copy tx path.  Semantics are identical to send(); the send is
  /// synchronous, so borrowed segments only need to outlive the call (the
  /// lifetime contract in pardis/io/gather.hpp).  The default flattens
  /// into one buffer and delegates to send(); the TCP backend overrides
  /// this with a writev scatter-gather path.
  virtual void sendv(io::GatherList&& frame) {
    send(std::move(frame).flatten());
  }

  /// Blocks for the next frame; nullopt on EOF (closed and drained).  The
  /// TCP backend throws pardis::TIMEOUT when PARDIS_TCP_RECV_TIMEOUT_MS
  /// elapses first.
  virtual std::optional<pardis::Bytes> recv() = 0;

  /// Like recv() but throws pardis::COMM_FAILURE on EOF.
  pardis::Bytes recv_or_throw();

  /// Non-blocking receive; drains queued frames even after close.
  virtual std::optional<pardis::Bytes> try_recv() = 0;

  /// True iff a frame is queued (the ORB's work_pending probe).
  virtual bool has_frame() const = 0;

  /// True once the stream is closed (either side) and drained: recv()
  /// would report EOF without blocking.
  virtual bool eof() const = 0;

  /// Closes both directions; idempotent.  The peer drains queued frames
  /// and then sees EOF; subsequent local sends fail loudly.
  virtual void close() = 0;

  /// Diagnostic label ("clienthost->serverhost:7001").
  virtual const std::string& label() const noexcept = 0;

  /// Host this stream was opened from (connect side) or accepted on
  /// (listener side); half of the connection-pool key.
  virtual const std::string& origin() const noexcept = 0;

  /// Listener address this stream was connected to; the other half of the
  /// pool key.  Default-constructed for accepted streams.
  virtual const Endpoint& peer() const noexcept = 0;

  /// Per-stream traffic counters, from this endpoint's perspective.
  using Counters = net::Connection::Counters;
  virtual Counters counters() const = 0;
};

/// Server-side listener; accept() yields the peer endpoint of each stream
/// established to address().
class Listener {
 public:
  virtual ~Listener() = default;

  virtual const Endpoint& address() const noexcept = 0;

  /// Blocks until a stream arrives; nullptr after close().
  virtual std::shared_ptr<Stream> accept() = 0;

  /// Non-blocking accept.
  virtual std::shared_ptr<Stream> try_accept() = 0;

  /// Stops listening; pending and future accept() calls return nullptr.
  virtual void close() = 0;
};

/// A transport backend: listen/connect plus an idle-stream pool keyed by
/// (origin host, endpoint).  One instance per Orb.
class Transport {
 public:
  Transport();
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual Kind kind() const noexcept = 0;

  /// Starts listening on (host, port); port 0 picks an ephemeral port.
  /// Throws pardis::BAD_PARAM if the address is already bound.
  virtual std::shared_ptr<Listener> listen(const std::string& host,
                                           int port = 0) = 0;

  /// Opens a fresh stream from `from_host` to the listener at `to`.
  /// Throws pardis::COMM_FAILURE when nothing is listening there and
  /// pardis::TIMEOUT when the TCP connect timeout elapses.
  virtual std::shared_ptr<Stream> connect(const std::string& from_host,
                                          const Endpoint& to) = 0;

  /// Like connect(), but reuses an idle pooled stream to the same endpoint
  /// when one is available (kUnbind protocol, docs/transport.md).  Sets
  /// `*reused` so callers can retry on a stale pooled stream.
  std::shared_ptr<Stream> acquire(const std::string& from_host,
                                  const Endpoint& to, bool* reused = nullptr);

  /// Returns a healthy stream to the idle pool for acquire() to reuse;
  /// closed/eof streams (and everything beyond the per-endpoint cap) are
  /// dropped.  Pooling is disabled entirely by PARDIS_TRANSPORT_POOL=0.
  void release(std::shared_ptr<Stream> stream);

  /// Registry receiving aggregate counters; owned by the Orb, must outlive
  /// the transport.  Null disables registry feeding.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Publishes backend gauges into the registry; call at dump points.
  virtual void collect_metrics() {}

 protected:
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }

  /// Closes and drops every pooled stream.  Backends whose streams
  /// reference backend state (the TCP reactor) must call this in their own
  /// destructor, before that state is torn down.
  void clear_pool();

 private:
  obs::MetricsRegistry* metrics_ = nullptr;
  mutable common::RankedMutex pool_mu_{common::LockRank::kTransportPool};
  std::map<std::pair<std::string, Endpoint>,
           std::deque<std::shared_ptr<Stream>>>
      pool_;
  bool pool_enabled_ = true;
  std::size_t pool_cap_ = 8;  // idle streams kept per (origin, endpoint)
};

/// Constructs the backend for `kind`.  The sim backend adapts `fabric`
/// (owned by the Orb); the TCP backend ignores it.  `obs` (nullable) feeds
/// the backend's metrics and the TCP reactor's spans.
std::unique_ptr<Transport> make_transport(Kind kind, net::Fabric& fabric,
                                          obs::Observability* obs);

}  // namespace pardis::transport
