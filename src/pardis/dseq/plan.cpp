#include "pardis/dseq/plan.hpp"

#include <algorithm>

#include "pardis/common/error.hpp"

namespace pardis::dseq {

RedistributionPlan::RedistributionPlan(const DistTempl& src,
                                       const DistTempl& dst)
    : src_(src), dst_(dst) {
  if (src.length() != dst.length()) {
    throw BAD_PARAM("RedistributionPlan: source and destination lengths differ");
  }
  // March both partitions in parallel over the global index space; each step
  // emits the overlap of the current source and destination intervals.
  int s = 0;
  int d = 0;
  std::uint64_t pos = 0;
  const std::uint64_t total = src.length();
  while (pos < total) {
    while (s < src.nranks() && src.offset(s) + src.count(s) <= pos) ++s;
    while (d < dst.nranks() && dst.offset(d) + dst.count(d) <= pos) ++d;
    const std::uint64_t src_end = src.offset(s) + src.count(s);
    const std::uint64_t dst_end = dst.offset(d) + dst.count(d);
    const std::uint64_t end = std::min(src_end, dst_end);
    segments_.push_back(Segment{
        .src_rank = s,
        .dst_rank = d,
        .src_offset = pos - src.offset(s),
        .dst_offset = pos - dst.offset(d),
        .count = end - pos,
    });
    pos = end;
  }
}

std::vector<Segment> RedistributionPlan::outgoing(int src_rank) const {
  std::vector<Segment> out;
  std::copy_if(segments_.begin(), segments_.end(), std::back_inserter(out),
               [&](const Segment& s) { return s.src_rank == src_rank; });
  return out;
}

std::vector<Segment> RedistributionPlan::incoming(int dst_rank) const {
  std::vector<Segment> in;
  std::copy_if(segments_.begin(), segments_.end(), std::back_inserter(in),
               [&](const Segment& s) { return s.dst_rank == dst_rank; });
  return in;
}

std::uint64_t RedistributionPlan::incoming_count(int dst_rank) const {
  std::uint64_t total = 0;
  for (const Segment& s : segments_) {
    if (s.dst_rank == dst_rank) total += s.count;
  }
  return total;
}

}  // namespace pardis::dseq
