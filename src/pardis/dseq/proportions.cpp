#include "pardis/dseq/proportions.hpp"

#include <algorithm>
#include <numeric>

#include "pardis/common/error.hpp"

namespace pardis::dseq {

Proportions::Proportions(std::vector<double> weights)
    : weights_(std::move(weights)) {
  validate();
}

Proportions::Proportions(std::initializer_list<double> weights)
    : weights_(weights) {
  validate();
}

Proportions::Proportions(double a, double b) : weights_{a, b} { validate(); }
Proportions::Proportions(double a, double b, double c) : weights_{a, b, c} {
  validate();
}
Proportions::Proportions(double a, double b, double c, double d)
    : weights_{a, b, c, d} {
  validate();
}

void Proportions::validate() const {
  if (weights_.empty()) {
    throw BAD_PARAM("Proportions: weight list must not be empty");
  }
  for (double w : weights_) {
    if (!(w > 0.0)) {
      throw BAD_PARAM("Proportions: weights must be positive");
    }
  }
}

std::vector<std::uint64_t> Proportions::split(std::uint64_t length,
                                              int nranks) const {
  if (nranks <= 0) {
    throw BAD_PARAM("Proportions::split: nranks must be positive");
  }
  const auto p = static_cast<std::size_t>(nranks);
  if (uniform()) {
    const std::uint64_t base = length / p;
    const std::uint64_t extra = length % p;
    std::vector<std::uint64_t> counts(p, base);
    for (std::uint64_t r = 0; r < extra; ++r) {
      ++counts[static_cast<std::size_t>(r)];
    }
    return counts;
  }
  if (weights_.size() != p) {
    throw BAD_PARAM("Proportions::split: weight count != rank count");
  }
  const double total = std::accumulate(weights_.begin(), weights_.end(), 0.0);
  // Largest-remainder rounding: floor every share, then hand the leftover
  // elements to the ranks with the biggest fractional parts.
  std::vector<std::uint64_t> counts(p);
  std::vector<std::pair<double, std::size_t>> remainders(p);
  std::uint64_t assigned = 0;
  for (std::size_t r = 0; r < p; ++r) {
    const double share =
        static_cast<double>(length) * (weights_[r] / total);
    counts[r] = static_cast<std::uint64_t>(share);
    remainders[r] = {share - static_cast<double>(counts[r]), r};
    assigned += counts[r];
  }
  std::sort(remainders.begin(), remainders.end(), [](auto& a, auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // deterministic tie-break by rank
  });
  for (std::size_t i = 0; assigned < length; ++i, ++assigned) {
    ++counts[remainders[i % p].second];
  }
  return counts;
}

}  // namespace pardis::dseq
