// PARDIS::Proportions (paper §2.2).
//
// An alternative to the default uniform blockwise distribution: the
// programmer describes relative ownership weights per computing thread,
// e.g. Proportions(2, 4, 2, 4) distributes a sequence over threads
// 0..3 in proportions 2:4:2:4.

#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

namespace pardis::dseq {

class Proportions {
 public:
  /// Empty proportions mean "uniform blockwise".
  Proportions() = default;

  /// Weights per rank; each must be positive.  Throws pardis::BAD_PARAM.
  explicit Proportions(std::vector<double> weights);
  Proportions(std::initializer_list<double> weights);

  /// Convenience numeric constructors "up to a point", as in the paper's
  /// PARDIS::Proportions(2,4,2,4).
  Proportions(double a, double b);
  Proportions(double a, double b, double c);
  Proportions(double a, double b, double c, double d);

  bool uniform() const noexcept { return weights_.empty(); }
  const std::vector<double>& weights() const noexcept { return weights_; }
  std::size_t rank_count() const noexcept { return weights_.size(); }

  /// Splits `length` elements into one count per rank: exact proportional
  /// shares rounded by the largest-remainder method, so counts always sum
  /// to `length`.  For uniform proportions this is the classic block
  /// distribution (first length%nranks ranks get one extra element).
  std::vector<std::uint64_t> split(std::uint64_t length, int nranks) const;

  bool operator==(const Proportions&) const = default;

 private:
  void validate() const;

  std::vector<double> weights_;
};

}  // namespace pardis::dseq
