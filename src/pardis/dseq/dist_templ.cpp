#include "pardis/dseq/dist_templ.hpp"

#include <algorithm>

#include "pardis/common/error.hpp"

namespace pardis::dseq {

DistTempl::DistTempl(std::vector<std::uint64_t> counts)
    : counts_(std::move(counts)) {
  offsets_.resize(counts_.size() + 1);
  offsets_[0] = 0;
  for (std::size_t r = 0; r < counts_.size(); ++r) {
    offsets_[r + 1] = offsets_[r] + counts_[r];
  }
}

DistTempl DistTempl::block(std::uint64_t length, int nranks) {
  return proportional(length, Proportions{}, nranks);
}

DistTempl DistTempl::proportional(std::uint64_t length, const Proportions& p,
                                  int nranks) {
  return DistTempl(p.split(length, nranks));
}

DistTempl DistTempl::from_counts(std::vector<std::uint64_t> counts) {
  if (counts.empty()) {
    throw BAD_PARAM("DistTempl: counts must not be empty");
  }
  return DistTempl(std::move(counts));
}

std::uint64_t DistTempl::count(int rank) const {
  if (rank < 0 || rank >= nranks()) {
    throw BAD_PARAM("DistTempl::count: rank out of range");
  }
  return counts_[static_cast<std::size_t>(rank)];
}

std::uint64_t DistTempl::offset(int rank) const {
  if (rank < 0 || rank >= nranks()) {
    throw BAD_PARAM("DistTempl::offset: rank out of range");
  }
  return offsets_[static_cast<std::size_t>(rank)];
}

std::pair<std::uint64_t, std::uint64_t> DistTempl::local_range(
    int rank) const {
  return {offset(rank), offset(rank) + count(rank)};
}

int DistTempl::owner(std::uint64_t i) const {
  if (i >= length()) {
    throw BAD_PARAM("DistTempl::owner: index out of range");
  }
  // First offset strictly greater than i marks the owner's successor.
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), i);
  return static_cast<int>(it - offsets_.begin()) - 1;
}

DistTempl DistTempl::resized(std::uint64_t new_length) const {
  if (counts_.empty()) {
    throw BAD_PARAM("DistTempl::resized on an empty template");
  }
  const std::uint64_t old_length = length();
  std::vector<std::uint64_t> counts = counts_;
  if (new_length >= old_length) {
    // Grow: the rank owning the current last element absorbs the new tail
    // (rank 0 when the sequence is empty).
    const int last_owner = old_length == 0 ? 0 : owner(old_length - 1);
    counts[static_cast<std::size_t>(last_owner)] += new_length - old_length;
    return DistTempl(std::move(counts));
  }
  // Shrink: discard from the top.
  std::uint64_t to_drop = old_length - new_length;
  for (std::size_t r = counts.size(); r-- > 0 && to_drop > 0;) {
    const std::uint64_t drop = std::min(counts[r], to_drop);
    counts[r] -= drop;
    to_drop -= drop;
  }
  return DistTempl(std::move(counts));
}

}  // namespace pardis::dseq
