// STL-style algorithms over distributed sequences.
//
// The paper's "experimental" direct mapping exposes a distributed sequence
// as a container; its stated next step is a seamless mapping onto parallel
// container packages ("such as for example distributed vector in HPC++
// PSTL", §2.2).  This header is that direction in miniature: local
// iteration plus collective algorithms with PSTL-like names, so
// application code reads like STL while executing SPMD.
//
// Convention: functions taking a DSequence are *collective* unless their
// name says `_local`; every rank must call them with identical arguments,
// and every rank receives the (identical) result.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>
#include <span>
#include <vector>

#include "pardis/common/error.hpp"
#include "pardis/dseq/dsequence.hpp"
#include "pardis/rts/collectives.hpp"

namespace pardis::dseq {

/// This rank's chunk as a span (the `_local` iteration surface).
template <typename T>
std::span<T> local_span(DSequence<T>& seq) {
  return {seq.local_data(), seq.local_length()};
}

template <typename T>
std::span<const T> local_span(const DSequence<T>& seq) {
  return {seq.local_data(), seq.local_length()};
}

/// Applies `fn(global_index, element&)` to every local element.
/// Local (embarrassingly parallel); no communication.
template <typename T, typename Fn>
void for_each_local(DSequence<T>& seq, Fn&& fn) {
  const std::uint64_t base = seq.local_offset();
  T* data = seq.local_data();
  for (std::uint64_t i = 0; i < seq.local_length(); ++i) {
    fn(base + i, data[i]);
  }
}

/// Collective fill (every element, every rank's chunk).
template <typename T>
void fill(DSequence<T>& seq, T value) {
  auto span = local_span(seq);
  std::fill(span.begin(), span.end(), value);
}

/// Collective iota: element i becomes start + i.
template <typename T>
void iota(DSequence<T>& seq, T start = T{}) {
  for_each_local(seq, [&](std::uint64_t g, T& v) {
    v = static_cast<T>(start + static_cast<T>(g));
  });
}

/// Collective generate: element i = fn(i).
template <typename T, typename Fn>
void generate(DSequence<T>& seq, Fn&& fn) {
  for_each_local(seq, [&](std::uint64_t g, T& v) { v = fn(g); });
}

/// Collective element-wise transform: out[i] = fn(in[i]).  `in` and `out`
/// must share one distribution template.
template <typename T, typename U, typename Fn>
void transform(const DSequence<T>& in, DSequence<U>& out, Fn&& fn) {
  if (in.distribution() != out.distribution()) {
    throw BAD_PARAM("transform: sequences must share a distribution");
  }
  const T* src = in.local_data();
  U* dst = out.local_data();
  for (std::uint64_t i = 0; i < in.local_length(); ++i) {
    dst[i] = fn(src[i]);
  }
}

/// Collective reduction over all elements with `op` (must be associative
/// and commutative); every rank receives the result.
template <typename T, typename Op = std::plus<T>>
T reduce(const DSequence<T>& seq, T init = T{}, Op op = {}) {
  auto span = local_span(seq);
  // Identity-free local fold: fold elements only, then combine the
  // per-rank partials (ranks with empty chunks contribute nothing).
  const int participants = rts::allreduce_value(
      seq.comm(), span.empty() ? 0 : 1);
  if (participants == 0) return init;
  T local = span.empty() ? T{} : span[0];
  for (std::size_t i = 1; i < span.size(); ++i) local = op(local, span[i]);
  // Gather the partials of non-empty ranks and fold them in rank order.
  const auto flags = rts::allgather_value(seq.comm(), span.empty() ? 0 : 1);
  const auto partials = rts::allgather_value(seq.comm(), local);
  bool first = true;
  T acc{};
  for (std::size_t r = 0; r < partials.size(); ++r) {
    if (!flags[r]) continue;
    acc = first ? partials[r] : op(acc, partials[r]);
    first = false;
  }
  return op(init, acc);
}

/// Collective dot product of two equally distributed sequences.
template <typename T>
T dot(const DSequence<T>& a, const DSequence<T>& b) {
  if (a.distribution() != b.distribution()) {
    throw BAD_PARAM("dot: sequences must share a distribution");
  }
  const T* x = a.local_data();
  const T* y = b.local_data();
  T local{};
  for (std::uint64_t i = 0; i < a.local_length(); ++i) {
    local += x[i] * y[i];
  }
  return rts::allreduce_value(a.comm(), local);
}

/// Result of a collective extremum search.
template <typename T>
struct Extremum {
  std::uint64_t index = 0;
  T value{};
  bool operator==(const Extremum&) const = default;
};

/// Collective arg-min / arg-max; ties resolve to the lowest global index.
/// Throws BAD_PARAM on an empty sequence.
template <typename T, typename Cmp>
Extremum<T> extremum(const DSequence<T>& seq, Cmp cmp) {
  if (seq.length() == 0) {
    throw BAD_PARAM("extremum of an empty sequence");
  }
  auto span = local_span(seq);
  // Local candidate (empty ranks send a neutral marker index).
  Extremum<T> mine;
  bool have = !span.empty();
  if (have) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < span.size(); ++i) {
      if (cmp(span[i], span[best])) best = i;
    }
    mine.index = seq.local_offset() + best;
    mine.value = span[best];
  }
  const auto flags = rts::allgather_value(seq.comm(), have ? 1 : 0);
  const auto candidates = rts::allgather_value(seq.comm(), mine);
  Extremum<T> winner;
  bool first = true;
  for (std::size_t r = 0; r < candidates.size(); ++r) {
    if (!flags[r]) continue;
    const Extremum<T>& c = candidates[r];
    if (first || cmp(c.value, winner.value) ||
        (!cmp(winner.value, c.value) && c.index < winner.index)) {
      winner = c;
      first = false;
    }
  }
  return winner;
}

template <typename T>
Extremum<T> min_element(const DSequence<T>& seq) {
  return extremum(seq, std::less<T>{});
}

template <typename T>
Extremum<T> max_element(const DSequence<T>& seq) {
  return extremum(seq, std::greater<T>{});
}

/// Collective count of elements satisfying `pred`.
template <typename T, typename Pred>
std::uint64_t count_if(const DSequence<T>& seq, Pred pred) {
  auto span = local_span(seq);
  const std::uint64_t local = static_cast<std::uint64_t>(
      std::count_if(span.begin(), span.end(), pred));
  return rts::allreduce_value(seq.comm(), local);
}

/// Collective copy from a replicated vector (identical on every rank) into
/// the sequence; sizes must match.
template <typename T>
void assign(DSequence<T>& seq, const std::vector<T>& values) {
  if (values.size() != seq.length()) {
    throw BAD_PARAM("assign: size mismatch");
  }
  const std::uint64_t base = seq.local_offset();
  T* dst = seq.local_data();
  for (std::uint64_t i = 0; i < seq.local_length(); ++i) {
    dst[i] = values[base + i];
  }
}

/// Collective axpy: y += a * x (same distribution).
template <typename T>
void axpy(T a, const DSequence<T>& x, DSequence<T>& y) {
  if (x.distribution() != y.distribution()) {
    throw BAD_PARAM("axpy: sequences must share a distribution");
  }
  const T* xs = x.local_data();
  T* ys = y.local_data();
  for (std::uint64_t i = 0; i < x.local_length(); ++i) {
    ys[i] += a * xs[i];
  }
}

}  // namespace pardis::dseq
