// Distribution templates (paper §2.2).
//
// A DistTempl partitions the index space [0, length) of a distributed
// sequence into contiguous per-rank blocks.  It answers the ownership
// questions both transfer methods and the redistribute engine ask:
// count/offset per rank, owner of an index, and the grow/shrink semantics
// the paper specifies for length changes ("if a sequence is shrunk, the
// data above the length value will be discarded, if a sequence is
// lengthened, new elements will be added to the ownership of the computing
// thread which owned the last elements of the old sequence").

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pardis/dseq/proportions.hpp"

namespace pardis::dseq {

class DistTempl {
 public:
  /// Empty template: zero-length sequence over zero ranks.
  DistTempl() = default;

  /// Uniform blockwise distribution of `length` over `nranks`.
  static DistTempl block(std::uint64_t length, int nranks);

  /// Proportional distribution (uniform when `p.uniform()`).
  static DistTempl proportional(std::uint64_t length, const Proportions& p,
                                int nranks);

  /// From explicit per-rank counts.
  static DistTempl from_counts(std::vector<std::uint64_t> counts);

  int nranks() const noexcept { return static_cast<int>(counts_.size()); }
  std::uint64_t length() const noexcept {
    return offsets_.empty() ? 0 : offsets_.back();
  }

  std::uint64_t count(int rank) const;
  /// Global index of the first element owned by `rank`.
  std::uint64_t offset(int rank) const;
  /// Owned global range [first, last) of `rank`.
  std::pair<std::uint64_t, std::uint64_t> local_range(int rank) const;

  /// Rank owning global index `i` (empty-block ranks never own anything).
  /// Throws pardis::BAD_PARAM when i >= length().
  int owner(std::uint64_t i) const;

  std::span<const std::uint64_t> counts() const noexcept { return counts_; }

  /// Paper grow/shrink semantics over the same rank set: shrinking discards
  /// from the top; growing appends to the rank owning the current last
  /// element (or rank 0 if the sequence was empty).
  DistTempl resized(std::uint64_t new_length) const;

  bool operator==(const DistTempl&) const = default;

 private:
  explicit DistTempl(std::vector<std::uint64_t> counts);

  std::vector<std::uint64_t> counts_;
  /// Exclusive prefix sums, one entry per rank plus the total at the back.
  std::vector<std::uint64_t> offsets_;
};

}  // namespace pardis::dseq
