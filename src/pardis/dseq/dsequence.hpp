// DSequence<T> — the PARDIS distributed sequence (paper §2.2).
//
// A generalization of the CORBA sequence: a one-dimensional array of IDL
// elements distributed over the address spaces of the computing threads of
// an SPMD application according to a distribution template.  This is the
// paper's "experimental" direct C++ mapping:
//
//   * collective constructors (length + template, or Proportions);
//   * a conversion constructor wrapping memory managed by the programmer
//     ("with no data ownership" when release is false);
//   * length() grow/shrink with the paper's ownership rules;
//   * redistribute() moving elements to a new template;
//   * location-transparent element access via a proxy, SPMD-style: all
//     computing threads call it collectively and all receive the value
//     (the paper's restriction for message-passing runtimes);
//   * local_data()/local_length() escape hatches to the programmer's own
//     memory-management scheme.
//
// All methods marked *collective* must be invoked by every rank of the
// communicator with identical arguments.

#pragma once

#include <cstring>
#include <memory>
#include <vector>

#include "pardis/common/error.hpp"
#include "pardis/dseq/dist_templ.hpp"
#include "pardis/dseq/plan.hpp"
#include "pardis/rts/collectives.hpp"
#include "pardis/rts/communicator.hpp"

namespace pardis::dseq {

template <typename T>
class DSequence;

/// Proxy for location-transparent element access (the paper's
/// `double_proxy operator[]`).  Reads and writes are collective.
template <typename T>
class ElementProxy {
 public:
  /// Collective read: the owner broadcasts; every rank gets the value.
  operator T() const { return seq_->get(index_); }

  /// Collective write: every rank passes the same value; the owner stores it.
  ElementProxy& operator=(T value) {
    seq_->set(index_, value);
    return *this;
  }

 private:
  friend class DSequence<T>;
  ElementProxy(DSequence<T>* seq, std::uint64_t index)
      : seq_(seq), index_(index) {}

  DSequence<T>* seq_;
  std::uint64_t index_;
};

template <typename T>
class DSequence {
  static_assert(std::is_trivially_copyable_v<T>,
                "DSequence elements must be trivially copyable");

 public:
  /// Collective: empty sequence, uniform blockwise template.
  explicit DSequence(rts::Communicator& comm)
      : DSequence(comm, 0, DistTempl::block(0, comm.size())) {}

  /// Collective: `length` elements distributed by `dist` (zero-initialized).
  DSequence(rts::Communicator& comm, std::uint64_t length, DistTempl dist)
      : comm_(&comm), dist_(std::move(dist)) {
    check_dist();
    if (dist_.length() != length) {
      throw BAD_PARAM("DSequence: template length != requested length");
    }
    owned_.resize(dist_.count(comm.rank()));
  }

  /// Collective: uniform blockwise distribution.
  DSequence(rts::Communicator& comm, std::uint64_t length)
      : DSequence(comm, length, DistTempl::block(length, comm.size())) {}

  /// Collective: proportional distribution.
  DSequence(rts::Communicator& comm, std::uint64_t length,
            const Proportions& proportions)
      : DSequence(comm, length,
                  DistTempl::proportional(length, proportions, comm.size())) {}

  /// Collective conversion constructor (paper §2.2): wraps `local_length`
  /// elements of the caller's memory on each rank.  The global template is
  /// derived from the per-rank lengths.  With release=false the sequence
  /// never owns or frees the memory; with release=true it adopts the buffer
  /// (which must have been allocated with new[]) and frees it on
  /// destruction.
  DSequence(rts::Communicator& comm, std::uint64_t local_length, T* data,
            bool release = false)
      : comm_(&comm) {
    auto counts = rts::allgather_value(comm, local_length);
    dist_ = DistTempl::from_counts(
        std::vector<std::uint64_t>(counts.begin(), counts.end()));
    external_ = data;
    external_len_ = local_length;
    if (release) {
      adopted_.reset(data);
    }
  }

  /// Builds a sequence around already-distributed local chunks (used by the
  /// server-side unmarshaling path).  Collective; `dist.count(rank)` must
  /// equal `local.size()` on each rank.
  static DSequence from_local_chunk(rts::Communicator& comm, DistTempl dist,
                                    std::vector<T> local) {
    if (dist.nranks() != comm.size()) {
      throw BAD_PARAM("DSequence: template rank count != communicator size");
    }
    if (dist.count(comm.rank()) != local.size()) {
      throw BAD_PARAM("DSequence: chunk size does not match template");
    }
    DSequence seq(comm, PrivateTag{});
    seq.dist_ = std::move(dist);
    seq.owned_ = std::move(local);
    return seq;
  }

  // Deep value semantics (CORBA sequences are value types).  Copying a
  // borrowed sequence yields an owning copy.
  DSequence(const DSequence& other)
      : comm_(other.comm_),
        dist_(other.dist_),
        owned_(other.data(), other.data() + other.local_length()) {}

  DSequence& operator=(const DSequence& other) {
    if (this != &other) {
      comm_ = other.comm_;
      dist_ = other.dist_;
      owned_.assign(other.data(), other.data() + other.local_length());
      adopted_.reset();
      external_ = nullptr;
      external_len_ = 0;
    }
    return *this;
  }

  DSequence(DSequence&&) noexcept = default;
  DSequence& operator=(DSequence&&) noexcept = default;
  ~DSequence() = default;

  // ---- observers -----------------------------------------------------------

  std::uint64_t length() const noexcept { return dist_.length(); }
  const DistTempl& distribution() const noexcept { return dist_; }
  rts::Communicator& comm() const noexcept { return *comm_; }

  T* local_data() noexcept { return data(); }
  const T* local_data() const noexcept { return data(); }
  std::uint64_t local_length() const noexcept {
    return external_ != nullptr ? external_len_ : owned_.size();
  }
  /// Global index of this rank's first element.
  std::uint64_t local_offset() const { return dist_.offset(comm_->rank()); }

  // ---- element access (collective) -----------------------------------------

  ElementProxy<T> operator[](std::uint64_t index) {
    return ElementProxy<T>(this, index);
  }

  /// Collective read of element `index`; every rank receives the value.
  T get(std::uint64_t index) const {
    const int own = dist_.owner(index);
    T value{};
    if (comm_->rank() == own) {
      value = data()[index - dist_.offset(own)];
    }
    return rts::bcast_value(*comm_, value, own);
  }

  /// Collective write: all ranks pass the same value; the owner stores it.
  void set(std::uint64_t index, T value) {
    const int own = dist_.owner(index);
    if (comm_->rank() == own) {
      mutable_data()[index - dist_.offset(own)] = value;
    }
  }

  // ---- mutation (collective) -----------------------------------------------

  /// Changes the sequence length with the paper's semantics: shrinking
  /// discards the tail, growing appends (zero-initialized) to the rank that
  /// owned the last element.
  void length(std::uint64_t new_length) {
    materialize();
    dist_ = dist_.resized(new_length);
    owned_.resize(dist_.count(comm_->rank()));
  }

  /// Moves the elements to a new distribution template (same length).
  void redistribute(const DistTempl& new_dist) {
    if (new_dist.nranks() != comm_->size()) {
      throw BAD_PARAM("redistribute: template rank count != team size");
    }
    const RedistributionPlan plan(dist_, new_dist);
    const int me = comm_->rank();
    // Package outgoing segments per destination, in global order.
    std::vector<std::vector<T>> parts(
        static_cast<std::size_t>(comm_->size()));
    for (const Segment& s : plan.outgoing(me)) {
      auto& part = parts[static_cast<std::size_t>(s.dst_rank)];
      const T* src = data() + s.src_offset;
      part.insert(part.end(), src, src + s.count);
    }
    auto received = rts::alltoallv(*comm_, parts);
    // Unpack incoming segments; chunks from one source arrive concatenated
    // in the same global order the plan lists them.
    std::vector<T> fresh(new_dist.count(me));
    std::vector<std::size_t> consumed(
        static_cast<std::size_t>(comm_->size()), 0);
    for (const Segment& s : plan.incoming(me)) {
      auto& offset = consumed[static_cast<std::size_t>(s.src_rank)];
      const auto& chunk = received[static_cast<std::size_t>(s.src_rank)];
      if (offset + s.count > chunk.size()) {
        throw INTERNAL("redistribute: segment exceeds received chunk");
      }
      std::memcpy(fresh.data() + s.dst_offset, chunk.data() + offset,
                  s.count * sizeof(T));
      offset += s.count;
    }
    owned_ = std::move(fresh);
    adopted_.reset();
    external_ = nullptr;
    external_len_ = 0;
    dist_ = new_dist;
  }

  void redistribute(const Proportions& proportions) {
    redistribute(
        DistTempl::proportional(length(), proportions, comm_->size()));
  }

  /// Collective: every rank receives the full sequence contents in global
  /// order (convenience for tests, examples and visualization clients).
  std::vector<T> gather_all() const {
    auto parts = comm_->allgather_bytes(pardis::BytesView(
        reinterpret_cast<const std::uint8_t*>(data()),
        local_length() * sizeof(T)));
    std::vector<T> out;
    out.reserve(length());
    for (const auto& p : parts) {
      const std::size_t n = p.size() / sizeof(T);
      const std::size_t base = out.size();
      out.resize(base + n);
      if (n != 0) std::memcpy(out.data() + base, p.data(), p.size());
    }
    return out;
  }

 private:
  struct PrivateTag {};
  DSequence(rts::Communicator& comm, PrivateTag) : comm_(&comm) {}

  void check_dist() const {
    if (dist_.nranks() != comm_->size()) {
      throw BAD_PARAM("DSequence: template rank count != communicator size");
    }
  }

  const T* data() const noexcept {
    return external_ != nullptr ? external_ : owned_.data();
  }
  T* data() noexcept { return external_ != nullptr ? external_ : owned_.data(); }

  /// Direct mutable access for in-place writes (no storage change).
  T* mutable_data() noexcept { return data(); }

  /// Copies borrowed/adopted storage into owned storage before operations
  /// that reallocate.
  void materialize() {
    if (external_ != nullptr) {
      owned_.assign(external_, external_ + external_len_);
      adopted_.reset();
      external_ = nullptr;
      external_len_ = 0;
    }
  }

  rts::Communicator* comm_ = nullptr;
  DistTempl dist_;
  std::vector<T> owned_;
  std::unique_ptr<T[]> adopted_;    // set when the conversion ctor released
  T* external_ = nullptr;           // borrowed or adopted storage
  std::uint64_t external_len_ = 0;
};

}  // namespace pardis::dseq
