// Redistribution plans: the routing table of multi-port transfer.
//
// Given a sequence distributed over K sender ranks (one template) that must
// arrive distributed over P receiver ranks (another template), the plan is
// the list of contiguous segments obtained by intersecting every sender
// interval with every receiver interval.  Multi-port argument transfer
// (paper §3.3: "the client's threads first calculate to which of the
// server's threads they should send data") and DSequence::redistribute both
// execute such a plan.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pardis/dseq/dist_templ.hpp"

namespace pardis::dseq {

struct Segment {
  int src_rank = 0;
  int dst_rank = 0;
  std::uint64_t src_offset = 0;  // element offset into the sender's chunk
  std::uint64_t dst_offset = 0;  // element offset into the receiver's chunk
  std::uint64_t count = 0;       // elements

  bool operator==(const Segment&) const = default;
};

class RedistributionPlan {
 public:
  /// Builds the plan from `src` to `dst`; both must cover the same length.
  /// Throws pardis::BAD_PARAM on a length mismatch.
  RedistributionPlan(const DistTempl& src, const DistTempl& dst);

  std::span<const Segment> segments() const noexcept { return segments_; }

  /// Segments this sender rank must transmit, in destination order.
  std::vector<Segment> outgoing(int src_rank) const;

  /// Segments this receiver rank expects, in source order.
  std::vector<Segment> incoming(int dst_rank) const;

  /// Total elements rank `dst_rank` will receive.
  std::uint64_t incoming_count(int dst_rank) const;

  const DistTempl& src() const noexcept { return src_; }
  const DistTempl& dst() const noexcept { return dst_; }

 private:
  DistTempl src_;
  DistTempl dst_;
  std::vector<Segment> segments_;  // ordered by global offset
};

}  // namespace pardis::dseq
