#include "pardis/idl/parser.hpp"

#include <charconv>

#include "pardis/idl/lexer.hpp"

namespace pardis::idl {

namespace {

/// Raised on a syntax error after reporting; caught at statement level for
/// recovery.
struct SyntaxError {};

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticSink& sink)
      : tokens_(std::move(tokens)), sink_(sink) {}

  TranslationUnit parse_unit() {
    TranslationUnit tu;
    while (!peek().is_punct("") && peek().kind != TokKind::kEof) {
      try {
        tu.definitions.push_back(parse_definition());
      } catch (const SyntaxError&) {
        recover();
      }
    }
    return tu;
  }

 private:
  // ---- token helpers -------------------------------------------------------

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() {
    const Token& t = peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

  [[noreturn]] void fail(const Token& at, const std::string& message) {
    sink_.error(at.loc, message);
    throw SyntaxError{};
  }

  void expect_punct(const char* p) {
    if (!peek().is_punct(p)) {
      fail(peek(), std::string("expected '") + p + "', found '" +
                       peek().text + "'");
    }
    advance();
  }

  void expect_keyword(const char* kw) {
    if (!peek().is_keyword(kw)) {
      fail(peek(), std::string("expected '") + kw + "', found '" +
                       peek().text + "'");
    }
    advance();
  }

  std::string expect_identifier(const char* what) {
    if (peek().kind != TokKind::kIdentifier) {
      fail(peek(), std::string("expected ") + what + ", found '" +
                       peek().text + "'");
    }
    return advance().text;
  }

  /// Skip to just past the next ';' (or stop before '}' / EOF).
  void recover() {
    while (peek().kind != TokKind::kEof) {
      if (peek().is_punct(";")) {
        advance();
        return;
      }
      if (peek().is_punct("}")) {
        advance();
        if (peek().is_punct(";")) advance();
        return;
      }
      advance();
    }
  }

  // ---- grammar -------------------------------------------------------------

  Definition parse_definition() {
    const Token& t = peek();
    if (t.is_keyword("module")) return parse_module();
    if (t.is_keyword("interface")) return parse_interface();
    if (t.is_keyword("struct")) return parse_struct();
    if (t.is_keyword("enum")) return parse_enum();
    if (t.is_keyword("typedef")) return parse_typedef();
    if (t.is_keyword("const")) return parse_const();
    if (t.is_keyword("exception")) return parse_exception();
    fail(t, "expected a definition (module/interface/struct/enum/typedef/"
            "const/exception), found '" +
                t.text + "'");
  }

  Definition parse_module() {
    auto mod = std::make_shared<ModuleDef>();
    mod->loc = peek().loc;
    expect_keyword("module");
    mod->name = expect_identifier("module name");
    expect_punct("{");
    while (!peek().is_punct("}")) {
      if (peek().kind == TokKind::kEof) {
        fail(peek(), "unexpected end of file in module '" + mod->name + "'");
      }
      try {
        mod->definitions.push_back(parse_definition());
      } catch (const SyntaxError&) {
        recover();
      }
    }
    expect_punct("}");
    expect_punct(";");
    return mod;
  }

  Definition parse_interface() {
    InterfaceDef iface;
    iface.loc = peek().loc;
    expect_keyword("interface");
    iface.name = expect_identifier("interface name");
    if (peek().is_punct(":")) {
      advance();
      iface.bases.push_back(parse_scoped_name());
      while (peek().is_punct(",")) {
        advance();
        iface.bases.push_back(parse_scoped_name());
      }
    }
    expect_punct("{");
    while (!peek().is_punct("}")) {
      if (peek().kind == TokKind::kEof) {
        fail(peek(), "unexpected end of file in interface '" + iface.name +
                         "'");
      }
      try {
        parse_interface_member(iface);
      } catch (const SyntaxError&) {
        recover();
      }
    }
    expect_punct("}");
    expect_punct(";");
    return iface;
  }

  void parse_interface_member(InterfaceDef& iface) {
    if (peek().is_keyword("readonly") || peek().is_keyword("attribute")) {
      Attribute attr;
      attr.loc = peek().loc;
      if (peek().is_keyword("readonly")) {
        attr.readonly = true;
        advance();
      }
      expect_keyword("attribute");
      attr.type = parse_type();
      attr.name = expect_identifier("attribute name");
      expect_punct(";");
      iface.attributes.push_back(std::move(attr));
      return;
    }
    Operation op;
    op.loc = peek().loc;
    if (peek().is_keyword("oneway")) {
      op.oneway = true;
      advance();
    }
    op.return_type = parse_type_or_void();
    op.name = expect_identifier("operation name");
    expect_punct("(");
    if (!peek().is_punct(")")) {
      op.params.push_back(parse_param());
      while (peek().is_punct(",")) {
        advance();
        op.params.push_back(parse_param());
      }
    }
    expect_punct(")");
    if (peek().is_keyword("raises")) {
      advance();
      expect_punct("(");
      op.raises.push_back(parse_scoped_name());
      while (peek().is_punct(",")) {
        advance();
        op.raises.push_back(parse_scoped_name());
      }
      expect_punct(")");
    }
    expect_punct(";");
    iface.operations.push_back(std::move(op));
  }

  Param parse_param() {
    Param p;
    p.loc = peek().loc;
    if (peek().is_keyword("in")) {
      p.dir = ParamDir::kIn;
    } else if (peek().is_keyword("out")) {
      p.dir = ParamDir::kOut;
    } else if (peek().is_keyword("inout")) {
      p.dir = ParamDir::kInOut;
    } else {
      fail(peek(), "expected parameter direction (in/out/inout), found '" +
                       peek().text + "'");
    }
    advance();
    p.type = parse_type();
    p.name = expect_identifier("parameter name");
    return p;
  }

  Definition parse_struct() {
    StructDef s;
    s.loc = peek().loc;
    expect_keyword("struct");
    s.name = expect_identifier("struct name");
    expect_punct("{");
    while (!peek().is_punct("}")) {
      if (peek().kind == TokKind::kEof) {
        fail(peek(), "unexpected end of file in struct '" + s.name + "'");
      }
      StructField f;
      f.loc = peek().loc;
      f.type = parse_type();
      f.name = expect_identifier("field name");
      expect_punct(";");
      s.fields.push_back(std::move(f));
    }
    expect_punct("}");
    expect_punct(";");
    return s;
  }

  Definition parse_enum() {
    EnumDef e;
    e.loc = peek().loc;
    expect_keyword("enum");
    e.name = expect_identifier("enum name");
    expect_punct("{");
    e.enumerators.push_back(expect_identifier("enumerator"));
    while (peek().is_punct(",")) {
      advance();
      if (peek().is_punct("}")) break;  // trailing comma tolerated
      e.enumerators.push_back(expect_identifier("enumerator"));
    }
    expect_punct("}");
    expect_punct(";");
    return e;
  }

  Definition parse_typedef() {
    TypedefDef td;
    td.loc = peek().loc;
    expect_keyword("typedef");
    td.type = parse_type();
    td.name = expect_identifier("typedef name");
    expect_punct(";");
    return td;
  }

  Definition parse_const() {
    ConstDef cd;
    cd.loc = peek().loc;
    expect_keyword("const");
    cd.type = parse_type();
    cd.name = expect_identifier("constant name");
    expect_punct("=");
    const Token& v = peek();
    switch (v.kind) {
      case TokKind::kIntLiteral:
      case TokKind::kFloatLiteral:
        cd.value = advance().text;
        break;
      case TokKind::kStringLiteral:
        cd.value = advance().text;
        cd.is_string = true;
        break;
      case TokKind::kKeyword:
        if (v.text == "TRUE" || v.text == "FALSE") {
          cd.value = advance().text;
          break;
        }
        [[fallthrough]];
      default:
        fail(v, "expected a literal constant value, found '" + v.text + "'");
    }
    expect_punct(";");
    return cd;
  }

  Definition parse_exception() {
    ExceptionDef e;
    e.loc = peek().loc;
    expect_keyword("exception");
    e.name = expect_identifier("exception name");
    expect_punct("{");
    while (!peek().is_punct("}")) {
      if (peek().kind == TokKind::kEof) {
        fail(peek(), "unexpected end of file in exception '" + e.name + "'");
      }
      StructField f;
      f.loc = peek().loc;
      f.type = parse_type();
      f.name = expect_identifier("member name");
      expect_punct(";");
      e.members.push_back(std::move(f));
    }
    expect_punct("}");
    expect_punct(";");
    return e;
  }

  // ---- types ---------------------------------------------------------------

  TypeRef parse_type_or_void() {
    if (peek().is_keyword("void")) {
      TypeRef t;
      t.loc = advance().loc;
      t.kind = TypeKind::kVoid;
      return t;
    }
    return parse_type();
  }

  TypeRef parse_type() {
    TypeRef t;
    t.loc = peek().loc;
    const Token& tok = peek();

    if (tok.is_keyword("unsigned")) {
      advance();
      if (peek().is_keyword("short")) {
        advance();
        return with_loc(TypeRef::basic_type(BasicKind::kUShort), t.loc);
      }
      if (peek().is_keyword("long")) {
        advance();
        if (peek().is_keyword("long")) {
          advance();
          return with_loc(TypeRef::basic_type(BasicKind::kULongLong), t.loc);
        }
        return with_loc(TypeRef::basic_type(BasicKind::kULong), t.loc);
      }
      fail(peek(), "expected 'short' or 'long' after 'unsigned'");
    }
    if (tok.is_keyword("short")) {
      advance();
      return with_loc(TypeRef::basic_type(BasicKind::kShort), t.loc);
    }
    if (tok.is_keyword("long")) {
      advance();
      if (peek().is_keyword("long")) {
        advance();
        return with_loc(TypeRef::basic_type(BasicKind::kLongLong), t.loc);
      }
      if (peek().is_keyword("double")) {
        fail(peek(), "'long double' is not supported by this compiler");
      }
      return with_loc(TypeRef::basic_type(BasicKind::kLong), t.loc);
    }
    if (tok.is_keyword("float")) {
      advance();
      return with_loc(TypeRef::basic_type(BasicKind::kFloat), t.loc);
    }
    if (tok.is_keyword("double")) {
      advance();
      return with_loc(TypeRef::basic_type(BasicKind::kDouble), t.loc);
    }
    if (tok.is_keyword("boolean")) {
      advance();
      return with_loc(TypeRef::basic_type(BasicKind::kBoolean), t.loc);
    }
    if (tok.is_keyword("char")) {
      advance();
      return with_loc(TypeRef::basic_type(BasicKind::kChar), t.loc);
    }
    if (tok.is_keyword("octet")) {
      advance();
      return with_loc(TypeRef::basic_type(BasicKind::kOctet), t.loc);
    }
    if (tok.is_keyword("string")) {
      advance();
      t.kind = TypeKind::kString;
      return t;
    }
    if (tok.is_keyword("sequence") || tok.is_keyword("dsequence")) {
      const bool distributed = tok.text == "dsequence";
      advance();
      expect_punct("<");
      t.kind = distributed ? TypeKind::kDSequence : TypeKind::kSequence;
      t.element = std::make_shared<TypeRef>(parse_type());
      if (peek().is_punct(",")) {
        advance();
        t.bound = parse_uint_literal("sequence bound");
        // dsequence<double, 1024, BLOCK>: an optional distribution tag.
        if (distributed && peek().is_punct(",")) {
          advance();
          const std::string dist = expect_identifier("distribution tag");
          if (dist != "BLOCK") {
            sink_.error(t.loc, "unknown distribution tag '" + dist +
                                   "' (only BLOCK is supported)");
          }
        }
      }
      expect_punct(">");
      return t;
    }
    if (tok.kind == TokKind::kIdentifier) {
      t.kind = TypeKind::kNamed;
      t.name = parse_scoped_name();
      return t;
    }
    fail(tok, "expected a type, found '" + tok.text + "'");
  }

  std::string parse_scoped_name() {
    std::string name = expect_identifier("name");
    while (peek().is_punct("::")) {
      advance();
      name += "::";
      name += expect_identifier("name after '::'");
    }
    return name;
  }

  std::uint64_t parse_uint_literal(const char* what) {
    if (peek().kind != TokKind::kIntLiteral) {
      fail(peek(), std::string("expected ") + what + ", found '" +
                       peek().text + "'");
    }
    const std::string text = advance().text;
    std::uint64_t value = 0;
    const char* begin = text.c_str();
    const char* end = begin + text.size();
    int base = 10;
    if (text.size() > 2 && text[0] == '0' &&
        (text[1] == 'x' || text[1] == 'X')) {
      begin += 2;
      base = 16;
    }
    const auto [ptr, ec] = std::from_chars(begin, end, value, base);
    if (ec != std::errc{} || ptr != end) {
      fail(peek(), "malformed integer literal '" + text + "'");
    }
    return value;
  }

  static TypeRef with_loc(TypeRef t, SourceLoc loc) {
    t.loc = loc;
    return t;
  }

  std::vector<Token> tokens_;
  DiagnosticSink& sink_;
  std::size_t pos_ = 0;
};

}  // namespace

TranslationUnit parse(const std::string& source, DiagnosticSink& sink) {
  auto tokens = lex(source, sink);
  Parser parser(std::move(tokens), sink);
  return parser.parse_unit();
}

}  // namespace pardis::idl
