#include "pardis/idl/sema.hpp"

#include <set>

namespace pardis::idl {

namespace {

std::string join_scope(const std::string& scope, const std::string& name) {
  return scope.empty() ? name : scope + "::" + name;
}

/// True if a dsequence may carry this element kind over the wire.
bool dseq_element_ok(BasicKind k) {
  switch (k) {
    case BasicKind::kBoolean:
    case BasicKind::kChar:
      return false;
    default:
      return true;
  }
}

class Analyzer {
 public:
  Analyzer(const TranslationUnit& tu, DiagnosticSink& sink)
      : tu_(tu), sink_(sink) {}

  SemaModel run() {
    collect(tu_.definitions, "");
    check(tu_.definitions, "");
    return std::move(model_);
  }

 private:
  // ---- pass 1: symbol collection -------------------------------------------

  void collect(const std::vector<Definition>& defs, const std::string& scope) {
    for (const Definition& def : defs) {
      std::visit([&](const auto& node) { collect_one(node, scope); }, def);
    }
  }

  void declare(Symbol sym, SourceLoc loc) {
    bool inserted = false;
    const Symbol* existing = model_.add_symbol(sym, &inserted);
    if (!inserted) {
      sink_.error(loc, "duplicate definition of '" + sym.qualified +
                           "' (previously a " +
                           to_string(existing->kind) + ")");
    }
  }

  void collect_one(const StructDef& s, const std::string& scope) {
    Symbol sym;
    sym.kind = Symbol::Kind::kStruct;
    sym.qualified = join_scope(scope, s.name);
    sym.struct_def = &s;
    declare(sym, s.loc);
  }
  void collect_one(const EnumDef& e, const std::string& scope) {
    Symbol sym;
    sym.kind = Symbol::Kind::kEnum;
    sym.qualified = join_scope(scope, e.name);
    sym.enum_def = &e;
    declare(sym, e.loc);
  }
  void collect_one(const TypedefDef& t, const std::string& scope) {
    Symbol sym;
    sym.kind = Symbol::Kind::kTypedef;
    sym.qualified = join_scope(scope, t.name);
    sym.typedef_def = &t;
    declare(sym, t.loc);
  }
  void collect_one(const ConstDef& c, const std::string& scope) {
    Symbol sym;
    sym.kind = Symbol::Kind::kConst;
    sym.qualified = join_scope(scope, c.name);
    sym.const_def = &c;
    declare(sym, c.loc);
  }
  void collect_one(const ExceptionDef& e, const std::string& scope) {
    Symbol sym;
    sym.kind = Symbol::Kind::kException;
    sym.qualified = join_scope(scope, e.name);
    sym.exception_def = &e;
    declare(sym, e.loc);
  }
  void collect_one(const InterfaceDef& i, const std::string& scope) {
    Symbol sym;
    sym.kind = Symbol::Kind::kInterface;
    sym.qualified = join_scope(scope, i.name);
    sym.interface_def = &i;
    declare(sym, i.loc);
  }
  void collect_one(const std::shared_ptr<ModuleDef>& m,
                   const std::string& scope) {
    Symbol sym;
    sym.kind = Symbol::Kind::kModule;
    sym.qualified = join_scope(scope, m->name);
    // Re-opened modules are legal in IDL; only declare the first time.
    bool inserted = false;
    model_.add_symbol(sym, &inserted);
    collect(m->definitions, sym.qualified);
  }

  // ---- pass 2: checks --------------------------------------------------------

  void check(const std::vector<Definition>& defs, const std::string& scope) {
    for (const Definition& def : defs) {
      std::visit([&](const auto& node) { check_one(node, scope); }, def);
    }
  }

  void check_one(const StructDef& s, const std::string& scope) {
    std::set<std::string> names;
    for (const StructField& f : s.fields) {
      if (!names.insert(f.name).second) {
        sink_.error(f.loc, "duplicate field '" + f.name + "' in struct '" +
                               s.name + "'");
      }
      check_type(f.type, scope, /*allow_dseq=*/false,
                 "field '" + f.name + "' of struct '" + s.name + "'");
    }
  }

  void check_one(const EnumDef& e, const std::string&) {
    std::set<std::string> names;
    for (const std::string& name : e.enumerators) {
      if (!names.insert(name).second) {
        sink_.error(e.loc, "duplicate enumerator '" + name + "' in enum '" +
                               e.name + "'");
      }
    }
  }

  void check_one(const TypedefDef& t, const std::string& scope) {
    check_type(t.type, scope, /*allow_dseq=*/true,
               "typedef '" + t.name + "'");
  }

  void check_one(const ConstDef& c, const std::string& scope) {
    const TypeRef canon = model_.canonical(scope, c.type);
    const std::string where = "constant '" + c.name + "'";
    if (canon.kind == TypeKind::kString) {
      if (!c.is_string) {
        sink_.error(c.loc, where + " of type string needs a string literal");
      }
      return;
    }
    if (canon.kind != TypeKind::kBasic) {
      sink_.error(c.loc,
                  where + ": constants must have a basic or string type");
      return;
    }
    if (c.is_string) {
      sink_.error(c.loc, where + ": string literal for non-string type");
      return;
    }
    const bool is_bool_lit = c.value == "TRUE" || c.value == "FALSE";
    if ((canon.basic == BasicKind::kBoolean) != is_bool_lit) {
      sink_.error(c.loc, where + ": literal does not match type " +
                             to_string(canon.basic));
    }
    const bool is_float_type =
        canon.basic == BasicKind::kFloat || canon.basic == BasicKind::kDouble;
    if (!is_float_type && !is_bool_lit &&
        c.value.find('.') != std::string::npos) {
      sink_.error(c.loc, where + ": floating literal for integer type");
    }
  }

  void check_one(const ExceptionDef& e, const std::string& scope) {
    std::set<std::string> names;
    for (const StructField& f : e.members) {
      if (!names.insert(f.name).second) {
        sink_.error(f.loc, "duplicate member '" + f.name +
                               "' in exception '" + e.name + "'");
      }
      check_type(f.type, scope, /*allow_dseq=*/false,
                 "member '" + f.name + "' of exception '" + e.name + "'");
    }
  }

  void check_one(const InterfaceDef& iface, const std::string& scope) {
    // Bases must be interfaces.
    for (const std::string& base : iface.bases) {
      const Symbol* sym = model_.lookup(scope, base);
      if (sym == nullptr) {
        sink_.error(iface.loc, "unknown base interface '" + base + "'");
      } else if (sym->kind != Symbol::Kind::kInterface) {
        sink_.error(iface.loc, "base '" + base + "' is a " +
                                   to_string(sym->kind) +
                                   ", not an interface");
      } else if (sym->qualified == join_scope(scope, iface.name)) {
        sink_.error(iface.loc,
                    "interface '" + iface.name + "' inherits itself");
      }
    }
    // Member name uniqueness across ops, attributes, and inherited members.
    std::set<std::string> names;
    for (const Operation& op :
         model_.flattened_operations(scope, iface)) {
      if (!names.insert(op.name).second) {
        sink_.error(op.loc, "duplicate operation '" + op.name +
                                "' in interface '" + iface.name + "'");
      }
    }
    for (const Attribute& attr :
         model_.flattened_attributes(scope, iface)) {
      if (!names.insert(attr.name).second) {
        sink_.error(attr.loc, "duplicate member '" + attr.name +
                                  "' in interface '" + iface.name + "'");
      }
      check_type(attr.type, scope, /*allow_dseq=*/false,
                 "attribute '" + attr.name + "'");
    }
    for (const Operation& op : iface.operations) {
      check_operation(op, scope, iface);
    }
  }

  void check_operation(const Operation& op, const std::string& scope,
                       const InterfaceDef& iface) {
    const std::string where =
        "operation '" + iface.name + "::" + op.name + "'";
    if (op.return_type.kind != TypeKind::kVoid) {
      check_type(op.return_type, scope, /*allow_dseq=*/false,
                 "return type of " + where);
      if (op.oneway) {
        sink_.error(op.loc, where + ": oneway operations must return void");
      }
    }
    std::set<std::string> names;
    for (const Param& p : op.params) {
      if (!names.insert(p.name).second) {
        sink_.error(p.loc,
                    "duplicate parameter '" + p.name + "' in " + where);
      }
      check_type(p.type, scope, /*allow_dseq=*/true,
                 "parameter '" + p.name + "' of " + where);
      if (op.oneway && p.dir != ParamDir::kIn) {
        sink_.error(p.loc, where + ": oneway operations allow only 'in' "
                               "parameters");
      }
    }
    for (const std::string& exc : op.raises) {
      const Symbol* sym = model_.lookup(scope, exc);
      if (sym == nullptr) {
        sink_.error(op.loc, where + " raises unknown exception '" + exc +
                                "'");
      } else if (sym->kind != Symbol::Kind::kException) {
        sink_.error(op.loc, where + " raises '" + exc + "', which is a " +
                                to_string(sym->kind) + ", not an exception");
      }
    }
  }

  void check_one(const std::shared_ptr<ModuleDef>& m,
                 const std::string& scope) {
    check(m->definitions, join_scope(scope, m->name));
  }

  void check_type(const TypeRef& type, const std::string& scope,
                  bool allow_dseq, const std::string& where) {
    switch (type.kind) {
      case TypeKind::kVoid:
        sink_.error(type.loc, where + ": void is not a value type");
        return;
      case TypeKind::kBasic:
      case TypeKind::kString:
        return;
      case TypeKind::kSequence: {
        const TypeRef elem = model_.canonical(scope, *type.element);
        if (elem.kind == TypeKind::kDSequence ||
            elem.kind == TypeKind::kSequence) {
          sink_.error(type.loc,
                      where + ": nested sequences are not supported");
          return;
        }
        check_type(*type.element, scope, /*allow_dseq=*/false, where);
        return;
      }
      case TypeKind::kDSequence: {
        if (!allow_dseq) {
          sink_.error(type.loc,
                      where + ": dsequence is only allowed as an operation "
                              "parameter or typedef");
          return;
        }
        const TypeRef elem = model_.canonical(scope, *type.element);
        if (elem.kind != TypeKind::kBasic ||
            !dseq_element_ok(elem.basic)) {
          sink_.error(type.loc,
                      where + ": dsequence elements must be numeric basic "
                              "types (got " +
                          spell(*type.element) + ")");
        }
        return;
      }
      case TypeKind::kNamed: {
        const Symbol* sym = model_.lookup(scope, type.name);
        if (sym == nullptr) {
          sink_.error(type.loc, where + ": unknown type '" + type.name + "'");
          return;
        }
        switch (sym->kind) {
          case Symbol::Kind::kStruct:
          case Symbol::Kind::kEnum:
            return;
          case Symbol::Kind::kTypedef: {
            const TypeRef canon = model_.canonical(scope, type);
            if (canon.kind == TypeKind::kDSequence && !allow_dseq) {
              sink_.error(type.loc,
                          where + ": dsequence (via typedef '" + type.name +
                              "') is only allowed as an operation parameter");
            }
            return;
          }
          case Symbol::Kind::kInterface:
            sink_.error(type.loc,
                        where + ": object references as data are not "
                                "supported by this compiler");
            return;
          default:
            sink_.error(type.loc, where + ": '" + type.name + "' is a " +
                                      to_string(sym->kind) +
                                      ", not a type");
            return;
        }
      }
    }
  }

  const TranslationUnit& tu_;
  DiagnosticSink& sink_;
  SemaModel model_;
};

}  // namespace

const char* to_string(Symbol::Kind k) noexcept {
  switch (k) {
    case Symbol::Kind::kModule:    return "module";
    case Symbol::Kind::kStruct:    return "struct";
    case Symbol::Kind::kEnum:      return "enum";
    case Symbol::Kind::kTypedef:   return "typedef";
    case Symbol::Kind::kInterface: return "interface";
    case Symbol::Kind::kException: return "exception";
    case Symbol::Kind::kConst:     return "constant";
  }
  return "?";
}

const Symbol* SemaModel::add_symbol(const Symbol& sym, bool* inserted) {
  const auto [it, fresh] = symbols_.emplace(sym.qualified, sym);
  *inserted = fresh;
  return &it->second;
}

const Symbol* SemaModel::lookup(const std::string& scope,
                                const std::string& name) const {
  // Try the name qualified by each enclosing scope, innermost first, then
  // globally.
  std::string prefix = scope;
  for (;;) {
    const std::string candidate =
        prefix.empty() ? name : prefix + "::" + name;
    const auto it = symbols_.find(candidate);
    if (it != symbols_.end()) return &it->second;
    if (prefix.empty()) return nullptr;
    const auto cut = prefix.rfind("::");
    prefix = cut == std::string::npos ? "" : prefix.substr(0, cut);
  }
}

TypeRef SemaModel::canonical(const std::string& scope,
                             const TypeRef& type) const {
  if (type.kind != TypeKind::kNamed) {
    if ((type.kind == TypeKind::kSequence ||
         type.kind == TypeKind::kDSequence) &&
        type.element) {
      TypeRef out = type;
      out.element = std::make_shared<TypeRef>(canonical(scope, *type.element));
      return out;
    }
    return type;
  }
  const Symbol* sym = lookup(scope, type.name);
  if (sym == nullptr) return type;
  if (sym->kind == Symbol::Kind::kTypedef) {
    // Resolve the typedef's own type in the scope where it was declared.
    const auto cut = sym->qualified.rfind("::");
    const std::string def_scope =
        cut == std::string::npos ? "" : sym->qualified.substr(0, cut);
    return canonical(def_scope, sym->typedef_def->type);
  }
  TypeRef out = type;
  out.name = sym->qualified;
  return out;
}

namespace {

/// Walks the inheritance DAG base-first; `visit` receives each interface
/// once (cycles — already a reported error — are not re-entered).
template <typename Visit>
void walk_bases(const SemaModel& model, const std::string& scope,
                const InterfaceDef& iface, std::set<std::string>& seen,
                const Visit& visit) {
  for (const std::string& base : iface.bases) {
    const Symbol* sym = model.lookup(scope, base);
    if (sym == nullptr || sym->kind != Symbol::Kind::kInterface) continue;
    if (!seen.insert(sym->qualified).second) continue;
    const auto cut = sym->qualified.rfind("::");
    const std::string base_scope =
        cut == std::string::npos ? "" : sym->qualified.substr(0, cut);
    walk_bases(model, base_scope, *sym->interface_def, seen, visit);
    visit(*sym->interface_def);
  }
}

}  // namespace

std::vector<Operation> SemaModel::flattened_operations(
    const std::string& scope, const InterfaceDef& iface) const {
  std::vector<Operation> ops;
  std::set<std::string> seen;
  walk_bases(*this, scope, iface, seen, [&](const InterfaceDef& base) {
    ops.insert(ops.end(), base.operations.begin(), base.operations.end());
  });
  ops.insert(ops.end(), iface.operations.begin(), iface.operations.end());
  return ops;
}

std::vector<Attribute> SemaModel::flattened_attributes(
    const std::string& scope, const InterfaceDef& iface) const {
  std::vector<Attribute> attrs;
  std::set<std::string> seen;
  walk_bases(*this, scope, iface, seen, [&](const InterfaceDef& base) {
    attrs.insert(attrs.end(), base.attributes.begin(),
                 base.attributes.end());
  });
  attrs.insert(attrs.end(), iface.attributes.begin(),
               iface.attributes.end());
  return attrs;
}

SemaModel analyze(const TranslationUnit& tu, DiagnosticSink& sink) {
  Analyzer analyzer(tu, sink);
  return analyzer.run();
}

}  // namespace pardis::idl
