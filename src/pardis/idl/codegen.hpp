// C++ code generation: IDL definitions -> PARDIS stubs and skeletons.
//
// For each interface the generator emits:
//   * a client proxy class (paper §2.1's stub) with `_bind`/`_spmd_bind`
//     statics, a method per operation in the *distributed* mapping
//     (DSequence arguments), an overload in the *non-distributed* mapping
//     (std::vector arguments) for operations with dsequence parameters,
//     and `<op>_nb` non-blocking variants returning futures;
//   * a `POA_<name>` skeleton deriving from SpmdServant with one pure
//     virtual per operation and a generated dispatch() that unmarshals
//     both mappings.
// Structs, enums, typedefs, constants and exceptions map to their C++
// equivalents with CDR marshaling helpers; exceptions self-register with
// the ExceptionRegistry so clients rethrow fully typed.

#pragma once

#include <string>

#include "pardis/idl/ast.hpp"
#include "pardis/idl/sema.hpp"

namespace pardis::idl {

struct CodegenOptions {
  /// Output file stem; the header is "<stem>.pardis.hpp".
  std::string stem = "generated";
  /// Original IDL file name, for the banner comment.
  std::string source_name = "<memory>";
};

struct GeneratedCode {
  std::string header;
  std::string source;
};

/// Generates code for an analyzed, error-free translation unit.
GeneratedCode generate(const TranslationUnit& tu, const SemaModel& model,
                       const CodegenOptions& options);

/// Convenience: lex+parse+analyze+generate; throws CompileError on any
/// diagnostic error.
GeneratedCode compile(const std::string& idl_source,
                      const CodegenOptions& options);

}  // namespace pardis::idl
