// Recursive-descent parser for the PARDIS IDL.

#pragma once

#include <string>

#include "pardis/idl/ast.hpp"
#include "pardis/idl/diagnostics.hpp"

namespace pardis::idl {

/// Parses `source`; syntax errors go to `sink`.  On error the parser skips
/// to the next ';' or '}' and continues so multiple errors are reported.
/// The returned tree is only meaningful when !sink.has_errors().
TranslationUnit parse(const std::string& source, DiagnosticSink& sink);

}  // namespace pardis::idl
