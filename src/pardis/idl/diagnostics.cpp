#include "pardis/idl/diagnostics.hpp"

namespace pardis::idl {

std::string Diagnostic::to_string() const {
  return loc.to_string() + ": " +
         (severity == Severity::kError ? "error: " : "warning: ") + message;
}

void DiagnosticSink::error(SourceLoc loc, std::string message) {
  diags_.push_back(
      {Diagnostic::Severity::kError, loc, std::move(message)});
  ++error_count_;
}

void DiagnosticSink::warning(SourceLoc loc, std::string message) {
  diags_.push_back(
      {Diagnostic::Severity::kWarning, loc, std::move(message)});
}

std::string DiagnosticSink::to_string() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace pardis::idl
