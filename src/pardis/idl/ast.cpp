#include "pardis/idl/ast.hpp"

namespace pardis::idl {

const char* to_string(BasicKind k) noexcept {
  switch (k) {
    case BasicKind::kShort:     return "short";
    case BasicKind::kUShort:    return "unsigned short";
    case BasicKind::kLong:      return "long";
    case BasicKind::kULong:     return "unsigned long";
    case BasicKind::kLongLong:  return "long long";
    case BasicKind::kULongLong: return "unsigned long long";
    case BasicKind::kFloat:     return "float";
    case BasicKind::kDouble:    return "double";
    case BasicKind::kBoolean:   return "boolean";
    case BasicKind::kChar:      return "char";
    case BasicKind::kOctet:     return "octet";
  }
  return "?";
}

const char* to_string(ParamDir d) noexcept {
  switch (d) {
    case ParamDir::kIn:    return "in";
    case ParamDir::kOut:   return "out";
    case ParamDir::kInOut: return "inout";
  }
  return "?";
}

std::string spell(const TypeRef& type) {
  switch (type.kind) {
    case TypeKind::kVoid:
      return "void";
    case TypeKind::kBasic:
      return to_string(type.basic);
    case TypeKind::kString:
      return "string";
    case TypeKind::kSequence:
      return "sequence<" + spell(*type.element) +
             (type.bound ? ", " + std::to_string(type.bound) : "") + ">";
    case TypeKind::kDSequence:
      return "dsequence<" + spell(*type.element) +
             (type.bound ? ", " + std::to_string(type.bound) : "") + ">";
    case TypeKind::kNamed:
      return type.name;
  }
  return "?";
}

}  // namespace pardis::idl
