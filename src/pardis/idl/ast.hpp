// Abstract syntax tree of the PARDIS IDL.
//
// Supported subset: modules, interfaces (with inheritance, operations —
// including oneway — and attributes), structs, enums, typedefs, constants,
// exceptions, sequence<T[,bound]>, string, the basic CORBA types, and the
// paper's extension dsequence<T[,length][,dist]> (a distribution literal
// like dsequence<double, 1024, BLOCK> marks the default template).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "pardis/idl/diagnostics.hpp"

namespace pardis::idl {

enum class BasicKind {
  kShort,
  kUShort,
  kLong,
  kULong,
  kLongLong,
  kULongLong,
  kFloat,
  kDouble,
  kBoolean,
  kChar,
  kOctet,
};

const char* to_string(BasicKind k) noexcept;

enum class TypeKind {
  kVoid,
  kBasic,
  kString,
  kSequence,   // sequence<element[, bound]>
  kDSequence,  // dsequence<element[, length]>  (PARDIS extension)
  kNamed,      // reference to a typedef/struct/enum/interface
};

struct TypeRef {
  TypeKind kind = TypeKind::kVoid;
  BasicKind basic = BasicKind::kLong;      // when kBasic
  std::string name;                        // when kNamed
  std::shared_ptr<TypeRef> element;        // when kSequence/kDSequence
  std::uint64_t bound = 0;                 // 0 = unbounded / unspecified
  SourceLoc loc;

  static TypeRef void_type() { return TypeRef{}; }
  static TypeRef basic_type(BasicKind k) {
    TypeRef t;
    t.kind = TypeKind::kBasic;
    t.basic = k;
    return t;
  }
};

enum class ParamDir { kIn, kOut, kInOut };

const char* to_string(ParamDir d) noexcept;

struct Param {
  ParamDir dir = ParamDir::kIn;
  TypeRef type;
  std::string name;
  SourceLoc loc;
};

struct Operation {
  bool oneway = false;
  TypeRef return_type;
  std::string name;
  std::vector<Param> params;
  std::vector<std::string> raises;  // exception names
  SourceLoc loc;
};

struct Attribute {
  bool readonly = false;
  TypeRef type;
  std::string name;
  SourceLoc loc;
};

struct StructField {
  TypeRef type;
  std::string name;
  SourceLoc loc;
};

struct StructDef {
  std::string name;
  std::vector<StructField> fields;
  SourceLoc loc;
};

struct EnumDef {
  std::string name;
  std::vector<std::string> enumerators;
  SourceLoc loc;
};

struct TypedefDef {
  std::string name;
  TypeRef type;
  SourceLoc loc;
};

struct ConstDef {
  std::string name;
  TypeRef type;
  std::string value;  // literal text ("42", "3.5", "TRUE", quoted string)
  bool is_string = false;
  SourceLoc loc;
};

struct ExceptionDef {
  std::string name;
  std::vector<StructField> members;
  SourceLoc loc;
};

struct InterfaceDef {
  std::string name;
  std::vector<std::string> bases;
  std::vector<Operation> operations;
  std::vector<Attribute> attributes;
  SourceLoc loc;
};

struct ModuleDef;

using Definition =
    std::variant<StructDef, EnumDef, TypedefDef, ConstDef, ExceptionDef,
                 InterfaceDef, std::shared_ptr<ModuleDef>>;

struct ModuleDef {
  std::string name;
  std::vector<Definition> definitions;
  SourceLoc loc;
};

struct TranslationUnit {
  std::vector<Definition> definitions;
};

/// Human-readable type spelling for diagnostics ("sequence<double>").
std::string spell(const TypeRef& type);

}  // namespace pardis::idl
