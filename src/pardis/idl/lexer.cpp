#include "pardis/idl/lexer.hpp"

#include <array>
#include <cctype>

namespace pardis::idl {

namespace {

constexpr std::array kKeywords = {
    "module",    "interface", "struct",   "enum",     "typedef",
    "sequence",  "dsequence", "exception", "const",   "raises",
    "oneway",    "in",        "out",      "inout",    "void",
    "long",      "short",     "unsigned", "float",    "double",
    "boolean",   "char",      "octet",    "string",   "readonly",
    "attribute", "TRUE",      "FALSE",
};

class Cursor {
 public:
  explicit Cursor(const std::string& src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++loc_.line;
      loc_.column = 1;
    } else {
      ++loc_.column;
    }
    return c;
  }
  SourceLoc loc() const { return loc_; }

 private:
  const std::string& src_;
  std::size_t pos_ = 0;
  SourceLoc loc_{};
};

}  // namespace

bool is_idl_keyword(const std::string& word) {
  for (const char* kw : kKeywords) {
    if (word == kw) return true;
  }
  return false;
}

std::vector<Token> lex(const std::string& source, DiagnosticSink& sink) {
  std::vector<Token> tokens;
  Cursor cur(source);

  const auto push = [&](TokKind kind, std::string text, SourceLoc loc) {
    tokens.push_back(Token{kind, std::move(text), loc});
  };

  while (!cur.done()) {
    const SourceLoc loc = cur.loc();
    const char c = cur.peek();

    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }
    // Comments.
    if (c == '/' && cur.peek(1) == '/') {
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      cur.advance();
      cur.advance();
      bool closed = false;
      while (!cur.done()) {
        if (cur.peek() == '*' && cur.peek(1) == '/') {
          cur.advance();
          cur.advance();
          closed = true;
          break;
        }
        cur.advance();
      }
      if (!closed) sink.error(loc, "unterminated block comment");
      continue;
    }
    // Preprocessor-style lines are skipped (we do not implement cpp).
    if (c == '#') {
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (!cur.done() && (std::isalnum(static_cast<unsigned char>(
                                 cur.peek())) ||
                             cur.peek() == '_')) {
        word.push_back(cur.advance());
      }
      const TokKind kind =
          is_idl_keyword(word) ? TokKind::kKeyword : TokKind::kIdentifier;
      push(kind, std::move(word), loc);
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      bool is_float = false;
      // Hex?
      if (c == '0' && (cur.peek(1) == 'x' || cur.peek(1) == 'X')) {
        num.push_back(cur.advance());
        num.push_back(cur.advance());
        while (std::isxdigit(static_cast<unsigned char>(cur.peek()))) {
          num.push_back(cur.advance());
        }
      } else {
        while (std::isdigit(static_cast<unsigned char>(cur.peek()))) {
          num.push_back(cur.advance());
        }
        if (cur.peek() == '.' &&
            std::isdigit(static_cast<unsigned char>(cur.peek(1)))) {
          is_float = true;
          num.push_back(cur.advance());
          while (std::isdigit(static_cast<unsigned char>(cur.peek()))) {
            num.push_back(cur.advance());
          }
        }
        if (cur.peek() == 'e' || cur.peek() == 'E') {
          is_float = true;
          num.push_back(cur.advance());
          if (cur.peek() == '+' || cur.peek() == '-') {
            num.push_back(cur.advance());
          }
          if (!std::isdigit(static_cast<unsigned char>(cur.peek()))) {
            sink.error(cur.loc(), "malformed exponent in numeric literal");
          }
          while (std::isdigit(static_cast<unsigned char>(cur.peek()))) {
            num.push_back(cur.advance());
          }
        }
      }
      push(is_float ? TokKind::kFloatLiteral : TokKind::kIntLiteral,
           std::move(num), loc);
      continue;
    }
    // String literals.
    if (c == '"') {
      cur.advance();
      std::string text;
      bool closed = false;
      while (!cur.done()) {
        const char d = cur.advance();
        if (d == '"') {
          closed = true;
          break;
        }
        if (d == '\\' && !cur.done()) {
          const char e = cur.advance();
          switch (e) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case '\\': text.push_back('\\'); break;
            case '"': text.push_back('"'); break;
            default:
              sink.error(cur.loc(), std::string("unknown escape \\") + e);
              break;
          }
          continue;
        }
        if (d == '\n') {
          sink.error(loc, "newline in string literal");
          break;
        }
        text.push_back(d);
      }
      if (!closed) sink.error(loc, "unterminated string literal");
      push(TokKind::kStringLiteral, std::move(text), loc);
      continue;
    }
    // Scope operator.
    if (c == ':' && cur.peek(1) == ':') {
      cur.advance();
      cur.advance();
      push(TokKind::kPunct, "::", loc);
      continue;
    }
    // Single-character punctuation.
    switch (c) {
      case '{': case '}': case '(': case ')': case '<': case '>':
      case '[': case ']': case ';': case ':': case ',': case '=':
      case '|':
        push(TokKind::kPunct, std::string(1, cur.advance()), loc);
        continue;
      default:
        sink.error(loc, std::string("unexpected character '") + c + "'");
        cur.advance();
        continue;
    }
  }

  push(TokKind::kEof, "", cur.loc());
  return tokens;
}

}  // namespace pardis::idl
