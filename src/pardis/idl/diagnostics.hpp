// Source locations and diagnostics for the IDL compiler.

#pragma once

#include <string>
#include <vector>

#include "pardis/common/error.hpp"

namespace pardis::idl {

struct SourceLoc {
  int line = 1;
  int column = 1;

  std::string to_string() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }
  bool operator==(const SourceLoc&) const = default;
};

struct Diagnostic {
  enum class Severity { kError, kWarning };
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;

  std::string to_string() const;
};

/// Collects diagnostics across lexing, parsing and semantic analysis.
class DiagnosticSink {
 public:
  void error(SourceLoc loc, std::string message);
  void warning(SourceLoc loc, std::string message);

  bool has_errors() const noexcept { return error_count_ > 0; }
  std::size_t error_count() const noexcept { return error_count_; }
  const std::vector<Diagnostic>& all() const noexcept { return diags_; }

  /// All diagnostics, one per line (compiler output format).
  std::string to_string() const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

/// Thrown when compilation cannot proceed; carries the sink's report.
class CompileError : public Exception {
 public:
  explicit CompileError(const DiagnosticSink& sink)
      : Exception(sink.to_string()) {}
};

}  // namespace pardis::idl
