// Semantic analysis: scopes, name resolution and the PARDIS-specific
// legality rules (dsequence element types, parameter placement, raises
// clauses, constant typing, interface inheritance).

#pragma once

#include <map>
#include <string>
#include <vector>

#include "pardis/idl/ast.hpp"
#include "pardis/idl/diagnostics.hpp"

namespace pardis::idl {

struct Symbol {
  enum class Kind {
    kModule,
    kStruct,
    kEnum,
    kTypedef,
    kInterface,
    kException,
    kConst,
  };
  Kind kind = Kind::kModule;
  std::string qualified;  // e.g. "Sim::diff_object"
  const StructDef* struct_def = nullptr;
  const EnumDef* enum_def = nullptr;
  const TypedefDef* typedef_def = nullptr;
  const InterfaceDef* interface_def = nullptr;
  const ExceptionDef* exception_def = nullptr;
  const ConstDef* const_def = nullptr;
};

const char* to_string(Symbol::Kind k) noexcept;

/// The resolved model handed to the code generator.
class SemaModel {
 public:
  /// Resolves `name` (possibly qualified with ::) as seen from `scope`
  /// (a module path like "A::B", or "" for global).  Returns nullptr when
  /// unknown.
  const Symbol* lookup(const std::string& scope,
                       const std::string& name) const;

  /// Expands typedef chains to the underlying type; named references to
  /// structs/enums/interfaces are returned as kNamed with the *qualified*
  /// name filled in.
  TypeRef canonical(const std::string& scope, const TypeRef& type) const;

  /// All operations of an interface including inherited ones (base-first,
  /// declaration order).
  std::vector<Operation> flattened_operations(
      const std::string& scope, const InterfaceDef& iface) const;
  std::vector<Attribute> flattened_attributes(
      const std::string& scope, const InterfaceDef& iface) const;

  const std::map<std::string, Symbol>& symbols() const noexcept {
    return symbols_;
  }

  /// Registers a symbol under its qualified name; returns the existing
  /// symbol (and does not replace it) when the name is already taken.
  /// Used by the analyzer while building the model.
  const Symbol* add_symbol(const Symbol& sym, bool* inserted);

 private:
  std::map<std::string, Symbol> symbols_;  // keyed by qualified name
};

/// Runs all checks; diagnostics go to `sink`.  The model is complete even
/// when errors were reported (callers must check sink.has_errors()).
SemaModel analyze(const TranslationUnit& tu, DiagnosticSink& sink);

}  // namespace pardis::idl
