// Lexer for the PARDIS IDL (a CORBA IDL subset plus the `dsequence`
// extension introduced by the paper).

#pragma once

#include <string>
#include <vector>

#include "pardis/idl/diagnostics.hpp"

namespace pardis::idl {

enum class TokKind {
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kPunct,   // one of  { } ( ) < > [ ] ; : , = :: |
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  SourceLoc loc;

  bool is_keyword(const char* kw) const {
    return kind == TokKind::kKeyword && text == kw;
  }
  bool is_punct(const char* p) const {
    return kind == TokKind::kPunct && text == p;
  }
};

/// All IDL keywords this compiler recognizes.
bool is_idl_keyword(const std::string& word);

/// Tokenizes `source`; lexical errors go to `sink` (the offending character
/// is skipped so later errors are still reported).  Always ends with kEof.
std::vector<Token> lex(const std::string& source, DiagnosticSink& sink);

}  // namespace pardis::idl
