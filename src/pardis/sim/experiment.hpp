// Shared machinery for the paper-table benchmarks and shape tests
// (the experiment harness of DESIGN.md's per-experiment index).
//
// Each table benchmark replays the paper's experiment (§3.1): a parallel
// client on one simulated host invokes an operation with one "in"
// distributed-sequence argument on an SPMD object on another host, over a
// single shared link, and reports per-phase times averaged over many
// blocking invocations.
//
// Environment knobs (see EXPERIMENTS.md):
//   PARDIS_SEQLEN     sequence length in doubles (default 1<<17)
//   PARDIS_REPS       invocations averaged per configuration (default 15)
//   PARDIS_LINK_MBPS  link bandwidth in MB/s (default 100; 0 = unlimited)
//   PARDIS_LAT_US     per-frame link latency in microseconds (default 200)

#pragma once

#include <array>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "pardis/common/config.hpp"
#include "pardis/common/stats.hpp"
#include "pardis/obs/observability.hpp"
#include "pardis/obs/sink.hpp"
#include "pardis/sim/scenario.hpp"
#include "pardis/transfer/spmd_client.hpp"
#include "pardis/transfer/spmd_server.hpp"

namespace pardis::bench {

/// The benchmark servant: a "diffusion"-shaped operation with one `in`
/// distributed argument, mirroring the paper's measured invocation ("in our
/// invocations we were including one `in' argument sent only from the
/// client to the server", §3.1).
class SinkServant : public transfer::SpmdServant {
 public:
  const char* type_id() const override { return "IDL:bench/sink:1.0"; }
  void dispatch(transfer::ServerCall& call) override {
    if (call.operation() != "consume") {
      throw BAD_OPERATION(call.operation());
    }
    auto seq = call.take_dseq<double>(0);
    // Touch the data so unmarshaling is not optimized away.
    double acc = 0;
    for (std::size_t i = 0; i < seq.local_length(); ++i) {
      acc += seq.local_data()[i];
    }
    call.results().put_double(acc);
  }
};

struct BenchConfig {
  int client_ranks = 2;
  int server_ranks = 2;
  std::uint64_t seqlen = 1u << 17;
  orb::TransferMethod method = orb::TransferMethod::kCentralized;
  int reps = 15;
  net::LinkModel link;
  /// Wire backend for the scenario (`--transport=sim|tcp` on the bench
  /// command line).  nullopt defers to PARDIS_TRANSPORT; note the link
  /// model only shapes traffic on the simulated backend — over tcp the
  /// numbers reflect real loopback sockets.
  std::optional<transport::Kind> transport;
};

/// Per-phase means over the repetitions: client side reduced max-over-ranks
/// (barrier from the communicating thread), server side as reported in the
/// reply.
struct BenchResult {
  std::array<double, kPhaseCount> client{};
  std::array<double, kPhaseCount> server{};
  /// The scenario's "client.phase.total" histogram (ms, one sample per
  /// measured rep per rank) — p50/p99 feed the BENCH_*.json summaries.
  obs::MetricsRegistry::Sample total_ms{};

  double client_ms(Phase p) const {
    return client[static_cast<std::size_t>(p)];
  }
  double server_ms(Phase p) const {
    return server[static_cast<std::size_t>(p)];
  }
};

inline net::LinkModel link_from_env() {
  const double mbps = env_double("PARDIS_LINK_MBPS", 100.0);
  if (mbps <= 0) return net::LinkModel::unlimited();
  // PARDIS_STREAM_FRAC: single-stream achievable fraction of the link
  // (calibrated to the paper's 12.27/26.7 peak ratio); >= 1 disables it.
  return net::LinkModel::atm_scaled(
      mbps * 1e6, std::chrono::microseconds(env_u64("PARDIS_LAT_US", 200)),
      env_double("PARDIS_STREAM_FRAC", 0.46));
}

/// Runs `reps` invocations of the paper's experiment and returns phase
/// means.  One warm-up invocation is excluded from the averages.
inline BenchResult run_config(const BenchConfig& cfg) {
  sim::ScenarioConfig scfg;
  scfg.server.nranks = cfg.server_ranks;
  scfg.client.nranks = cfg.client_ranks;
  scfg.link = cfg.link;
  scfg.orb.transport = cfg.transport;
  sim::Scenario scenario(scfg);

  BenchResult result;
  scenario.run(
      [&](rts::Communicator& comm) {
        transfer::SpmdServer server(scenario.orb(), comm,
                                    scfg.server.host);
        SinkServant servant;
        server.activate("sink", servant);
        server.serve();
      },
      [&](rts::Communicator& comm) {
        auto binding = transfer::SpmdBinding::bind(
            scenario.orb(), comm, scfg.client.host, "sink",
            "IDL:bench/sink:1.0");
        dseq::DSequence<double> seq(comm, cfg.seqlen);
        for (std::size_t i = 0; i < seq.local_length(); ++i) {
          seq.local_data()[i] = static_cast<double>(i);
        }
        transfer::CallOptions opts;
        opts.method = cfg.method;

        std::array<double, kPhaseCount> client_sum{};
        std::array<double, kPhaseCount> server_sum{};
        for (int rep = -1; rep < cfg.reps; ++rep) {
          transfer::TypedDSeqArg<double> arg(seq, orb::ArgDir::kIn);
          cdr::Encoder enc;
          enc.put_long(rep);
          binding.invoke("consume", enc.take(), {&arg}, opts);
          if (rep < 0) continue;  // warm-up
          const auto client_now = transfer::reduce_stats(
              comm, binding.last_stats(), &scenario.orb().metrics(),
              "client.phase.");
          for (std::size_t i = 0; i < kPhaseCount; ++i) {
            client_sum[i] += client_now[i];
            server_sum[i] += binding.last_server_stats().size() > i
                                 ? binding.last_server_stats()[i]
                                 : 0.0;
          }
        }
        if (comm.rank() == 0) {
          for (std::size_t i = 0; i < kPhaseCount; ++i) {
            result.client[i] = client_sum[i] / cfg.reps;
            result.server[i] = server_sum[i] / cfg.reps;
          }
        }
        binding.unbind();
      },
      "sink");
  for (auto& sample : scenario.orb().metrics().snapshot()) {
    if (sample.name == "client.phase.total") {
      result.total_ms = std::move(sample);
    }
  }
  return result;
}

/// Bench-binary tracing session (README "Observability").  `--trace
/// out.json` on the command line, or PARDIS_TRACE=out.json in the
/// environment, turns span tracing on for the whole run; the destructor
/// writes the accumulated timeline as chrome://tracing JSON.  Without a
/// path this is inert and the binaries behave exactly as before.
class TraceSession {
 public:
  TraceSession(int argc, char** argv)
      : path_(obs::trace_path_from_env()) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--trace") == 0) path_ = argv[i + 1];
    }
    if (!path_.empty()) obs::Tracer::global().enable();
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  ~TraceSession() {
    if (path_.empty()) return;
    obs::TraceSink sink;
    sink.add(obs::Tracer::global());
    sink.name_scenario_processes();
    if (sink.write_file(path_)) {
      std::printf(
          "trace: %zu spans -> %s (load in chrome://tracing or Perfetto)\n",
          sink.event_count(), path_.c_str());
    }
  }

  bool active() const noexcept { return !path_.empty(); }

 private:
  std::string path_;
};

/// Applies `--transport sim|tcp` / `--transport=tcp` from the bench
/// command line (overrides PARDIS_TRANSPORT).  Unknown values throw
/// BAD_PARAM via parse_kind.
inline void apply_transport_flag(BenchConfig& cfg, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      cfg.transport = transport::parse_kind(argv[i] + 12);
    } else if (std::strcmp(argv[i], "--transport") == 0 && i + 1 < argc) {
      cfg.transport = transport::parse_kind(argv[i + 1]);
    }
  }
}

inline void print_banner(const char* title, const BenchConfig& cfg) {
  std::printf("%s\n", title);
  std::string link = "unlimited";
  if (cfg.link.bandwidth_bps > 0) {
    link = format_fixed(cfg.link.bandwidth_bps / 1e6, 0) + " MB/s shared";
  }
  const transport::Kind kind =
      cfg.transport.value_or(transport::kind_from_env());
  if (kind != transport::Kind::kSim) {
    link = std::string("real sockets (") + transport::to_string(kind) +
           "), model inactive";
  }
  std::printf("  sequence: %llu doubles (%.1f KB)   reps: %d   link: %s\n",
              static_cast<unsigned long long>(cfg.seqlen),
              static_cast<double>(cfg.seqlen) * 8.0 / 1024.0, cfg.reps,
              link.c_str());
  std::printf(
      "  (paper testbed: 2^19 doubles over a dedicated 155 Mb/s ATM link, "
      "1000 reps;\n   shapes, not absolute times, are comparable -- see "
      "EXPERIMENTS.md)\n\n");
}

}  // namespace pardis::bench
