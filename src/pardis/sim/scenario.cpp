#include "pardis/sim/scenario.hpp"

#include <cstdio>
#include <exception>

#include "pardis/common/config.hpp"
#include "pardis/common/log.hpp"
#include "pardis/transfer/spmd_client.hpp"

namespace pardis::sim {

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)),
      // Read (and validate) the dump flag up front so a malformed value
      // fails before the run, not at wind-down.
      metrics_dump_(env_bool("PARDIS_METRICS_DUMP", false)) {
  orb_ = orb::Orb::create(config_.orb);
  orb_->fabric().set_link(config_.server.host, config_.client.host,
                          config_.link);
}

void Scenario::run(const Body& server_body, const Body& client_body,
                   const std::string& shutdown_object) {
  run_impl(server_body, client_body, shutdown_object);
}

void Scenario::run(const Body& server_body, const Body& client_body) {
  run_impl(server_body, client_body, {});
}

void Scenario::run_impl(const Body& server_body, const Body& client_body,
                        const std::string& shutdown_object) {
  rts::Team server_team("server:" + config_.server.host,
                        config_.server.nranks);
  rts::Team client_team("client:" + config_.client.host,
                        config_.client.nranks);

  server_team.start(server_body);

  std::exception_ptr client_error;
  try {
    client_team.run(client_body);
  } catch (...) {
    client_error = std::current_exception();
  }

  // Wind the server down even when the client failed, so the join below
  // cannot hang on a healthy server.
  if (!shutdown_object.empty()) {
    try {
      auto ref = orb_->naming().resolve(shutdown_object);
      if (ref) {
        transfer::send_shutdown(*orb_, config_.client.host, *ref);
      } else {
        PARDIS_LOG_WARN << "scenario: shutdown object '" << shutdown_object
                        << "' never registered";
      }
    } catch (const std::exception& e) {
      PARDIS_LOG_WARN << "scenario: shutdown delivery failed: " << e.what();
    }
  }

  std::exception_ptr server_error;
  try {
    server_team.join();
  } catch (...) {
    server_error = std::current_exception();
  }

  // Operational visibility at wind-down (docs/configuration.md).
  if (metrics_dump_) {
    std::fprintf(stderr, "--- metrics (%s <-> %s) ---\n%s",
                 config_.client.host.c_str(), config_.server.host.c_str(),
                 orb_->collect_metrics().dump().c_str());
  }

  if (client_error) std::rethrow_exception(client_error);
  if (server_error) std::rethrow_exception(server_error);
}

}  // namespace pardis::sim
