// Scenario harness: the stand-in for the paper's two-machine testbed.
//
// A Scenario wires one Orb, two named hosts joined by a configurable link
// model (the 155 Mb/s ATM substitute), a server application of P computing
// threads and a client application of K computing threads.  Examples,
// integration tests and every benchmark table run through this harness.

#pragma once

#include <functional>
#include <memory>
#include <string>

#include "pardis/net/link.hpp"
#include "pardis/orb/orb.hpp"
#include "pardis/rts/communicator.hpp"
#include "pardis/rts/team.hpp"

namespace pardis::sim {

struct AppConfig {
  std::string host;
  int nranks = 1;
};

struct ScenarioConfig {
  AppConfig server{"powerchallenge", 4};  // the paper's server machine
  AppConfig client{"onyx", 2};            // the paper's client machine
  /// Link between the two hosts (unlimited by default; benches throttle).
  net::LinkModel link = net::LinkModel::unlimited();
  orb::OrbConfig orb;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config = {});

  orb::Orb& orb() noexcept { return *orb_; }
  const ScenarioConfig& config() const noexcept { return config_; }

  using Body = std::function<void(rts::Communicator&)>;

  /// Runs the server application (which must activate `shutdown_object`
  /// and enter serve()) and the client application concurrently.  When the
  /// client application finishes, a Shutdown is delivered to the server's
  /// service loop.  The first exception from either application is
  /// rethrown after both have wound down.
  void run(const Body& server_body, const Body& client_body,
           const std::string& shutdown_object);

  /// Variant without automatic shutdown: the server body must return on
  /// its own.
  void run(const Body& server_body, const Body& client_body);

 private:
  void run_impl(const Body& server_body, const Body& client_body,
                const std::string& shutdown_object);

  ScenarioConfig config_;
  bool metrics_dump_;
  std::shared_ptr<orb::Orb> orb_;
};

}  // namespace pardis::sim
