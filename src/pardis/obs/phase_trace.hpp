// Bridges PhaseTimer accumulation and span emission.
//
// The transfer engines time every phase through PhaseTimer::time(); wrapping
// the timer in a TracedTimer keeps those call sites unchanged while also
// emitting one child span per timed region when tracing is enabled.  With
// tracing disabled the only added cost per timed region is one relaxed
// atomic load.

#pragma once

#include <type_traits>
#include <utility>

#include "pardis/common/timing.hpp"
#include "pardis/obs/trace.hpp"

namespace pardis::obs {

class TracedTimer {
 public:
  /// `tracer` may be null (no tracing).  `pid`/`tid` locate the spans on
  /// the timeline: application id and computing-thread rank.
  TracedTimer(PhaseTimer& timer, Tracer* tracer, std::uint32_t pid,
              std::uint32_t tid) noexcept
      : timer_(timer), tracer_(tracer), pid_(pid), tid_(tid) {}

  /// Times `fn()`, charges phase `p`, and (when tracing) emits a span named
  /// after the phase.  Mirrors PhaseTimer::time().
  template <typename Fn>
  decltype(auto) time(Phase p, Fn&& fn) {
    if (tracer_ == nullptr || !tracer_->enabled()) {
      return timer_.time(p, std::forward<Fn>(fn));
    }
    const auto t0 = Clock::now();
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      finish(p, t0);
    } else {
      decltype(auto) result = fn();
      finish(p, t0);
      return result;
    }
  }

  /// Plain accumulation (no span: the region's start time is unknown).
  void add(Phase p, Duration d) { timer_.add(p, d); }

 private:
  void finish(Phase p, Clock::time_point t0) {
    const auto t1 = Clock::now();
    timer_.add(p, t1 - t0);
    tracer_->record(to_string(p), "phase", pid_, tid_, t0, t1);
  }

  PhaseTimer& timer_;
  Tracer* tracer_;
  std::uint32_t pid_;
  std::uint32_t tid_;
};

}  // namespace pardis::obs
