#include "pardis/obs/trace.hpp"

namespace pardis::obs {

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::record(std::string name, std::string cat, std::uint32_t pid,
                    std::uint32_t tid, Clock::time_point begin,
                    Clock::time_point end) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.cat = std::move(cat);
  event.pid = pid;
  event.tid = tid;
  event.ts_us = to_us(begin - origin_);
  event.dur_us = to_us(end - begin);
  std::lock_guard<common::RankedMutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return events_;
}

std::size_t Tracer::size() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<common::RankedMutex> lock(mu_);
  events_.clear();
}

}  // namespace pardis::obs
