#include "pardis/obs/trace.hpp"

#include <unistd.h>

#include "pardis/common/config.hpp"
#include "pardis/common/error.hpp"

namespace pardis::obs {

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::record(std::string name, std::string cat, std::uint32_t pid,
                    std::uint32_t tid, Clock::time_point begin,
                    Clock::time_point end, std::uint64_t trace_id) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.cat = std::move(cat);
  event.pid = pid;
  event.tid = tid;
  event.ts_us = to_us(begin - origin_);
  event.dur_us = to_us(end - begin);
  event.trace_id = trace_id;
  std::lock_guard<common::RankedMutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::uint64_t Tracer::sample_trace_id() noexcept {
  if (!enabled()) return 0;
  const std::uint64_t n = sample_period();
  const std::uint64_t seq = sample_seq_.fetch_add(1);
  if (n > 1 && seq % n != 0) return 0;
  // Fold the OS pid into the high half so ids from concurrently traced
  // processes never collide; the low half stays a process-local sequence.
  // The pid half is nonzero on every POSIX system, so the id is nonzero.
  const std::uint64_t seq_id =
      next_trace_.fetch_add(1) + 1;
  return (static_cast<std::uint64_t>(::getpid()) << 32) |
         (seq_id & 0xffffffffu);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return events_;
}

std::size_t Tracer::size() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<common::RankedMutex> lock(mu_);
  events_.clear();
}

std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next{64};
  thread_local std::uint32_t tid =
      next.fetch_add(1);
  return tid;
}

std::uint32_t role_pid(std::uint32_t role) {
  static const bool derive = [] {
    const auto mode = env_string("PARDIS_TRACE_PID");
    if (!mode || *mode == "fixed") return false;
    if (*mode == "process") return true;
    throw BAD_PARAM("PARDIS_TRACE_PID must be 'fixed' or 'process', got '" +
                    *mode + "'");
  }();
  if (!derive) return role;
  return static_cast<std::uint32_t>(::getpid()) * 4 + role;
}

}  // namespace pardis::obs
