#include "pardis/obs/sink.hpp"

#include <cstdio>
#include <fstream>
#include <set>

#include "pardis/common/log.hpp"
#include "pardis/common/stats.hpp"

namespace pardis::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void TraceSink::add_events(std::vector<TraceEvent> events) {
  events_.reserve(events_.size() + events.size());
  for (TraceEvent& e : events) events_.push_back(std::move(e));
}

void TraceSink::set_process_name(std::uint32_t pid, std::string name) {
  process_names_[pid] = std::move(name);
}

void TraceSink::set_thread_name(std::uint32_t pid, std::uint32_t tid,
                                std::string name) {
  thread_names_[{pid, tid}] = std::move(name);
}

void TraceSink::name_scenario_processes() {
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const TraceEvent& e : events_) seen.insert({e.pid, e.tid});
  for (const auto& [pid, tid] : seen) {
    if (process_names_.find(pid) == process_names_.end()) {
      if (pid == kClientPid) {
        process_names_[pid] = "client app";
      } else if (pid == kServerPid) {
        process_names_[pid] = "server app";
      } else if (pid % 4 == kClientPid) {
        // Derived pid (PARDIS_TRACE_PID=process, see obs::role_pid): the
        // role rides in the low bits, the OS pid above them.
        process_names_[pid] = "client app (os pid " +
                              std::to_string(pid / 4) + ")";
      } else if (pid % 4 == kServerPid) {
        process_names_[pid] = "server app (os pid " +
                              std::to_string(pid / 4) + ")";
      }
    }
    if (thread_names_.find({pid, tid}) == thread_names_.end()) {
      // Rank tids stay below 64; this_thread_tid() hands out 64+ to
      // threads outside the rank structure (workers, reply routers).
      thread_names_[{pid, tid}] = tid < 64
                                      ? "rank " + std::to_string(tid)
                                      : "worker " + std::to_string(tid);
    }
  }
}

namespace {

void write_metadata(std::ostream& os, const char* name, std::uint32_t pid,
                    const std::uint32_t* tid, const std::string& value,
                    bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "  {\"name\":\"" << name << "\",\"ph\":\"M\",\"pid\":" << pid;
  if (tid != nullptr) os << ",\"tid\":" << *tid;
  os << ",\"args\":{\"name\":\"" << json_escape(value) << "\"}}";
}

}  // namespace

void TraceSink::write(std::ostream& os) const {
  os << "{\n\"traceEvents\": [\n";
  bool first = true;
  for (const auto& [pid, name] : process_names_) {
    write_metadata(os, "process_name", pid, nullptr, name, first);
  }
  for (const auto& [key, name] : thread_names_) {
    write_metadata(os, "thread_name", key.first, &key.second, name, first);
  }
  for (const TraceEvent& e : events_) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << json_escape(e.cat) << "\",\"ph\":\"X\",\"pid\":" << e.pid
       << ",\"tid\":" << e.tid << ",\"ts\":" << format_fixed(e.ts_us, 3)
       << ",\"dur\":" << format_fixed(e.dur_us, 3);
    if (e.trace_id != 0) {
      // chrome://tracing surfaces args on click; searching the trace_id
      // selects every span of one sampled invocation across processes.
      os << ",\"args\":{\"trace_id\":\"" << e.trace_id << "\"}";
    }
    os << "}";
  }
  os << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
}

bool TraceSink::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    PARDIS_LOG_ERROR << "trace sink: cannot open " << path;
    return false;
  }
  write(out);
  out.flush();
  if (!out) {
    PARDIS_LOG_ERROR << "trace sink: write failed: " << path;
    return false;
  }
  return true;
}

}  // namespace pardis::obs
