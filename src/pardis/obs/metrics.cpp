#include "pardis/obs/metrics.hpp"

#include <sstream>

#include "pardis/common/error.hpp"

namespace pardis::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.gauge || e.histogram) {
    throw BAD_PARAM("metric '" + name + "' already exists with another kind");
  }
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.counter || e.histogram) {
    throw BAD_PARAM("metric '" + name + "' already exists with another kind");
  }
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.counter || e.gauge) {
    throw BAD_PARAM("metric '" + name + "' already exists with another kind");
  }
  if (!e.histogram) e.histogram = std::make_unique<Histogram>();
  return *e.histogram;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    Sample s;
    s.name = name;
    if (e.counter) {
      s.kind = Sample::Kind::kCounter;
      s.count = e.counter->value();
    } else if (e.gauge) {
      s.kind = Sample::Kind::kGauge;
      s.level = e.gauge->value();
    } else {
      s.kind = Sample::Kind::kHistogram;
      s.stat = e.histogram->snapshot();
      s.count = s.stat.count();
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::dump() const {
  std::ostringstream os;
  for (const Sample& s : snapshot()) {
    switch (s.kind) {
      case Sample::Kind::kCounter:
        os << s.name << " " << s.count << "\n";
        break;
      case Sample::Kind::kGauge:
        os << s.name << " " << s.level << "\n";
        break;
      case Sample::Kind::kHistogram:
        os << s.name << " n=" << s.stat.count()
           << " mean=" << format_fixed(s.stat.mean(), 3)
           << " min=" << format_fixed(s.stat.min(), 3)
           << " max=" << format_fixed(s.stat.max(), 3) << "\n";
        break;
    }
  }
  return os.str();
}

}  // namespace pardis::obs
