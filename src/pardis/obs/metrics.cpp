#include "pardis/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "pardis/common/error.hpp"

namespace pardis::obs {

std::size_t Histogram::bucket_of(double x) noexcept {
  if (!(x > 1.0)) return 0;  // NaN, negatives, and (0, 1] share bucket 0
  const int e = static_cast<int>(std::ceil(std::log2(x)));
  return std::min<std::size_t>(static_cast<std::size_t>(std::max(e, 1)),
                               kBuckets - 1);
}

double Histogram::quantile(double q) const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  const std::uint64_t n = stat_.count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Index (1-based) of the sample the quantile falls on.
  const std::uint64_t target =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(
                                     q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] < target) {
      seen += buckets_[i];
      continue;
    }
    // The target sample's midpoint rank within bucket i, treating the
    // bucket's samples as spread evenly across it.  The midpoint keeps the
    // estimate strictly interior: rank == bucket count must NOT collapse to
    // the bucket's upper bound, which used to pin p99 at powers of two (and
    // then clamp to the observed max) whenever the tail bucket was sparse.
    const double frac =
        (static_cast<double>(target - seen) - 0.5) /
        static_cast<double>(buckets_[i]);
    // Log-linear (geometric) interpolation inside bucket i = [2^(i-1), 2^i):
    // buckets are octaves, so equal rank steps move equal log-space steps.
    // Bucket 0 covers (0, 1] and interpolates linearly.
    const double est =
        i == 0 ? frac
               : std::exp2(static_cast<double>(i) - 1.0 + frac);
    return std::clamp(est, stat_.min(), stat_.max());
  }
  return stat_.max();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.gauge || e.histogram) {
    throw BAD_PARAM("metric '" + name + "' already exists with another kind");
  }
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.counter || e.histogram) {
    throw BAD_PARAM("metric '" + name + "' already exists with another kind");
  }
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.counter || e.gauge) {
    throw BAD_PARAM("metric '" + name + "' already exists with another kind");
  }
  if (!e.histogram) e.histogram = std::make_unique<Histogram>();
  return *e.histogram;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    Sample s;
    s.name = name;
    if (e.counter) {
      s.kind = Sample::Kind::kCounter;
      s.count = e.counter->value();
    } else if (e.gauge) {
      s.kind = Sample::Kind::kGauge;
      s.level = e.gauge->value();
    } else {
      s.kind = Sample::Kind::kHistogram;
      s.stat = e.histogram->snapshot();
      s.count = s.stat.count();
      s.p50 = e.histogram->quantile(0.50);
      s.p99 = e.histogram->quantile(0.99);
      s.p999 = e.histogram->quantile(0.999);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::dump() const {
  std::ostringstream os;
  for (const Sample& s : snapshot()) {
    switch (s.kind) {
      case Sample::Kind::kCounter:
        os << s.name << " " << s.count << "\n";
        break;
      case Sample::Kind::kGauge:
        os << s.name << " " << s.level << "\n";
        break;
      case Sample::Kind::kHistogram:
        os << s.name << " n=" << s.stat.count()
           << " mean=" << format_fixed(s.stat.mean(), 3)
           << " min=" << format_fixed(s.stat.min(), 3)
           << " max=" << format_fixed(s.stat.max(), 3)
           << " p50=" << format_fixed(s.p50, 3)
           << " p99=" << format_fixed(s.p99, 3)
           << " p999=" << format_fixed(s.p999, 3) << "\n";
        break;
    }
  }
  return os.str();
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted names
// map dots (and anything else) to underscores.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

std::string prometheus_text(const MetricsRegistry& registry) {
  std::ostringstream os;
  for (const MetricsRegistry::Sample& s : registry.snapshot()) {
    const std::string name = prometheus_name(s.name);
    switch (s.kind) {
      case MetricsRegistry::Sample::Kind::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << " " << s.count << "\n";
        break;
      case MetricsRegistry::Sample::Kind::kGauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << " " << s.level << "\n";
        break;
      case MetricsRegistry::Sample::Kind::kHistogram:
        // The octave histogram keeps no cumulative buckets, so render as a
        // summary: quantile series plus _sum/_count.
        os << "# TYPE " << name << " summary\n";
        os << name << "{quantile=\"0.5\"} " << format_fixed(s.p50, 3) << "\n";
        os << name << "{quantile=\"0.99\"} " << format_fixed(s.p99, 3)
           << "\n";
        os << name << "{quantile=\"0.999\"} " << format_fixed(s.p999, 3)
           << "\n";
        os << name << "_sum "
           << format_fixed(s.stat.mean() * static_cast<double>(s.count), 3)
           << "\n";
        os << name << "_count " << s.count << "\n";
        break;
    }
  }
  return os.str();
}

}  // namespace pardis::obs
