// Always-on, lock-cheap metrics (DESIGN-level goal: give every layer a
// measurement substrate that is safe to leave enabled in production).
//
// Three instrument kinds, mirroring what the paper's evaluation needs:
//
//   * Counter   — monotonically increasing event/byte counts (atomic add);
//   * Gauge     — last-written level, e.g. active bindings (atomic store);
//   * Histogram — value distributions (mutex + RunningStat), used for the
//                 per-phase invocation latencies behind Tables 1-2.
//
// A MetricsRegistry owns named instruments; instrument references returned
// by counter()/gauge()/histogram() stay valid for the registry's lifetime,
// so hot paths resolve a name once and then touch only an atomic.  Each Orb
// owns one registry (per-broker isolation); nothing here is process-global.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pardis/common/ranked_mutex.hpp"
#include "pardis/common/stats.hpp"

namespace pardis::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Thread-safe wrapper over RunningStat.  Updates are mutex-guarded; the
/// expected feed rate is per-invocation (ms scale), not per-frame.
///
/// Alongside the running moments, samples are tallied into log2 buckets
/// (bucket i covers [2^(i-1), 2^i)) so quantile() can report p50/p99 for
/// the BENCH_*.json perf trajectory without retaining every sample.  The
/// estimate's resolution is one octave — adequate for latency trends.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void add(double x) {
    std::lock_guard<common::RankedMutex> lock(mu_);
    stat_.add(x);
    ++buckets_[bucket_of(x)];
  }
  RunningStat snapshot() const {
    std::lock_guard<common::RankedMutex> lock(mu_);
    return stat_;
  }

  /// Quantile estimate for q in [0, 1] (0.5 = median): log-linear
  /// interpolation inside the bucket holding the q-th sample, clamped to
  /// the observed min/max.  0 when empty.
  double quantile(double q) const;

 private:
  static std::size_t bucket_of(double x) noexcept;

  mutable common::RankedMutex mu_{common::LockRank::kObsHistogram};
  RunningStat stat_;
  std::uint64_t buckets_[kBuckets] = {};
};

class MetricsRegistry {
 public:
  /// Finds or creates the named instrument.  Returned references remain
  /// valid until the registry is destroyed.  A name identifies exactly one
  /// instrument kind; reusing it with a different kind throws BAD_PARAM.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// One materialized instrument for dumps/tests.
  struct Sample {
    std::string name;
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    std::uint64_t count = 0;   // counter value / histogram sample count
    std::int64_t level = 0;    // gauge value
    RunningStat stat;          // histogram distribution
    double p50 = 0.0;          // histogram quantile estimates
    double p99 = 0.0;
    double p999 = 0.0;
  };

  /// Snapshot of every instrument, sorted by name.
  std::vector<Sample> snapshot() const;

  /// Human-readable multi-line dump ("name value" / "name n mean min max").
  std::string dump() const;

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable common::RankedMutex mu_{common::LockRank::kObsMetrics};
  std::map<std::string, Entry> entries_;
};

/// Renders a registry snapshot in the Prometheus text exposition format:
/// counters and gauges as plain series, histograms as summaries (p50/p99/
/// p999 quantile series plus _sum and _count).  Dots in instrument names
/// become underscores.  Served live by orb::AdminServer
/// (docs/observability.md).
std::string prometheus_text(const MetricsRegistry& registry);

}  // namespace pardis::obs
