#include "pardis/obs/slowlog.hpp"

#include <algorithm>
#include <sstream>

#include "pardis/common/config.hpp"
#include "pardis/common/stats.hpp"

namespace pardis::obs {

SlowLog::SlowLog()
    : SlowLog(env_double("PARDIS_SLOW_MS", 0.0),
              std::max<std::size_t>(1, env_u64("PARDIS_SLOW_LOG_CAP", 32))) {}

SlowLog::SlowLog(double threshold_ms, std::size_t capacity)
    : threshold_us_(threshold_ms > 0.0 ? threshold_ms * 1000.0 : 0.0),
      capacity_(std::max<std::size_t>(1, capacity)) {}

void SlowLog::observe(Entry entry) {
  if (!enabled() || entry.total_us < threshold_us_) return;
  std::lock_guard<common::RankedMutex> lock(mu_);
  if (entries_.size() >= capacity_) entries_.pop_front();
  entries_.push_back(std::move(entry));
}

std::vector<SlowLog::Entry> SlowLog::snapshot() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return {entries_.rbegin(), entries_.rend()};
}

std::string SlowLog::render() const {
  std::ostringstream os;
  os << "# slow requests (threshold " << format_fixed(threshold_us_, 0)
     << " us, newest first)\n";
  for (const Entry& e : snapshot()) {
    os << e.operation << " request_id=" << e.request_id
       << " binding_id=" << e.binding_id << " trace_id=" << e.trace_id
       << " queue_wait_us=" << format_fixed(e.queue_wait_us, 3)
       << " exec_us=" << format_fixed(e.exec_us, 3)
       << " total_us=" << format_fixed(e.total_us, 3) << "\n";
  }
  return os.str();
}

}  // namespace pardis::obs
