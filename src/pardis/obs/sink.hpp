// Trace export in the chrome://tracing (Trace Event Format) JSON shape.
//
// A TraceSink accumulates events — typically one Tracer snapshot per
// scenario — plus process/thread display names, and serializes everything
// as {"traceEvents": [...]} with "X" (complete) events and "M" (metadata)
// events.  The output loads directly in chrome://tracing and Perfetto.

#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pardis/obs/trace.hpp"

namespace pardis::obs {

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view s);

class TraceSink {
 public:
  void add_events(std::vector<TraceEvent> events);
  /// Convenience: appends a snapshot of `tracer`.
  void add(const Tracer& tracer) { add_events(tracer.snapshot()); }

  void set_process_name(std::uint32_t pid, std::string name);
  void set_thread_name(std::uint32_t pid, std::uint32_t tid,
                       std::string name);

  /// Names the standard scenario processes ("client app"/"server app") and
  /// their ranks for every (pid, tid) present in the accumulated events.
  void name_scenario_processes();

  std::size_t event_count() const noexcept { return events_.size(); }

  void write(std::ostream& os) const;

  /// Writes to `path`; returns false (and logs) on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  std::map<std::uint32_t, std::string> process_names_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string>
      thread_names_;
};

}  // namespace pardis::obs
