#include "pardis/obs/observability.hpp"

#include "pardis/common/config.hpp"

namespace pardis::obs {

std::string trace_path_from_env() {
  return env_string("PARDIS_TRACE").value_or("");
}

Observability::Observability() : tracer_(&Tracer::global()) {
  if (!trace_path_from_env().empty()) {
    tracer_->enable();
  }
  tracer_->set_sample_period(env_u64("PARDIS_TRACE_SAMPLE", 1));
}

}  // namespace pardis::obs
