// Per-ORB observability bundle: a MetricsRegistry plus the tracer wired
// through every layer the broker touches (net connections and links, the
// transfer engines, the service loop).
//
// Environment knobs (see docs/configuration.md):
//   PARDIS_TRACE         path; when set, span tracing starts enabled and
//                        bench binaries write the chrome-trace JSON there
//   PARDIS_METRICS_DUMP  1 to print the metrics registry to stderr when a
//                        scenario winds down

#pragma once

#include <string>

#include "pardis/obs/metrics.hpp"
#include "pardis/obs/trace.hpp"

namespace pardis::obs {

/// The PARDIS_TRACE path; empty when unset.
std::string trace_path_from_env();

class Observability {
 public:
  /// Points at the process-global tracer and enables it when PARDIS_TRACE
  /// is set, so any application traced via the environment needs no code
  /// changes.
  Observability();

  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }
  Tracer& tracer() noexcept { return *tracer_; }

 private:
  MetricsRegistry metrics_;
  Tracer* tracer_;
};

}  // namespace pardis::obs
