// Per-ORB observability bundle: a MetricsRegistry plus the tracer wired
// through every layer the broker touches (net connections and links, the
// transfer engines, the service loop).
//
// Environment knobs (see docs/configuration.md):
//   PARDIS_TRACE         path; when set, span tracing starts enabled and
//                        bench binaries write the chrome-trace JSON there
//   PARDIS_TRACE_SAMPLE  1-in-N sampling period for per-request
//                        distributed traces (default 1: every request)
//   PARDIS_METRICS_DUMP  1 to print the metrics registry to stderr when a
//                        scenario winds down
//   PARDIS_SLOW_MS / PARDIS_SLOW_LOG_CAP  slow-request log (slowlog.hpp)

#pragma once

#include <string>

#include "pardis/obs/metrics.hpp"
#include "pardis/obs/slowlog.hpp"
#include "pardis/obs/trace.hpp"

namespace pardis::obs {

/// The PARDIS_TRACE path; empty when unset.
std::string trace_path_from_env();

class Observability {
 public:
  /// Points at the process-global tracer, enables it when PARDIS_TRACE
  /// is set, and applies the PARDIS_TRACE_SAMPLE period, so any
  /// application traced via the environment needs no code changes.
  Observability();

  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }
  Tracer& tracer() noexcept { return *tracer_; }
  SlowLog& slow_log() noexcept { return slow_log_; }
  const SlowLog& slow_log() const noexcept { return slow_log_; }

 private:
  MetricsRegistry metrics_;
  Tracer* tracer_;
  SlowLog slow_log_;
};

}  // namespace pardis::obs
