// Slow-request log: a bounded ring of the most recent pipelined requests
// whose end-to-end server time exceeded a threshold, each with its
// per-phase breakdown.  The admin endpoint (orb::AdminServer) serves it
// live so an operator can see *which* requests were slow and *where* the
// time went without replaying a trace capture.
//
// Environment knobs (docs/observability.md):
//   PARDIS_SLOW_MS       threshold in milliseconds; 0 (default) disables
//                        the log entirely — the hot path then costs one
//                        threshold comparison per request
//   PARDIS_SLOW_LOG_CAP  entries retained (default 32); older entries are
//                        evicted first

#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "pardis/common/ranked_mutex.hpp"

namespace pardis::obs {

class SlowLog {
 public:
  struct Entry {
    std::string operation;
    std::uint32_t request_id = 0;
    std::uint32_t binding_id = 0;
    std::uint64_t trace_id = 0;  // 0 when the request was not sampled
    double queue_wait_us = 0.0;
    double exec_us = 0.0;
    double total_us = 0.0;
  };

  /// Reads PARDIS_SLOW_MS / PARDIS_SLOW_LOG_CAP.
  SlowLog();
  SlowLog(double threshold_ms, std::size_t capacity);

  bool enabled() const noexcept { return threshold_us_ > 0.0; }
  double threshold_us() const noexcept { return threshold_us_; }

  /// Records the entry when the log is enabled and total_us crosses the
  /// threshold; otherwise a no-op.
  void observe(Entry entry);

  /// Newest-first snapshot.
  std::vector<Entry> snapshot() const;

  /// Human-readable rendering of snapshot(), one line per entry; served by
  /// the admin endpoint's "/slow" resource.
  std::string render() const;

 private:
  double threshold_us_;
  std::size_t capacity_;
  mutable common::RankedMutex mu_{common::LockRank::kObsSlowLog};
  std::deque<Entry> entries_;
};

}  // namespace pardis::obs
