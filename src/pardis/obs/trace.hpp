// Span-based invocation tracer.
//
// One span covers one timed region on one rank: the whole invocation
// ("invoke consume"), or one Phase of it (gather, pack, send, recv, unpack,
// scatter, barrier).  Spans carry the chrome://tracing coordinates —
// (pid, tid, start, duration) — where pid identifies the application
// (client vs. server, matching the paper's two machines) and tid the
// computing-thread rank, so a captured timeline shows the per-rank phase
// structure of Tables 1-2 directly.
//
// Cost discipline: when tracing is disabled every instrumentation point is
// a single relaxed atomic load (Tracer::enabled()); nothing is allocated
// and no clock is read.  Enabled recording appends to a mutex-guarded
// buffer; export happens after the run through TraceSink.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "pardis/common/ranked_mutex.hpp"
#include "pardis/common/timing.hpp"

namespace pardis::obs {

/// Chrome-trace "process" ids for the two applications of a scenario.
inline constexpr std::uint32_t kClientPid = 1;
inline constexpr std::uint32_t kServerPid = 2;

struct TraceEvent {
  std::string name;   // e.g. "invoke consume", "send"
  std::string cat;    // e.g. "invoke", "phase", "link"
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  double ts_us = 0.0;   // start, microseconds since the tracer's origin
  double dur_us = 0.0;  // duration, microseconds
  /// Distributed-trace id shared by every span of one sampled invocation
  /// across both processes (docs/observability.md); 0 = not part of one.
  std::uint64_t trace_id = 0;
};

class Tracer {
 public:
  Tracer() : origin_(Clock::now()) {}

  /// The process-wide tracer.  Orb instances point at it by default so one
  /// bench process accumulates a single timeline across scenarios.
  static Tracer& global();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void enable(bool on = true) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends one complete span.  Callers should gate on enabled() so the
  /// disabled path stays allocation-free; record() itself also drops the
  /// event when disabled (the flag may flip between check and call).
  void record(std::string name, std::string cat, std::uint32_t pid,
              std::uint32_t tid, Clock::time_point begin,
              Clock::time_point end, std::uint64_t trace_id = 0);

  /// Sampling gate + trace-id allocation for per-request distributed
  /// tracing: returns 0 when tracing is disabled or this request lost the
  /// 1-in-N draw (PARDIS_TRACE_SAMPLE), else a process-unique nonzero id.
  /// Callers gate every per-request span (and the wire extension) on the
  /// returned id, so sampled-out requests record nothing.
  std::uint64_t sample_trace_id() noexcept;

  /// 1-in-N sampling period; n <= 1 samples every request.
  void set_sample_period(std::uint64_t n) noexcept {
    sample_period_.store(n > 1 ? n : 1, std::memory_order_relaxed);
  }
  std::uint64_t sample_period() const noexcept {
    return sample_period_.load(std::memory_order_relaxed);
  }

  std::vector<TraceEvent> snapshot() const;
  std::size_t size() const;
  void clear();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> sample_period_{1};
  std::atomic<std::uint64_t> sample_seq_{0};
  std::atomic<std::uint64_t> next_trace_{0};
  Clock::time_point origin_;
  mutable common::RankedMutex mu_{common::LockRank::kObsTrace};
  std::vector<TraceEvent> events_;
};

/// Stable chrome tid for the calling thread, for threads outside the rank
/// structure (server workers, reply routers).  Assigned from an atomic
/// counter starting at 64 so they never collide with rank tids.
std::uint32_t this_thread_tid();

/// Effective chrome pid for an application role (kClientPid / kServerPid).
/// Default: the role itself — the fixed single-process scenario pids.
/// With PARDIS_TRACE_PID=process the OS pid is folded in
/// (os_pid * 4 + role) so traces merged from several processes (e.g. the
/// two halves of test_transport_2proc) keep distinct process tracks while
/// the role stays recoverable as pid % 4.
std::uint32_t role_pid(std::uint32_t role);

/// RAII span: opens at construction, records into `tracer` at destruction.
/// A default-constructed or disabled-tracer guard does nothing.
class SpanGuard {
 public:
  SpanGuard() = default;
  SpanGuard(Tracer* tracer, std::string name, std::string cat,
            std::uint32_t pid, std::uint32_t tid, std::uint64_t trace_id = 0)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(std::move(name)),
        cat_(std::move(cat)),
        pid_(pid),
        tid_(tid),
        trace_id_(trace_id),
        begin_(tracer_ != nullptr ? Clock::now() : Clock::time_point{}) {}

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  ~SpanGuard() {
    if (tracer_ != nullptr) {
      tracer_->record(std::move(name_), std::move(cat_), pid_, tid_, begin_,
                      Clock::now(), trace_id_);
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  std::string name_;
  std::string cat_;
  std::uint32_t pid_ = 0;
  std::uint32_t tid_ = 0;
  std::uint64_t trace_id_ = 0;
  Clock::time_point begin_{};
};

}  // namespace pardis::obs
