#include "pardis/net/link.hpp"

#include <algorithm>
#include <thread>

namespace pardis::net {

LinkModel LinkModel::atm_scaled(double bytes_per_second, Duration latency,
                                double stream_fraction) {
  LinkModel m;
  m.bandwidth_bps = bytes_per_second;
  if (stream_fraction > 0.0 && stream_fraction < 1.0) {
    m.per_stream_bps = bytes_per_second * stream_fraction;
  }
  m.latency = latency;
  return m;
}

void precise_sleep_until(Clock::time_point deadline) {
  // Coarse sleep down to the last ~200us, then spin.
  constexpr auto kSpinWindow = std::chrono::microseconds(200);
  for (;;) {
    const auto now = Clock::now();
    if (now >= deadline) return;
    const auto remaining = deadline - now;
    if (remaining > kSpinWindow) {
      std::this_thread::sleep_for(remaining - kSpinWindow);
    } else {
      std::this_thread::yield();
    }
  }
}

void LinkGovernor::transmit(std::size_t payload_bytes, StreamPacer* pacer) {
  frames_.fetch_add(1, std::memory_order_relaxed);
  payload_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
  if (model_.bandwidth_bps <= 0.0) return;

  // Propagation / per-frame latency: concurrent frames overlap here.
  if (model_.latency > Duration::zero()) {
    precise_sleep_until(Clock::now() + model_.latency);
  }

  std::size_t remaining = payload_bytes + model_.frame_overhead_bytes;
  const std::size_t chunk = std::max<std::size_t>(model_.chunk_bytes, 1);
  const bool stream_capped = pacer != nullptr && model_.per_stream_bps > 0.0;
  bool first_chunk = true;
  while (remaining > 0) {
    const std::size_t this_chunk = std::min(remaining, chunk);
    remaining -= this_chunk;
    const auto chunk_time = std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(static_cast<double>(this_chunk) /
                                      model_.bandwidth_bps));
    Clock::time_point slot_end;
    {
      // Reserve the next free slot; the wait happens outside the lock so
      // other senders can queue their chunks behind ours (interleaving).
      std::lock_guard<common::RankedMutex> lock(mu_);
      const auto now = Clock::now();
      const auto start = std::max(now, next_free_);
      if (first_chunk && next_free_ > now) {
        // The link was mid-transmission for other senders when this frame
        // arrived: arbitration delayed its admission.
        contended_frames_.fetch_add(1, std::memory_order_relaxed);
        contention_wait_us_.fetch_add(
            static_cast<std::uint64_t>(to_us(next_free_ - now)),
            std::memory_order_relaxed);
      }
      first_chunk = false;
      slot_end = start + chunk_time;
      next_free_ = slot_end;
    }
    if (stream_capped) {
      const auto stream_time = std::chrono::duration_cast<Duration>(
          std::chrono::duration<double>(static_cast<double>(this_chunk) /
                                        model_.per_stream_bps));
      const auto stream_end = pacer->reserve(Clock::now(), stream_time);
      if (stream_end > slot_end) slot_end = stream_end;
      pacer->defer_until(slot_end);
    }
    precise_sleep_until(slot_end);
  }
}

}  // namespace pardis::net
