// The simulated network fabric: named hosts, listening ports, and
// per-host-pair link models.
//
// Fabric is the deployment substitute for the paper's testbed (two SGI
// machines joined by a dedicated ATM link): applications live on named
// hosts; every connection between two hosts shares that pair's link
// governor, one per direction (the ATM link is full duplex).  Connections
// within one host are loopback (unlimited) unless configured otherwise.

#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>

#include "pardis/common/ranked_mutex.hpp"
#include "pardis/net/connection.hpp"
#include "pardis/net/link.hpp"

namespace pardis::net {

/// A (host, port) listening address.
struct Address {
  std::string host;
  int port = 0;

  auto operator<=>(const Address&) const = default;
  std::string to_string() const { return host + ":" + std::to_string(port); }
};

class Fabric;

/// Server-side listener; accept() yields the peer endpoint of each
/// connection established to this address.
class Acceptor {
 public:
  ~Acceptor();

  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  const Address& address() const noexcept { return address_; }

  /// Blocks until a connection arrives; nullptr after close().
  std::shared_ptr<Connection> accept();

  /// Non-blocking accept.
  std::shared_ptr<Connection> try_accept();

  /// Stops listening; pending and future accept() calls return nullptr and
  /// future connect() attempts are refused.
  void close();

 private:
  friend class Fabric;

  Acceptor(Fabric& fabric, Address address)
      : fabric_(&fabric), address_(std::move(address)) {}

  void enqueue(std::shared_ptr<Connection> conn);

  Fabric* fabric_;
  Address address_;
  common::RankedMutex mu_{common::LockRank::kNetAcceptor};
  std::condition_variable_any cv_;
  std::deque<std::shared_ptr<Connection>> pending_;
  bool closed_ = false;
};

class Fabric {
 public:
  Fabric() = default;

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Registry receiving aggregate traffic counters ("net.frames",
  /// "net.bytes") and link counters via collect_metrics().  Owned by the
  /// Orb; must outlive the fabric.  Null disables registry feeding.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Publishes every link governor's contention/arbitration counters into
  /// the registry as gauges ("link.<from>-><to>.frames", ".bytes",
  /// ".contended", ".wait_us").  Call at dump points, not on hot paths.
  void collect_metrics();

  /// Link used between distinct hosts with no explicit configuration.
  void set_default_link(LinkModel model);

  /// Configures the (symmetric) link between two hosts; one governor per
  /// direction.  Must be called before connections are opened on that pair.
  void set_link(const std::string& host_a, const std::string& host_b,
                LinkModel model);

  /// Chaos: sets the per-frame fault-injection probability on the (host_a,
  /// host_b) link, both directions, taking effect immediately on live
  /// connections (unlike set_link, which only shapes future governors).
  /// See LinkModel::fault_rate for the failure semantics.
  void set_fault_rate(const std::string& host_a, const std::string& host_b,
                      double rate);

  /// Chaos: (un)partitions a host pair.  While partitioned, new connect()
  /// attempts between the two hosts are refused with COMM_FAILURE;
  /// established connections keep flowing (use set_fault_rate to kill
  /// those).  Models a routing outage rather than a cable cut.
  void set_partitioned(const std::string& host_a, const std::string& host_b,
                       bool partitioned);

  /// Starts listening on (host, port); port 0 picks an ephemeral port.
  /// Throws pardis::BAD_PARAM if the address is already bound.
  std::shared_ptr<Acceptor> listen(const std::string& host, int port = 0);

  /// Connects from `from_host` to the listener at `to`.  Throws
  /// pardis::COMM_FAILURE if nothing is listening there.
  std::shared_ptr<Connection> connect(const std::string& from_host,
                                      const Address& to);

 private:
  friend class Acceptor;

  std::shared_ptr<LinkGovernor> governor_for(const std::string& from,
                                             const std::string& to);
  void unbind(const Address& address);

  common::RankedMutex mu_{common::LockRank::kNetFabric};
  obs::MetricsRegistry* metrics_ = nullptr;
  LinkModel default_link_{};  // unlimited
  std::map<std::pair<std::string, std::string>, LinkModel> link_models_;
  std::set<std::pair<std::string, std::string>> partitions_;  // minmax keys
  std::map<std::pair<std::string, std::string>, std::shared_ptr<LinkGovernor>>
      governors_;  // keyed by ordered (from, to)
  std::map<Address, std::weak_ptr<Acceptor>> listeners_;
  int next_ephemeral_port_ = 40000;
};

}  // namespace pardis::net
