// Shared-link bandwidth model.
//
// The paper's testbed carries *all* traffic between the two machines over a
// single dedicated 155 Mb/s ATM link, regardless of how many socket
// connections the multi-port method opens.  LinkGovernor reproduces the two
// link-level properties the paper's analysis rests on:
//
//   1. aggregate throughput is capped at the link bandwidth no matter how
//      many connections are active, and
//   2. concurrent transmissions interleave chunk-by-chunk, so two senders
//      both make progress (the paper infers this from the near-zero exit
//      barrier when K == P, §3.3).
//
// Implementation: a virtual-time token queue.  Each chunk reserves the next
// free slot on the link under a mutex and then the sender sleeps (without
// the lock) until its chunk's slot has passed.  Chunks from concurrent
// frames are admitted in arrival order, producing fair interleaving.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "pardis/common/ranked_mutex.hpp"
#include "pardis/common/timing.hpp"

namespace pardis::net {

struct LinkModel {
  /// Aggregate payload bandwidth in bytes per second; 0 means unlimited
  /// (no pacing).
  double bandwidth_bps = 0.0;
  /// Achievable throughput of a single connection (stream), in bytes per
  /// second; 0 disables the per-stream cap.  Models the paper's
  /// observation that one sending thread cannot keep the link full (it is
  /// descheduled on system calls, §3.2) while several concurrent streams
  /// saturate it — the effect behind the centralized method's ~12 MB/s
  /// ceiling vs. multi-port's ~27 MB/s on the same wire.
  double per_stream_bps = 0.0;
  /// One-way propagation + per-frame protocol latency, charged once per
  /// frame before transmission.
  Duration latency{};
  /// Arbitration granularity: concurrent frames interleave at this size.
  std::size_t chunk_bytes = 16 * 1024;
  /// Fixed wire overhead added to every frame (headers, cell tax).
  std::size_t frame_overhead_bytes = 64;
  /// Chaos knob (bench/storm): probability, per frame offered to the link,
  /// that the sending connection is torn down instead of delivering.  The
  /// sender sees COMM_FAILURE, the peer drains buffered frames and then
  /// EOF — the simulated equivalent of a TCP reset, not a silent drop
  /// (frames ride a reliable stream, so "loss" must kill the stream).
  /// 0 disables injection.  Adjustable at runtime per governor via
  /// LinkGovernor::set_fault_rate / Fabric::set_fault_rate.
  double fault_rate = 0.0;

  /// No pacing at all: transfers complete at memcpy speed.
  static LinkModel unlimited() { return {}; }

  /// Scaled stand-in for the paper's dedicated 155 Mb/s ATM LANE link.
  /// The per-stream cap defaults to `stream_fraction` of the aggregate,
  /// calibrated to the paper's centralized/multi-port peak ratio
  /// (12.27 / 26.7 ≈ 0.46).  See EXPERIMENTS.md for the scaling rationale.
  static LinkModel atm_scaled(
      double bytes_per_second,
      Duration latency = std::chrono::microseconds(200),
      double stream_fraction = 0.46);
};

/// Per-connection (per-direction) pacing state for the per-stream cap.
class StreamPacer {
 public:
  Clock::time_point reserve(Clock::time_point now, Duration chunk_time) {
    std::lock_guard<common::RankedMutex> lock(mu_);
    const auto start = std::max(now, next_free_);
    next_free_ = start + chunk_time;
    return next_free_;
  }

  /// Pushes the stream's next admission out to `t` (after waiting on the
  /// shared link, the stream cannot start its next chunk earlier).
  void defer_until(Clock::time_point t) {
    std::lock_guard<common::RankedMutex> lock(mu_);
    if (t > next_free_) next_free_ = t;
  }

 private:
  common::RankedMutex mu_{common::LockRank::kNetStreamPacer};
  Clock::time_point next_free_{};
};

/// Arbitrates one direction of one physical link.
class LinkGovernor {
 public:
  explicit LinkGovernor(LinkModel model)
      : model_(model), fault_rate_(model.fault_rate) {}

  /// Blocks the caller for the transmission time of a `payload_bytes` frame,
  /// sharing the link with all concurrent callers.  `pacer` (optional)
  /// additionally applies the model's per-stream throughput cap for the
  /// sending connection.  Returns immediately when the model is unlimited.
  void transmit(std::size_t payload_bytes, StreamPacer* pacer = nullptr);

  const LinkModel& model() const noexcept { return model_; }

  /// Current per-frame fault-injection probability (see
  /// LinkModel::fault_rate).  Runtime-adjustable so a chaos harness can
  /// open and close its fault window mid-run without reconnecting.
  double fault_rate() const noexcept {
    return fault_rate_.load(std::memory_order_relaxed);
  }
  void set_fault_rate(double rate) noexcept {
    fault_rate_.store(rate, std::memory_order_relaxed);
  }
  void count_fault() noexcept {
    faults_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Contention/arbitration counters (always on; relaxed atomics).  A frame
  /// counts as contended when its first chunk finds the link occupied by
  /// other senders; `contention_wait_us` is the queueing delay those first
  /// chunks suffered — the signal behind Table 2's exit-barrier analysis.
  struct Counters {
    std::uint64_t frames = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t contended_frames = 0;
    std::uint64_t contention_wait_us = 0;
    std::uint64_t faults_injected = 0;
  };
  Counters counters() const noexcept {
    return {frames_.load(std::memory_order_relaxed),
            payload_bytes_.load(std::memory_order_relaxed),
            contended_frames_.load(std::memory_order_relaxed),
            contention_wait_us_.load(std::memory_order_relaxed),
            faults_.load(std::memory_order_relaxed)};
  }

 private:
  LinkModel model_;
  std::atomic<double> fault_rate_{0.0};
  std::atomic<std::uint64_t> faults_{0};
  common::RankedMutex mu_{common::LockRank::kNetLink};
  Clock::time_point next_free_{};  // virtual time: when the link frees up
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> payload_bytes_{0};
  std::atomic<std::uint64_t> contended_frames_{0};
  std::atomic<std::uint64_t> contention_wait_us_{0};
};

/// Sleeps with sub-millisecond accuracy (sleep_for for the bulk, then a
/// short spin) — chunk slots at realistic bandwidths are only tens of
/// microseconds wide.
void precise_sleep_until(Clock::time_point deadline);

}  // namespace pardis::net
