// Framed, bidirectional, in-memory connections.
//
// A Connection is one endpoint of a full-duplex framed byte stream — the
// stand-in for a NexusLite/TCP connection between the client and server
// machines.  Frames pass through the LinkGovernor of the host pair, so wire
// time is charged to the sender (sends of large frames are effectively
// synchronous, matching the paper's observation about Nexus sends).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "pardis/common/bytes.hpp"
#include "pardis/common/ranked_mutex.hpp"
#include "pardis/net/link.hpp"
#include "pardis/obs/metrics.hpp"

namespace pardis::net {

namespace detail {

/// Deterministic seed sequence for per-pipe fault RNGs (splitmix64 over a
/// process-wide creation counter: reproducible given creation order).
std::uint64_t next_fault_seed() noexcept;

/// One direction of a connection: a frame queue plus link pacing.
/// `agg_frames`/`agg_bytes` (optional) are fabric-wide aggregate counters
/// in the owning ORB's MetricsRegistry.
class Pipe {
 public:
  Pipe(std::shared_ptr<LinkGovernor> governor, obs::Counter* agg_frames,
       obs::Counter* agg_bytes)
      : governor_(std::move(governor)),
        agg_frames_(agg_frames),
        agg_bytes_(agg_bytes),
        rng_(next_fault_seed()) {}

  void send(pardis::Bytes frame);
  std::optional<pardis::Bytes> recv();
  std::optional<pardis::Bytes> try_recv();
  bool has_frame() const;
  void close();
  bool closed() const;

  /// Chaos roll for one outgoing frame: true with the governor's current
  /// fault_rate probability (always false on loopback pipes, which have no
  /// governor).  Deterministic per pipe under single-sender traffic;
  /// concurrent senders may interleave the RNG, which only perturbs *which*
  /// frame faults, never the contract.
  bool roll_fault() noexcept;

  std::uint64_t frames() const noexcept {
    return frames_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<LinkGovernor> governor_;
  obs::Counter* agg_frames_;
  obs::Counter* agg_bytes_;
  StreamPacer pacer_;  // per-stream throughput cap state
  mutable common::RankedMutex mu_{common::LockRank::kNetConnection};
  std::condition_variable_any cv_;
  std::deque<pardis::Bytes> queue_;
  bool closed_ = false;
  std::atomic<std::uint64_t> frames_{0};  // frames that crossed the wire
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> rng_;  // fault-injection RNG state
};

}  // namespace detail

class Connection {
 public:
  /// Creates a connected pair of endpoints sharing the given governors
  /// (`a_to_b` paces frames sent by the first endpoint).  When `metrics` is
  /// given, both directions also feed the aggregate "net.frames" /
  /// "net.bytes" counters of that registry.
  static std::pair<std::shared_ptr<Connection>, std::shared_ptr<Connection>>
  make_pair(std::shared_ptr<LinkGovernor> a_to_b,
            std::shared_ptr<LinkGovernor> b_to_a, std::string label,
            obs::MetricsRegistry* metrics = nullptr);

  /// Sends one frame; blocks for its simulated wire time.  Throws
  /// pardis::COMM_FAILURE if the connection is closed.
  void send(pardis::Bytes frame);

  /// Blocks for the next frame; nullopt on orderly close (EOF).
  std::optional<pardis::Bytes> recv();

  /// Like recv() but throws pardis::COMM_FAILURE on EOF.
  pardis::Bytes recv_or_throw();

  /// Non-blocking receive.
  std::optional<pardis::Bytes> try_recv();

  /// True iff a frame is queued (the ORB's work_pending probe).
  bool has_frame() const;

  /// True once the incoming direction is closed and drained: recv() would
  /// report EOF without blocking.
  bool eof() const { return in_->closed() && !in_->has_frame(); }

  /// Closes the connection in both directions (idempotent).  Each side's
  /// recv() — ours and the peer's — still drains frames already delivered,
  /// then reports EOF; send() on either endpoint fails loudly with
  /// COMM_FAILURE afterwards.  This is the contract every
  /// transport::Stream backend implements (see transport/transport.hpp).
  void close();

  /// Diagnostic label ("clienthost->serverhost:7001").
  const std::string& label() const noexcept { return label_; }

  /// Per-connection traffic counters from this endpoint's perspective.
  /// "Received" counts frames/bytes that crossed the wire inbound (sent by
  /// the peer), whether or not they have been read yet.
  struct Counters {
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bytes_received = 0;
  };
  Counters counters() const noexcept {
    return {out_->frames(), out_->bytes(), in_->frames(), in_->bytes()};
  }

 private:
  Connection(std::shared_ptr<detail::Pipe> out,
             std::shared_ptr<detail::Pipe> in, std::string label)
      : out_(std::move(out)), in_(std::move(in)), label_(std::move(label)) {}

  std::shared_ptr<detail::Pipe> out_;
  std::shared_ptr<detail::Pipe> in_;
  std::string label_;
};

}  // namespace pardis::net
