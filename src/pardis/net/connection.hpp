// Framed, bidirectional, in-memory connections.
//
// A Connection is one endpoint of a full-duplex framed byte stream — the
// stand-in for a NexusLite/TCP connection between the client and server
// machines.  Frames pass through the LinkGovernor of the host pair, so wire
// time is charged to the sender (sends of large frames are effectively
// synchronous, matching the paper's observation about Nexus sends).

#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "pardis/common/bytes.hpp"
#include "pardis/net/link.hpp"

namespace pardis::net {

namespace detail {

/// One direction of a connection: a frame queue plus link pacing.
class Pipe {
 public:
  explicit Pipe(std::shared_ptr<LinkGovernor> governor)
      : governor_(std::move(governor)) {}

  void send(pardis::Bytes frame);
  std::optional<pardis::Bytes> recv();
  std::optional<pardis::Bytes> try_recv();
  bool has_frame() const;
  void close();
  bool closed() const;

 private:
  std::shared_ptr<LinkGovernor> governor_;
  StreamPacer pacer_;  // per-stream throughput cap state
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<pardis::Bytes> queue_;
  bool closed_ = false;
};

}  // namespace detail

class Connection {
 public:
  /// Creates a connected pair of endpoints sharing the given governors
  /// (`a_to_b` paces frames sent by the first endpoint).
  static std::pair<std::shared_ptr<Connection>, std::shared_ptr<Connection>>
  make_pair(std::shared_ptr<LinkGovernor> a_to_b,
            std::shared_ptr<LinkGovernor> b_to_a, std::string label);

  /// Sends one frame; blocks for its simulated wire time.  Throws
  /// pardis::COMM_FAILURE if the connection is closed.
  void send(pardis::Bytes frame);

  /// Blocks for the next frame; nullopt on orderly close (EOF).
  std::optional<pardis::Bytes> recv();

  /// Like recv() but throws pardis::COMM_FAILURE on EOF.
  pardis::Bytes recv_or_throw();

  /// Non-blocking receive.
  std::optional<pardis::Bytes> try_recv();

  /// True iff a frame is queued (the ORB's work_pending probe).
  bool has_frame() const;

  /// True once the incoming direction is closed and drained: recv() would
  /// report EOF without blocking.
  bool eof() const { return in_->closed() && !in_->has_frame(); }

  /// Half-closes the outgoing direction; the peer's recv() drains queued
  /// frames and then reports EOF.
  void close();

  /// Diagnostic label ("clienthost->serverhost:7001").
  const std::string& label() const noexcept { return label_; }

 private:
  Connection(std::shared_ptr<detail::Pipe> out,
             std::shared_ptr<detail::Pipe> in, std::string label)
      : out_(std::move(out)), in_(std::move(in)), label_(std::move(label)) {}

  std::shared_ptr<detail::Pipe> out_;
  std::shared_ptr<detail::Pipe> in_;
  std::string label_;
};

}  // namespace pardis::net
