#include "pardis/net/fabric.hpp"

#include <algorithm>
#include <vector>

#include "pardis/common/error.hpp"
#include "pardis/common/log.hpp"

namespace pardis::net {

// ---- Acceptor --------------------------------------------------------------

Acceptor::~Acceptor() { close(); }

std::shared_ptr<Connection> Acceptor::accept() {
  std::unique_lock<common::RankedMutex> lock(mu_);
  cv_.wait(lock, [&] { return !pending_.empty() || closed_; });
  if (pending_.empty()) return nullptr;
  auto conn = std::move(pending_.front());
  pending_.pop_front();
  return conn;
}

std::shared_ptr<Connection> Acceptor::try_accept() {
  std::lock_guard<common::RankedMutex> lock(mu_);
  if (pending_.empty()) return nullptr;
  auto conn = std::move(pending_.front());
  pending_.pop_front();
  return conn;
}

void Acceptor::close() {
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  cv_.notify_all();
  if (fabric_ != nullptr) {
    fabric_->unbind(address_);
    fabric_ = nullptr;
  }
}

void Acceptor::enqueue(std::shared_ptr<Connection> conn) {
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    if (closed_) {
      conn->close();
      return;
    }
    pending_.push_back(std::move(conn));
  }
  cv_.notify_all();
}

// ---- Fabric ----------------------------------------------------------------

void Fabric::set_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  metrics_ = metrics;
}

void Fabric::collect_metrics() {
  // Snapshot under the lock, publish outside it (gauge creation may
  // allocate in the registry, which takes its own lock).
  std::vector<std::pair<std::string, LinkGovernor::Counters>> snapshots;
  obs::MetricsRegistry* metrics = nullptr;
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    metrics = metrics_;
    if (metrics == nullptr) return;
    snapshots.reserve(governors_.size());
    for (const auto& [key, governor] : governors_) {
      snapshots.emplace_back("link." + key.first + "->" + key.second,
                             governor->counters());
    }
  }
  for (const auto& [prefix, c] : snapshots) {
    metrics->gauge(prefix + ".frames").set(static_cast<std::int64_t>(c.frames));
    metrics->gauge(prefix + ".bytes")
        .set(static_cast<std::int64_t>(c.payload_bytes));
    metrics->gauge(prefix + ".contended")
        .set(static_cast<std::int64_t>(c.contended_frames));
    metrics->gauge(prefix + ".wait_us")
        .set(static_cast<std::int64_t>(c.contention_wait_us));
    metrics->gauge(prefix + ".faults")
        .set(static_cast<std::int64_t>(c.faults_injected));
  }
}

void Fabric::set_default_link(LinkModel model) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  default_link_ = model;
}

void Fabric::set_link(const std::string& host_a, const std::string& host_b,
                      LinkModel model) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  auto key = std::minmax(host_a, host_b);
  link_models_[{key.first, key.second}] = model;
}

void Fabric::set_fault_rate(const std::string& host_a,
                            const std::string& host_b, double rate) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  const auto key = std::minmax(host_a, host_b);
  // Future governors inherit the rate via the stored model; live governors
  // (both directions) pick it up via their atomic knob.
  auto model_it = link_models_.find({key.first, key.second});
  if (model_it == link_models_.end()) {
    model_it =
        link_models_.emplace(std::pair{key.first, key.second}, default_link_)
            .first;
  }
  model_it->second.fault_rate = rate;
  for (const auto& dir : {std::pair{host_a, host_b}, {host_b, host_a}}) {
    const auto it = governors_.find(dir);
    if (it != governors_.end()) it->second->set_fault_rate(rate);
  }
}

void Fabric::set_partitioned(const std::string& host_a,
                             const std::string& host_b, bool partitioned) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  const auto key = std::minmax(host_a, host_b);
  if (partitioned) {
    partitions_.insert({key.first, key.second});
  } else {
    partitions_.erase({key.first, key.second});
  }
}

std::shared_ptr<Acceptor> Fabric::listen(const std::string& host, int port) {
  if (host.empty()) {
    throw BAD_PARAM("listen: empty host name");
  }
  std::lock_guard<common::RankedMutex> lock(mu_);
  if (port == 0) {
    port = next_ephemeral_port_++;
  }
  Address address{host, port};
  auto it = listeners_.find(address);
  if (it != listeners_.end() && !it->second.expired()) {
    throw BAD_PARAM("listen: address already bound: " + address.to_string());
  }
  auto acceptor =
      std::shared_ptr<Acceptor>(new Acceptor(*this, address));
  listeners_[address] = acceptor;
  return acceptor;
}

std::shared_ptr<Connection> Fabric::connect(const std::string& from_host,
                                            const Address& to) {
  std::shared_ptr<Acceptor> acceptor;
  std::shared_ptr<LinkGovernor> forward;
  std::shared_ptr<LinkGovernor> backward;
  obs::MetricsRegistry* metrics = nullptr;
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    const auto key = std::minmax(from_host, to.host);
    if (partitions_.count({key.first, key.second}) != 0) {
      throw COMM_FAILURE("connection refused: " + from_host + " and " +
                             to.host + " are partitioned",
                         Completion::kNo);
    }
    auto it = listeners_.find(to);
    if (it != listeners_.end()) acceptor = it->second.lock();
    if (!acceptor) {
      throw COMM_FAILURE("connection refused: no listener at " +
                         to.to_string());
    }
    forward = governor_for(from_host, to.host);
    backward = governor_for(to.host, from_host);
    metrics = metrics_;
  }
  auto [client_end, server_end] = Connection::make_pair(
      std::move(forward), std::move(backward),
      from_host + "->" + to.to_string(), metrics);
  acceptor->enqueue(std::move(server_end));
  PARDIS_LOG_TRACE << "connect " << from_host << " -> " << to.to_string();
  return client_end;
}

std::shared_ptr<LinkGovernor> Fabric::governor_for(const std::string& from,
                                                   const std::string& to) {
  auto key = std::minmax(from, to);
  const auto model_it = link_models_.find({key.first, key.second});
  if (model_it == link_models_.end() && from == to) {
    // Loopback fast-path: same-host traffic with no explicitly configured
    // link skips pacing entirely — no governor lock, no per-stream pacer
    // state, and no "link.host->host" gauges (Pipe::send treats a null
    // governor as a free wire).  An unlimited-rate governor here would
    // still serialize every same-host sender on the governor mutex.
    return nullptr;
  }
  const LinkModel model =
      model_it != link_models_.end() ? model_it->second : default_link_;
  auto& governor = governors_[{from, to}];
  if (!governor) {
    governor = std::make_shared<LinkGovernor>(model);
  }
  return governor;
}

void Fabric::unbind(const Address& address) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  listeners_.erase(address);
}

}  // namespace pardis::net
