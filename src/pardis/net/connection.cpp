#include "pardis/net/connection.hpp"

#include "pardis/common/error.hpp"

namespace pardis::net {
namespace detail {

std::uint64_t next_fault_seed() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  // splitmix64 of the creation index: well-spread, reproducible seeds.
  std::uint64_t z =
      counter.fetch_add(1, std::memory_order_relaxed) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool Pipe::roll_fault() noexcept {
  if (!governor_) return false;
  const double rate = governor_->fault_rate();
  if (rate <= 0.0) return false;
  // xorshift64: cheap, and per-pipe state keeps single-sender runs
  // reproducible.  Relaxed is fine — a racy interleave only reshuffles
  // which frame draws the fault.
  std::uint64_t x = rng_.load(std::memory_order_relaxed);
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  rng_.store(x, std::memory_order_relaxed);
  const double u = static_cast<double>(x >> 11) * 0x1p-53;
  if (u >= rate) return false;
  governor_->count_fault();
  return true;
}

void Pipe::send(pardis::Bytes frame) {
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    if (closed_) {
      throw COMM_FAILURE("send on closed connection", Completion::kNo);
    }
  }
  // Pace the frame on the shared link *before* delivery: the receiver sees
  // the frame when its last chunk has crossed the wire.
  if (governor_) governor_->transmit(frame.size(), &pacer_);
  frames_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
  if (agg_frames_ != nullptr) agg_frames_->add(1);
  if (agg_bytes_ != nullptr) agg_bytes_->add(frame.size());
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    if (closed_) {
      throw COMM_FAILURE("connection closed during send", Completion::kMaybe);
    }
    queue_.push_back(std::move(frame));
  }
  cv_.notify_all();
}

std::optional<pardis::Bytes> Pipe::recv() {
  std::unique_lock<common::RankedMutex> lock(mu_);
  cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;  // EOF
  pardis::Bytes frame = std::move(queue_.front());
  queue_.pop_front();
  return frame;
}

std::optional<pardis::Bytes> Pipe::try_recv() {
  std::lock_guard<common::RankedMutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  pardis::Bytes frame = std::move(queue_.front());
  queue_.pop_front();
  return frame;
}

bool Pipe::has_frame() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return !queue_.empty();
}

void Pipe::close() {
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Pipe::closed() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return closed_;
}

}  // namespace detail

std::pair<std::shared_ptr<Connection>, std::shared_ptr<Connection>>
Connection::make_pair(std::shared_ptr<LinkGovernor> a_to_b,
                      std::shared_ptr<LinkGovernor> b_to_a,
                      std::string label, obs::MetricsRegistry* metrics) {
  obs::Counter* agg_frames =
      metrics != nullptr ? &metrics->counter("net.frames") : nullptr;
  obs::Counter* agg_bytes =
      metrics != nullptr ? &metrics->counter("net.bytes") : nullptr;
  auto forward = std::make_shared<detail::Pipe>(std::move(a_to_b),
                                                agg_frames, agg_bytes);
  auto backward = std::make_shared<detail::Pipe>(std::move(b_to_a),
                                                 agg_frames, agg_bytes);
  auto a = std::shared_ptr<Connection>(
      new Connection(forward, backward, label));
  auto b = std::shared_ptr<Connection>(
      new Connection(backward, forward, label + " (peer)"));
  return {std::move(a), std::move(b)};
}

void Connection::send(pardis::Bytes frame) {
  if (out_->roll_fault()) {
    // A link fault on a reliable framed stream kills the whole connection:
    // the peer drains anything already delivered and then sees EOF, so
    // both sides observe the same failure a real TCP reset would produce.
    close();
    throw COMM_FAILURE("chaos: link fault injected on " + label_,
                       Completion::kMaybe);
  }
  out_->send(std::move(frame));
}

std::optional<pardis::Bytes> Connection::recv() { return in_->recv(); }

pardis::Bytes Connection::recv_or_throw() {
  auto frame = in_->recv();
  if (!frame) {
    throw COMM_FAILURE("connection closed by peer: " + label_,
                       Completion::kMaybe);
  }
  return std::move(*frame);
}

std::optional<pardis::Bytes> Connection::try_recv() { return in_->try_recv(); }

bool Connection::has_frame() const { return in_->has_frame(); }

void Connection::close() {
  out_->close();
  in_->close();
}

}  // namespace pardis::net
