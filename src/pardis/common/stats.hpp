// Streaming statistics for benchmark reporting.

#pragma once

#include <cstddef>
#include <limits>
#include <string>

namespace pardis {

/// Welford-style running mean/variance with min/max.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;

  RunningStat& operator+=(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// "12.34" style fixed-precision formatting used by the table printers.
std::string format_fixed(double value, int precision = 2);

}  // namespace pardis
