#include "pardis/common/config.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "pardis/common/error.hpp"

namespace pardis {

std::optional<std::string> env_string(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  const std::string& s = *raw;
  std::size_t pos = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(s, &pos, 0);
  } catch (const std::exception&) {
    throw BAD_PARAM(std::string(name) + ": not an integer: " + s);
  }
  std::uint64_t scale = 1;
  if (pos < s.size()) {
    switch (std::tolower(static_cast<unsigned char>(s[pos]))) {
      case 'k': scale = 1024ull; break;
      case 'm': scale = 1024ull * 1024; break;
      case 'g': scale = 1024ull * 1024 * 1024; break;
      default:
        throw BAD_PARAM(std::string(name) + ": bad suffix in: " + s);
    }
    if (pos + 1 != s.size()) {
      throw BAD_PARAM(std::string(name) + ": trailing junk in: " + s);
    }
  }
  return value * scale;
}

double env_double(const char* name, double fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  try {
    std::size_t pos = 0;
    const double value = std::stod(*raw, &pos);
    if (pos != raw->size()) {
      throw std::invalid_argument("trailing junk");
    }
    return value;
  } catch (const std::exception&) {
    throw BAD_PARAM(std::string(name) + ": not a number: " + *raw);
  }
}

bool env_bool(const char* name, bool fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  if (*raw == "1" || *raw == "true" || *raw == "yes" || *raw == "on") {
    return true;
  }
  if (*raw == "0" || *raw == "false" || *raw == "no" || *raw == "off") {
    return false;
  }
  throw BAD_PARAM(std::string(name) + ": not a boolean: " + *raw);
}

}  // namespace pardis
