// Wall-clock timing primitives used to instrument invocation phases.
//
// The paper reports per-phase times (pack, send, receive+unpack, gather,
// scatter, exit barrier) for both argument-transfer methods; PhaseTimer
// accumulates exactly those buckets.

#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace pardis {

using Clock = std::chrono::steady_clock;
using Duration = Clock::duration;

inline double to_ms(Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

inline double to_us(Duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

/// Simple restartable stopwatch.
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }
  Duration elapsed() const { return Clock::now() - start_; }
  double elapsed_ms() const { return to_ms(elapsed()); }

 private:
  Clock::time_point start_;
};

/// Invocation phases instrumented by the transfer engines (paper §3.2/§3.3).
enum class Phase : std::size_t {
  kGather = 0,   // client: collect distributed data at communicating thread
  kPack,         // marshal arguments into CDR form
  kSend,         // network send (from first byte offered to send complete)
  kRecv,         // network receive
  kUnpack,       // unmarshal arguments
  kScatter,      // server: distribute data from communicating thread
  kBarrier,      // post-invocation synchronization
  kTotal,        // whole invocation, bind to reply
  kCount
};

constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

const char* to_string(Phase p) noexcept;

/// Accumulates elapsed time per phase.  Not thread-safe: each computing
/// thread owns its own PhaseTimer; cross-thread reduction happens after the
/// fact (the paper reports the max over threads).
class PhaseTimer {
 public:
  void add(Phase p, Duration d) { buckets_[index(p)] += d; }

  /// Times `fn()` and charges it to phase `p`; returns fn's result.
  template <typename Fn>
  decltype(auto) time(Phase p, Fn&& fn) {
    const auto t0 = Clock::now();
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      add(p, Clock::now() - t0);
    } else {
      decltype(auto) result = fn();
      add(p, Clock::now() - t0);
      return result;
    }
  }

  Duration get(Phase p) const { return buckets_[index(p)]; }
  double ms(Phase p) const { return to_ms(get(p)); }

  void reset() { buckets_.fill(Duration::zero()); }

  /// Element-wise sum, for accumulating repetitions.
  PhaseTimer& operator+=(const PhaseTimer& other) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    return *this;
  }

 private:
  static std::size_t index(Phase p) { return static_cast<std::size_t>(p); }

  std::array<Duration, kPhaseCount> buckets_{};
};

inline const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kGather:  return "gather";
    case Phase::kPack:    return "pack";
    case Phase::kSend:    return "send";
    case Phase::kRecv:    return "recv";
    case Phase::kUnpack:  return "unpack";
    case Phase::kScatter: return "scatter";
    case Phase::kBarrier: return "barrier";
    case Phase::kTotal:   return "total";
    case Phase::kCount:   break;
  }
  return "?";
}

}  // namespace pardis
