#include "pardis/common/error.hpp"

namespace pardis {

const char* to_string(Completion c) noexcept {
  switch (c) {
    case Completion::kYes:
      return "COMPLETED_YES";
    case Completion::kNo:
      return "COMPLETED_NO";
    case Completion::kMaybe:
      return "COMPLETED_MAYBE";
  }
  return "COMPLETED_?";
}

SystemException::SystemException(std::string kind, std::string detail,
                                 Completion completed)
    : Exception(detail.empty()
                    ? kind + " (" + to_string(completed) + ")"
                    : kind + ": " + detail + " (" + to_string(completed) + ")"),
      kind_(std::move(kind)),
      completed_(completed) {}

}  // namespace pardis
