#include "pardis/common/stats.hpp"

#include <cmath>
#include <cstdio>

namespace pardis {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

RunningStat& RunningStat::operator+=(const RunningStat& other) {
  if (other.n_ == 0) return *this;
  if (n_ == 0) {
    *this = other;
    return *this;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  return *this;
}

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace pardis
