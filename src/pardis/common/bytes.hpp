// Raw byte-buffer utilities shared by the CDR codec, the runtime system and
// the network fabric.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace pardis {

/// The unit of data exchanged by every PARDIS layer.
using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Appends `view` to `out`.
void append(Bytes& out, BytesView view);

/// Appends the object representation of a trivially copyable value.
template <typename T>
  requires std::is_trivially_copyable_v<T>
void append_raw(Bytes& out, const T& value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

/// Hex dump ("de ad be ef") of at most `max_bytes` bytes, for diagnostics.
std::string hex_dump(BytesView view, std::size_t max_bytes = 64);

/// Lossless hex encoding used by stringified object references.
std::string to_hex(BytesView view);

/// Inverse of to_hex.  Throws pardis::BAD_PARAM on odd length or non-hex
/// characters.
Bytes from_hex(const std::string& hex);

}  // namespace pardis
