#include "pardis/common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "pardis/common/ranked_mutex.hpp"

namespace pardis {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("PARDIS_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn:  return "warn";
    case LogLevel::kInfo:  return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

void log_line(LogLevel level, const std::string& message) {
  // The log sink ranks last (kCommonLog): any thread may log while holding
  // any other lock.
  static common::RankedMutex mu{common::LockRank::kCommonLog};
  const auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  std::lock_guard<common::RankedMutex> lock(mu);
  std::fprintf(stderr, "[pardis %-5s %04zx] %s\n", level_name(level),
               tid & 0xFFFF, message.c_str());
}

}  // namespace pardis
