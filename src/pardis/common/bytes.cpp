#include "pardis/common/bytes.hpp"

#include "pardis/common/error.hpp"

namespace pardis {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

void append(Bytes& out, BytesView view) {
  out.insert(out.end(), view.begin(), view.end());
}

std::string hex_dump(BytesView view, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = view.size() < max_bytes ? view.size() : max_bytes;
  out.reserve(n * 3 + 8);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(kHexDigits[view[i] >> 4]);
    out.push_back(kHexDigits[view[i] & 0xF]);
  }
  if (view.size() > n) out += " ...";
  return out;
}

std::string to_hex(BytesView view) {
  std::string out;
  out.reserve(view.size() * 2);
  for (std::uint8_t b : view) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

Bytes from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    throw BAD_PARAM("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw BAD_PARAM("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace pardis
