// Environment-driven configuration knobs.
//
// Benchmarks and the simulated link are parameterized through the
// environment so the paper's sweep points can be rescaled without
// recompiling (see EXPERIMENTS.md for the knob list).

#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace pardis {

std::optional<std::string> env_string(const char* name);

/// Parses an unsigned integer with optional k/m/g (×1024) suffix,
/// e.g. "64k" -> 65536.  Returns fallback when unset; throws BAD_PARAM on a
/// malformed value.
std::uint64_t env_u64(const char* name, std::uint64_t fallback);

double env_double(const char* name, double fallback);

bool env_bool(const char* name, bool fallback);

}  // namespace pardis
