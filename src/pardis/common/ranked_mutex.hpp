// Lock-rank deadlock checker.
//
// Every mutex in the repository carries a static LockRank.  A thread may
// only acquire mutexes in strictly increasing rank order; violating the
// order — the necessary condition for a lock-ordering deadlock — aborts
// immediately with both ranks named, turning a potential hang into a
// deterministic test failure.
//
// Two implementations are always compiled (so either path can be unit
// tested from any configuration):
//
//   * CheckedRankedMutex — std::mutex plus a thread-local stack of held
//     ranks, validated on every lock();
//   * PlainRankedMutex   — a zero-overhead std::mutex wrapper (same size,
//     the rank argument is discarded).
//
// `RankedMutex` aliases the checked flavor when PARDIS_LOCK_RANK_CHECKS is
// nonzero (the default; release builds configure with
// -DPARDIS_LOCK_RANK_CHECKS=OFF) and the plain flavor otherwise.  Waiters
// must pair RankedMutex with std::condition_variable_any, which drives the
// rank bookkeeping through lock()/unlock() transparently.
//
// The rank table below is the repository's documented acquisition order;
// docs/concurrency.md explains which thread owns what.  New mutexes must
// be added here, ranked after everything they may be acquired under.

#pragma once

#include <mutex>

#ifndef PARDIS_LOCK_RANK_CHECKS
#define PARDIS_LOCK_RANK_CHECKS 1
#endif

namespace pardis::common {

/// One rank per mutex *role*.  Ordered by legal acquisition: a thread
/// holding rank r may only acquire ranks strictly greater than r.  Gaps
/// leave room for future locks without renumbering.
enum class LockRank : int {
  kNetFabric = 10,          // net::Fabric registry (listeners, links)
  kNetAcceptor = 20,        // net::Acceptor pending-connection queue
  kTransportReactor = 22,   // transport TCP reactor fd->handler registry
  kTransportListener = 24,  // transport::Listener pending-stream queue
  kTransportPool = 26,      // transport::Transport idle-stream pool
  kTransportStreamTx = 27,  // transport TCP per-stream writer serialization
  kTransportStream = 28,    // transport TCP per-stream rx queue + state
  kNetConnection = 30,      // net::detail::Pipe frame queue
  kNetLink = 40,            // net::LinkGovernor virtual-time slot queue
  kNetStreamPacer = 50,     // net::StreamPacer per-stream admission time
  kRtsMailbox = 60,         // rts::Mailbox message queue
  kRtsTeamError = 70,       // rts::Team first-error slot
  kTransferServerQueue = 72,  // transfer::SpmdServer pipelined-request queue
  kTransferPipeline = 74,   // transfer::ReplyRouter pending-reply table
  kOrbFuture = 80,          // orb::detail::FutureState completion state
  kOrbNaming = 90,          // orb::NameService registration map
  kOrbExceptions = 100,     // orb::ExceptionRegistry thrower map
  kOrbAdmin = 105,          // orb::AdminServer active-connection slot
  kObsMetrics = 110,        // obs::MetricsRegistry instrument map
  kObsHistogram = 120,      // obs::Histogram running stat
  kObsSlowLog = 125,        // obs::SlowLog slow-request ring buffer
  kObsTrace = 130,          // obs::Tracer event buffer
  kCommonLog = 140,         // common log sink (leaf: loggable anywhere)
};

/// Human-readable rank name for diagnostics ("kNetFabric" etc.).
const char* to_string(LockRank rank);

/// std::mutex plus acquisition-order validation.  lock() aborts (after
/// printing both rank names to stderr) when the calling thread already
/// holds a rank >= this mutex's rank.  try_lock() records but does not
/// validate: a non-blocking acquire cannot contribute a deadlock edge.
class CheckedRankedMutex {
 public:
  explicit CheckedRankedMutex(LockRank rank) noexcept : rank_(rank) {}

  CheckedRankedMutex(const CheckedRankedMutex&) = delete;
  CheckedRankedMutex& operator=(const CheckedRankedMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock();

  LockRank rank() const noexcept { return rank_; }

 private:
  std::mutex mu_;
  LockRank rank_;
};

/// Zero-overhead flavor: layout-identical to std::mutex, rank discarded.
class PlainRankedMutex {
 public:
  explicit PlainRankedMutex(LockRank) noexcept {}

  PlainRankedMutex(const PlainRankedMutex&) = delete;
  PlainRankedMutex& operator=(const PlainRankedMutex&) = delete;

  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

static_assert(sizeof(PlainRankedMutex) == sizeof(std::mutex),
              "release-mode RankedMutex must add no state over std::mutex");

#if PARDIS_LOCK_RANK_CHECKS
using RankedMutex = CheckedRankedMutex;
#else
using RankedMutex = PlainRankedMutex;
#endif

}  // namespace pardis::common
