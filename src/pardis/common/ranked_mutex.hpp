// Lock-rank deadlock checker.
//
// Every mutex in the repository carries a static LockRank.  A thread may
// only acquire mutexes in strictly increasing rank order; violating the
// order — the necessary condition for a lock-ordering deadlock — aborts
// immediately with both ranks named, turning a potential hang into a
// deterministic test failure.
//
// Two implementations are always compiled (so either path can be unit
// tested from any configuration):
//
//   * CheckedRankedMutex — std::mutex plus a thread-local stack of held
//     ranks, validated on every lock();
//   * PlainRankedMutex   — a zero-overhead std::mutex wrapper (same size,
//     the rank argument is discarded).
//
// `RankedMutex` aliases the checked flavor when PARDIS_LOCK_RANK_CHECKS is
// nonzero (the default; release builds configure with
// -DPARDIS_LOCK_RANK_CHECKS=OFF) and the plain flavor otherwise.  Waiters
// must pair RankedMutex with std::condition_variable_any, which drives the
// rank bookkeeping through lock()/unlock() transparently.
//
// The rank table lives in lock_ranks.def (one PARDIS_LOCK_RANK entry per
// rank) so that tools/pardis-analyze can parse the same table it
// cross-checks observed nestings against; docs/concurrency.md explains
// which thread owns what.  New mutexes must be added to the .def file,
// ranked after everything they may be acquired under.

#pragma once

#include <mutex>

#ifndef PARDIS_LOCK_RANK_CHECKS
#define PARDIS_LOCK_RANK_CHECKS 1
#endif

namespace pardis::common {

/// One rank per mutex *role*.  Ordered by legal acquisition: a thread
/// holding rank r may only acquire ranks strictly greater than r.  Gaps
/// leave room for future locks without renumbering.
enum class LockRank : int {
#define PARDIS_LOCK_RANK(name, value, description) name = (value),
#include "pardis/common/lock_ranks.def"
#undef PARDIS_LOCK_RANK
};

/// Human-readable rank name for diagnostics ("kNetFabric" etc.).
const char* to_string(LockRank rank);

/// std::mutex plus acquisition-order validation.  lock() aborts (after
/// printing both rank names to stderr) when the calling thread already
/// holds a rank >= this mutex's rank.  try_lock() records but does not
/// validate: a non-blocking acquire cannot contribute a deadlock edge.
class CheckedRankedMutex {
 public:
  explicit CheckedRankedMutex(LockRank rank) noexcept : rank_(rank) {}

  CheckedRankedMutex(const CheckedRankedMutex&) = delete;
  CheckedRankedMutex& operator=(const CheckedRankedMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock();

  LockRank rank() const noexcept { return rank_; }

 private:
  std::mutex mu_;
  LockRank rank_;
};

/// Zero-overhead flavor: layout-identical to std::mutex, rank discarded.
class PlainRankedMutex {
 public:
  explicit PlainRankedMutex(LockRank) noexcept {}

  PlainRankedMutex(const PlainRankedMutex&) = delete;
  PlainRankedMutex& operator=(const PlainRankedMutex&) = delete;

  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

static_assert(sizeof(PlainRankedMutex) == sizeof(std::mutex),
              "release-mode RankedMutex must add no state over std::mutex");

#if PARDIS_LOCK_RANK_CHECKS
using RankedMutex = CheckedRankedMutex;
#else
using RankedMutex = PlainRankedMutex;
#endif

}  // namespace pardis::common
