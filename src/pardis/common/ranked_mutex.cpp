#include "pardis/common/ranked_mutex.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace pardis::common {

const char* to_string(LockRank rank) {
  switch (rank) {
#define PARDIS_LOCK_RANK(name, value, description) \
  case LockRank::name:                             \
    return #name;
#include "pardis/common/lock_ranks.def"
#undef PARDIS_LOCK_RANK
  }
  return "<unknown rank>";
}

namespace {

// Ranks currently held by this thread, in acquisition order.  Unlocks may
// be out of order (unique_lock juggling), so unlock erases by value, not by
// popping.  Function-local so first use from any thread initializes it.
std::vector<LockRank>& held_ranks() {
  thread_local std::vector<LockRank> held;
  return held;
}

}  // namespace

void CheckedRankedMutex::lock() {
  for (LockRank h : held_ranks()) {
    if (h >= rank_) {
      std::fprintf(stderr,
                   "pardis: lock-rank violation: acquiring %s (%d) while "
                   "holding %s (%d); acquisition order must be strictly "
                   "increasing\n",
                   to_string(rank_), static_cast<int>(rank_), to_string(h),
                   static_cast<int>(h));
      std::abort();
    }
  }
  mu_.lock();
  held_ranks().push_back(rank_);
}

bool CheckedRankedMutex::try_lock() {
  if (!mu_.try_lock()) return false;
  held_ranks().push_back(rank_);
  return true;
}

void CheckedRankedMutex::unlock() {
  auto& held = held_ranks();
  const auto it = std::find(held.rbegin(), held.rend(), rank_);
  if (it != held.rend()) {
    held.erase(std::next(it).base());
  }
  mu_.unlock();
}

}  // namespace pardis::common
