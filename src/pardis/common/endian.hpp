// Byte-order helpers for the CDR layer.
//
// CORBA's CDR is receiver-makes-right: every message carries the sender's
// byte order and the receiver swaps only on mismatch.  These helpers provide
// the swap primitives; the CDR codec decides when to apply them.

#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace pardis {

constexpr bool host_is_little_endian() noexcept {
  return std::endian::native == std::endian::little;
}

constexpr std::uint8_t byteswap(std::uint8_t v) noexcept { return v; }

constexpr std::uint16_t byteswap(std::uint16_t v) noexcept {
  return static_cast<std::uint16_t>((v >> 8) | (v << 8));
}

constexpr std::uint32_t byteswap(std::uint32_t v) noexcept {
  return ((v & 0xFF000000u) >> 24) | ((v & 0x00FF0000u) >> 8) |
         ((v & 0x0000FF00u) << 8) | ((v & 0x000000FFu) << 24);
}

constexpr std::uint64_t byteswap(std::uint64_t v) noexcept {
  return (static_cast<std::uint64_t>(byteswap(static_cast<std::uint32_t>(v)))
          << 32) |
         byteswap(static_cast<std::uint32_t>(v >> 32));
}

/// Byte-swaps any trivially copyable scalar (including float/double) by
/// reinterpreting its object representation as the same-width unsigned type.
template <typename T>
  requires std::is_trivially_copyable_v<T> &&
           (sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
            sizeof(T) == 8)
T byteswap_scalar(T value) noexcept {
  if constexpr (sizeof(T) == 1) {
    return value;
  } else {
    using U = std::conditional_t<
        sizeof(T) == 2, std::uint16_t,
        std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>>;
    U bits;
    std::memcpy(&bits, &value, sizeof(T));
    bits = byteswap(bits);
    std::memcpy(&value, &bits, sizeof(T));
    return value;
  }
}

}  // namespace pardis
