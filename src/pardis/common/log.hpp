// Minimal leveled, thread-safe logger.
//
// The broker is heavily multi-threaded (K client ranks + P server ranks +
// adapter threads in one process), so interleaving-safe diagnostics matter.
// Level comes from the PARDIS_LOG environment variable:
// error|warn|info|debug|trace (default warn).

#pragma once

#include <sstream>
#include <string>

namespace pardis {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;
bool log_enabled(LogLevel level) noexcept;

/// Emits one line to stderr: "[pardis <level> <thread>] message".
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace pardis

#define PARDIS_LOG(level)                   \
  if (!::pardis::log_enabled(level)) {      \
  } else                                    \
    ::pardis::detail::LogStream(level)

#define PARDIS_LOG_ERROR PARDIS_LOG(::pardis::LogLevel::kError)
#define PARDIS_LOG_WARN PARDIS_LOG(::pardis::LogLevel::kWarn)
#define PARDIS_LOG_INFO PARDIS_LOG(::pardis::LogLevel::kInfo)
#define PARDIS_LOG_DEBUG PARDIS_LOG(::pardis::LogLevel::kDebug)
#define PARDIS_LOG_TRACE PARDIS_LOG(::pardis::LogLevel::kTrace)
