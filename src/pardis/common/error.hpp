// CORBA-style system exceptions for PARDIS.
//
// The paper models PARDIS on the CORBA framework, whose C++ mapping reports
// broker failures through a closed set of system exceptions and
// user-declared exceptions defined in IDL.  We mirror that split: broker and
// runtime failures raise a SystemException subclass; IDL-declared exceptions
// derive from UserException and are marshaled across the wire.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace pardis {

/// Root of the PARDIS exception hierarchy.
class Exception : public std::runtime_error {
 public:
  explicit Exception(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Completion status of the operation when a system exception was raised,
/// mirroring CORBA::CompletionStatus.
enum class Completion : std::uint8_t { kYes = 0, kNo = 1, kMaybe = 2 };

const char* to_string(Completion c) noexcept;

/// Raised by the broker / runtime; never declared in IDL.
class SystemException : public Exception {
 public:
  SystemException(std::string kind, std::string detail, Completion completed);

  /// CORBA-style repository kind, e.g. "COMM_FAILURE".
  const std::string& kind() const noexcept { return kind_; }
  Completion completed() const noexcept { return completed_; }

 private:
  std::string kind_;
  Completion completed_;
};

#define PARDIS_DEFINE_SYSTEM_EXCEPTION(Name)                                \
  class Name : public SystemException {                                     \
   public:                                                                  \
    explicit Name(std::string detail = {},                                  \
                  Completion completed = Completion::kNo)                   \
        : SystemException(#Name, std::move(detail), completed) {}           \
  }

PARDIS_DEFINE_SYSTEM_EXCEPTION(BAD_PARAM);        // caller passed a bad value
PARDIS_DEFINE_SYSTEM_EXCEPTION(COMM_FAILURE);     // transport-level failure
PARDIS_DEFINE_SYSTEM_EXCEPTION(INV_OBJREF);       // malformed object reference
PARDIS_DEFINE_SYSTEM_EXCEPTION(MARSHAL);          // CDR encode/decode error
PARDIS_DEFINE_SYSTEM_EXCEPTION(NO_IMPLEMENT);     // operation not implemented
PARDIS_DEFINE_SYSTEM_EXCEPTION(OBJECT_NOT_EXIST); // unknown object key/name
PARDIS_DEFINE_SYSTEM_EXCEPTION(BAD_OPERATION);    // unknown operation name
PARDIS_DEFINE_SYSTEM_EXCEPTION(INTERNAL);         // broker invariant violated
PARDIS_DEFINE_SYSTEM_EXCEPTION(TIMEOUT);          // deadline exceeded
PARDIS_DEFINE_SYSTEM_EXCEPTION(INITIALIZE);       // ORB initialization failure
PARDIS_DEFINE_SYSTEM_EXCEPTION(TRANSIENT);        // retryable overload shed

#undef PARDIS_DEFINE_SYSTEM_EXCEPTION

/// Base class for IDL-declared exceptions; generated code derives from this
/// and supplies marshaling.
class UserException : public Exception {
 public:
  explicit UserException(std::string repo_id, std::string what = {})
      : Exception(std::move(what)), repo_id_(std::move(repo_id)) {}

  /// Repository id, e.g. "IDL:Diffusion/BadTimestep:1.0".
  const std::string& repo_id() const noexcept { return repo_id_; }

 private:
  std::string repo_id_;
};

}  // namespace pardis
