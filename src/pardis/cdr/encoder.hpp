// CDR (Common Data Representation) encoder.
//
// CORBA CDR rules implemented here:
//   * every primitive is aligned to its natural size, relative to the start
//     of the stream (or of the enclosing encapsulation);
//   * strings are encoded as ULong length including the NUL, then the bytes;
//   * sequences are ULong element count followed by the elements;
//   * an "encapsulation" is an octet sequence whose first octet records the
//     byte order of its producer, so it can be relocated and decoded later
//     (used for stringified object references).
//
// The encoder always writes in host byte order and records that order in
// message headers / encapsulations; the decoder swaps on mismatch
// (receiver-makes-right).

#pragma once

#include <cstddef>
#include <cstring>
#include <string>

#include "pardis/cdr/types.hpp"
#include "pardis/common/bytes.hpp"

namespace pardis::cdr {

class Encoder {
 public:
  Encoder() = default;

  /// Pre-reserves capacity for large payloads.
  void reserve(std::size_t bytes) { buffer_.reserve(bytes); }

  void put_octet(Octet v) { put_scalar(v); }
  void put_boolean(Boolean v) { put_scalar<Octet>(v ? 1 : 0); }
  void put_char(Char v) { put_scalar(v); }
  void put_short(Short v) { put_scalar(v); }
  void put_ushort(UShort v) { put_scalar(v); }
  void put_long(Long v) { put_scalar(v); }
  void put_ulong(ULong v) { put_scalar(v); }
  void put_longlong(LongLong v) { put_scalar(v); }
  void put_ulonglong(ULongLong v) { put_scalar(v); }
  void put_float(Float v) { put_scalar(v); }
  void put_double(Double v) { put_scalar(v); }

  /// ULong length (including NUL) + characters + NUL.
  void put_string(const std::string& s);

  /// Raw octets with no count prefix (caller knows the length).
  void put_octets(pardis::BytesView view);

  /// ULong count + raw octets.
  void put_octet_sequence(pardis::BytesView view);

  /// ULong count + aligned array of primitives.
  template <typename T>
    requires std::is_arithmetic_v<T>
  void put_array(const T* data, std::size_t count) {
    put_ulong(static_cast<ULong>(count));
    align(alignof_cdr<T>());
    const std::size_t offset = buffer_.size();
    buffer_.resize(offset + count * sizeof(T));
    if (count != 0) {
      std::memcpy(buffer_.data() + offset, data, count * sizeof(T));
    }
  }

  /// Nested encapsulation: byte-order octet + body.
  void put_encapsulation(pardis::BytesView body);

  /// Advances to `alignment` relative to stream start, zero-filling the gap.
  void align(std::size_t alignment);

  std::size_t size() const noexcept { return buffer_.size(); }
  const pardis::Bytes& bytes() const noexcept { return buffer_; }
  pardis::Bytes take() { return std::move(buffer_); }

  /// CDR natural alignment of a primitive (== its size).
  template <typename T>
  static constexpr std::size_t alignof_cdr() {
    return sizeof(T);
  }

 private:
  template <typename T>
  void put_scalar(T v) {
    align(sizeof(T));
    const std::size_t offset = buffer_.size();
    buffer_.resize(offset + sizeof(T));
    std::memcpy(buffer_.data() + offset, &v, sizeof(T));
  }

  pardis::Bytes buffer_;
};

}  // namespace pardis::cdr
