#include "pardis/cdr/decoder.hpp"

namespace pardis::cdr {

std::string Decoder::get_string() {
  const ULong len = get_ulong();
  if (len == 0) {
    throw MARSHAL("CDR string with zero length (missing NUL)");
  }
  require(len);
  const char* data = reinterpret_cast<const char*>(view_.data() + cursor_);
  if (data[len - 1] != '\0') {
    throw MARSHAL("CDR string not NUL-terminated");
  }
  std::string out(data, len - 1);
  cursor_ += len;
  return out;
}

pardis::BytesView Decoder::get_octets(std::size_t count) {
  require(count);
  pardis::BytesView out = view_.subspan(cursor_, count);
  cursor_ += count;
  return out;
}

pardis::Bytes Decoder::get_octet_sequence() {
  const ULong count = get_ulong();
  require(count);
  pardis::Bytes out(view_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                    view_.begin() + static_cast<std::ptrdiff_t>(cursor_ + count));
  cursor_ += count;
  return out;
}

Decoder Decoder::get_encapsulation() {
  const ULong len = get_ulong();
  if (len == 0) {
    throw MARSHAL("empty CDR encapsulation");
  }
  require(len);
  const bool little = view_[cursor_] != 0;
  pardis::BytesView body = view_.subspan(cursor_ + 1, len - 1);
  cursor_ += len;
  return Decoder(body, little);
}

void Decoder::align(std::size_t alignment) {
  const std::size_t misalign = cursor_ % alignment;
  if (misalign != 0) {
    const std::size_t pad = alignment - misalign;
    require(pad);
    cursor_ += pad;
  }
}

}  // namespace pardis::cdr
