// IDL basic-type aliases used throughout the broker and generated code,
// following the CORBA C++ mapping's fixed-width expectations.

#pragma once

#include <cstdint>

namespace pardis::cdr {

using Octet = std::uint8_t;
using Boolean = bool;
using Char = char;
using Short = std::int16_t;
using UShort = std::uint16_t;
using Long = std::int32_t;
using ULong = std::uint32_t;
using LongLong = std::int64_t;
using ULongLong = std::uint64_t;
using Float = float;
using Double = double;

static_assert(sizeof(Float) == 4, "IDL float must be 4 bytes");
static_assert(sizeof(Double) == 8, "IDL double must be 8 bytes");

}  // namespace pardis::cdr
