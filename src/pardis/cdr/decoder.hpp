// CDR decoder: bounds-checked, byte-order-correcting reader over a byte
// view.  Throws pardis::MARSHAL on truncated or malformed input — a remote
// peer's bytes are never trusted.

#pragma once

#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "pardis/cdr/types.hpp"
#include "pardis/common/bytes.hpp"
#include "pardis/common/endian.hpp"
#include "pardis/common/error.hpp"

namespace pardis::cdr {

class Decoder {
 public:
  /// Decodes `view` produced by a peer whose byte order was little-endian
  /// iff `source_little_endian`.  The view must outlive the decoder.
  explicit Decoder(pardis::BytesView view,
                   bool source_little_endian = pardis::host_is_little_endian())
      : view_(view), swap_(source_little_endian != pardis::host_is_little_endian()) {}

  Octet get_octet() { return get_scalar<Octet>(); }
  Boolean get_boolean() { return get_scalar<Octet>() != 0; }
  Char get_char() { return get_scalar<Char>(); }
  Short get_short() { return get_scalar<Short>(); }
  UShort get_ushort() { return get_scalar<UShort>(); }
  Long get_long() { return get_scalar<Long>(); }
  ULong get_ulong() { return get_scalar<ULong>(); }
  LongLong get_longlong() { return get_scalar<LongLong>(); }
  ULongLong get_ulonglong() { return get_scalar<ULongLong>(); }
  Float get_float() { return get_scalar<Float>(); }
  Double get_double() { return get_scalar<Double>(); }

  std::string get_string();

  /// Raw octets with no count prefix.
  pardis::BytesView get_octets(std::size_t count);

  /// ULong count + raw octets, copied out.
  pardis::Bytes get_octet_sequence();

  /// ULong count + aligned primitives; `max_count` guards against a
  /// malicious length prefix.  Returns number of elements read into `out`.
  template <typename T>
    requires std::is_arithmetic_v<T>
  std::vector<T> get_array(std::size_t max_count = SIZE_MAX) {
    const ULong count = get_ulong();
    if (count > max_count) {
      throw MARSHAL("array length exceeds limit");
    }
    align(sizeof(T));
    require(static_cast<std::size_t>(count) * sizeof(T));
    std::vector<T> out(count);
    if (count != 0) {
      std::memcpy(out.data(), view_.data() + cursor_, count * sizeof(T));
    }
    cursor_ += static_cast<std::size_t>(count) * sizeof(T);
    if (swap_) {
      for (T& v : out) v = pardis::byteswap_scalar(v);
    }
    return out;
  }

  /// Reads an array's count prefix and copies elements into caller storage
  /// (used by distributed-sequence unpack to avoid an extra allocation).
  template <typename T>
    requires std::is_arithmetic_v<T>
  void get_array_into(T* out, std::size_t expected_count) {
    const ULong count = get_ulong();
    if (count != expected_count) {
      throw MARSHAL("array length mismatch");
    }
    align(sizeof(T));
    require(expected_count * sizeof(T));
    if (expected_count != 0) {
      std::memcpy(out, view_.data() + cursor_, expected_count * sizeof(T));
    }
    cursor_ += expected_count * sizeof(T);
    if (swap_) {
      for (std::size_t i = 0; i < expected_count; ++i) {
        out[i] = pardis::byteswap_scalar(out[i]);
      }
    }
  }

  /// Enters an encapsulation: reads its length + byte-order octet and
  /// returns a decoder over the body.
  Decoder get_encapsulation();

  void align(std::size_t alignment);

  std::size_t remaining() const noexcept { return view_.size() - cursor_; }
  std::size_t position() const noexcept { return cursor_; }
  bool exhausted() const noexcept { return cursor_ == view_.size(); }

 private:
  template <typename T>
  T get_scalar() {
    align(sizeof(T));
    require(sizeof(T));
    T v;
    std::memcpy(&v, view_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return swap_ ? pardis::byteswap_scalar(v) : v;
  }

  void require(std::size_t bytes) const {
    if (bytes > view_.size() - cursor_) {
      throw MARSHAL("truncated CDR stream");
    }
  }

  pardis::BytesView view_;
  std::size_t cursor_ = 0;
  bool swap_;
};

}  // namespace pardis::cdr
