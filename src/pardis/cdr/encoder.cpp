#include "pardis/cdr/encoder.hpp"

#include "pardis/common/endian.hpp"

namespace pardis::cdr {

void Encoder::put_string(const std::string& s) {
  put_ulong(static_cast<ULong>(s.size() + 1));
  const std::size_t offset = buffer_.size();
  buffer_.resize(offset + s.size() + 1);
  if (!s.empty()) {
    std::memcpy(buffer_.data() + offset, s.data(), s.size());
  }
  buffer_[offset + s.size()] = 0;
}

void Encoder::put_octets(pardis::BytesView view) {
  buffer_.insert(buffer_.end(), view.begin(), view.end());
}

void Encoder::put_octet_sequence(pardis::BytesView view) {
  put_ulong(static_cast<ULong>(view.size()));
  put_octets(view);
}

void Encoder::put_encapsulation(pardis::BytesView body) {
  put_ulong(static_cast<ULong>(body.size() + 1));
  put_octet(pardis::host_is_little_endian() ? 1 : 0);
  put_octets(body);
}

void Encoder::align(std::size_t alignment) {
  const std::size_t misalign = buffer_.size() % alignment;
  if (misalign != 0) {
    buffer_.resize(buffer_.size() + (alignment - misalign), 0);
  }
}

}  // namespace pardis::cdr
