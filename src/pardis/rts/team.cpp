#include "pardis/rts/team.hpp"

#include "pardis/common/error.hpp"
#include "pardis/common/log.hpp"

namespace pardis::rts {

Team::Team(std::string name, int size) : name_(std::move(name)) {
  if (size <= 0) {
    throw BAD_PARAM("Team size must be positive");
  }
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Team::~Team() {
  if (!threads_.empty()) {
    // A Team destroyed while running would leave threads referencing freed
    // mailboxes; join defensively.
    try {
      join();
    } catch (const std::exception& e) {
      PARDIS_LOG_ERROR << "Team '" << name_
                       << "' destroyed with failed run: " << e.what();
    }
  }
}

void Team::run(const Body& body) {
  start(body);
  join();
}

void Team::start(const Body& body) {
  if (!threads_.empty()) {
    throw INTERNAL("Team '" + name_ + "' already running");
  }
  first_error_ = nullptr;
  threads_.reserve(mailboxes_.size());
  for (int rank = 0; rank < size(); ++rank) {
    threads_.emplace_back([this, rank, body] { rank_main(rank, body); });
  }
}

void Team::join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

Mailbox& Team::mailbox(int rank) {
  if (rank < 0 || rank >= size()) {
    throw BAD_PARAM("Team '" + name_ + "': rank out of range");
  }
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

void Team::rank_main(int rank, const Body& body) {
  Communicator comm(*this, rank);
  try {
    body(comm);
  } catch (...) {
    {
      std::lock_guard<common::RankedMutex> lock(error_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    try {
      std::rethrow_exception(std::current_exception());
    } catch (const std::exception& e) {
      PARDIS_LOG_ERROR << "rank " << rank << " of team '" << name_
                       << "' failed: " << e.what();
    } catch (...) {
      PARDIS_LOG_ERROR << "rank " << rank << " of team '" << name_
                       << "' failed with a non-standard exception";
    }
    // Unblock siblings waiting in recv so the team unwinds.
    std::string reason = "rank " + std::to_string(rank) + " of team '" +
                         name_ + "' terminated with an exception";
    for (auto& box : mailboxes_) {
      box->poison(reason);
    }
  }
}

}  // namespace pardis::rts
