// Team: one SPMD application instance (the paper's "computing threads").
//
// A Team owns `size` mailboxes and runs a body function on `size` threads,
// each receiving its own Communicator.  This is the in-process stand-in for
// the paper's parallel applications (client on the 4-node Onyx, server on
// the 10-node PowerChallenge), whose internal communication went through
// shared-memory MPICH.

#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pardis/common/ranked_mutex.hpp"
#include "pardis/rts/communicator.hpp"
#include "pardis/rts/mailbox.hpp"

namespace pardis::rts {

class Team {
 public:
  using Body = std::function<void(Communicator&)>;

  /// Creates a team of `size` ranks named `name` (used in diagnostics and as
  /// the default "host" identity in the simulated fabric).
  Team(std::string name, int size);
  ~Team();

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  int size() const noexcept { return static_cast<int>(mailboxes_.size()); }
  const std::string& name() const noexcept { return name_; }

  /// Runs `body` on all ranks and blocks until every rank returns.  If any
  /// rank throws, all mailboxes are poisoned (so sibling ranks blocked in
  /// recv unwind) and the first exception is rethrown after the join.
  void run(const Body& body);

  /// Starts the ranks without blocking; call join() to wait.  At most one
  /// run is active at a time.
  void start(const Body& body);
  void join();

  Mailbox& mailbox(int rank);

 private:
  void rank_main(int rank, const Body& body);

  std::string name_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::thread> threads_;
  common::RankedMutex error_mu_{common::LockRank::kRtsTeamError};
  std::exception_ptr first_error_;
};

}  // namespace pardis::rts
