// Typed collective wrappers over the byte-level Communicator collectives.
//
// These are the operations the distributed-sequence layer and the transfer
// engines use: value broadcast, variable-count gather/scatter of primitive
// arrays, reductions, and personalized all-to-all (the redistribute engine).

#pragma once

#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "pardis/common/bytes.hpp"
#include "pardis/common/error.hpp"
#include "pardis/rts/communicator.hpp"

namespace pardis::rts {

namespace detail {

template <typename T>
pardis::Bytes to_bytes(std::span<const T> values) {
  pardis::Bytes out(values.size_bytes());
  if (!values.empty()) {
    std::memcpy(out.data(), values.data(), values.size_bytes());
  }
  return out;
}

template <typename T>
std::vector<T> from_bytes(pardis::BytesView bytes) {
  if (bytes.size() % sizeof(T) != 0) {
    throw MARSHAL("collective payload size not a multiple of element size");
  }
  std::vector<T> out(bytes.size() / sizeof(T));
  if (!out.empty()) {
    std::memcpy(out.data(), bytes.data(), bytes.size());
  }
  return out;
}

}  // namespace detail

/// Broadcasts a single trivially copyable value from root to all ranks.
template <typename T>
  requires std::is_trivially_copyable_v<T>
T bcast_value(Communicator& comm, T value, int root) {
  pardis::Bytes data(sizeof(T));
  if (comm.rank() == root) {
    std::memcpy(data.data(), &value, sizeof(T));
  }
  comm.bcast_bytes(data, root);
  if (data.size() != sizeof(T)) {
    throw MARSHAL("bcast_value: payload size mismatch");
  }
  T out;
  std::memcpy(&out, data.data(), sizeof(T));
  return out;
}

/// Broadcasts a vector (count + elements) from root.
template <typename T>
  requires std::is_trivially_copyable_v<T>
void bcast_vector(Communicator& comm, std::vector<T>& values, int root) {
  pardis::Bytes data;
  if (comm.rank() == root) {
    data = detail::to_bytes(std::span<const T>(values));
  }
  comm.bcast_bytes(data, root);
  if (comm.rank() != root) {
    values = detail::from_bytes<T>(data);
  }
}

/// Variable-count gather: each rank contributes `local`; at root the
/// contributions are concatenated in rank order.  Non-roots get {}.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> gatherv(Communicator& comm, std::span<const T> local,
                       int root) {
  auto parts = comm.gather_bytes(detail::to_bytes(local), root);
  std::vector<T> out;
  if (comm.rank() == root) {
    std::size_t total = 0;
    for (const auto& p : parts) total += p.size();
    out.reserve(total / sizeof(T));
    for (const auto& p : parts) {
      auto chunk = detail::from_bytes<T>(p);
      out.insert(out.end(), chunk.begin(), chunk.end());
    }
  }
  return out;
}

/// Variable-count scatter: root supplies `all` split by `counts` (one count
/// per rank, summing to all.size()); every rank returns its own chunk.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> scatterv(Communicator& comm, std::span<const T> all,
                        std::span<const std::size_t> counts, int root) {
  std::vector<pardis::Bytes> parts;
  if (comm.rank() == root) {
    if (counts.size() != static_cast<std::size_t>(comm.size())) {
      throw BAD_PARAM("scatterv: counts.size() != team size");
    }
    std::size_t offset = 0;
    parts.reserve(counts.size());
    for (std::size_t count : counts) {
      if (offset + count > all.size()) {
        throw BAD_PARAM("scatterv: counts exceed data size");
      }
      parts.push_back(detail::to_bytes(all.subspan(offset, count)));
      offset += count;
    }
    if (offset != all.size()) {
      throw BAD_PARAM("scatterv: counts do not cover data");
    }
  } else {
    parts.resize(static_cast<std::size_t>(comm.size()));
  }
  return detail::from_bytes<T>(comm.scatter_bytes(parts, root));
}

/// Allgather of a single value; result indexed by rank.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> allgather_value(Communicator& comm, T value) {
  auto parts =
      comm.allgather_bytes(detail::to_bytes(std::span<const T>(&value, 1)));
  std::vector<T> out;
  out.reserve(parts.size());
  for (const auto& p : parts) {
    auto v = detail::from_bytes<T>(p);
    if (v.size() != 1) throw MARSHAL("allgather_value: size mismatch");
    out.push_back(v.front());
  }
  return out;
}

/// Reduces one value per rank with `op` at root (flat algorithm).
template <typename T, typename Op = std::plus<T>>
  requires std::is_trivially_copyable_v<T>
T reduce_value(Communicator& comm, T local, int root, Op op = {}) {
  auto parts =
      comm.gather_bytes(detail::to_bytes(std::span<const T>(&local, 1)), root);
  if (comm.rank() != root) return T{};
  T acc{};
  bool first = true;
  for (const auto& p : parts) {
    auto v = detail::from_bytes<T>(p);
    if (v.size() != 1) throw MARSHAL("reduce_value: size mismatch");
    acc = first ? v.front() : op(acc, v.front());
    first = false;
  }
  return acc;
}

/// Allreduce = reduce at rank 0 + broadcast.
template <typename T, typename Op = std::plus<T>>
  requires std::is_trivially_copyable_v<T>
T allreduce_value(Communicator& comm, T local, Op op = {}) {
  T result = reduce_value(comm, local, 0, op);
  return bcast_value(comm, result, 0);
}

/// Personalized all-to-all of typed chunks: parts[dst] is delivered to dst;
/// returns chunks received, indexed by source rank.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<std::vector<T>> alltoallv(
    Communicator& comm, const std::vector<std::vector<T>>& parts) {
  std::vector<pardis::Bytes> raw;
  raw.reserve(parts.size());
  for (const auto& p : parts) {
    raw.push_back(detail::to_bytes(std::span<const T>(p)));
  }
  auto got = comm.alltoall_bytes(raw);
  std::vector<std::vector<T>> out;
  out.reserve(got.size());
  for (const auto& p : got) {
    out.push_back(detail::from_bytes<T>(p));
  }
  return out;
}

}  // namespace pardis::rts
