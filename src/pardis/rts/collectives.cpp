// Collective algorithms over the mailbox point-to-point layer.
//
// Algorithms follow the standard MPI playbook: dissemination barrier
// (log2(P) rounds), binomial-tree broadcast, flat gather/scatter (the flat
// shape is deliberate: the paper's analysis charges gather/scatter cost at
// the communicating thread, which is exactly the flat root bottleneck).

#include <bit>

#include "pardis/common/error.hpp"
#include "pardis/rts/communicator.hpp"
#include "pardis/rts/team.hpp"

namespace pardis::rts {

void Communicator::barrier() {
  const int p = size();
  if (p == 1) return;
  // Dissemination barrier: in round r, rank i signals (i + 2^r) mod p and
  // waits for (i - 2^r) mod p.  After ceil(log2 p) rounds all ranks have
  // transitively heard from everyone.
  for (int dist = 1; dist < p; dist <<= 1) {
    const int to = (rank_ + dist) % p;
    const int from = (rank_ - dist % p + p) % p;
    send_internal(to, kTagBarrier, {});
    (void)recv_internal(from, kTagBarrier);
  }
}

void Communicator::bcast_bytes(pardis::Bytes& data, int root) {
  check_rank(root, "bcast root");
  const int p = size();
  if (p == 1) return;
  // Binomial tree on ranks relative to the root.
  const int vrank = (rank_ - root + p) % p;
  // Receive from parent (unless root).
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int parent = ((vrank - mask) + root) % p;
      data = recv_internal(parent, kTagBcast).payload;
      break;
    }
    mask <<= 1;
  }
  // Forward to children.
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int child = ((vrank + mask) + root) % p;
      send_internal(child, kTagBcast, data);
    }
    mask >>= 1;
  }
}

std::vector<pardis::Bytes> Communicator::gather_bytes(pardis::BytesView local,
                                                      int root) {
  check_rank(root, "gather root");
  if (rank_ != root) {
    send_internal(root, kTagGather, local);
    return {};
  }
  std::vector<pardis::Bytes> parts(static_cast<std::size_t>(size()));
  parts[static_cast<std::size_t>(rank_)] =
      pardis::Bytes(local.begin(), local.end());
  for (int src = 0; src < size(); ++src) {
    if (src == root) continue;
    parts[static_cast<std::size_t>(src)] =
        recv_internal(src, kTagGather).payload;
  }
  return parts;
}

pardis::Bytes Communicator::scatter_bytes(
    const std::vector<pardis::Bytes>& parts, int root) {
  check_rank(root, "scatter root");
  if (rank_ == root) {
    if (parts.size() != static_cast<std::size_t>(size())) {
      throw BAD_PARAM("scatter: parts.size() != team size");
    }
    for (int dst = 0; dst < size(); ++dst) {
      if (dst == root) continue;
      send_internal(dst, kTagScatter, parts[static_cast<std::size_t>(dst)]);
    }
    return parts[static_cast<std::size_t>(root)];
  }
  return recv_internal(root, kTagScatter).payload;
}

std::vector<pardis::Bytes> Communicator::allgather_bytes(
    pardis::BytesView local) {
  const int p = size();
  std::vector<pardis::Bytes> parts(static_cast<std::size_t>(p));
  parts[static_cast<std::size_t>(rank_)] =
      pardis::Bytes(local.begin(), local.end());
  // Flat exchange: post all sends (non-blocking), then drain receives.
  for (int dst = 0; dst < p; ++dst) {
    if (dst != rank_) send_internal(dst, kTagAllgather, local);
  }
  for (int src = 0; src < p; ++src) {
    if (src != rank_) {
      parts[static_cast<std::size_t>(src)] =
          recv_internal(src, kTagAllgather).payload;
    }
  }
  return parts;
}

std::vector<pardis::Bytes> Communicator::alltoall_bytes(
    const std::vector<pardis::Bytes>& parts) {
  const int p = size();
  if (parts.size() != static_cast<std::size_t>(p)) {
    throw BAD_PARAM("alltoall: parts.size() != team size");
  }
  std::vector<pardis::Bytes> received(static_cast<std::size_t>(p));
  received[static_cast<std::size_t>(rank_)] =
      parts[static_cast<std::size_t>(rank_)];
  for (int dst = 0; dst < p; ++dst) {
    if (dst != rank_) {
      send_internal(dst, kTagAlltoall, parts[static_cast<std::size_t>(dst)]);
    }
  }
  for (int src = 0; src < p; ++src) {
    if (src != rank_) {
      received[static_cast<std::size_t>(src)] =
          recv_internal(src, kTagAlltoall).payload;
    }
  }
  return received;
}

}  // namespace pardis::rts
