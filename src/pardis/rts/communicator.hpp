// The PARDIS runtime-system interface (paper §2.3).
//
// PARDIS interacts with a parallel application's runtime through a generic
// message-passing interface; the paper tested MPI and Tulip beneath it.
// Communicator is that interface: tagged point-to-point transfers plus the
// collective operations the transfer engines and distributed sequences need
// (barrier, broadcast, gather(v), scatter(v), allgather, reduce, all-to-all).
//
// One Communicator is handed to each computing thread (rank) of a Team.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pardis/common/bytes.hpp"
#include "pardis/rts/mailbox.hpp"

namespace pardis::rts {

class Team;

class Communicator {
 public:
  Communicator(Team& team, int rank);

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  int rank() const noexcept { return rank_; }
  int size() const noexcept;
  const std::string& team_name() const noexcept;
  Team& team() noexcept { return *team_; }

  // ---- point-to-point -----------------------------------------------------

  /// Buffered send of `payload` to rank `dst` with user tag `tag`
  /// (0 <= tag < kInternalTagBase).  Never blocks.
  void send(int dst, int tag, pardis::BytesView payload);

  /// Blocking receive matching (src, tag); wildcards kAnySource/kAnyTag.
  Message recv(int src = kAnySource, int tag = kAnyTag);

  /// Non-blocking probe for a matching queued message.
  bool probe(int src = kAnySource, int tag = kAnyTag) const;

  // ---- collectives (byte-level; typed wrappers in collectives.hpp) --------

  /// Dissemination barrier across all ranks of the team.
  void barrier();

  /// Binomial-tree broadcast of root's bytes to every rank.
  void bcast_bytes(pardis::Bytes& data, int root);

  /// Flat gather: at root, returns the per-rank payloads indexed by rank
  /// (root's own `local` included); elsewhere returns an empty vector.
  std::vector<pardis::Bytes> gather_bytes(pardis::BytesView local, int root);

  /// Flat scatter: root supplies one payload per rank (`parts.size() ==
  /// size()`); every rank returns its own part.
  pardis::Bytes scatter_bytes(const std::vector<pardis::Bytes>& parts,
                              int root);

  /// Every rank returns all ranks' payloads indexed by rank.
  std::vector<pardis::Bytes> allgather_bytes(pardis::BytesView local);

  /// Personalized all-to-all: `parts[dst]` goes to rank dst; returns the
  /// payloads received, indexed by source rank.
  std::vector<pardis::Bytes> alltoall_bytes(
      const std::vector<pardis::Bytes>& parts);

 private:
  friend class Team;

  void send_internal(int dst, int tag, pardis::BytesView payload);
  Message recv_internal(int src, int tag);
  void check_rank(int rank, const char* what) const;

  Team* team_;
  int rank_;
};

}  // namespace pardis::rts
