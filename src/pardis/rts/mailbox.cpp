#include "pardis/rts/mailbox.hpp"

#include <algorithm>

#include "pardis/common/error.hpp"

namespace pardis::rts {

void Mailbox::post(Message m) {
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    queue_.push_back(std::move(m));
  }
  cv_.notify_all();
}

Message Mailbox::recv(int src, int tag) {
  std::unique_lock<common::RankedMutex> lock(mu_);
  const auto match = [&](const Message& m) { return matches(m, src, tag); };
  cv_.wait(lock, [&] {
    return poison_.has_value() ||
           std::any_of(queue_.begin(), queue_.end(), match);
  });
  if (poison_) {
    throw COMM_FAILURE("mailbox poisoned: " + *poison_, Completion::kMaybe);
  }
  const auto it = std::find_if(queue_.begin(), queue_.end(), match);
  Message out = std::move(*it);
  queue_.erase(it);
  return out;
}

bool Mailbox::probe(int src, int tag) const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return std::any_of(queue_.begin(), queue_.end(), [&](const Message& m) {
    return matches(m, src, tag);
  });
}

std::size_t Mailbox::pending() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return queue_.size();
}

void Mailbox::poison(std::string reason) {
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    poison_ = std::move(reason);
  }
  cv_.notify_all();
}

}  // namespace pardis::rts
