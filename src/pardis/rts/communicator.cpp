#include "pardis/rts/communicator.hpp"

#include "pardis/common/error.hpp"
#include "pardis/rts/team.hpp"

namespace pardis::rts {

Communicator::Communicator(Team& team, int rank) : team_(&team), rank_(rank) {
  if (rank < 0 || rank >= team.size()) {
    throw BAD_PARAM("Communicator rank out of range");
  }
}

int Communicator::size() const noexcept { return team_->size(); }

const std::string& Communicator::team_name() const noexcept {
  return team_->name();
}

void Communicator::send(int dst, int tag, pardis::BytesView payload) {
  if (tag < 0 || tag >= kInternalTagBase) {
    throw BAD_PARAM("user tag out of range [0, kInternalTagBase)");
  }
  send_internal(dst, tag, payload);
}

Message Communicator::recv(int src, int tag) {
  if (tag != kAnyTag && (tag < 0 || tag >= kInternalTagBase)) {
    throw BAD_PARAM("user tag out of range [0, kInternalTagBase)");
  }
  return recv_internal(src, tag);
}

bool Communicator::probe(int src, int tag) const {
  return team_->mailbox(rank_).probe(src, tag);
}

void Communicator::send_internal(int dst, int tag, pardis::BytesView payload) {
  check_rank(dst, "send destination");
  team_->mailbox(dst).post(
      Message{rank_, tag, pardis::Bytes(payload.begin(), payload.end())});
}

Message Communicator::recv_internal(int src, int tag) {
  if (src != kAnySource) check_rank(src, "recv source");
  return team_->mailbox(rank_).recv(src, tag);
}

void Communicator::check_rank(int rank, const char* what) const {
  if (rank < 0 || rank >= size()) {
    throw BAD_PARAM(std::string(what) + " out of range");
  }
}

}  // namespace pardis::rts
