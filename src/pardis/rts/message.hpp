// Intra-application message record.
//
// The runtime system models distributed memory even though ranks are threads
// of one process (the paper ran MPICH compiled for shared memory on each
// machine): payloads are always copied into the message, never shared.

#pragma once

#include <cstdint>

#include "pardis/common/bytes.hpp"

namespace pardis::rts {

struct Message {
  int src = -1;
  int tag = -1;
  pardis::Bytes payload;
};

/// User tags live in [0, kInternalTagBase); collectives use tags at or above
/// kInternalTagBase so wildcard receives never steal collective traffic.
inline constexpr int kInternalTagBase = 0x4000'0000;

enum InternalTag : int {
  kTagBarrier = kInternalTagBase + 0,
  kTagBcast = kInternalTagBase + 1,
  kTagGather = kInternalTagBase + 2,
  kTagScatter = kInternalTagBase + 3,
  kTagAllgather = kInternalTagBase + 4,
  kTagReduce = kInternalTagBase + 5,
  kTagAlltoall = kInternalTagBase + 6,
};

}  // namespace pardis::rts
