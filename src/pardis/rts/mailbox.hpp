// Per-rank mailbox with MPI-style (source, tag) matching.
//
// Posting never blocks (buffered sends), so point-to-point exchange patterns
// cannot deadlock inside one application.  Receives match the *earliest*
// queued message satisfying the (src, tag) filter, preserving pairwise FIFO
// order — the property MPI guarantees and our collectives rely on.

#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

#include "pardis/common/ranked_mutex.hpp"
#include "pardis/rts/message.hpp"

namespace pardis::rts {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

class Mailbox {
 public:
  /// Enqueues a message; never blocks.
  void post(Message m);

  /// Blocks until a message matching (src, tag) is available and removes it.
  /// Throws pardis::COMM_FAILURE if the mailbox is poisoned.
  Message recv(int src = kAnySource, int tag = kAnyTag);

  /// Non-blocking: true iff a matching message is queued.
  bool probe(int src = kAnySource, int tag = kAnyTag) const;

  /// Number of queued messages (diagnostics).
  std::size_t pending() const;

  /// Wakes all waiters with COMM_FAILURE carrying `reason`; used when a
  /// sibling rank dies so the team unwinds instead of deadlocking.
  void poison(std::string reason);

 private:
  static bool matches(const Message& m, int src, int tag) {
    return (src == kAnySource || m.src == src) &&
           (tag == kAnyTag || m.tag == tag);
  }

  mutable common::RankedMutex mu_{common::LockRank::kRtsMailbox};
  std::condition_variable_any cv_;
  std::deque<Message> queue_;
  std::optional<std::string> poison_;
};

}  // namespace pardis::rts
