// Object references.
//
// A PARDIS object reference extends the CORBA notion with the distributed
// resources of an SPMD object (paper §2): it carries one network endpoint
// per computing thread.  endpoints[0] belongs to the communicating thread
// and receives all control traffic (bind, request headers, replies); the
// remaining endpoints are the per-thread ports used by multi-port argument
// transfer (§3.3: "these connections become a part of object reference for
// this particular object").
//
// References are CDR-encodable and stringifiable ("PARDIS:<hex>"), the
// analogue of CORBA's object_to_string/string_to_object.

#pragma once

#include <string>
#include <vector>

#include "pardis/cdr/decoder.hpp"
#include "pardis/cdr/encoder.hpp"
#include "pardis/net/fabric.hpp"

namespace pardis::orb {

struct ObjectRef {
  /// IDL repository id, e.g. "IDL:diff_object:1.0".
  std::string type_id;
  /// Name under which the object is registered (the naming-domain key).
  std::string name;
  /// Host the object's application runs on.
  std::string host;
  /// One listening address per computing thread; [0] = communicating thread.
  std::vector<net::Address> endpoints;

  /// Number of computing threads backing the object.
  int spmd_size() const noexcept { return static_cast<int>(endpoints.size()); }

  bool valid() const noexcept { return !endpoints.empty(); }

  void encode(cdr::Encoder& enc) const;
  static ObjectRef decode(cdr::Decoder& dec);

  /// "PARDIS:<hex-encapsulation>".
  std::string to_string() const;
  /// Throws pardis::INV_OBJREF on malformed input.
  static ObjectRef from_string(const std::string& stringified);

  bool operator==(const ObjectRef&) const = default;
};

}  // namespace pardis::orb
