// The Object Request Broker context.
//
// One Orb is the shared broker state of a PARDIS deployment: the network
// fabric, the naming domain, the exception registry, and id generators.  In
// the paper's deployment each machine runs its own broker libraries against
// a shared naming/transport substrate; in this in-process reproduction one
// Orb instance plays the substrate for all applications of a scenario,
// while per-application state (teams, bindings, adapters) lives in the
// transfer layer.

#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>

#include "pardis/common/config.hpp"
#include "pardis/net/fabric.hpp"
#include "pardis/obs/observability.hpp"
#include "pardis/orb/exceptions.hpp"
#include "pardis/orb/naming.hpp"
#include "pardis/orb/protocol.hpp"
#include "pardis/transport/transport.hpp"

namespace pardis::orb {

struct OrbConfig {
  /// Link model between distinct hosts unless overridden via set_link.
  net::LinkModel default_link = net::LinkModel::unlimited();
  /// Default transfer method for invocations that don't specify one.
  TransferMethod default_method = TransferMethod::kMultiPort;
  /// Wire backend (sim | tcp).  nullopt defers to the PARDIS_TRANSPORT
  /// environment variable, whose own default is the simulated fabric.
  std::optional<transport::Kind> transport;
};

class Orb {
 public:
  static std::shared_ptr<Orb> create(const OrbConfig& config = {});

  /// The simulated fabric.  Always present (link models are configured
  /// here even when the TCP backend carries the traffic); the sim
  /// transport adapts it.
  net::Fabric& fabric() noexcept { return fabric_; }
  /// The wire backend every binding and listener goes through.
  transport::Transport& transport() noexcept { return *transport_; }
  NameService& naming() noexcept { return naming_; }
  /// The process-wide user-exception registry (generated stubs register
  /// their throwers there at static-initialization time).
  ExceptionRegistry& exceptions() noexcept {
    return ExceptionRegistry::global();
  }
  const OrbConfig& config() const noexcept { return config_; }

  /// This broker's observability state: the metrics registry every layer
  /// feeds and the invocation tracer.
  obs::Observability& obs() noexcept { return obs_; }
  obs::MetricsRegistry& metrics() noexcept { return obs_.metrics(); }
  obs::Tracer& tracer() noexcept { return obs_.tracer(); }

  /// Pulls layer-local counters (per-link traffic/contention) into the
  /// registry and returns it, ready for dumping.
  obs::MetricsRegistry& collect_metrics() {
    fabric_.collect_metrics();
    transport_->collect_metrics();
    return obs_.metrics();
  }

  cdr::ULong next_binding_id() { return ++binding_ids_; }

 private:
  explicit Orb(const OrbConfig& config);

  OrbConfig config_;
  obs::Observability obs_;
  net::Fabric fabric_;
  // After fabric_ and obs_ (it references both), before everything that
  // may hold streams.
  std::unique_ptr<transport::Transport> transport_;
  NameService naming_;
  std::atomic<cdr::ULong> binding_ids_{0};
};

}  // namespace pardis::orb
