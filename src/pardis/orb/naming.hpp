// PARDIS naming domain (paper §2.1: "PARDIS provides a naming domain for
// objects. At the time of binding the client has to identify which
// particular object of a given type it wants to work with; specifying a
// host is optional.")

#pragma once

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "pardis/common/ranked_mutex.hpp"
#include "pardis/orb/objref.hpp"

namespace pardis::orb {

class NameService {
 public:
  /// Publishes `ref` under (ref.name, ref.host); replaces a previous
  /// registration of the same name+host pair.
  void register_object(const ObjectRef& ref);

  void unregister_object(const std::string& name, const std::string& host);

  /// Resolves by name; a non-empty `host` restricts the match.  If several
  /// hosts serve the same name and no host is given, the first registered
  /// wins.  Returns nullopt when absent.
  std::optional<ObjectRef> resolve(const std::string& name,
                                   const std::string& host = {}) const;

  /// Blocks until the name resolves or the timeout elapses (covers the
  /// client-starts-before-server race in scenarios).
  std::optional<ObjectRef> resolve_wait(
      const std::string& name, const std::string& host = {},
      std::chrono::milliseconds timeout = std::chrono::seconds(10)) const;

  /// All registrations, for diagnostics / browsing.
  std::vector<ObjectRef> list() const;

 private:
  std::optional<ObjectRef> resolve_locked(const std::string& name,
                                          const std::string& host) const;

  mutable common::RankedMutex mu_{common::LockRank::kOrbNaming};
  mutable std::condition_variable_any cv_;
  // Keyed by (name, host) to allow same-named objects on different hosts.
  std::map<std::pair<std::string, std::string>, ObjectRef> objects_;
};

}  // namespace pardis::orb
