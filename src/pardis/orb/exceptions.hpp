// Exception marshaling across the broker.
//
// A servant failure travels in the Reply payload:
//   string  discriminator ("SYS" kind, or the user exception's repo id)
//   string  human-readable message
//   <body>  user-exception members (CDR), absent for system exceptions
//
// System exceptions are rebuilt from a fixed kind table.  User exceptions
// (declared in IDL) are rebuilt through the ExceptionRegistry: generated
// stub code registers a thrower per repository id at static-init time, so a
// client that links the stubs gets fully typed exceptions back.

#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "pardis/cdr/decoder.hpp"
#include "pardis/cdr/encoder.hpp"
#include "pardis/common/error.hpp"
#include "pardis/common/ranked_mutex.hpp"
#include "pardis/orb/protocol.hpp"

namespace pardis::orb {

/// Base class for IDL-generated user exceptions: adds body marshaling so
/// servant-side engines can encode the members without knowing the type.
class TypedUserException : public UserException {
 public:
  using UserException::UserException;
  virtual void encode_body(cdr::Encoder& enc) const { (void)enc; }
};

class ExceptionRegistry {
 public:
  /// A thrower decodes the exception body and throws the typed exception.
  using Thrower = std::function<void(cdr::Decoder& body)>;

  /// Registers (or replaces) the thrower for `repo_id`.
  void register_user_exception(const std::string& repo_id, Thrower thrower);

  bool knows(const std::string& repo_id) const;

  /// Rethrows the typed exception for `repo_id` with the given body.
  /// Falls back to a plain UserException when the id is unregistered.
  [[noreturn]] void rethrow_user(const std::string& repo_id,
                                 const std::string& message,
                                 cdr::Decoder& body) const;

  /// Process-wide registry used by generated code's static registrars.
  static ExceptionRegistry& global();

 private:
  mutable common::RankedMutex mu_{common::LockRank::kOrbExceptions};
  std::map<std::string, Thrower> throwers_;
};

/// Encodes a system exception into a Reply payload.
pardis::Bytes marshal_system_exception(const SystemException& e);

/// Encodes a user exception; `encode_body` (from generated code) appends the
/// exception members.
pardis::Bytes marshal_user_exception(
    const UserException& e,
    const std::function<void(cdr::Encoder&)>& encode_body);

/// Decodes a Reply payload with status kSystemException/kUserException and
/// throws the reconstructed exception.
[[noreturn]] void rethrow_reply_exception(ReplyStatus status,
                                          pardis::BytesView payload,
                                          const ExceptionRegistry& registry);

}  // namespace pardis::orb
