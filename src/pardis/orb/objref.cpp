#include "pardis/orb/objref.hpp"

#include "pardis/common/error.hpp"

namespace pardis::orb {

namespace {
constexpr char kPrefix[] = "PARDIS:";
constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
}  // namespace

void ObjectRef::encode(cdr::Encoder& enc) const {
  enc.put_string(type_id);
  enc.put_string(name);
  enc.put_string(host);
  enc.put_ulong(static_cast<cdr::ULong>(endpoints.size()));
  for (const net::Address& ep : endpoints) {
    enc.put_string(ep.host);
    enc.put_long(ep.port);
  }
}

ObjectRef ObjectRef::decode(cdr::Decoder& dec) {
  ObjectRef ref;
  ref.type_id = dec.get_string();
  ref.name = dec.get_string();
  ref.host = dec.get_string();
  const cdr::ULong count = dec.get_ulong();
  if (count > 65536) {
    throw INV_OBJREF("object reference with absurd endpoint count");
  }
  ref.endpoints.reserve(count);
  for (cdr::ULong i = 0; i < count; ++i) {
    net::Address ep;
    ep.host = dec.get_string();
    ep.port = dec.get_long();
    ref.endpoints.push_back(std::move(ep));
  }
  return ref;
}

std::string ObjectRef::to_string() const {
  cdr::Encoder body;
  encode(body);
  cdr::Encoder outer;
  outer.put_encapsulation(body.bytes());
  return kPrefix + to_hex(outer.bytes());
}

ObjectRef ObjectRef::from_string(const std::string& stringified) {
  if (stringified.compare(0, kPrefixLen, kPrefix) != 0) {
    throw INV_OBJREF("missing PARDIS: prefix");
  }
  Bytes raw;
  try {
    raw = from_hex(stringified.substr(kPrefixLen));
  } catch (const BAD_PARAM& e) {
    throw INV_OBJREF(e.what());
  }
  try {
    cdr::Decoder outer{BytesView(raw)};
    cdr::Decoder body = outer.get_encapsulation();
    return decode(body);
  } catch (const MARSHAL& e) {
    throw INV_OBJREF(std::string("malformed reference body: ") + e.what());
  }
}

}  // namespace pardis::orb
