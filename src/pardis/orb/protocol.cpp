#include "pardis/orb/protocol.hpp"

#include "pardis/common/endian.hpp"
#include "pardis/common/error.hpp"

namespace pardis::orb {

namespace {
constexpr std::uint8_t kMagic[4] = {'P', 'D', 'I', 'S'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kPrologueSize = 8;
constexpr std::size_t kMuxPrologueSize = 16;
constexpr std::size_t kTraceExtSize = 16;
constexpr std::uint8_t kFlagMux = 0x01;
constexpr std::uint8_t kFlagTrace = 0x02;
constexpr std::uint8_t kKnownFlags = kFlagMux | kFlagTrace;
constexpr cdr::ULong kMaxRanks = 1u << 16;

// The trace extension starts 8-aligned in both placements (offset 8 after
// the base prologue, offset 16 after the mux extension), so the leading
// ulonglong needs no padding and the body stays 8-aligned.
void put_trace_ext(cdr::Encoder& enc, const TraceContext& trace) {
  enc.put_ulonglong(trace.trace_id);
  enc.put_ulong(trace.parent_span);
  enc.put_ulong(0);  // reserved
}
}  // namespace

const char* to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::kBindRequest: return "BindRequest";
    case MsgType::kBindAck:     return "BindAck";
    case MsgType::kRequest:     return "Request";
    case MsgType::kReply:       return "Reply";
    case MsgType::kArgTransfer: return "ArgTransfer";
    case MsgType::kHello:       return "Hello";
    case MsgType::kShutdown:    return "Shutdown";
    case MsgType::kUnbind:      return "Unbind";
  }
  return "?";
}

const char* to_string(FrameKind k) noexcept {
  switch (k) {
    case FrameKind::kData:   return "data";
    case FrameKind::kCredit: return "credit";
    case FrameKind::kReject: return "reject";
  }
  return "?";
}

const char* to_string(TransferMethod m) noexcept {
  switch (m) {
    case TransferMethod::kCentralized: return "centralized";
    case TransferMethod::kMultiPort:   return "multi-port";
  }
  return "?";
}

// ---- DSeqDescriptor --------------------------------------------------------

void DSeqDescriptor::encode(cdr::Encoder& enc) const {
  enc.put_ulong(arg_index);
  enc.put_octet(static_cast<cdr::Octet>(dir));
  enc.put_octet(static_cast<cdr::Octet>(elem_kind));
  enc.put_ulong(elem_size);
  enc.put_ulonglong(total_length);
  enc.put_array(src_counts.data(), src_counts.size());
}

DSeqDescriptor DSeqDescriptor::decode(cdr::Decoder& dec) {
  DSeqDescriptor d;
  d.arg_index = dec.get_ulong();
  d.dir = static_cast<ArgDir>(dec.get_octet());
  d.elem_kind = static_cast<ElemKind>(dec.get_octet());
  d.elem_size = dec.get_ulong();
  d.total_length = dec.get_ulonglong();
  d.src_counts = dec.get_array<cdr::ULongLong>(kMaxRanks);
  if (d.elem_size == 0 || d.elem_size > 16) {
    throw MARSHAL("DSeqDescriptor: bad element size");
  }
  cdr::ULongLong sum = 0;
  for (cdr::ULongLong c : d.src_counts) sum += c;
  if (sum != d.total_length) {
    throw MARSHAL("DSeqDescriptor: src_counts do not sum to total_length");
  }
  return d;
}

// ---- BindRequest / BindAck / Hello -----------------------------------------

void BindRequest::encode(cdr::Encoder& enc) const {
  enc.put_ulong(binding_id);
  enc.put_string(client_host);
  enc.put_ulong(client_ranks);
  enc.put_string(object_key);
  enc.put_boolean(collective);
}

BindRequest BindRequest::decode(cdr::Decoder& dec) {
  BindRequest r;
  r.binding_id = dec.get_ulong();
  r.client_host = dec.get_string();
  r.client_ranks = dec.get_ulong();
  r.object_key = dec.get_string();
  r.collective = dec.get_boolean();
  if (r.client_ranks == 0 || r.client_ranks > kMaxRanks) {
    throw MARSHAL("BindRequest: bad client rank count");
  }
  return r;
}

void BindAck::encode(cdr::Encoder& enc) const {
  enc.put_ulong(binding_id);
  enc.put_octet(static_cast<cdr::Octet>(status));
  enc.put_ulong(server_ranks);
  enc.put_ulong(credit);
  enc.put_string(message);
}

BindAck BindAck::decode(cdr::Decoder& dec) {
  BindAck a;
  a.binding_id = dec.get_ulong();
  a.status = static_cast<BindStatus>(dec.get_octet());
  a.server_ranks = dec.get_ulong();
  a.credit = dec.get_ulong();
  a.message = dec.get_string();
  return a;
}

void Hello::encode(cdr::Encoder& enc) const {
  enc.put_ulong(binding_id);
  enc.put_ulong(client_rank);
}

Hello Hello::decode(cdr::Decoder& dec) {
  Hello h;
  h.binding_id = dec.get_ulong();
  h.client_rank = dec.get_ulong();
  return h;
}

// ---- RequestHeader / ReplyHeader -------------------------------------------

void RequestHeader::encode(cdr::Encoder& enc) const {
  enc.put_ulong(request_id);
  enc.put_ulong(binding_id);
  enc.put_string(operation);
  enc.put_boolean(response_expected);
  enc.put_boolean(collective);
  enc.put_octet(static_cast<cdr::Octet>(method));
  enc.put_octet_sequence(scalar_args);
  enc.put_ulong(static_cast<cdr::ULong>(dseqs.size()));
  for (const DSeqDescriptor& d : dseqs) {
    d.encode(enc);
  }
}

RequestHeader RequestHeader::decode(cdr::Decoder& dec) {
  RequestHeader h;
  h.request_id = dec.get_ulong();
  h.binding_id = dec.get_ulong();
  h.operation = dec.get_string();
  h.response_expected = dec.get_boolean();
  h.collective = dec.get_boolean();
  h.method = static_cast<TransferMethod>(dec.get_octet());
  h.scalar_args = dec.get_octet_sequence();
  const cdr::ULong ndseq = dec.get_ulong();
  if (ndseq > 256) {
    throw MARSHAL("RequestHeader: too many sequence arguments");
  }
  h.dseqs.reserve(ndseq);
  for (cdr::ULong i = 0; i < ndseq; ++i) {
    h.dseqs.push_back(DSeqDescriptor::decode(dec));
  }
  return h;
}

void ReplyHeader::encode(cdr::Encoder& enc) const {
  enc.put_ulong(request_id);
  enc.put_octet(static_cast<cdr::Octet>(status));
  enc.put_octet_sequence(payload);
  enc.put_ulong(static_cast<cdr::ULong>(dseqs.size()));
  for (const DSeqDescriptor& d : dseqs) {
    d.encode(enc);
  }
  enc.put_array(server_stats_ms.data(), server_stats_ms.size());
}

ReplyHeader ReplyHeader::decode(cdr::Decoder& dec) {
  ReplyHeader h;
  h.request_id = dec.get_ulong();
  h.status = static_cast<ReplyStatus>(dec.get_octet());
  h.payload = dec.get_octet_sequence();
  const cdr::ULong ndseq = dec.get_ulong();
  if (ndseq > 256) {
    throw MARSHAL("ReplyHeader: too many sequence results");
  }
  h.dseqs.reserve(ndseq);
  for (cdr::ULong i = 0; i < ndseq; ++i) {
    h.dseqs.push_back(DSeqDescriptor::decode(dec));
  }
  h.server_stats_ms = dec.get_array<double>(64);
  return h;
}

// ---- ArgTransferHeader -----------------------------------------------------

void ArgTransferHeader::encode(cdr::Encoder& enc) const {
  enc.put_ulong(request_id);
  enc.put_ulong(arg_index);
  enc.put_ulong(src_rank);
  enc.put_ulong(dst_rank);
  enc.put_ulonglong(dst_offset);
  enc.put_ulonglong(count);
}

ArgTransferHeader ArgTransferHeader::decode(cdr::Decoder& dec) {
  ArgTransferHeader h;
  h.request_id = dec.get_ulong();
  h.arg_index = dec.get_ulong();
  h.src_rank = dec.get_ulong();
  h.dst_rank = dec.get_ulong();
  h.dst_offset = dec.get_ulonglong();
  h.count = dec.get_ulonglong();
  return h;
}

// ---- framing ---------------------------------------------------------------

void begin_frame(cdr::Encoder& enc, MsgType type) {
  for (std::uint8_t b : kMagic) enc.put_octet(b);
  enc.put_octet(kVersion);
  enc.put_octet(pardis::host_is_little_endian() ? 1 : 0);
  enc.put_octet(static_cast<cdr::Octet>(type));
  enc.put_octet(0);  // flags: no extension / pad to 8
}

void begin_frame(cdr::Encoder& enc, MsgType type, const TraceContext& trace) {
  if (trace.trace_id == 0) {
    throw BAD_PARAM("trace extension requires a nonzero trace id");
  }
  for (std::uint8_t b : kMagic) enc.put_octet(b);
  enc.put_octet(kVersion);
  enc.put_octet(pardis::host_is_little_endian() ? 1 : 0);
  enc.put_octet(static_cast<cdr::Octet>(type));
  enc.put_octet(kFlagTrace);
  put_trace_ext(enc, trace);                           // offsets 8..23
}

void begin_mux_frame(cdr::Encoder& enc, MsgType type, const MuxInfo& mux) {
  for (std::uint8_t b : kMagic) enc.put_octet(b);
  enc.put_octet(kVersion);
  enc.put_octet(pardis::host_is_little_endian() ? 1 : 0);
  enc.put_octet(static_cast<cdr::Octet>(type));
  enc.put_octet(kFlagMux);
  enc.put_ulong(mux.request_id);                       // offset 8
  enc.put_octet(static_cast<cdr::Octet>(mux.kind));    // offset 12
  enc.put_octet(0);                                    // reserved
  enc.put_ushort(mux.credit);                          // offset 14
}

void begin_mux_frame(cdr::Encoder& enc, MsgType type, const MuxInfo& mux,
                     const TraceContext& trace) {
  if (trace.trace_id == 0) {
    throw BAD_PARAM("trace extension requires a nonzero trace id");
  }
  for (std::uint8_t b : kMagic) enc.put_octet(b);
  enc.put_octet(kVersion);
  enc.put_octet(pardis::host_is_little_endian() ? 1 : 0);
  enc.put_octet(static_cast<cdr::Octet>(type));
  enc.put_octet(kFlagMux | kFlagTrace);
  enc.put_ulong(mux.request_id);                       // offset 8
  enc.put_octet(static_cast<cdr::Octet>(mux.kind));    // offset 12
  enc.put_octet(0);                                    // reserved
  enc.put_ushort(mux.credit);                          // offset 14
  put_trace_ext(enc, trace);                           // offsets 16..31
}

Frame parse_frame(pardis::BytesView frame) {
  if (frame.size() < kPrologueSize) {
    throw MARSHAL("frame shorter than prologue");
  }
  for (std::size_t i = 0; i < 4; ++i) {
    if (frame[i] != kMagic[i]) {
      throw MARSHAL("bad frame magic");
    }
  }
  if (frame[4] != kVersion) {
    throw MARSHAL("unsupported protocol version");
  }
  if (frame[6] > static_cast<std::uint8_t>(MsgType::kUnbind)) {
    throw MARSHAL("unknown message type");
  }
  if ((frame[7] & ~kKnownFlags) != 0) {
    throw MARSHAL("unknown prologue flags");
  }
  Frame info{static_cast<MsgType>(frame[6]), frame[5] != 0, kPrologueSize,
             std::nullopt, std::nullopt};
  // Decode the extensions with the sender's byte order, like any body
  // field (CDR alignment relative to the frame start keeps every field
  // naturally aligned in all flag combinations).
  cdr::Decoder dec(frame, info.little_endian);
  (void)dec.get_octets(kPrologueSize);
  if ((frame[7] & kFlagMux) != 0) {
    if (frame.size() < kMuxPrologueSize) {
      throw MARSHAL("frame shorter than mux prologue");
    }
    MuxInfo mux;
    mux.request_id = dec.get_ulong();
    const auto kind = dec.get_octet();
    if (kind > static_cast<cdr::Octet>(FrameKind::kReject)) {
      throw MARSHAL("unknown mux frame kind");
    }
    mux.kind = static_cast<FrameKind>(kind);
    (void)dec.get_octet();  // reserved
    mux.credit = dec.get_ushort();
    info.body_offset = kMuxPrologueSize;
    info.mux = mux;
  }
  if ((frame[7] & kFlagTrace) != 0) {
    if (frame.size() < info.body_offset + kTraceExtSize) {
      throw MARSHAL("frame shorter than trace prologue");
    }
    TraceContext trace;
    trace.trace_id = dec.get_ulonglong();
    trace.parent_span = dec.get_ulong();
    (void)dec.get_ulong();  // reserved
    if (trace.trace_id == 0) {
      throw MARSHAL("trace extension with zero trace id");
    }
    info.body_offset += kTraceExtSize;
    info.trace = trace;
  }
  return info;
}

cdr::Decoder body_decoder(pardis::BytesView frame, const Frame& info) {
  cdr::Decoder dec(frame, info.little_endian);
  dec.align(1);  // no-op; keeps the interface explicit
  (void)dec.get_octets(info.body_offset);
  return dec;
}

}  // namespace pardis::orb
