#include "pardis/orb/orb.hpp"

namespace pardis::orb {

Orb::Orb(const OrbConfig& config) : config_(config) {
  fabric_.set_default_link(config.default_link);
  fabric_.set_metrics(&obs_.metrics());
  const transport::Kind kind =
      config.transport.value_or(transport::kind_from_env());
  transport_ = transport::make_transport(kind, fabric_, &obs_);
}

std::shared_ptr<Orb> Orb::create(const OrbConfig& config) {
  return std::shared_ptr<Orb>(new Orb(config));
}

}  // namespace pardis::orb
