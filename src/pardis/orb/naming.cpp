#include "pardis/orb/naming.hpp"

#include "pardis/common/error.hpp"

namespace pardis::orb {

void NameService::register_object(const ObjectRef& ref) {
  if (ref.name.empty()) {
    throw BAD_PARAM("register_object: empty object name");
  }
  if (!ref.valid()) {
    throw BAD_PARAM("register_object: reference has no endpoints");
  }
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    objects_[{ref.name, ref.host}] = ref;
  }
  cv_.notify_all();
}

void NameService::unregister_object(const std::string& name,
                                    const std::string& host) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  objects_.erase({name, host});
}

std::optional<ObjectRef> NameService::resolve(const std::string& name,
                                              const std::string& host) const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return resolve_locked(name, host);
}

std::optional<ObjectRef> NameService::resolve_wait(
    const std::string& name, const std::string& host,
    std::chrono::milliseconds timeout) const {
  std::unique_lock<common::RankedMutex> lock(mu_);
  std::optional<ObjectRef> found;
  cv_.wait_for(lock, timeout, [&] {
    found = resolve_locked(name, host);
    return found.has_value();
  });
  return found;
}

std::vector<ObjectRef> NameService::list() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  std::vector<ObjectRef> out;
  out.reserve(objects_.size());
  for (const auto& [key, ref] : objects_) {
    out.push_back(ref);
  }
  return out;
}

std::optional<ObjectRef> NameService::resolve_locked(
    const std::string& name, const std::string& host) const {
  if (!host.empty()) {
    const auto it = objects_.find({name, host});
    if (it == objects_.end()) return std::nullopt;
    return it->second;
  }
  for (const auto& [key, ref] : objects_) {
    if (key.first == name) return ref;
  }
  return std::nullopt;
}

}  // namespace pardis::orb
