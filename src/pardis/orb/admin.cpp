#include "pardis/orb/admin.hpp"

#include <mutex>
#include <utility>

#include "pardis/common/error.hpp"
#include "pardis/common/log.hpp"

namespace pardis::orb {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

/// Extracts the path from a request frame: the bare path, or the second
/// token of an HTTP-style request line ("GET /metrics HTTP/1.1").  Only
/// the first line matters; headers, if any, are ignored.
std::string request_path(const std::string& request) {
  std::string line = request.substr(0, request.find('\n'));
  line = trim(line);
  if (line.rfind("GET ", 0) == 0 || line.rfind("get ", 0) == 0) {
    line = trim(line.substr(4));
    const std::size_t sp = line.find(' ');
    if (sp != std::string::npos) line = line.substr(0, sp);
  }
  if (!line.empty() && line.front() != '/') line = "/" + line;
  return line;
}

pardis::Bytes to_bytes(const std::string& s) {
  return pardis::Bytes(s.begin(), s.end());
}

}  // namespace

AdminServer::AdminServer(Orb& orb, const std::string& host, int port)
    : orb_(orb), listener_(orb.transport().listen(host, port)) {
  // The catch-all is the thread boundary: anything escaping serve() would
  // std::terminate the process, taking the whole rank down with it.
  thread_ = std::thread([this] {
    try {
      serve();
    } catch (...) {
      PARDIS_LOG_WARN << "admin server thread exiting on unexpected error";
    }
  });
  PARDIS_LOG_DEBUG << "admin endpoint listening on "
                   << listener_->address().host << ":"
                   << listener_->address().port;
}

AdminServer::~AdminServer() { shutdown(); }

std::string AdminServer::respond(const std::string& request) {
  const std::string path = request_path(request);
  if (path == "/metrics") {
    return obs::prometheus_text(orb_.collect_metrics());
  }
  if (path == "/slow") {
    return orb_.obs().slow_log().render();
  }
  return "# pardis admin: unknown path \"" + path +
         "\" (try /metrics or /slow)\n";
}

void AdminServer::shutdown() {
  std::shared_ptr<transport::Stream> active;
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    if (stopping_) {
      active = nullptr;
    } else {
      stopping_ = true;
      active = std::move(active_);
    }
  }
  listener_->close();
  if (active) active->close();
  if (thread_.joinable()) thread_.join();
}

void AdminServer::serve() {
  while (auto conn = listener_->accept()) {
    {
      std::lock_guard<common::RankedMutex> lock(mu_);
      if (stopping_) break;
      active_ = conn;
    }
    try {
      // Sequential request/reply until the client hangs up.  A raw
      // Stream::send is fine here: admin frames carry no orb prologue by
      // design — this is a text sidecar, not the invocation wire.
      while (auto frame = conn->recv()) {
        const std::string request(frame->begin(), frame->end());
        conn->send(to_bytes(respond(request)));
      }
    } catch (const SystemException& e) {
      PARDIS_LOG_DEBUG << "admin connection dropped: " << e.what();
    }
    {
      std::lock_guard<common::RankedMutex> lock(mu_);
      active_.reset();
    }
    conn->close();
  }
}

std::string admin_fetch(Orb& orb, const std::string& from_host,
                        const transport::Endpoint& to,
                        const std::string& path) {
  const std::shared_ptr<transport::Stream> conn =
      orb.transport().connect(from_host, to);
  conn->send(to_bytes(path));
  const auto reply = conn->recv();
  conn->close();
  if (!reply) {
    throw COMM_FAILURE("admin endpoint closed before replying to " + path);
  }
  return std::string(reply->begin(), reply->end());
}

}  // namespace pardis::orb
