// PARDIS wire protocol (the GIOP analogue).
//
// Every frame on a fabric connection is a CDR stream with a fixed prologue:
//
//   octet[4]  magic "PDIS"
//   octet     protocol version (1)
//   octet     sender byte order (1 = little endian)
//   octet     message type
//   octet     flags (bit 0: extended mux prologue follows;
//                    bit 1: trace-context extension follows)
//   ...       message body (CDR, sender's byte order)
//
// When the mux flag is set the prologue continues for 8 more bytes (so the
// body still starts 8-aligned), letting many logical invocations interleave
// over one stream (docs/pipelining.md):
//
//   ulong     request id (sender byte order)
//   octet     frame kind (FrameKind: data / credit / reject)
//   octet     reserved
//   ushort    credit grant (sender byte order)
//
// When the trace flag is set, a 16-byte trace-context extension follows the
// mux extension (or the base prologue when mux is absent), keeping the body
// 8-aligned in every combination (docs/observability.md):
//
//   ulonglong trace id (sender byte order; nonzero — a sampled-out request
//             simply omits the extension)
//   ulong     parent span id (sender byte order)
//   ulong     reserved (0)
//
// Unknown flag bits are rejected with MARSHAL, so a peer that predates an
// extension never silently misparses a frame that carries it.
//
// Message kinds:
//   BindRequest / BindAck  — establish a binding between a (possibly
//                            parallel) client and an SPMD object; carried on
//                            the control connection to the communicating
//                            thread (endpoint 0).
//   Hello                  — first frame on each per-thread data connection,
//                            identifying (binding, client rank).
//   Request                — invocation header: operation, scalar arguments,
//                            and one descriptor per distributed-sequence
//                            argument.  In the CENTRALIZED method the packed
//                            sequence data rides in the same frame (paper
//                            §3.2: "all information associated with a
//                            request is sent in one message"); in MULTIPORT
//                            the header is still delivered centralized
//                            (§3.3) and data follows on the data
//                            connections.
//   Reply                  — completion status, scalar results, descriptors
//                            (and, centralized, packed data) for inout/out
//                            sequences.
//   ArgTransfer            — one segment of multi-port argument data.
//   Shutdown               — ends a server's service loop.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pardis/cdr/decoder.hpp"
#include "pardis/cdr/encoder.hpp"
#include "pardis/common/bytes.hpp"

namespace pardis::orb {

enum class MsgType : std::uint8_t {
  kBindRequest = 0,
  kBindAck = 1,
  kRequest = 2,
  kReply = 3,
  kArgTransfer = 4,
  kHello = 5,
  kShutdown = 6,
  kUnbind = 7,
};

const char* to_string(MsgType t) noexcept;

/// Role of a frame within a multiplexed (pipelined) stream.
enum class FrameKind : std::uint8_t {
  kData = 0,    // a request or its reply; the payload is the message body
  kCredit = 1,  // pure flow-control top-up: body empty, credit field counts
  kReject = 2,  // transient admission-control shed; the client should map
                // this to pardis::TRANSIENT and may retry later
};

const char* to_string(FrameKind k) noexcept;

/// Mux fields of an extended prologue (one logical invocation among many on
/// the same stream).  `credit` is the number of request slots the sender
/// grants back to its peer (docs/pipelining.md, flow-control state machine).
struct MuxInfo {
  cdr::ULong request_id = 0;
  FrameKind kind = FrameKind::kData;
  std::uint16_t credit = 0;

  bool operator==(const MuxInfo&) const = default;
};

/// Distributed-tracing context carried in the trace prologue extension: the
/// invocation's trace id (shared by every span of the request on both
/// processes) and the sender-side span the receiver's spans are children of.
/// A trace_id of 0 means "not sampled" and is never put on the wire — the
/// sender omits the extension instead (docs/observability.md).
struct TraceContext {
  cdr::ULongLong trace_id = 0;
  cdr::ULong parent_span = 0;

  bool operator==(const TraceContext&) const = default;
};

/// The two distributed-argument transfer methods of §3.
enum class TransferMethod : std::uint8_t {
  kCentralized = 0,
  kMultiPort = 1,
};

const char* to_string(TransferMethod m) noexcept;

enum class ArgDir : std::uint8_t { kIn = 0, kInOut = 1, kOut = 2 };

/// Element type of a distributed sequence, for wire validation.
enum class ElemKind : std::uint8_t {
  kOctet = 0,
  kShort,
  kUShort,
  kLong,
  kULong,
  kLongLong,
  kULongLong,
  kFloat,
  kDouble,
};

template <typename T>
constexpr ElemKind elem_kind_of();

template <> constexpr ElemKind elem_kind_of<std::uint8_t>() { return ElemKind::kOctet; }
template <> constexpr ElemKind elem_kind_of<std::int16_t>() { return ElemKind::kShort; }
template <> constexpr ElemKind elem_kind_of<std::uint16_t>() { return ElemKind::kUShort; }
template <> constexpr ElemKind elem_kind_of<std::int32_t>() { return ElemKind::kLong; }
template <> constexpr ElemKind elem_kind_of<std::uint32_t>() { return ElemKind::kULong; }
template <> constexpr ElemKind elem_kind_of<std::int64_t>() { return ElemKind::kLongLong; }
template <> constexpr ElemKind elem_kind_of<std::uint64_t>() { return ElemKind::kULongLong; }
template <> constexpr ElemKind elem_kind_of<float>() { return ElemKind::kFloat; }
template <> constexpr ElemKind elem_kind_of<double>() { return ElemKind::kDouble; }

/// Wire description of one distributed-sequence argument: its element type,
/// total length, and the sender-side block distribution (element count per
/// sending rank).  The receiver derives the routing plan from this plus its
/// own distribution template.
struct DSeqDescriptor {
  cdr::ULong arg_index = 0;
  ArgDir dir = ArgDir::kIn;
  ElemKind elem_kind = ElemKind::kDouble;
  cdr::ULong elem_size = 8;
  cdr::ULongLong total_length = 0;
  std::vector<cdr::ULongLong> src_counts;  // one per sender rank

  void encode(cdr::Encoder& enc) const;
  static DSeqDescriptor decode(cdr::Decoder& dec);
  bool operator==(const DSeqDescriptor&) const = default;
};

struct BindRequest {
  cdr::ULong binding_id = 0;
  std::string client_host;
  cdr::ULong client_ranks = 1;
  std::string object_key;
  bool collective = true;

  void encode(cdr::Encoder& enc) const;
  static BindRequest decode(cdr::Decoder& dec);
};

enum class BindStatus : std::uint8_t { kOk = 0, kUnknownObject = 1, kError = 2 };

struct BindAck {
  cdr::ULong binding_id = 0;
  BindStatus status = BindStatus::kOk;
  cdr::ULong server_ranks = 1;
  /// Initial pipelining credit: how many mux requests the client may keep
  /// in flight on this binding before it must wait for replies to return
  /// slots.  0 means the server does not accept pipelined traffic.
  cdr::ULong credit = 0;
  std::string message;

  void encode(cdr::Encoder& enc) const;
  static BindAck decode(cdr::Decoder& dec);
};

struct Hello {
  cdr::ULong binding_id = 0;
  cdr::ULong client_rank = 0;

  void encode(cdr::Encoder& enc) const;
  static Hello decode(cdr::Decoder& dec);
};

struct RequestHeader {
  cdr::ULong request_id = 0;
  cdr::ULong binding_id = 0;
  std::string operation;
  bool response_expected = true;
  bool collective = true;
  TransferMethod method = TransferMethod::kCentralized;
  /// CDR-encoded scalar (non-distributed) arguments; identical on every
  /// invoking thread per the SPMD convention (paper §2.1).
  pardis::Bytes scalar_args;
  std::vector<DSeqDescriptor> dseqs;

  void encode(cdr::Encoder& enc) const;
  static RequestHeader decode(cdr::Decoder& dec);
};

enum class ReplyStatus : std::uint8_t {
  kNoException = 0,
  kUserException = 1,
  kSystemException = 2,
};

struct ReplyHeader {
  cdr::ULong request_id = 0;
  ReplyStatus status = ReplyStatus::kNoException;
  /// On kNoException: CDR-encoded scalar results.  On exceptions: the
  /// marshaled exception (see exceptions.hpp).
  pardis::Bytes payload;
  /// Result descriptors for inout/out distributed sequences, with the
  /// *server-side* distribution as src_counts.
  std::vector<DSeqDescriptor> dseqs;
  /// Server-side per-phase times in milliseconds (index = pardis::Phase),
  /// reduced per the paper's convention (max over threads; barrier from the
  /// communicating thread).  Used by the benchmark tables; empty when the
  /// server does not report.
  std::vector<double> server_stats_ms;

  void encode(cdr::Encoder& enc) const;
  static ReplyHeader decode(cdr::Decoder& dec);
};

struct ArgTransferHeader {
  cdr::ULong request_id = 0;
  cdr::ULong arg_index = 0;
  cdr::ULong src_rank = 0;
  cdr::ULong dst_rank = 0;
  cdr::ULongLong dst_offset = 0;  // element offset into the receiver's chunk
  cdr::ULongLong count = 0;       // elements in this segment

  void encode(cdr::Encoder& enc) const;
  static ArgTransferHeader decode(cdr::Decoder& dec);
};

// ---- framing ---------------------------------------------------------------

/// Starts a frame of the given type; returns the encoder positioned after
/// the prologue.
void begin_frame(cdr::Encoder& enc, MsgType type);

/// Starts a frame carrying a trace context (trace flag set, 16-byte trace
/// extension after the base prologue).  The context's trace_id must be
/// nonzero — sampled-out requests use the plain overload.
void begin_frame(cdr::Encoder& enc, MsgType type, const TraceContext& trace);

/// Starts a multiplexed frame: base prologue with the mux flag set, then
/// the 8-byte mux extension.  The body still starts 8-aligned.
void begin_mux_frame(cdr::Encoder& enc, MsgType type, const MuxInfo& mux);

/// Multiplexed frame that also carries a trace context (both flag bits set;
/// the trace extension follows the mux extension, body at offset 32).
void begin_mux_frame(cdr::Encoder& enc, MsgType type, const MuxInfo& mux,
                     const TraceContext& trace);

/// Validated view of a received frame.
struct Frame {
  MsgType type;
  bool little_endian;
  /// Byte offset where the body starts (8 plain, 16 with the mux
  /// extension, 24 with only the trace extension, 32 with both).
  std::size_t body_offset;
  /// Present when the sender set the mux flag (pipelined traffic).
  std::optional<MuxInfo> mux;
  /// Present when the sender set the trace flag (sampled-in invocation).
  std::optional<TraceContext> trace;
};

/// Parses and validates the prologue.  Throws pardis::MARSHAL on a bad
/// magic/version.  Use body_decoder() to decode the rest.
Frame parse_frame(pardis::BytesView frame);

/// Decoder positioned at the body with the sender's byte order.  NOTE: CDR
/// alignment is relative to the frame start, which is why the decoder spans
/// the whole frame and skips the prologue.
cdr::Decoder body_decoder(pardis::BytesView frame, const Frame& info);

}  // namespace pardis::orb
