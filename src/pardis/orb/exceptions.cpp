#include "pardis/orb/exceptions.hpp"

namespace pardis::orb {

void ExceptionRegistry::register_user_exception(const std::string& repo_id,
                                                Thrower thrower) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  throwers_[repo_id] = std::move(thrower);
}

bool ExceptionRegistry::knows(const std::string& repo_id) const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return throwers_.contains(repo_id);
}

void ExceptionRegistry::rethrow_user(const std::string& repo_id,
                                     const std::string& message,
                                     cdr::Decoder& body) const {
  Thrower thrower;
  {
    std::lock_guard<common::RankedMutex> lock(mu_);
    const auto it = throwers_.find(repo_id);
    if (it != throwers_.end()) thrower = it->second;
  }
  if (thrower) {
    thrower(body);
    // A registered thrower must throw; reaching here is a stub bug.
    throw INTERNAL("exception thrower for " + repo_id + " did not throw");
  }
  throw UserException(repo_id, message);
}

ExceptionRegistry& ExceptionRegistry::global() {
  static ExceptionRegistry registry;
  return registry;
}

namespace {

constexpr char kSysPrefix[] = "SYS:";

[[noreturn]] void throw_system(const std::string& kind,
                               const std::string& detail,
                               Completion completed) {
  if (kind == "BAD_PARAM") throw BAD_PARAM(detail, completed);
  if (kind == "COMM_FAILURE") throw COMM_FAILURE(detail, completed);
  if (kind == "INV_OBJREF") throw INV_OBJREF(detail, completed);
  if (kind == "MARSHAL") throw MARSHAL(detail, completed);
  if (kind == "NO_IMPLEMENT") throw NO_IMPLEMENT(detail, completed);
  if (kind == "OBJECT_NOT_EXIST") throw OBJECT_NOT_EXIST(detail, completed);
  if (kind == "BAD_OPERATION") throw BAD_OPERATION(detail, completed);
  if (kind == "INTERNAL") throw INTERNAL(detail, completed);
  if (kind == "TIMEOUT") throw TIMEOUT(detail, completed);
  if (kind == "INITIALIZE") throw INITIALIZE(detail, completed);
  if (kind == "TRANSIENT") throw TRANSIENT(detail, completed);
  throw SystemException(kind, detail, completed);
}

}  // namespace

pardis::Bytes marshal_system_exception(const SystemException& e) {
  cdr::Encoder enc;
  enc.put_string(kSysPrefix + e.kind());
  enc.put_string(e.what());
  enc.put_octet(static_cast<cdr::Octet>(e.completed()));
  return enc.take();
}

pardis::Bytes marshal_user_exception(
    const UserException& e,
    const std::function<void(cdr::Encoder&)>& encode_body) {
  cdr::Encoder enc;
  enc.put_string(e.repo_id());
  enc.put_string(e.what());
  if (encode_body) encode_body(enc);
  return enc.take();
}

void rethrow_reply_exception(ReplyStatus status, pardis::BytesView payload,
                             const ExceptionRegistry& registry) {
  cdr::Decoder dec{payload};
  const std::string discriminator = dec.get_string();
  const std::string message = dec.get_string();
  if (status == ReplyStatus::kSystemException) {
    if (discriminator.rfind(kSysPrefix, 0) != 0) {
      throw MARSHAL("system exception reply without SYS discriminator");
    }
    const auto completed = static_cast<Completion>(dec.get_octet());
    throw_system(discriminator.substr(sizeof(kSysPrefix) - 1), message,
                 completed);
  }
  registry.rethrow_user(discriminator, message, dec);
}

}  // namespace pardis::orb
