// Futures for non-blocking invocations (paper §2.1).
//
// PARDIS stubs offer non-blocking variants of every operation, returning
// futures (modeled on ABC++ futures) so a client can use remote resources
// concurrently with its own.  Two completion styles are supported:
//
//   * promise-based: a broker thread fulfils the future when the reply
//     arrives (used by single-threaded clients);
//   * deferred-collective: the future holds the receive phase of a
//     collective SPMD invocation and runs it on first get().  Per the
//     paper's SPMD-style access convention (§2.2), all computing threads of
//     a parallel client must call get() collectively.
//
// get() rethrows any exception the invocation produced, and may be called
// repeatedly (every call after the first observes the same value or
// rethrows the same error).  Concurrent get() from several threads is
// safe, including on a deferred future: exactly one caller runs the
// completer while the others wait on the state's condition variable.  The
// one illegal shape — the completer itself re-entering get() on its own
// future, which can only deadlock — is detected and throws INTERNAL.
//
// If every Promise copy is destroyed before settling (a broker thread died
// mid-reply), the future is settled with COMM_FAILURE("broken promise…")
// instead of blocking its consumer forever.

#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "pardis/common/error.hpp"
#include "pardis/common/ranked_mutex.hpp"

namespace pardis::orb {

namespace detail {

template <typename T>
struct FutureState {
  common::RankedMutex mu{common::LockRank::kOrbFuture};
  std::condition_variable_any cv;
  std::optional<T> value;
  std::exception_ptr error;
  std::function<T()> deferred;  // runs on first get() if set
  bool started = false;
  std::thread::id completer_thread{};  // valid while started && !settled

  bool settled() const { return value.has_value() || error != nullptr; }
};

}  // namespace detail

template <typename T>
class Future;

template <typename T>
class Promise {
 public:
  Promise()
      : state_(std::make_shared<detail::FutureState<T>>()),
        guard_(make_guard(state_)) {}

  Future<T> get_future() const { return Future<T>(state_); }

  void set_value(T value) {
    {
      std::lock_guard<common::RankedMutex> lock(state_->mu);
      if (state_->settled()) {
        throw INTERNAL("Promise already settled");
      }
      state_->value = std::move(value);
    }
    state_->cv.notify_all();
  }

  void set_exception(std::exception_ptr error) {
    {
      std::lock_guard<common::RankedMutex> lock(state_->mu);
      if (state_->settled()) {
        throw INTERNAL("Promise already settled");
      }
      state_->error = error;
    }
    state_->cv.notify_all();
  }

 private:
  /// Runs when the last Promise copy dies: an unsettled future at that
  /// point can never be fulfilled (its broker thread is gone), so settle
  /// it with COMM_FAILURE rather than let get() block forever.
  static std::shared_ptr<void> make_guard(
      std::shared_ptr<detail::FutureState<T>> state) {
    return std::shared_ptr<void>(
        nullptr, [state = std::move(state)](void*) {
          bool broken = false;
          {
            std::lock_guard<common::RankedMutex> lock(state->mu);
            if (!state->settled()) {
              broken = true;
              state->error = std::make_exception_ptr(COMM_FAILURE(
                  "broken promise: every Promise was destroyed before the "
                  "future was settled"));
            }
          }
          if (broken) state->cv.notify_all();
        });
  }

  std::shared_ptr<detail::FutureState<T>> state_;
  std::shared_ptr<void> guard_;  // shared by all copies of this promise
};

template <typename T>
class Future {
 public:
  /// Default future: never ready; get() throws.
  Future() = default;

  /// Deferred completion: `completer` runs exactly once, inside the first
  /// get(), on the calling thread (the collective SPMD style).
  static Future from_deferred(std::function<T()> completer) {
    Future f(std::make_shared<detail::FutureState<T>>());
    f.state_->deferred = std::move(completer);
    return f;
  }

  /// Already-resolved future.
  static Future from_value(T value) {
    Future f(std::make_shared<detail::FutureState<T>>());
    f.state_->value = std::move(value);
    return f;
  }

  /// True when a value or error is available without blocking.  A deferred
  /// future is not ready until some thread ran get().
  bool ready() const {
    if (!state_) return false;
    std::lock_guard<common::RankedMutex> lock(state_->mu);
    return state_->settled();
  }

  bool valid() const { return state_ != nullptr; }

  /// Blocks (or runs the deferred completer) until the value is available;
  /// rethrows the invocation's exception if it failed.  May be called more
  /// than once, and concurrently: one caller runs the completer, the rest
  /// wait.  Throws INTERNAL if the running completer re-enters get() on
  /// its own future (guaranteed deadlock otherwise).
  T& get() {
    if (!state_) {
      throw BAD_PARAM("get() on an empty Future");
    }
    std::unique_lock<common::RankedMutex> lock(state_->mu);
    if (state_->deferred && !state_->started) {
      state_->started = true;
      state_->completer_thread = std::this_thread::get_id();
      auto completer = std::move(state_->deferred);
      state_->deferred = nullptr;
      lock.unlock();
      // Run outside the lock: collective completers block on the runtime.
      std::optional<T> value;
      std::exception_ptr error;
      try {
        value = completer();
      } catch (...) {
        error = std::current_exception();
      }
      // Drop the completer (and whatever it captured — bindings, streams)
      // before relocking: releasing those resources can itself block or
      // take lower-ranked locks.
      completer = nullptr;
      lock.lock();
      if (error) {
        state_->error = error;
      } else {
        state_->value = std::move(value);
      }
      state_->cv.notify_all();
    }
    if (!state_->settled() && state_->started &&
        state_->completer_thread == std::this_thread::get_id()) {
      throw INTERNAL(
          "re-entrant get(): this future's deferred completer is already "
          "running on the calling thread");
    }
    state_->cv.wait(lock, [&] { return state_->settled(); });
    if (state_->error) {
      std::rethrow_exception(state_->error);
    }
    return *state_->value;
  }

 private:
  friend class Promise<T>;

  explicit Future(std::shared_ptr<detail::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::FutureState<T>> state_;
};

namespace detail {
struct Unit {};
}  // namespace detail

/// Future<void>: same semantics, no value.
template <>
class Future<void> {
 public:
  Future() = default;

  static Future from_deferred(std::function<void()> completer) {
    Future f;
    f.inner_ = Future<detail::Unit>::from_deferred([c = std::move(completer)] {
      c();
      return detail::Unit{};
    });
    return f;
  }

  static Future from_value() {
    Future f;
    f.inner_ = Future<detail::Unit>::from_value({});
    return f;
  }

  bool ready() const { return inner_.ready(); }
  bool valid() const { return inner_.valid(); }
  void get() { inner_.get(); }

 private:
  Future<detail::Unit> inner_;
};

}  // namespace pardis::orb
