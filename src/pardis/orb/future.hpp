// Futures for non-blocking invocations (paper §2.1).
//
// PARDIS stubs offer non-blocking variants of every operation, returning
// futures (modeled on ABC++ futures) so a client can use remote resources
// concurrently with its own.  Two completion styles are supported:
//
//   * promise-based: a broker thread fulfils the future when the reply
//     arrives (used by single-threaded clients);
//   * deferred-collective: the future holds the receive phase of a
//     collective SPMD invocation and runs it on first get().  Per the
//     paper's SPMD-style access convention (§2.2), all computing threads of
//     a parallel client must call get() collectively.
//
// get() rethrows any exception the invocation produced.

#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "pardis/common/error.hpp"
#include "pardis/common/ranked_mutex.hpp"

namespace pardis::orb {

namespace detail {

template <typename T>
struct FutureState {
  common::RankedMutex mu{common::LockRank::kOrbFuture};
  std::condition_variable_any cv;
  std::optional<T> value;
  std::exception_ptr error;
  std::function<T()> deferred;  // runs on first get() if set
  bool started = false;

  bool settled() const { return value.has_value() || error != nullptr; }
};

}  // namespace detail

template <typename T>
class Future;

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<detail::FutureState<T>>()) {}

  Future<T> get_future() const { return Future<T>(state_); }

  void set_value(T value) {
    {
      std::lock_guard<common::RankedMutex> lock(state_->mu);
      if (state_->settled()) {
        throw INTERNAL("Promise already settled");
      }
      state_->value = std::move(value);
    }
    state_->cv.notify_all();
  }

  void set_exception(std::exception_ptr error) {
    {
      std::lock_guard<common::RankedMutex> lock(state_->mu);
      if (state_->settled()) {
        throw INTERNAL("Promise already settled");
      }
      state_->error = error;
    }
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

template <typename T>
class Future {
 public:
  /// Default future: never ready; get() throws.
  Future() = default;

  /// Deferred completion: `completer` runs exactly once, inside the first
  /// get(), on the calling thread (the collective SPMD style).
  static Future from_deferred(std::function<T()> completer) {
    Future f(std::make_shared<detail::FutureState<T>>());
    f.state_->deferred = std::move(completer);
    return f;
  }

  /// Already-resolved future.
  static Future from_value(T value) {
    Future f(std::make_shared<detail::FutureState<T>>());
    f.state_->value = std::move(value);
    return f;
  }

  /// True when a value or error is available without blocking.  A deferred
  /// future is not ready until some thread ran get().
  bool ready() const {
    if (!state_) return false;
    std::lock_guard<common::RankedMutex> lock(state_->mu);
    return state_->settled();
  }

  bool valid() const { return state_ != nullptr; }

  /// Blocks (or runs the deferred completer) until the value is available;
  /// rethrows the invocation's exception if it failed.  May be called more
  /// than once.
  T& get() {
    if (!state_) {
      throw BAD_PARAM("get() on an empty Future");
    }
    std::unique_lock<common::RankedMutex> lock(state_->mu);
    if (state_->deferred && !state_->started) {
      state_->started = true;
      auto completer = std::move(state_->deferred);
      state_->deferred = nullptr;
      lock.unlock();
      // Run outside the lock: collective completers block on the runtime.
      try {
        T value = completer();
        lock.lock();
        state_->value = std::move(value);
      } catch (...) {
        lock.lock();
        state_->error = std::current_exception();
      }
      state_->cv.notify_all();
    }
    state_->cv.wait(lock, [&] { return state_->settled(); });
    if (state_->error) {
      std::rethrow_exception(state_->error);
    }
    return *state_->value;
  }

 private:
  friend class Promise<T>;

  explicit Future(std::shared_ptr<detail::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::FutureState<T>> state_;
};

namespace detail {
struct Unit {};
}  // namespace detail

/// Future<void>: same semantics, no value.
template <>
class Future<void> {
 public:
  Future() = default;

  static Future from_deferred(std::function<void()> completer) {
    Future f;
    f.inner_ = Future<detail::Unit>::from_deferred([c = std::move(completer)] {
      c();
      return detail::Unit{};
    });
    return f;
  }

  static Future from_value() {
    Future f;
    f.inner_ = Future<detail::Unit>::from_value({});
    return f;
  }

  bool ready() const { return inner_.ready(); }
  bool valid() const { return inner_.valid(); }
  void get() { inner_.get(); }

 private:
  Future<detail::Unit> inner_;
};

}  // namespace pardis::orb
