// Live metrics/introspection endpoint (docs/observability.md).
//
// An AdminServer is a tiny request/reply service on the Orb's Transport:
// each inbound frame is a text request naming a path, each reply frame is
// the rendered text body.  Supported paths:
//
//   /metrics — Prometheus-style text snapshot of the Orb's
//              MetricsRegistry (obs::prometheus_text), collected live so
//              layer-local counters (fabric links, transport backend) are
//              folded in;
//   /slow    — the slow-request log (obs::SlowLog::render): the last K
//              pipelined requests over PARDIS_SLOW_MS with their
//              queue-wait/exec/total phase breakdown.
//
// Requests may be the bare path ("metrics", "/slow") or an HTTP-style
// request line ("GET /metrics HTTP/1.1") so `curl`-shaped tooling pointed
// at the TCP backend's length-prefixed framing needs no custom client;
// admin_fetch() is the in-process equivalent and works over sim too.
//
// Connections are served sequentially by one background thread — the
// endpoint is for operators and tests, not for load.  Lifecycle: the
// listener starts in the constructor; shutdown() (or the destructor)
// closes the listener and any active connection, then joins the thread.

#pragma once

#include <memory>
#include <string>
#include <thread>

#include "pardis/common/ranked_mutex.hpp"
#include "pardis/orb/orb.hpp"

namespace pardis::orb {

class AdminServer {
 public:
  /// Listens on (host, port) via `orb`'s transport; port 0 picks an
  /// ephemeral port (read it back from endpoint()).  `orb` must outlive
  /// the server.
  AdminServer(Orb& orb, const std::string& host, int port = 0);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Address clients connect to (host + resolved port).
  const transport::Endpoint& endpoint() const noexcept {
    return listener_->address();
  }

  /// Renders the reply body for one request line; exposed so tests can
  /// exercise the routing without a live listener.
  std::string respond(const std::string& request);

  /// Stops accepting, closes the active connection, joins the thread.
  /// Idempotent; also run by the destructor.
  void shutdown();

 private:
  void serve();

  Orb& orb_;
  std::shared_ptr<transport::Listener> listener_;
  common::RankedMutex mu_{common::LockRank::kOrbAdmin};
  std::shared_ptr<transport::Stream> active_;  // guarded by mu_
  bool stopping_ = false;                      // guarded by mu_
  std::thread thread_;
};

/// One-shot admin query — the `curl` of the sim backend: connects from
/// `from_host` to an AdminServer at `to`, sends `path`, returns the reply
/// body.  Throws COMM_FAILURE when nothing is listening.
std::string admin_fetch(Orb& orb, const std::string& from_host,
                        const transport::Endpoint& to,
                        const std::string& path = "/metrics");

}  // namespace pardis::orb
