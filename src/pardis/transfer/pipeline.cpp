#include "pardis/transfer/pipeline.hpp"

#include "pardis/common/error.hpp"
#include "pardis/common/log.hpp"

namespace pardis::transfer {

ReplyRouter::ReplyRouter(std::shared_ptr<transport::Stream> stream,
                         obs::MetricsRegistry* metrics, std::uint32_t window,
                         obs::Tracer* tracer)
    : stream_(std::move(stream)),
      tracer_(tracer),
      window_(window == 0 ? 1 : window),
      credits_(window_) {
  if (metrics) {
    pipelined_ = &metrics->counter("client.pipeline.requests");
    rejects_ = &metrics->counter("client.pipeline.rejects");
    inflight_gauge_ = &metrics->gauge("client.pipeline.inflight");
    credits_gauge_ = &metrics->gauge("client.pipeline.credits");
    wire_us_ = &metrics->histogram("client.pipeline.wire_us");
    credits_gauge_->set(static_cast<std::int64_t>(credits_));
  }
}

void ReplyRouter::take_credit() {
  std::unique_lock<common::RankedMutex> lock(mu_);
  while (credits_ == 0 && !dead_) {
    pump(lock);
  }
  if (dead_) {
    throw COMM_FAILURE("pipelined stream failed: " + death_reason_);
  }
  --credits_;
  if (credits_gauge_) credits_gauge_->set(static_cast<std::int64_t>(credits_));
  if (pipelined_) pipelined_->add();
}

void ReplyRouter::give_credit(std::uint32_t n) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  credits_ += n;
  if (credits_gauge_) credits_gauge_->set(static_cast<std::int64_t>(credits_));
  cv_.notify_all();
}

void ReplyRouter::expect(cdr::ULong request_id, std::uint64_t trace_id) {
  Slot slot;
  slot.expected_at = Clock::now();
  slot.trace_id = trace_id;
  if (trace_id != 0) slot.tid = obs::this_thread_tid();
  std::lock_guard<common::RankedMutex> lock(mu_);
  pending_.emplace(request_id, std::move(slot));
  set_inflight_locked();
}

void ReplyRouter::abandon(cdr::ULong request_id) {
  std::lock_guard<common::RankedMutex> lock(mu_);
  pending_.erase(request_id);
  set_inflight_locked();
}

ReplyRouter::Reply ReplyRouter::await(cdr::ULong request_id) {
  std::unique_lock<common::RankedMutex> lock(mu_);
  for (;;) {
    const auto it = pending_.find(request_id);
    if (it == pending_.end()) {
      throw BAD_PARAM("await() without expect() for request " +
                      std::to_string(request_id));
    }
    if (it->second.reply) {
      Reply r = std::move(*it->second.reply);
      pending_.erase(it);
      set_inflight_locked();
      return r;
    }
    if (dead_) {
      pending_.erase(it);
      set_inflight_locked();
      throw COMM_FAILURE("pipelined stream failed: " + death_reason_);
    }
    pump(lock);
  }
}

std::size_t ReplyRouter::inflight() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return pending_.size();
}

std::uint32_t ReplyRouter::credits() const {
  std::lock_guard<common::RankedMutex> lock(mu_);
  return credits_;
}

void ReplyRouter::pump(std::unique_lock<common::RankedMutex>& lock) {
  if (reader_active_) {
    // Someone else is on the wire; their route/notify re-checks our
    // predicate (callers loop).
    // pardis-lint: allow(wait-without-predicate: every caller loops on its own predicate, take_credit and await; pump is the shared wake point and a local predicate would stall the reader-duty handoff)
    cv_.wait(lock);
    return;
  }
  reader_active_ = true;
  lock.unlock();
  std::optional<pardis::Bytes> frame;
  std::string failure;
  try {
    frame = stream_->recv();
  } catch (const SystemException& e) {
    failure = std::string(e.kind()) + ": " + e.what();
  }
  lock.lock();
  reader_active_ = false;
  if (!failure.empty()) {
    dead_ = true;
    death_reason_ = failure;
  } else if (!frame) {
    dead_ = true;
    death_reason_ = "stream closed by peer";
  } else {
    try {
      const orb::Frame info = orb::parse_frame(*frame);
      route_locked(std::move(*frame), info);
    } catch (const SystemException& e) {
      // A malformed frame desynchronizes the whole stream: poison it so
      // every pipelined caller fails loudly instead of hanging.
      dead_ = true;
      death_reason_ = std::string(e.kind()) + ": " + e.what();
    }
  }
  cv_.notify_all();
}

void ReplyRouter::route_locked(pardis::Bytes frame, const orb::Frame& info) {
  cdr::ULong id = 0;
  bool rejected = false;
  if (info.mux) {
    credits_ += info.mux->credit;
    if (credits_gauge_) {
      credits_gauge_->set(static_cast<std::int64_t>(credits_));
    }
    if (info.mux->kind == orb::FrameKind::kCredit) return;  // pure grant
    id = info.mux->request_id;
    rejected = info.mux->kind == orb::FrameKind::kReject;
  } else {
    // Plain replies carry the request id as the leading ReplyHeader field.
    auto dec = orb::body_decoder(frame, info);
    id = dec.get_ulong();
  }
  const auto it = pending_.find(id);
  if (it == pending_.end()) {
    PARDIS_LOG_DEBUG << "reply router: dropping frame for unknown request "
                     << id << " on " << stream_->label();
    return;
  }
  if (rejected && rejects_) rejects_->add();
  // Client-observed wire time: expect() (just before the request frame was
  // sent) to here (reply routed) — request transmission + server turnaround
  // + reply transmission.  Recording under the router lock is rank-legal:
  // kTransferPipeline < kObsHistogram < kObsTrace.
  const Clock::time_point now = Clock::now();
  if (wire_us_) wire_us_->add(to_us(now - it->second.expected_at));
  if (tracer_ != nullptr && it->second.trace_id != 0) {
    tracer_->record("wire " + std::to_string(id), "pipeline",
                    obs::role_pid(obs::kClientPid), it->second.tid,
                    it->second.expected_at, now, it->second.trace_id);
  }
  it->second.reply =
      Reply{rejected ? pardis::Bytes{} : std::move(frame), info, rejected};
}

void ReplyRouter::set_inflight_locked() {
  if (inflight_gauge_) {
    inflight_gauge_->set(static_cast<std::int64_t>(pending_.size()));
  }
}

}  // namespace pardis::transfer
