// Per-invocation phase statistics (what Tables 1 and 2 report).
//
// Each computing thread accumulates its own PhaseTimer during an
// invocation.  The paper reports the *maximum over all threads* for send,
// pack and receive+unpack, and the *communicating thread's* time for the
// exit barrier; reduce_stats implements exactly that convention.

#pragma once

#include <array>
#include <string>

#include "pardis/common/timing.hpp"
#include "pardis/obs/metrics.hpp"
#include "pardis/rts/collectives.hpp"
#include "pardis/rts/communicator.hpp"

namespace pardis::transfer {

struct InvocationStats {
  PhaseTimer timer;

  void reset() { timer.reset(); }
  double ms(Phase p) const { return timer.ms(p); }
  InvocationStats& operator+=(const InvocationStats& other) {
    timer += other.timer;
    return *this;
  }
};

/// Collective: per-phase milliseconds reduced over the team — max over all
/// ranks for every phase except kBarrier, which is taken from rank 0 (the
/// communicating thread), matching the paper's reporting convention.
/// Every rank receives the reduced array.
///
/// When `metrics` is given, rank 0 also feeds each reduced phase time into
/// the histogram `<prefix><phase>` (e.g. "server.phase.send"), so always-on
/// deployments accumulate the Table 1/2 distributions invocation by
/// invocation.
inline std::array<double, kPhaseCount> reduce_stats(
    rts::Communicator& comm, const InvocationStats& stats,
    obs::MetricsRegistry* metrics = nullptr, const char* prefix = "") {
  std::array<double, kPhaseCount> out{};
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Phase p = static_cast<Phase>(i);
    const double mine = stats.ms(p);
    if (p == Phase::kBarrier) {
      out[i] = rts::bcast_value(comm, mine, 0);
    } else {
      out[i] = rts::allreduce_value(
          comm, mine, [](double a, double b) { return a > b ? a : b; });
    }
  }
  if (metrics != nullptr && comm.rank() == 0) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      metrics->histogram(std::string(prefix) +
                         to_string(static_cast<Phase>(i)))
          .add(out[i]);
    }
  }
  return out;
}

}  // namespace pardis::transfer
