#include "pardis/transfer/spmd_client.hpp"

#include <algorithm>

#include "pardis/common/config.hpp"
#include "pardis/common/log.hpp"
#include "pardis/dseq/plan.hpp"
#include "pardis/obs/phase_trace.hpp"
#include "pardis/orb/exceptions.hpp"
#include "pardis/rts/collectives.hpp"
#include "pardis/transfer/framing.hpp"

namespace pardis::transfer {

namespace {

struct ReceivedFrame {
  pardis::Bytes bytes;
  orb::Frame info;
};

ReceivedFrame recv_frame(transport::Stream& conn, orb::MsgType expected) {
  ReceivedFrame f;
  f.bytes = conn.recv_or_throw();
  f.info = orb::parse_frame(f.bytes);
  if (f.info.type != expected) {
    throw MARSHAL(std::string("expected ") + orb::to_string(expected) +
                  " frame, got " + orb::to_string(f.info.type));
  }
  return f;
}

/// Result of the collective reply-header exchange: rank 0 receives the
/// header on the control connection and broadcasts the parts every rank
/// needs.
struct SharedReply {
  orb::ReplyStatus status = orb::ReplyStatus::kNoException;
  pardis::Bytes payload;
  std::vector<orb::DSeqDescriptor> dseqs;
  std::vector<double> server_stats;
};

void encode_shared_reply(cdr::Encoder& enc, const SharedReply& r) {
  enc.put_octet(static_cast<cdr::Octet>(r.status));
  enc.put_octet_sequence(r.payload);
  enc.put_ulong(static_cast<cdr::ULong>(r.dseqs.size()));
  for (const auto& d : r.dseqs) d.encode(enc);
  enc.put_array(r.server_stats.data(), r.server_stats.size());
}

SharedReply decode_shared_reply(cdr::Decoder& dec) {
  SharedReply r;
  r.status = static_cast<orb::ReplyStatus>(dec.get_octet());
  r.payload = dec.get_octet_sequence();
  const cdr::ULong n = dec.get_ulong();
  for (cdr::ULong i = 0; i < n; ++i) {
    r.dseqs.push_back(orb::DSeqDescriptor::decode(dec));
  }
  r.server_stats = dec.get_array<double>(64);
  return r;
}

}  // namespace

// ---- SpmdBinding::bind -----------------------------------------------------

SpmdBinding SpmdBinding::bind(orb::Orb& orb, rts::Communicator& comm,
                              const std::string& client_host,
                              const std::string& object_name,
                              const std::string& type_id,
                              const std::string& host_hint) {
  SpmdBinding b;
  b.orb_ = &orb;
  b.comm_ = &comm;
  b.client_host_ = client_host;

  // Rank 0 resolves and shares the outcome so siblings never hang on a
  // failed resolution.
  const auto bind_timeout = std::chrono::milliseconds(
      env_u64("PARDIS_BIND_TIMEOUT_MS", 10'000));
  pardis::Bytes shared;
  if (comm.rank() == 0) {
    cdr::Encoder enc;
    auto ref = orb.naming().resolve_wait(object_name, host_hint, bind_timeout);
    if (!ref) {
      enc.put_boolean(false);
      enc.put_string("no object named '" + object_name + "'" +
                     (host_hint.empty() ? "" : " on host " + host_hint));
    } else if (!type_id.empty() && ref->type_id != type_id) {
      enc.put_boolean(false);
      enc.put_string("object '" + object_name + "' has type " +
                     ref->type_id + ", expected " + type_id);
    } else {
      enc.put_boolean(true);
      enc.put_ulong(orb.next_binding_id());
      ref->encode(enc);
    }
    shared = enc.take();
  }
  comm.bcast_bytes(shared, 0);
  {
    cdr::Decoder dec{BytesView(shared)};
    if (!dec.get_boolean()) {
      throw OBJECT_NOT_EXIST(dec.get_string());
    }
    b.binding_id_ = dec.get_ulong();
    b.object_ = orb::ObjectRef::decode(dec);
  }

  // Rank 0 opens the control connection and announces the binding.
  if (comm.rank() == 0) {
    b.control_ = orb.transport().connect(client_host, b.object_.endpoints[0]);
    send_frame(*b.control_, orb::MsgType::kBindRequest, [&](cdr::Encoder& e) {
      orb::BindRequest req;
      req.binding_id = b.binding_id_;
      req.client_host = client_host;
      req.client_ranks = static_cast<cdr::ULong>(comm.size());
      req.object_key = object_name;
      req.collective = true;
      req.encode(e);
    });
  }

  // Every rank opens a data connection to every server thread's port
  // (paper §3.3: clients open multiple connections so each computing thread
  // can communicate directly with each thread of the server).
  b.data_conns_.reserve(b.object_.endpoints.size());
  for (const net::Address& ep : b.object_.endpoints) {
    auto conn = orb.transport().connect(client_host, ep);
    send_frame(*conn, orb::MsgType::kHello, [&](cdr::Encoder& e) {
      orb::Hello hello;
      hello.binding_id = b.binding_id_;
      hello.client_rank = static_cast<cdr::ULong>(comm.rank());
      hello.encode(e);
    });
    b.data_conns_.push_back(std::move(conn));
  }
  b.data_stash_.resize(b.data_conns_.size());

  // Rank 0 awaits the acknowledgment (carrying the server's argument
  // distribution policy) and shares it.
  pardis::Bytes ack_shared;
  if (comm.rank() == 0) {
    auto frame = recv_frame(*b.control_, orb::MsgType::kBindAck);
    auto dec = orb::body_decoder(frame.bytes, frame.info);
    const orb::BindAck ack = orb::BindAck::decode(dec);
    cdr::Encoder enc;
    if (ack.status != orb::BindStatus::kOk) {
      enc.put_boolean(false);
      enc.put_string(ack.message);
    } else {
      enc.put_boolean(true);
      ArgDistPolicy::decode(dec).encode(enc);
    }
    ack_shared = enc.take();
  }
  comm.bcast_bytes(ack_shared, 0);
  {
    cdr::Decoder dec{BytesView(ack_shared)};
    if (!dec.get_boolean()) {
      throw OBJECT_NOT_EXIST("bind rejected: " + dec.get_string());
    }
    b.policy_ = ArgDistPolicy::decode(dec);
  }
  PARDIS_LOG_DEBUG << "spmd_bind rank " << comm.rank() << " -> "
                   << object_name << " (binding " << b.binding_id_ << ")";
  return b;
}

// ---- SpmdBinding::invoke ---------------------------------------------------

pardis::Bytes SpmdBinding::invoke(const std::string& operation,
                                  pardis::Bytes scalar_args,
                                  const std::vector<DSeqArgBase*>& dseq_args,
                                  const CallOptions& opts) {
  stats_.reset();
  const auto t0 = Clock::now();
  orb_->metrics().counter("client.invocations").add();
  const obs::SpanGuard span(&orb_->tracer(), "invoke " + operation, "invoke",
                            obs::role_pid(obs::kClientPid),
                            static_cast<std::uint32_t>(comm_->rank()));

  // Client threads synchronize on making the invocation (paper §3.2).
  comm_->barrier();

  const cdr::ULong request_id = ++next_request_;
  std::vector<orb::DSeqDescriptor> descriptors;
  descriptors.reserve(dseq_args.size());
  for (std::size_t i = 0; i < dseq_args.size(); ++i) {
    descriptors.push_back(
        make_request_descriptor(static_cast<cdr::ULong>(i), *dseq_args[i]));
  }

  pardis::Bytes results;
  try {
    send_phase(operation, request_id, scalar_args, dseq_args, descriptors,
               opts);
    if (opts.response_expected) {
      results = receive_phase(request_id, dseq_args, descriptors, opts);
    }
  } catch (const SystemException& e) {
    orb_->metrics().counter("client.errors").add();
    if (e.kind() == "MARSHAL") {
      orb_->metrics().counter("client.marshal_errors").add();
    }
    throw;
  } catch (...) {
    orb_->metrics().counter("client.errors").add();
    throw;
  }

  stats_.timer.time(Phase::kBarrier, [&] { comm_->barrier(); });
  stats_.timer.add(Phase::kTotal, Clock::now() - t0);
  PARDIS_LOG_DEBUG << "rank " << comm_->rank() << " invoke done ("
                   << operation << ")";
  return results;
}

orb::Future<pardis::Bytes> SpmdBinding::invoke_nb(
    const std::string& operation, pardis::Bytes scalar_args,
    std::vector<DSeqArgBase*> dseq_args, const CallOptions& opts) {
  stats_.reset();
  const auto t0 = Clock::now();
  orb_->metrics().counter("client.invocations").add();
  comm_->barrier();

  const cdr::ULong request_id = ++next_request_;
  std::vector<orb::DSeqDescriptor> descriptors;
  descriptors.reserve(dseq_args.size());
  for (std::size_t i = 0; i < dseq_args.size(); ++i) {
    descriptors.push_back(
        make_request_descriptor(static_cast<cdr::ULong>(i), *dseq_args[i]));
  }
  send_phase(operation, request_id, scalar_args, dseq_args, descriptors,
             opts);

  if (!opts.response_expected) {
    stats_.timer.add(Phase::kTotal, Clock::now() - t0);
    return orb::Future<pardis::Bytes>::from_value({});
  }
  // The receive phase runs inside the (collective) get().  Futures may be
  // collected out of order — replies and data frames for other outstanding
  // requests are stashed by request id — provided every rank performs the
  // same sequence of collective get() calls.
  return orb::Future<pardis::Bytes>::from_deferred(
      [this, request_id, args = std::move(dseq_args), descriptors, opts,
       t0]() mutable {
        pardis::Bytes results =
            receive_phase(request_id, args, descriptors, opts);
        stats_.timer.time(Phase::kBarrier, [&] { comm_->barrier(); });
        stats_.timer.add(Phase::kTotal, Clock::now() - t0);
        return results;
      });
}

void SpmdBinding::send_phase(
    const std::string& operation, cdr::ULong request_id,
    pardis::Bytes& scalar_args, const std::vector<DSeqArgBase*>& dseq_args,
    const std::vector<orb::DSeqDescriptor>& descriptors,
    const CallOptions& opts) {
  const int rank = comm_->rank();
  obs::TracedTimer timer(stats_.timer, &orb_->tracer(),
                         obs::role_pid(obs::kClientPid),
                         static_cast<std::uint32_t>(rank));

  orb::RequestHeader header;
  header.request_id = request_id;
  header.binding_id = binding_id_;
  header.operation = operation;
  header.response_expected = opts.response_expected;
  header.collective = true;
  header.method = opts.method;
  header.scalar_args = std::move(scalar_args);
  header.dseqs = descriptors;

  if (opts.method == orb::TransferMethod::kCentralized) {
    // Gather every distributed in/inout argument at the communicating
    // thread, then ship request + arguments as one message (§3.2).  The
    // per-rank local_data blocks stay separate buffers: packing threads
    // them onto the frame as gather segments (io::GatherList), so rank 0
    // never concatenates them into a staging buffer — writev does the
    // concatenation on the way into the kernel.
    std::vector<std::vector<pardis::Bytes>> gathered(dseq_args.size());
    timer.time(Phase::kGather, [&] {
      for (std::size_t i = 0; i < dseq_args.size(); ++i) {
        const DSeqArgBase& arg = *dseq_args[i];
        if (arg.direction() == orb::ArgDir::kOut) continue;
        pardis::Bytes local;
        arg.pack_local(0, arg.distribution().count(rank), local);
        auto parts = comm_->gather_bytes(local, 0);
        if (rank == 0) gathered[i] = std::move(parts);
      }
    });
    if (rank == 0) {
      io::GatherList frame = timer.time(Phase::kPack, [&] {
        cdr::Encoder enc;
        orb::begin_frame(enc, orb::MsgType::kRequest);
        header.encode(enc);
        io::GatherList gl;
        gl.append(enc.take());
        for (std::size_t i = 0; i < dseq_args.size(); ++i) {
          if (dseq_args[i]->direction() == orb::ArgDir::kOut) continue;
          gl.pad_to(8);  // same wire layout as Encoder::align(8)
          for (pardis::Bytes& part : gathered[i]) gl.append(std::move(part));
        }
        return gl;
      });
      PARDIS_LOG_TRACE << "client rank 0 sending centralized request ("
                       << frame.total_bytes() << " bytes)";
      timer.time(Phase::kSend, [&] { send_framed(*control_, std::move(frame)); });
      PARDIS_LOG_TRACE << "client rank 0 centralized request sent";
    }
    return;
  }

  // Multi-port: the invocation header still travels centralized to avoid
  // contention between invoking clients (§3.3) ...
  if (rank == 0) {
    pardis::Bytes frame = timer.time(Phase::kPack, [&] {
      cdr::Encoder enc;
      orb::begin_frame(enc, orb::MsgType::kRequest);
      header.encode(enc);
      return enc.take();
    });
    timer.time(Phase::kSend, [&] { send_framed(*control_, std::move(frame)); });
  }
  // ... then every computing thread routes its share of each argument
  // directly to the owning server threads.
  for (std::size_t i = 0; i < dseq_args.size(); ++i) {
    const DSeqArgBase& arg = *dseq_args[i];
    if (arg.direction() == orb::ArgDir::kOut) continue;
    const dseq::DistTempl server_dist = policy_.server_dist(
        operation, static_cast<cdr::ULong>(i), arg.total_length(),
        server_ranks());
    const dseq::RedistributionPlan plan(arg.distribution(), server_dist);
    for (const dseq::Segment& seg : plan.outgoing(rank)) {
      io::GatherList frame = timer.time(Phase::kPack, [&] {
        cdr::Encoder enc;
        orb::begin_frame(enc, orb::MsgType::kArgTransfer);
        orb::ArgTransferHeader h;
        h.request_id = request_id;
        h.arg_index = static_cast<cdr::ULong>(i);
        h.src_rank = static_cast<cdr::ULong>(rank);
        h.dst_rank = static_cast<cdr::ULong>(seg.dst_rank);
        h.dst_offset = seg.dst_offset;
        h.count = seg.count;
        h.encode(enc);
        io::GatherList gl;
        gl.append(enc.take());
        gl.pad_to(8);  // same wire layout as Encoder::align(8)
        pardis::Bytes data;
        arg.pack_local(seg.src_offset, seg.count, data);
        gl.append(std::move(data));  // segment rides to writev, no re-pack
        return gl;
      });
      timer.time(Phase::kSend, [&] {
        send_framed(*data_conns_[static_cast<std::size_t>(seg.dst_rank)],
                    std::move(frame));
      });
    }
  }
}

pardis::Bytes SpmdBinding::receive_phase(
    cdr::ULong request_id, const std::vector<DSeqArgBase*>& dseq_args,
    const std::vector<orb::DSeqDescriptor>& descriptors,
    const CallOptions& opts) {
  const int rank = comm_->rank();
  obs::TracedTimer timer(stats_.timer, &orb_->tracer(),
                         obs::role_pid(obs::kClientPid),
                         static_cast<std::uint32_t>(rank));

  // Rank 0 receives the reply header; everyone shares it.
  SharedReply reply;
  pardis::Bytes reply_frame;
  orb::Frame reply_info{};
  std::size_t data_cursor = 0;
  {
    pardis::Bytes shared;
    if (rank == 0) {
      StashedFrame frame = recv_reply_frame(request_id, timer);
      reply_frame = std::move(frame.bytes);
      reply_info = frame.info;
      auto dec = orb::body_decoder(reply_frame, reply_info);
      const orb::ReplyHeader header = orb::ReplyHeader::decode(dec);
      reply.status = header.status;
      reply.payload = header.payload;
      reply.dseqs = header.dseqs;
      reply.server_stats = header.server_stats_ms;
      data_cursor = dec.position();
      cdr::Encoder enc;
      encode_shared_reply(enc, reply);
      shared = enc.take();
    }
    comm_->bcast_bytes(shared, 0);
    if (rank != 0) {
      cdr::Decoder dec{BytesView(shared)};
      reply = decode_shared_reply(dec);
    } else {
      // rank 0 already has `reply` populated.
    }
  }
  server_stats_ = reply.server_stats;

  if (reply.status != orb::ReplyStatus::kNoException) {
    orb::rethrow_reply_exception(reply.status, reply.payload,
                                 orb_->exceptions());
  }

  // Receive inout/out distributed results.
  for (const orb::DSeqDescriptor& desc : reply.dseqs) {
    if (desc.arg_index >= dseq_args.size()) {
      throw MARSHAL("reply descriptor for unknown argument");
    }
    DSeqArgBase& arg = *dseq_args[desc.arg_index];
    check_elem_type(desc, arg);
    const dseq::DistTempl server_dist = dist_from_counts(desc.src_counts);
    const dseq::DistTempl client_dist = client_reply_dist(
        descriptors[desc.arg_index], desc.total_length, comm_->size());
    arg.prepare(client_dist);

    if (opts.method == orb::TransferMethod::kCentralized) {
      // Data sections ride in the reply frame; rank 0 slices and scatters.
      std::vector<pardis::Bytes> parts;
      if (rank == 0) {
        timer.time(Phase::kUnpack, [&] {
          cdr::Decoder dec(BytesView(reply_frame), reply_info.little_endian);
          (void)dec.get_octets(data_cursor);
          dec.align(8);
          const auto all = dec.get_octets(desc.total_length * desc.elem_size);
          data_cursor = dec.position();
          parts.resize(static_cast<std::size_t>(comm_->size()));
          std::size_t offset = 0;
          for (int r = 0; r < comm_->size(); ++r) {
            const std::size_t bytes = client_dist.count(r) * desc.elem_size;
            parts[static_cast<std::size_t>(r)].assign(
                all.begin() + static_cast<std::ptrdiff_t>(offset),
                all.begin() + static_cast<std::ptrdiff_t>(offset + bytes));
            offset += bytes;
          }
        });
      }
      const pardis::Bytes mine = timer.time(
          Phase::kScatter, [&] { return comm_->scatter_bytes(parts, 0); });
      timer.time(Phase::kUnpack, [&] {
        const bool swap =
            (rank == 0 ? reply_info.little_endian
                       : pardis::host_is_little_endian()) !=
            pardis::host_is_little_endian();
        arg.unpack_segment(0, client_dist.count(rank), mine, swap);
      });
    } else {
      // Multi-port: receive direct transfers from the owning server ranks.
      const dseq::RedistributionPlan plan(server_dist, client_dist);
      auto expected = plan.incoming(rank);
      // Group by source server rank; each connection delivers in order.
      for (int j = 0; j < server_ranks(); ++j) {
        for (const dseq::Segment& seg : expected) {
          if (seg.src_rank != j || seg.count == 0) continue;
          const StashedFrame frame = recv_data_frame(
              static_cast<std::size_t>(j), request_id, timer);
          timer.time(Phase::kUnpack, [&] {
            auto dec = orb::body_decoder(frame.bytes, frame.info);
            const auto h = orb::ArgTransferHeader::decode(dec);
            if (h.request_id != request_id ||
                h.arg_index != desc.arg_index ||
                h.dst_offset != seg.dst_offset || h.count != seg.count) {
              throw MARSHAL("unexpected argument-transfer segment");
            }
            dec.align(8);
            arg.unpack_segment(
                seg.dst_offset, seg.count,
                dec.get_octets(seg.count * desc.elem_size),
                frame.info.little_endian != pardis::host_is_little_endian());
          });
        }
      }
    }
  }

  return reply.payload;
}

SpmdBinding::StashedFrame SpmdBinding::recv_reply_frame(
    cdr::ULong request_id, obs::TracedTimer& timer) {
  if (auto node = reply_stash_.extract(request_id); !node.empty()) {
    return std::move(node.mapped());
  }
  for (;;) {
    auto f = timer.time(Phase::kRecv, [&] {
      return recv_frame(*control_, orb::MsgType::kReply);
    });
    auto dec = orb::body_decoder(f.bytes, f.info);
    const cdr::ULong id = dec.get_ulong();  // leading ReplyHeader field
    if (id == request_id) return {std::move(f.bytes), f.info};
    // A reply for another outstanding future: hold it until that future
    // is collected.
    reply_stash_[id] = {std::move(f.bytes), f.info};
  }
}

SpmdBinding::StashedFrame SpmdBinding::recv_data_frame(
    std::size_t conn, cdr::ULong request_id, obs::TracedTimer& timer) {
  auto& stash = data_stash_[conn];
  if (const auto it = stash.find(request_id); it != stash.end()) {
    StashedFrame f = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) stash.erase(it);
    return f;
  }
  for (;;) {
    auto f = timer.time(Phase::kRecv, [&] {
      return recv_frame(*data_conns_[conn], orb::MsgType::kArgTransfer);
    });
    auto dec = orb::body_decoder(f.bytes, f.info);
    const cdr::ULong id = orb::ArgTransferHeader::decode(dec).request_id;
    if (id == request_id) return {std::move(f.bytes), f.info};
    stash[id].push_back({std::move(f.bytes), f.info});
  }
}

void SpmdBinding::unbind() {
  comm_->barrier();
  if (control_) control_->close();
  for (auto& conn : data_conns_) {
    if (conn) conn->close();
  }
  data_conns_.clear();
  control_.reset();
}

// ---- DirectBinding ---------------------------------------------------------

DirectBinding DirectBinding::bind(orb::Orb& orb,
                                  const std::string& client_host,
                                  const std::string& object_name,
                                  const std::string& type_id,
                                  const std::string& host_hint) {
  DirectBinding b;
  b.orb_ = &orb;
  auto ref = orb.naming().resolve_wait(
      object_name, host_hint,
      std::chrono::milliseconds(env_u64("PARDIS_BIND_TIMEOUT_MS", 10'000)));
  if (!ref) {
    throw OBJECT_NOT_EXIST("no object named '" + object_name + "'");
  }
  if (!type_id.empty() && ref->type_id != type_id) {
    throw INV_OBJREF("object '" + object_name + "' has type " +
                     ref->type_id + ", expected " + type_id);
  }
  b.object_ = *ref;
  b.binding_id_ = orb.next_binding_id();
  b.client_host_ = client_host;
  // The control connection comes from the transport's idle pool when a
  // previous binding to the same endpoint released one.  A pooled stream
  // may have died while idle (the server may have dropped it), so on a
  // communication failure with a reused stream retry once with a
  // guaranteed-fresh connection.
  for (int attempt = 0;; ++attempt) {
    bool reused = false;
    b.control_ =
        orb.transport().acquire(client_host, b.object_.endpoints[0], &reused);
    try {
      send_frame(*b.control_, orb::MsgType::kBindRequest,
                 [&](cdr::Encoder& e) {
                   orb::BindRequest req;
                   req.binding_id = b.binding_id_;
                   req.client_host = client_host;
                   req.client_ranks = 1;
                   req.object_key = object_name;
                   req.collective = false;
                   req.encode(e);
                 });
      auto frame = recv_frame(*b.control_, orb::MsgType::kBindAck);
      auto dec = orb::body_decoder(frame.bytes, frame.info);
      const orb::BindAck ack = orb::BindAck::decode(dec);
      if (ack.status != orb::BindStatus::kOk) {
        throw OBJECT_NOT_EXIST("bind rejected: " + ack.message);
      }
      // Pipeline window: the server's credit grant capped by the client's
      // own appetite.  Servers predating the grant advertise 0 → window 1
      // (strictly serial, but still correct).
      b.window_ = static_cast<std::uint32_t>(
          std::min<cdr::ULong>(std::max<cdr::ULong>(ack.credit, 1),
                               env_u64("PARDIS_MAX_INFLIGHT", 32)));
      b.router_ = std::make_shared<ReplyRouter>(b.control_, &orb.metrics(),
                                                b.window_, &orb.tracer());
      return b;
    } catch (const SystemException& e) {
      b.control_->close();
      b.control_.reset();
      if (reused && attempt == 0 && e.kind() == "COMM_FAILURE") {
        // Count pool corpses discarded at bind: under churn (rebinds racing
        // server-side kills) this is the pool's recovery path, and the
        // storm harness asserts it stays cheap rather than thrashing.
        orb.metrics().counter("client.bind.stale_retries").add();
        continue;
      }
      throw;
    }
  }
}

pardis::Bytes DirectBinding::invoke(const std::string& operation,
                                    pardis::Bytes scalar_args,
                                    bool response_expected) {
  const cdr::ULong request_id = ++next_request_;
  // Even synchronous replies route through the router, so a sync invoke
  // issued while pipelined futures are outstanding cannot steal (or be
  // starved by) a sibling's reply.
  if (response_expected) router_->expect(request_id);
  try {
    send_frame(*control_, orb::MsgType::kRequest, [&](cdr::Encoder& e) {
      orb::RequestHeader header;
      header.request_id = request_id;
      header.binding_id = binding_id_;
      header.operation = operation;
      header.response_expected = response_expected;
      header.collective = false;
      header.method = orb::TransferMethod::kCentralized;
      header.scalar_args = std::move(scalar_args);
      header.encode(e);
    });
  } catch (...) {
    if (response_expected) router_->abandon(request_id);
    throw;
  }
  if (!response_expected) return {};
  const ReplyRouter::Reply r = router_->await(request_id);
  if (r.rejected) {
    throw TRANSIENT("server shed request " + std::to_string(request_id));
  }
  auto dec = orb::body_decoder(r.frame, r.info);
  const orb::ReplyHeader reply = orb::ReplyHeader::decode(dec);
  if (reply.request_id != request_id) {
    throw MARSHAL("reply id mismatch");
  }
  if (reply.status != orb::ReplyStatus::kNoException) {
    orb::rethrow_reply_exception(reply.status, reply.payload,
                                 orb_->exceptions());
  }
  return reply.payload;
}

orb::Future<pardis::Bytes> DirectBinding::invoke_nb(
    const std::string& operation, pardis::Bytes scalar_args) {
  orb_->metrics().counter("client.invocations").add();
  // Sampling decision for this invocation: a nonzero trace id tags every
  // client-side span, rides the wire in the trace prologue extension, and
  // stitches the server's spans into the same timeline
  // (docs/observability.md).  Sampled-out requests record zero spans and
  // their frames are byte-identical to a pre-trace-extension peer's.
  obs::Tracer& tracer = orb_->tracer();
  const std::uint64_t trace_id = tracer.sample_trace_id();
  const auto credit_t0 = Clock::now();
  router_->take_credit();  // blocks while the window is full
  const auto credit_t1 = Clock::now();
  orb_->metrics()
      .histogram("client.pipeline.credit_wait_us")
      .add(to_us(credit_t1 - credit_t0));
  if (trace_id != 0) {
    tracer.record("credit_wait", "pipeline", obs::role_pid(obs::kClientPid),
                  obs::this_thread_tid(), credit_t0, credit_t1, trace_id);
  }
  const cdr::ULong request_id = ++next_request_;
  router_->expect(request_id, trace_id);
  try {
    send_mux_frame(*control_, orb::MsgType::kRequest,
                   orb::MuxInfo{request_id, orb::FrameKind::kData, 0},
                   orb::TraceContext{trace_id, request_id},
                   [&](cdr::Encoder& e) {
                     orb::RequestHeader header;
                     header.request_id = request_id;
                     header.binding_id = binding_id_;
                     header.operation = operation;
                     header.response_expected = true;
                     header.collective = false;
                     header.method = orb::TransferMethod::kCentralized;
                     header.scalar_args = std::move(scalar_args);
                     header.encode(e);
                   });
  } catch (...) {
    router_->abandon(request_id);
    router_->give_credit();
    throw;
  }
  // The completer captures the shared router and the Orb (stable address,
  // owned elsewhere) rather than `this`, so the binding may move — or even
  // be destroyed — while futures are pending.
  return orb::Future<pardis::Bytes>::from_deferred(
      [router = router_, o = orb_, request_id]() {
        const ReplyRouter::Reply r = router->await(request_id);
        if (r.rejected) {
          throw TRANSIENT("server shed pipelined request " +
                          std::to_string(request_id));
        }
        auto dec = orb::body_decoder(r.frame, r.info);
        const orb::ReplyHeader reply = orb::ReplyHeader::decode(dec);
        if (reply.request_id != request_id) {
          throw MARSHAL("reply id mismatch on pipelined stream");
        }
        if (reply.status != orb::ReplyStatus::kNoException) {
          orb::rethrow_reply_exception(reply.status, reply.payload,
                                       o->exceptions());
        }
        return reply.payload;
      });
}

void DirectBinding::unbind() {
  if (!control_) return;
  const bool replies_pending = router_ && router_->inflight() > 0;
  try {
    send_frame(*control_, orb::MsgType::kUnbind,
               [&](cdr::Encoder& e) { e.put_ulong(binding_id_); });
    if (replies_pending) {
      // Uncollected pipelined replies would poison a pooled stream's next
      // user; retire the connection instead.
      control_->close();
    } else {
      orb_->transport().release(std::move(control_));
    }
  } catch (const SystemException&) {
    // Peer already gone: nothing to announce, nothing worth pooling.
    if (control_) control_->close();
  }
  control_.reset();
  router_.reset();
}

void send_shutdown(orb::Orb& orb, const std::string& from_host,
                   const orb::ObjectRef& ref) {
  auto conn = orb.transport().connect(from_host, ref.endpoints[0]);
  send_frame(*conn, orb::MsgType::kShutdown, [](cdr::Encoder&) {});
  conn->close();
}

}  // namespace pardis::transfer
