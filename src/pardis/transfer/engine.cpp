#include "pardis/transfer/engine.hpp"

#include "pardis/common/error.hpp"

namespace pardis::transfer {

void ArgDistPolicy::set(const std::string& operation, cdr::ULong arg_index,
                        dseq::Proportions proportions) {
  preset_[{operation, arg_index}] = std::move(proportions);
}

dseq::DistTempl ArgDistPolicy::server_dist(const std::string& operation,
                                           cdr::ULong arg_index,
                                           std::uint64_t total_length,
                                           int nranks) const {
  const auto it = preset_.find({operation, arg_index});
  if (it == preset_.end()) {
    return dseq::DistTempl::block(total_length, nranks);
  }
  return dseq::DistTempl::proportional(total_length, it->second, nranks);
}

void ArgDistPolicy::encode(cdr::Encoder& enc) const {
  enc.put_ulong(static_cast<cdr::ULong>(preset_.size()));
  for (const auto& [key, proportions] : preset_) {
    enc.put_string(key.first);
    enc.put_ulong(key.second);
    const auto& weights = proportions.weights();
    enc.put_array(weights.data(), weights.size());
  }
}

ArgDistPolicy ArgDistPolicy::decode(cdr::Decoder& dec) {
  ArgDistPolicy policy;
  const cdr::ULong count = dec.get_ulong();
  if (count > 4096) {
    throw MARSHAL("ArgDistPolicy: absurd preset count");
  }
  for (cdr::ULong i = 0; i < count; ++i) {
    std::string operation = dec.get_string();
    const cdr::ULong arg_index = dec.get_ulong();
    auto weights = dec.get_array<double>(1u << 16);
    policy.set(operation, arg_index,
               weights.empty() ? dseq::Proportions{}
                               : dseq::Proportions(std::move(weights)));
  }
  return policy;
}

orb::DSeqDescriptor make_request_descriptor(cdr::ULong arg_index,
                                            const DSeqArgBase& arg) {
  orb::DSeqDescriptor desc;
  desc.arg_index = arg_index;
  desc.dir = arg.direction();
  desc.elem_kind = arg.elem_kind();
  desc.elem_size = static_cast<cdr::ULong>(arg.elem_size());
  if (arg.direction() == orb::ArgDir::kOut) {
    // Out arguments carry no data, but the client may have initialized the
    // sequence with a distribution template before the call (paper §2.2);
    // ship it as the reply-routing hint.  It applies when the result's
    // length matches (see client_reply_dist); otherwise the reply defaults
    // to uniform blockwise.
    desc.total_length = arg.total_length();
    desc.src_counts = counts_of(arg.distribution());
  } else {
    desc.total_length = arg.total_length();
    desc.src_counts = counts_of(arg.distribution());
  }
  return desc;
}

dseq::DistTempl client_reply_dist(const orb::DSeqDescriptor& request_desc,
                                  std::uint64_t reply_length,
                                  int client_ranks) {
  if (request_desc.total_length == reply_length && reply_length > 0) {
    return dist_from_counts(request_desc.src_counts);
  }
  return dseq::DistTempl::block(reply_length, client_ranks);
}

dseq::DistTempl dist_from_counts(const std::vector<cdr::ULongLong>& counts) {
  return dseq::DistTempl::from_counts(
      std::vector<std::uint64_t>(counts.begin(), counts.end()));
}

std::vector<cdr::ULongLong> counts_of(const dseq::DistTempl& dist) {
  const auto span = dist.counts();
  return std::vector<cdr::ULongLong>(span.begin(), span.end());
}

void check_elem_type(const orb::DSeqDescriptor& desc, const DSeqArgBase& arg) {
  if (desc.elem_kind != arg.elem_kind() ||
      desc.elem_size != arg.elem_size()) {
    throw MARSHAL("distributed argument element type mismatch");
  }
}

}  // namespace pardis::transfer
