// Server-side SPMD object support (paper §2, §3).
//
// An SPMD object is "associated with a set of one or more computing threads
// visible to the request broker, and capable of satisfying services if and
// only if a request for them is delivered to all the computing threads."
// Every rank of the server application constructs its own SpmdServer (and
// servant instance), then calls the collective activate()/serve() —
// delivery to all computing threads is the loop's invariant:
//
//   * the communicating thread (rank 0) owns the control traffic: it
//     accepts connections, receives bind requests and invocation headers,
//     and broadcasts every event to the sibling ranks;
//   * each rank owns a listening port (multi-port transfer) and its own
//     per-binding data connections;
//   * argument data arrives either inside the request frame (centralized:
//     rank 0 scatters) or directly on the per-rank connections (multi-port);
//   * the servant's dispatch runs on every rank; ranks synchronize on a
//     barrier after the invocation, and rank 0 reports completion.
//
// A server can host several named objects (activate() repeatedly) and can
// interleave computation with request processing through the collective
// poll() (paper §2.1: "PARDIS also allows the server to interrupt its
// computation in order to process outstanding requests").
//
// Pipelined requests — multiplexed, non-collective frames carrying the
// extended prologue — take a different path: rank 0 admits each one into a
// bounded queue drained by a worker pool, every reply returns one credit to
// the client's window, and a full queue sheds the request with a Reject
// frame the client surfaces as TRANSIENT (docs/pipelining.md).  Servants
// reachable through DirectBinding::invoke_nb must therefore tolerate
// concurrent dispatch of their non-collective operations.

#pragma once

#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "pardis/common/ranked_mutex.hpp"
#include "pardis/dseq/dsequence.hpp"
#include "pardis/net/fabric.hpp"
#include "pardis/orb/exceptions.hpp"
#include "pardis/orb/objref.hpp"
#include "pardis/orb/orb.hpp"
#include "pardis/rts/communicator.hpp"
#include "pardis/transfer/engine.hpp"
#include "pardis/transfer/stats.hpp"
#include "pardis/transport/transport.hpp"

namespace pardis::transfer {

/// Everything a servant needs to process one invocation on one rank.
/// Constructed by the engine; handed to SpmdServant::dispatch on every rank.
class ServerCall {
 public:
  const std::string& operation() const noexcept { return operation_; }
  bool collective() const noexcept { return collective_; }
  rts::Communicator& comm() const noexcept { return *comm_; }

  /// Fresh decoder over the scalar (non-distributed) arguments.
  cdr::Decoder args() const {
    return cdr::Decoder(BytesView(scalar_args_), args_little_endian_);
  }

  /// Encoder for the scalar results (the communicating thread's copy is
  /// what travels back; all ranks should encode identically).
  cdr::Encoder& results() noexcept { return results_; }

  std::size_t dseq_count() const noexcept { return in_args_.size(); }

  /// Materializes distributed argument `arg_index` as a typed sequence
  /// (this rank's chunk + the server-side template).  Collective.
  template <typename T>
  dseq::DSequence<T> take_dseq(cdr::ULong arg_index) {
    InArg& a = in_arg(arg_index);
    if (a.desc.elem_kind != orb::elem_kind_of<T>() ||
        a.desc.elem_size != sizeof(T)) {
      throw MARSHAL("take_dseq: element type mismatch");
    }
    std::vector<T> local(a.chunk.size() / sizeof(T));
    if (!local.empty()) {
      std::memcpy(local.data(), a.chunk.data(), a.chunk.size());
    }
    if (a.little_endian != pardis::host_is_little_endian()) {
      for (T& v : local) v = pardis::byteswap_scalar(v);
    }
    a.chunk.clear();
    a.chunk.shrink_to_fit();
    return dseq::DSequence<T>::from_local_chunk(*comm_, a.dist,
                                                std::move(local));
  }

  /// Registers the result value of an inout/out distributed argument.
  /// Collective; the sequence's current distribution becomes the
  /// server-side source distribution of the reply transfer.
  template <typename T>
  void put_dseq(cdr::ULong arg_index, const dseq::DSequence<T>& seq) {
    OutArg out;
    out.desc.arg_index = arg_index;
    out.desc.dir = dir_of(arg_index);
    out.desc.elem_kind = orb::elem_kind_of<T>();
    out.desc.elem_size = sizeof(T);
    out.desc.total_length = seq.length();
    out.desc.src_counts = counts_of(seq.distribution());
    const auto* bytes =
        reinterpret_cast<const std::uint8_t*>(seq.local_data());
    out.chunk.assign(bytes, bytes + seq.local_length() * sizeof(T));
    out_args_.push_back(std::move(out));
  }

 private:
  friend class SpmdServer;

  struct InArg {
    orb::DSeqDescriptor desc;   // from the request (client-side counts)
    dseq::DistTempl dist;       // server-side template
    pardis::Bytes chunk;        // this rank's raw data
    bool little_endian = true;  // byte order of `chunk`
  };
  struct OutArg {
    orb::DSeqDescriptor desc;  // server-side counts
    pardis::Bytes chunk;       // this rank's raw result data
  };

  InArg& in_arg(cdr::ULong arg_index) {
    for (InArg& a : in_args_) {
      if (a.desc.arg_index == arg_index) return a;
    }
    throw BAD_PARAM("no distributed argument with index " +
                    std::to_string(arg_index));
  }

  orb::ArgDir dir_of(cdr::ULong arg_index) const {
    for (const InArg& a : in_args_) {
      if (a.desc.arg_index == arg_index) return a.desc.dir;
    }
    return orb::ArgDir::kOut;
  }

  rts::Communicator* comm_ = nullptr;
  std::string operation_;
  bool collective_ = true;
  pardis::Bytes scalar_args_;
  bool args_little_endian_ = true;
  cdr::Encoder results_;
  std::vector<InArg> in_args_;   // in/inout/out descriptors + data
  std::vector<OutArg> out_args_;
};

/// Implemented by generated skeletons (or directly by applications).
class SpmdServant {
 public:
  virtual ~SpmdServant() = default;

  /// IDL repository id, e.g. "IDL:diff_object:1.0".
  virtual const char* type_id() const = 0;

  /// Processes one invocation on this rank.  Runs collectively on every
  /// rank of the object.  Throw BAD_OPERATION for unknown operations;
  /// TypedUserException subclasses and SystemExceptions propagate to the
  /// client.
  virtual void dispatch(ServerCall& call) = 0;
};

class SpmdServer {
 public:
  /// Per-rank construction; `host` is the application's fabric identity.
  SpmdServer(orb::Orb& orb, rts::Communicator& comm, std::string host);

  /// Stops the pipelined-request worker pool (rank 0), dropping queued
  /// jobs whose replies nobody will read.
  ~SpmdServer();

  SpmdServer(const SpmdServer&) = delete;
  SpmdServer& operator=(const SpmdServer&) = delete;

  /// Collective: registers `servant` under `name`, with optional preset
  /// argument distributions (paper §2.2).  The first activation opens this
  /// rank's listening port; rank 0 publishes the object reference.
  /// The servant must outlive the server.
  void activate(const std::string& name, SpmdServant& servant,
                ArgDistPolicy policy = {});

  /// Collective: removes `name` from the naming service.
  void deactivate(const std::string& name);

  /// Collective service loop: handles binds and requests until a Shutdown
  /// frame arrives.
  void serve();

  /// Collective: processes at most one pending event without blocking
  /// (bind, request, or shutdown).  Returns false when nothing was pending.
  /// After a shutdown event, shutdown_seen() is true and serve() would
  /// return immediately.
  bool poll();

  bool shutdown_seen() const noexcept { return shutdown_; }

  /// Reference for the most recently activated object (valid on all ranks).
  const orb::ObjectRef& object_ref() const;

  /// This rank's phase timings for the most recent request.
  const InvocationStats& last_stats() const noexcept { return stats_; }

 private:
  enum class EventKind : std::uint8_t {
    kNone = 0,
    kBind = 1,
    kRequest = 2,
    kShutdown = 3,
  };

  struct Event {
    EventKind kind = EventKind::kNone;
    cdr::ULong binding_id = 0;
    // kBind: decoded request.  kRequest: the full frame (rank 0).
    orb::BindRequest bind;
    pardis::Bytes frame;
    orb::Frame frame_info{};
    Duration wait = Duration::zero();
  };

  struct BindingState {
    cdr::ULong id = 0;
    int client_ranks = 0;
    bool collective = true;
    std::string object_key;
    std::shared_ptr<transport::Stream> control;  // rank 0 only
    /// This rank's data connection from each client rank.
    std::vector<std::shared_ptr<transport::Stream>> data;
  };

  struct Activation {
    SpmdServant* servant = nullptr;
    ArgDistPolicy policy;
  };

  /// One admitted pipelined request, snapshotted (stream, servant, frame)
  /// at admission on the rank-0 event thread so workers never touch the
  /// binding/activation tables.
  struct PipelinedJob {
    cdr::ULong binding_id = 0;
    orb::MuxInfo mux{};
    /// Inbound distributed-trace context (trace prologue extension);
    /// trace_id 0 = the client did not sample this request.
    orb::TraceContext trace{};
    pardis::Bytes frame;
    orb::Frame info{};
    std::shared_ptr<transport::Stream> control;
    SpmdServant* servant = nullptr;  // null: object deactivated
    std::string object_key;
    Clock::time_point enqueued{};
  };

  void ensure_listening();
  Event wait_event(bool blocking);
  Event next_event(bool blocking);   // rank 0 produces, all ranks receive
  void classify_new_connections();   // rank 0
  void handle_event(const Event& event);
  void handle_bind(const Event& event);
  void handle_request(const Event& event);
  void collect_hellos(cdr::ULong binding_id, int client_ranks,
                      std::vector<std::shared_ptr<transport::Stream>>& out);
  /// Dispatches `call` into `servant`, mapping every escape (user/system
  /// exception, deactivated object) to a reply status + payload.
  std::pair<orb::ReplyStatus, pardis::Bytes> guarded_dispatch(
      SpmdServant* servant, const std::string& object_key, ServerCall& call);
  // Pipelined path (rank 0 only).
  void admit_pipelined(cdr::ULong binding_id, BindingState& bs,
                       pardis::Bytes frame, const orb::Frame& info);
  void ensure_workers();
  void stop_workers();
  void worker_loop();
  void process_pipelined(PipelinedJob job);

  orb::Orb* orb_;
  rts::Communicator* comm_;
  std::string host_;
  std::shared_ptr<transport::Listener> acceptor_;
  std::vector<net::Address> endpoints_;  // all ranks' ports
  std::map<std::string, Activation> activations_;
  std::optional<orb::ObjectRef> last_ref_;
  bool shutdown_ = false;
  InvocationStats stats_;

  // rank 0 connection bookkeeping.
  std::vector<std::shared_ptr<transport::Stream>> unclassified_;
  /// Bind events discovered while busy with another event.
  std::deque<Event> pending_events_;
  /// Control connection of each not-yet-acknowledged bind, by binding id.
  std::map<cdr::ULong, std::shared_ptr<transport::Stream>> bind_controls_;
  // Hellos that arrived before their bind was processed, any rank.
  std::map<cdr::ULong,
           std::map<cdr::ULong, std::shared_ptr<transport::Stream>>>
      pending_hellos_;
  std::map<cdr::ULong, BindingState> bindings_;

  // Pipelined-request worker pool (rank 0; started on first admission).
  std::size_t queue_cap_ = 64;     // PARDIS_SERVER_QUEUE
  std::size_t worker_count_ = 4;   // PARDIS_SERVER_WORKERS
  cdr::ULong credit_grant_ = 32;   // PARDIS_SERVER_CREDIT, capped by queue
  /// Chaos (PARDIS_CHAOS_KILL_EVERY): every Nth pipelined admission
  /// forcibly closes that client's control stream mid-window instead of
  /// admitting, simulating a server-side peer death.  Clients must settle
  /// every outstanding future (COMM_FAILURE) and rebind.  0 disables.
  /// Works over both backends; touched only by the rank-0 event thread.
  std::uint64_t chaos_kill_every_ = 0;
  std::uint64_t chaos_admissions_ = 0;
  mutable common::RankedMutex queue_mu_{
      common::LockRank::kTransferServerQueue};
  std::condition_variable_any queue_cv_;
  std::deque<PipelinedJob> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  // Instruments resolved once (worker hot path).
  obs::Counter* pipelined_requests_ = nullptr;
  obs::Counter* pipelined_rejects_ = nullptr;
  obs::Counter* credits_granted_ = nullptr;
  obs::Counter* chaos_kills_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* pipeline_inflight_ = nullptr;
  obs::Histogram* pipeline_latency_us_ = nullptr;
  obs::Histogram* pipeline_queue_wait_us_ = nullptr;
  obs::Histogram* pipeline_exec_us_ = nullptr;
};

}  // namespace pardis::transfer
