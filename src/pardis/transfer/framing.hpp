// Request-ID framing helpers: the only place in the transfer layer allowed
// to call Stream::send directly.
//
// Every frame the transfer layer puts on a wire goes through one of these
// three helpers, so the extended (mux) prologue of docs/pipelining.md cannot
// be bypassed by accident: send_frame/send_mux_frame write the prologue
// themselves, and send_framed validates a pre-built frame's prologue before
// it leaves the process.  The pardis-lint rule `unframed-send` flags any
// other Stream::send call under src/pardis/transfer/.

#pragma once

#include "pardis/cdr/encoder.hpp"
#include "pardis/orb/protocol.hpp"
#include "pardis/transport/transport.hpp"

namespace pardis::transfer {

/// Builds and sends one plain frame: prologue + body from `encode_body`.
template <typename Fn>
void send_frame(transport::Stream& conn, orb::MsgType type, Fn&& encode_body) {
  cdr::Encoder enc;
  orb::begin_frame(enc, type);
  encode_body(enc);
  conn.send(enc.take());
}

/// Builds and sends one multiplexed frame: extended prologue carrying
/// (request id, frame kind, credit grant) + body from `encode_body`.
template <typename Fn>
void send_mux_frame(transport::Stream& conn, orb::MsgType type,
                    const orb::MuxInfo& mux, Fn&& encode_body) {
  cdr::Encoder enc;
  orb::begin_mux_frame(enc, type, mux);
  encode_body(enc);
  conn.send(enc.take());
}

/// Multiplexed frame carrying a trace context (sampled-in invocation):
/// both prologue extensions, then the body.  A zero trace_id falls back to
/// the untraced wire form so sampled-out traffic is byte-identical to a
/// peer that predates the trace extension.
template <typename Fn>
void send_mux_frame(transport::Stream& conn, orb::MsgType type,
                    const orb::MuxInfo& mux, const orb::TraceContext& trace,
                    Fn&& encode_body) {
  cdr::Encoder enc;
  if (trace.trace_id != 0) {
    orb::begin_mux_frame(enc, type, mux, trace);
  } else {
    orb::begin_mux_frame(enc, type, mux);
  }
  encode_body(enc);
  conn.send(enc.take());
}

/// Sends a frame built earlier (the timed send phases pack under
/// Phase::kPack and send under Phase::kSend), validating the prologue so a
/// malformed buffer fails loudly on the sender, not the receiver.
inline void send_framed(transport::Stream& conn, pardis::Bytes frame) {
  (void)orb::parse_frame(frame);
  conn.send(std::move(frame));
}

/// Gather-path flavor: the frame is a segment list whose first segment
/// carries the prologue and headers (built with cdr::Encoder), followed by
/// payload segments — dsequence local_data blocks ride to writev without a
/// pack copy.  The prologue is validated on the first segment; alignment
/// padding between segments is the builder's job (GatherList::pad_to
/// mirrors Encoder::align relative to the frame start).
inline void send_framed(transport::Stream& conn, io::GatherList&& frame) {
  (void)orb::parse_frame(frame.segment(0));
  conn.sendv(std::move(frame));
}

}  // namespace pardis::transfer
